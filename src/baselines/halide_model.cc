#include "baselines/halide_model.h"

#include <chrono>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "nn/ops.h"
#include "support/log.h"

namespace tcm::baselines {

HalideCostModel::HalideCostModel(const HalideModelConfig& config, Rng& rng) : config_(config) {
  std::vector<int> sizes;
  sizes.push_back(kHalideFeatureCount);
  sizes.insert(sizes.end(), config.hidden.begin(), config.hidden.end());
  sizes.push_back(1);
  stage_net_ = std::make_unique<nn::MLP>(sizes, config.dropout, rng, "halide_stage",
                                         /*activate_last=*/false);
  register_submodule("halide_stage", stage_net_.get());
}

nn::Variable HalideCostModel::forward_sample(
    const std::vector<std::vector<float>>& comp_features, bool training, Rng& rng) {
  if (comp_features.empty())
    throw std::invalid_argument("HalideCostModel: sample without computations");
  // Stack computations as rows, predict per-stage log cost, sum the
  // exponentials: time = sum_c exp(g(f_c)).
  const int n = static_cast<int>(comp_features.size());
  nn::Tensor x(n, kHalideFeatureCount);
  for (int i = 0; i < n; ++i) {
    if (static_cast<int>(comp_features[static_cast<std::size_t>(i)].size()) !=
        kHalideFeatureCount)
      throw std::invalid_argument("HalideCostModel: bad feature arity");
    for (int j = 0; j < kHalideFeatureCount; ++j)
      x.at(i, j) = comp_features[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
  }
  nn::Variable per_stage = nn::exp_bounded(stage_net_->forward(nn::Variable(x), training, rng),
                                           /*limit=*/24.0f);  // [n,1]
  // Sum of rows == n * mean.
  return nn::scale(nn::mean_all(per_stage), static_cast<float>(n));
}

double HalideCostModel::predict_seconds(const std::vector<std::vector<float>>& comp_features) {
  Rng rng(0);
  return static_cast<double>(forward_sample(comp_features, false, rng).value().item());
}

double HalideCostModel::predict_seconds(const ir::Program& transformed,
                                        const sim::MachineSpec& spec) {
  std::vector<std::vector<float>> feats;
  feats.reserve(transformed.comps.size());
  for (const ir::Computation& c : transformed.comps)
    feats.push_back(halide_features(transformed, c.id, spec));
  return predict_seconds(feats);
}

double HalideCostModel::train_step(const std::vector<const HalideSample*>& batch,
                                   nn::AdamW& optimizer, Rng& rng) {
  optimizer.zero_grad();
  // MSE on log seconds, averaged over the batch.
  nn::Variable loss;
  for (const HalideSample* sample : batch) {
    nn::Variable pred = forward_sample(sample->comp_features, /*training=*/true, rng);
    const float log_target = static_cast<float>(std::log(std::max(1e-12, sample->measured_seconds)));
    nn::Variable diff = nn::sub(nn::log_op(pred), nn::Variable(nn::Tensor::scalar(log_target)));
    nn::Variable sq = nn::mul(diff, diff);
    loss = loss.defined() ? nn::add(loss, sq) : sq;
  }
  loss = nn::scale(loss, 1.0f / static_cast<float>(batch.size()));
  nn::backward(loss);
  optimizer.step();
  return static_cast<double>(loss.value().item());
}

std::vector<double> train_halide_model(HalideCostModel& model,
                                       const std::vector<HalideSample>& samples,
                                       const HalideTrainOptions& options) {
  if (samples.empty()) throw std::invalid_argument("train_halide_model: no samples");
  Rng rng(options.seed);
  nn::AdamWOptions ao;
  ao.weight_decay = options.weight_decay;
  nn::AdamW optimizer(model.parameters(), ao);
  const std::int64_t steps_per_epoch =
      (static_cast<std::int64_t>(samples.size()) + options.batch_size - 1) / options.batch_size;
  nn::OneCycleLR schedule(&optimizer, options.max_lr,
                          std::max<std::int64_t>(1, options.epochs * steps_per_epoch));

  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> losses;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.shuffle(order);
    double sum = 0;
    std::int64_t batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(options.batch_size)) {
      const std::size_t end =
          std::min(order.size(), start + static_cast<std::size_t>(options.batch_size));
      std::vector<const HalideSample*> batch;
      batch.reserve(end - start);
      for (std::size_t i = start; i < end; ++i) batch.push_back(&samples[order[i]]);
      sum += model.train_step(batch, optimizer, rng);
      schedule.step();
      ++batches;
    }
    losses.push_back(sum / static_cast<double>(batches));
    if (options.verbose && (epoch % 10 == 0 || epoch + 1 == options.epochs))
      log_info() << "halide-baseline epoch " << epoch << " mse(log t) " << losses.back();
  }
  return losses;
}

HalideEvaluator::HalideEvaluator(HalideCostModel* model, sim::MachineSpec spec)
    : model_(model), spec_(spec) {
  if (!model_) throw std::invalid_argument("HalideEvaluator: null model");
}

std::vector<double> HalideEvaluator::evaluate(
    const ir::Program& p, const std::vector<transforms::Schedule>& candidates) {
  const auto t0 = std::chrono::steady_clock::now();
  const double base = model_->predict_seconds(p, spec_);
  std::vector<double> speedups;
  speedups.reserve(candidates.size());
  for (const transforms::Schedule& s : candidates) {
    const ir::Program transformed = transforms::apply_schedule(p, s);
    speedups.push_back(base / model_->predict_seconds(transformed, spec_));
    ++evaluations_;
  }
  accounted_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return speedups;
}

}  // namespace tcm::baselines
