// Hand-engineered featurization in the style of the Halide autoscheduler
// cost model (Adams et al. 2019), the baseline the paper compares against.
//
// Unlike the paper's model — which reads the *unoptimized* program plus a
// transformation list — this featurizer requires the *transformed* loop nest
// (schedule already applied), and distils it into 54 scalar features per
// computation: operation mix, extents, stride histogram, footprints,
// arithmetic intensity, parallel/vector/unroll/tile state, and estimated
// cache residency. This is exactly the heavy feature engineering the paper
// argues against (Section 7); reproducing it makes the comparison concrete.
#pragma once

#include <vector>

#include "ir/program.h"
#include "sim/machine_spec.h"

namespace tcm::baselines {

inline constexpr int kHalideFeatureCount = 54;

// Features for one computation of a *transformed* program. Non-boolean
// features are signed-log transformed for scale stability.
std::vector<float> halide_features(const ir::Program& transformed, int comp_id,
                                   const sim::MachineSpec& spec);

// Human-readable names of the 54 features (for docs and tests).
const std::vector<std::string>& halide_feature_names();

}  // namespace tcm::baselines
