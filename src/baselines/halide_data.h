// Training-data construction for the Halide baseline.
//
// The paper observes that Halide's model mispredicts on scientific-computing
// benchmarks it "was not trained to handle" (heat2d, jacobi2d, mvt,
// seidel2d). We reproduce that mechanistically: the default options bias the
// baseline's training distribution towards image-processing / deep-learning
// shaped programs (shallow nests, elementwise + small stencils, few
// reductions), so it generalizes worse to deep stencil/reduction programs.
#pragma once

#include "baselines/halide_model.h"
#include "datagen/dataset_builder.h"

namespace tcm::baselines {

struct HalideDataOptions {
  int num_programs = 400;
  int schedules_per_program = 16;
  datagen::GeneratorOptions generator = image_dl_biased_generator();
  datagen::ScheduleGeneratorOptions scheduler;
  sim::ExecutorOptions executor;
  sim::MachineSpec machine;
  std::uint64_t seed = 77;

  // The biased program distribution described above.
  static datagen::GeneratorOptions image_dl_biased_generator() {
    datagen::GeneratorOptions g;
    g.p_reduction = 0.1;
    g.p_stencil = 0.25;
    g.max_depth = 3;
    g.max_stencil_halo = 1;
    return g;
  }
};

// (transformed program features, measured seconds) samples, including the
// untransformed program of every draw.
std::vector<HalideSample> build_halide_samples(const HalideDataOptions& options);

}  // namespace tcm::baselines
