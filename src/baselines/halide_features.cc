#include "baselines/halide_features.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace tcm::baselines {
namespace {

float slog(double v) {
  const double s = v < 0 ? -1.0 : 1.0;
  return static_cast<float>(s * std::log1p(std::abs(v)));
}

std::vector<double> buffer_strides(const ir::Buffer& b) {
  std::vector<double> s(b.dims.size(), 8.0);
  for (int i = static_cast<int>(b.dims.size()) - 2; i >= 0; --i)
    s[static_cast<std::size_t>(i)] =
        s[static_cast<std::size_t>(i + 1)] * static_cast<double>(b.dims[static_cast<std::size_t>(i + 1)]);
  return s;
}

double stride_of(const ir::Program& p, const ir::BufferAccess& a, int col) {
  const auto bs = buffer_strides(p.buffer(a.buffer_id));
  double stride = 0;
  for (int r = 0; r < a.matrix.rank(); ++r)
    stride += static_cast<double>(a.matrix.at(r, col)) * bs[static_cast<std::size_t>(r)];
  return std::abs(stride);
}

double footprint_bytes(const ir::BufferAccess& a, const std::vector<double>& extents,
                       int from_level) {
  double bytes = 8.0;
  for (int r = 0; r < a.matrix.rank(); ++r) {
    double span = 1.0;
    for (int c = from_level; c < a.matrix.depth(); ++c) {
      const double coef = std::abs(static_cast<double>(a.matrix.at(r, c)));
      if (coef != 0.0) span += coef * (extents[static_cast<std::size_t>(c)] - 1.0);
    }
    bytes *= span;
  }
  return bytes;
}

}  // namespace

const std::vector<std::string>& halide_feature_names() {
  static const std::vector<std::string> names = {
      "adds", "subs", "muls", "divs",                                           // 0-3
      "log_iterations", "depth", "innermost_extent",                            // 4-6
      "extent_l0", "extent_l1", "extent_l2", "extent_l3",                       // 7-10
      "extent_l4", "extent_l5", "extent_l6",                                    // 11-13
      "store_bytes", "num_loads", "num_distinct_buffers", "num_input_loads",    // 14-17
      "num_produced_loads", "bytes_loaded_per_iter",                            // 18-19
      "loads_stride0", "loads_stride1", "loads_stride_small", "loads_stride_big",  // 20-23
      "min_stride", "max_stride", "store_stride",                               // 24-26
      "total_load_footprint", "reuse_tile_footprint", "store_footprint",        // 27-29
      "arithmetic_intensity",                                                   // 30
      "is_parallel", "parallel_level", "parallel_extent", "parallel_grain",     // 31-34
      "is_vectorized", "vector_width", "vector_friendly",                       // 35-37
      "unroll_factor", "unrolled_body_ops",                                     // 38-39
      "num_tiled_loops", "tile_size_0", "tile_size_1", "tile_size_2",           // 40-43
      "inner_tile_iterations",                                                  // 44
      "fused_levels", "comps_in_nest", "interchanged",                          // 45-47
      "working_set_cache_level", "lines_per_iter", "loop_overhead_per_iter",    // 48-50
      "is_reduction", "reduction_depth", "output_elements",                     // 51-53
  };
  return names;
}

std::vector<float> halide_features(const ir::Program& p, int comp_id,
                                   const sim::MachineSpec& spec) {
  const ir::Computation& c = p.comp(comp_id);
  const std::vector<int> nest = p.nest_of(comp_id);
  const int depth = static_cast<int>(nest.size());
  std::vector<double> extents(static_cast<std::size_t>(depth));
  double iterations = 1;
  int tiled_loops = 0, fused_levels = 0, interchanged = 0;
  double tile_sizes[3] = {0, 0, 0};
  double inner_tile_iters = 1;
  int parallel_level = -1;
  double parallel_extent = 0;
  for (int l = 0; l < depth; ++l) {
    const ir::LoopNode& loop = p.loop(nest[static_cast<std::size_t>(l)]);
    extents[static_cast<std::size_t>(l)] = static_cast<double>(loop.iter.extent);
    iterations *= extents[static_cast<std::size_t>(l)];
    if (loop.tail_of != -1) {
      if (tiled_loops < 3) tile_sizes[tiled_loops] = static_cast<double>(loop.iter.extent);
      ++tiled_loops;
      inner_tile_iters *= static_cast<double>(loop.iter.extent);
    }
    if (loop.tag_fused) ++fused_levels;
    if (loop.tag_interchanged) ++interchanged;
    if (loop.parallel && parallel_level < 0) {
      parallel_level = l;
      parallel_extent = extents[static_cast<std::size_t>(l)];
    }
  }
  const ir::LoopNode& inner = p.loop(nest.back());

  const auto loads = c.rhs.loads();
  const ir::OpCounts ops = c.rhs.op_counts();
  std::set<int> distinct_buffers;
  int input_loads = 0, produced_loads = 0;
  int stride0 = 0, stride1 = 0, stride_small = 0, stride_big = 0;
  double min_stride = 1e30, max_stride = 0;
  double total_load_footprint = 0;
  for (const ir::BufferAccess& a : loads) {
    distinct_buffers.insert(a.buffer_id);
    if (p.buffer(a.buffer_id).is_input) ++input_loads;
    else ++produced_loads;
    const double s = stride_of(p, a, depth - 1);
    if (s == 0) ++stride0;
    else if (s <= 8.5) ++stride1;
    else if (s <= 4.0 * spec.line_bytes) ++stride_small;
    else ++stride_big;
    min_stride = std::min(min_stride, s);
    max_stride = std::max(max_stride, s);
    total_load_footprint += footprint_bytes(a, extents, 0);
  }
  if (loads.empty()) min_stride = 0;
  const double store_stride = stride_of(p, c.store, depth - 1);

  // Reuse tile: footprint below the innermost loop the first load is
  // invariant to (0 when no temporal reuse).
  double reuse_tile = 0;
  for (const ir::BufferAccess& a : loads) {
    for (int l = depth - 1; l >= 0; --l) {
      if (extents[static_cast<std::size_t>(l)] <= 1.0) continue;
      if (a.matrix.invariant_to(l)) {
        reuse_tile = std::max(reuse_tile, footprint_bytes(a, extents, l + 1));
        break;
      }
    }
  }

  const double store_footprint = footprint_bytes(c.store, extents, 0);
  const double bytes_per_iter = 8.0 * static_cast<double>(loads.size() + 1);
  const double flops = static_cast<double>(ops.total());
  const double intensity = flops / std::max(1.0, bytes_per_iter);

  // Which cache level would hold the per-iteration working set.
  const double ws = total_load_footprint + store_footprint;
  int cache_level = 3;
  if (ws <= 0.8 * static_cast<double>(spec.l1.size_bytes)) cache_level = 0;
  else if (ws <= 0.8 * static_cast<double>(spec.l2.size_bytes)) cache_level = 1;
  else if (ws <= 0.8 * static_cast<double>(spec.l3.size_bytes)) cache_level = 2;

  int comps_in_nest = 0;
  for (const ir::Computation& other : p.comps)
    if (!p.nest_of(other.id).empty() && p.nest_of(other.id).front() == nest.front())
      ++comps_in_nest;

  int reduction_depth = 0;
  for (int l = 0; l < depth; ++l)
    if (c.store.matrix.invariant_to(l)) ++reduction_depth;

  const bool vector_friendly = store_stride <= 8.5 && stride_big == 0 && stride_small == 0;

  std::vector<float> f;
  f.reserve(kHalideFeatureCount);
  f.push_back(slog(ops.adds));
  f.push_back(slog(ops.subs));
  f.push_back(slog(ops.muls));
  f.push_back(slog(ops.divs));
  f.push_back(slog(iterations));
  f.push_back(slog(depth));
  f.push_back(slog(extents.back()));
  for (int l = 0; l < 7; ++l)
    f.push_back(l < depth ? slog(extents[static_cast<std::size_t>(l)]) : 0.0f);
  f.push_back(slog(static_cast<double>(p.buffer(c.store.buffer_id).num_elements()) * 8.0));
  f.push_back(slog(static_cast<double>(loads.size())));
  f.push_back(slog(static_cast<double>(distinct_buffers.size())));
  f.push_back(slog(input_loads));
  f.push_back(slog(produced_loads));
  f.push_back(slog(bytes_per_iter));
  f.push_back(slog(stride0));
  f.push_back(slog(stride1));
  f.push_back(slog(stride_small));
  f.push_back(slog(stride_big));
  f.push_back(slog(min_stride));
  f.push_back(slog(max_stride));
  f.push_back(slog(store_stride));
  f.push_back(slog(total_load_footprint));
  f.push_back(slog(reuse_tile));
  f.push_back(slog(store_footprint));
  f.push_back(slog(intensity));
  f.push_back(parallel_level >= 0 ? 1.0f : 0.0f);
  f.push_back(slog(parallel_level >= 0 ? parallel_level : 0));
  f.push_back(slog(parallel_extent));
  f.push_back(slog(parallel_extent > 0 ? iterations / parallel_extent : 0));
  f.push_back(inner.vector_width > 0 ? 1.0f : 0.0f);
  f.push_back(slog(inner.vector_width));
  f.push_back(vector_friendly ? 1.0f : 0.0f);
  f.push_back(slog(inner.unroll));
  f.push_back(slog(static_cast<double>(inner.unroll > 0 ? inner.unroll : 1) * flops));
  f.push_back(slog(tiled_loops));
  f.push_back(slog(tile_sizes[0]));
  f.push_back(slog(tile_sizes[1]));
  f.push_back(slog(tile_sizes[2]));
  f.push_back(slog(inner_tile_iters));
  f.push_back(slog(fused_levels));
  f.push_back(slog(comps_in_nest));
  f.push_back(slog(interchanged));
  f.push_back(slog(cache_level));
  f.push_back(slog(max_stride > 0 ? std::min(1.0, max_stride / spec.line_bytes) : 0));
  f.push_back(slog(inner.unroll > 1 ? 2.0 / inner.unroll : 2.0));
  f.push_back(c.is_reduction ? 1.0f : 0.0f);
  f.push_back(slog(reduction_depth));
  f.push_back(slog(store_footprint / 8.0));
  if (static_cast<int>(f.size()) != kHalideFeatureCount)
    throw std::logic_error("halide_features: feature count mismatch");
  return f;
}

}  // namespace tcm::baselines
