#include "baselines/halide_data.h"

namespace tcm::baselines {

std::vector<HalideSample> build_halide_samples(const HalideDataOptions& options) {
  datagen::RandomProgramGenerator gen(options.generator);
  datagen::RandomScheduleGenerator sched_gen(options.scheduler);
  std::vector<std::vector<HalideSample>> per_program(
      static_cast<std::size_t>(options.num_programs));

#pragma omp parallel for schedule(dynamic)
  for (int pi = 0; pi < options.num_programs; ++pi) {
    const std::uint64_t program_seed =
        options.seed * 0x9e3779b97f4a7c15ULL + 0x51ed2701ULL * pi;
    Rng rng(program_seed);
    sim::Executor executor(sim::MachineModel(options.machine), options.executor,
                           rng.next_u64());
    const ir::Program program = gen.generate(program_seed);
    auto& out = per_program[static_cast<std::size_t>(pi)];

    auto add_sample = [&](const ir::Program& transformed) {
      HalideSample s;
      for (const ir::Computation& c : transformed.comps)
        s.comp_features.push_back(halide_features(transformed, c.id, options.machine));
      s.measured_seconds = executor.measure_seconds(transformed);
      out.push_back(std::move(s));
    };

    add_sample(program);  // the untransformed point anchors the time scale
    for (int si = 0; si < options.schedules_per_program; ++si) {
      const transforms::Schedule schedule = sched_gen.generate(program, rng);
      transforms::ApplyResult applied = transforms::try_apply_schedule(program, schedule);
      if (applied.ok) add_sample(applied.program);
    }
  }

  std::vector<HalideSample> samples;
  for (auto& v : per_program)
    for (auto& s : v) samples.push_back(std::move(s));
  return samples;
}

}  // namespace tcm::baselines
