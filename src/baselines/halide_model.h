// The Halide-style baseline cost model (Adams et al. 2019, as characterized
// in the paper's Section 6 and 7):
//   - heavy hand-engineered features over the *transformed* loop nest,
//   - a small feedforward network per computation whose exponentiated
//     outputs sum to the predicted execution time,
//   - trained with MSE (the loss the Halide paper uses) on log execution
//     times.
// It plugs into the same beam search through HalideEvaluator, which predicts
// speedup(candidate) = predicted_time(base) / predicted_time(candidate).
#pragma once

#include <memory>
#include <vector>

#include "baselines/halide_features.h"
#include "nn/modules.h"
#include "nn/optim.h"
#include "search/evaluator.h"
#include "transforms/apply.h"

namespace tcm::baselines {

struct HalideSample {
  // Per-computation feature vectors of a transformed program.
  std::vector<std::vector<float>> comp_features;
  double measured_seconds = 0;
};

struct HalideModelConfig {
  std::vector<int> hidden = {64, 32};
  float dropout = 0.0f;
};

class HalideCostModel : public nn::Module {
 public:
  HalideCostModel(const HalideModelConfig& config, Rng& rng);

  // Predicted execution time (seconds) = sum over computations of
  // exp(mlp(features)).
  double predict_seconds(const std::vector<std::vector<float>>& comp_features);

  // Convenience: featurize + predict for a transformed program.
  double predict_seconds(const ir::Program& transformed, const sim::MachineSpec& spec);

  // One training step over a minibatch; returns the batch loss
  // (MSE on log seconds). Used by train_halide_model.
  double train_step(const std::vector<const HalideSample*>& batch, nn::AdamW& optimizer,
                    Rng& rng);

 private:
  nn::Variable forward_sample(const std::vector<std::vector<float>>& comp_features,
                              bool training, Rng& rng);

  HalideModelConfig config_;
  std::unique_ptr<nn::MLP> stage_net_;
};

struct HalideTrainOptions {
  int epochs = 40;
  int batch_size = 32;
  double max_lr = 1e-3;
  double weight_decay = 1e-4;
  std::uint64_t seed = 99;
  bool verbose = false;
};

// Trains in place; returns per-epoch training losses.
std::vector<double> train_halide_model(HalideCostModel& model,
                                       const std::vector<HalideSample>& samples,
                                       const HalideTrainOptions& options);

// Candidate evaluator backed by the Halide baseline: applies each candidate
// schedule (the transformed-code requirement the paper criticizes), then
// predicts times.
class HalideEvaluator final : public search::CandidateEvaluator {
 public:
  HalideEvaluator(HalideCostModel* model, sim::MachineSpec spec);

  std::vector<double> evaluate(const ir::Program& p,
                               const std::vector<transforms::Schedule>& candidates) override;
  double accounted_seconds() const override { return accounted_seconds_; }
  std::int64_t evaluations() const override { return evaluations_; }
  const char* kind() const override { return "halide-baseline"; }

 private:
  HalideCostModel* model_;
  sim::MachineSpec spec_;
  double accounted_seconds_ = 0;
  std::int64_t evaluations_ = 0;
};

}  // namespace tcm::baselines
