#include "registry/continual_scheduler.h"

#include <cstdio>
#include <exception>

#include "obs/event_log.h"
#include "obs/trace.h"
#include "support/log.h"

namespace tcm::registry {

namespace {

// "psi=0.31/0.25 ks=0.12/0.35 ... window=512 reference=512" — the full
// signal state at trigger time, so the flight recorder alone can answer
// "why did this cycle run".
std::string drift_detail(const serve::DriftReport& r) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "psi=%.4g/%.4g ks=%.4g/%.4g failure_rate=%.4g/%.4g shadow_mape=%.4g "
                "shadow_spearman=%.4g window=%zu reference=%zu",
                r.psi.value, r.psi.threshold, r.ks.value, r.ks.threshold, r.failure_rate.value,
                r.failure_rate.threshold, r.shadow_mape.value, r.shadow_spearman.value,
                r.window_size, r.reference_size);
  return buf;
}

}  // namespace

void AutopilotMetrics::update_drift(const serve::DriftReport& report) const {
  if (signal_psi == nullptr) return;
  signal_psi->set(report.psi.value);
  signal_ks->set(report.ks.value);
  signal_failure_rate->set(report.failure_rate.value);
  signal_shadow_mape->set(report.shadow_mape.value);
  signal_shadow_spearman->set(report.shadow_spearman.value);
  threshold_psi->set(report.psi.threshold);
  threshold_ks->set(report.ks.threshold);
  threshold_failure_rate->set(report.failure_rate.threshold);
  threshold_shadow_mape->set(report.shadow_mape.threshold);
  threshold_shadow_spearman->set(report.shadow_spearman.threshold);
  reference_size->set(static_cast<double>(report.reference_size));
  window_size->set(static_cast<double>(report.window_size));
  drifted->set(report.drifted ? 1.0 : 0.0);
}

AutopilotMetrics register_autopilot_metrics(obs::MetricsRegistry& registry) {
  AutopilotMetrics m;
  const char* signal_help = "Latest drift-signal values (see matching tcm_drift_threshold)";
  m.signal_psi = &registry.gauge("tcm_drift_signal", signal_help, "signal=\"psi\"");
  m.signal_ks = &registry.gauge("tcm_drift_signal", signal_help, "signal=\"ks\"");
  m.signal_failure_rate = &registry.gauge("tcm_drift_signal", signal_help,
                                          "signal=\"failure_rate\"");
  m.signal_shadow_mape = &registry.gauge("tcm_drift_signal", signal_help,
                                         "signal=\"shadow_mape\"");
  m.signal_shadow_spearman = &registry.gauge("tcm_drift_signal", signal_help,
                                             "signal=\"shadow_spearman\"");
  const char* threshold_help = "Configured firing threshold per drift signal";
  m.threshold_psi = &registry.gauge("tcm_drift_threshold", threshold_help, "signal=\"psi\"");
  m.threshold_ks = &registry.gauge("tcm_drift_threshold", threshold_help, "signal=\"ks\"");
  m.threshold_failure_rate = &registry.gauge("tcm_drift_threshold", threshold_help,
                                             "signal=\"failure_rate\"");
  m.threshold_shadow_mape = &registry.gauge("tcm_drift_threshold", threshold_help,
                                            "signal=\"shadow_mape\"");
  m.threshold_shadow_spearman = &registry.gauge("tcm_drift_threshold", threshold_help,
                                                "signal=\"shadow_spearman\"");
  m.reference_size = &registry.gauge("tcm_drift_reference_size",
                                     "Frozen reference window size (0 until baselined)");
  m.window_size = &registry.gauge("tcm_drift_window_size",
                                  "Current recent-prediction window size");
  m.drifted = &registry.gauge("tcm_drift_drifted",
                              "1 when any drift signal is over threshold");
  m.polls = &registry.counter("tcm_autopilot_polls_total", "Drift-monitor observations");
  m.triggers = &registry.counter("tcm_autopilot_triggers_total",
                                 "Drift triggers (each starts a retraining cycle attempt)");
  const char* cycles_help = "Completed retraining cycles by outcome";
  m.cycles_promoted = &registry.counter("tcm_autopilot_cycles_total", cycles_help,
                                        "outcome=\"promoted\"");
  m.cycles_rejected = &registry.counter("tcm_autopilot_cycles_total", cycles_help,
                                        "outcome=\"rejected\"");
  m.cycle_failures = &registry.counter(
      "tcm_autopilot_cycle_failures_total",
      "Retraining cycles that failed (swallowed, serving unaffected)");
  m.gc_removed = &registry.counter("tcm_autopilot_gc_removed_total",
                                   "Model versions removed by post-cycle retention GC");
  return m;
}

ContinualScheduler::ContinualScheduler(ModelRegistry& registry,
                                       serve::PredictionService& service,
                                       ContinualTrainer& trainer,
                                       ContinualSchedulerOptions options)
    : registry_(registry),
      service_(service),
      trainer_(trainer),
      options_(std::move(options)),
      breaker_(options_.breaker),
      monitor_(options_.drift) {
  if (options_.metrics) metrics_ = register_autopilot_metrics(*options_.metrics);
}

ContinualScheduler::~ContinualScheduler() { stop(); }

void ContinualScheduler::start() {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (running_) return;
  stopping_ = false;
  running_ = true;
  thread_ = std::thread([this] { loop(); });
}

void ContinualScheduler::stop() {
  // The thread handle is claimed under the lock: of two concurrent stop()
  // calls exactly one joins, the other sees running_ == false and returns.
  std::thread claimed;
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (!running_) return;
    stopping_ = true;
    running_ = false;
    claimed = std::move(thread_);
  }
  stop_cv_.notify_all();
  claimed.join();
}

void ContinualScheduler::loop() {
  obs::Watchdog::Handle heartbeat;
  if (options_.watchdog)
    heartbeat = options_.watchdog->register_thread("autopilot_poller",
                                                   options_.poller_stall_after,
                                                   /*critical=*/false);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(thread_mu_);
      if (stop_cv_.wait_for(lock, options_.poll_interval, [this] { return stopping_; })) break;
    }
    if (options_.watchdog) options_.watchdog->set_busy(heartbeat, "poll");
    poll_once();
    if (options_.watchdog) options_.watchdog->set_idle(heartbeat);
  }
  if (options_.watchdog) options_.watchdog->unregister(heartbeat);
}

bool ContinualScheduler::poll_once() {
  // Snapshot the service first (stats() takes the service's own locks).
  const serve::ServeStats stats = service_.stats();
  const std::vector<double> window = service_.recent_predictions();

  // Observe and decide under mu_; run the (potentially minutes-long) cycle
  // *outside* it so last_report()/cycles_run()/history() stay responsive
  // while training — exactly when an operator wants to watch. A
  // cycle_in_flight_ flag keeps concurrent poll_once() calls from stacking
  // cycles.
  SchedulerEvent event;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++polls_;
    if (metrics_.polls != nullptr) metrics_.polls->inc();
    const serve::DriftReport report = monitor_.observe(stats, window);
    last_report_ = report;
    metrics_.update_drift(report);
    if (!report.triggered) return false;

    // Budget and wall-clock cooldown. A suppressed trigger is dropped, not
    // queued: if the drift persists, the monitor will fire again after its
    // own cooldown. Only *successful* cycles consume the budget — failures
    // are retried (paced by the cooldowns), not allowed to exhaust it.
    if (cycle_in_flight_) return false;
    if (options_.max_cycles > 0 && cycles_ >= static_cast<std::uint64_t>(options_.max_cycles)) {
      log_debug() << "[autopilot] drift (" << report.reason << ") but cycle budget "
                  << options_.max_cycles << " exhausted";
      return false;
    }
    const auto now = std::chrono::steady_clock::now();
    if (have_last_cycle_ && now - last_cycle_end_ < options_.cycle_cooldown) {
      log_debug() << "[autopilot] drift (" << report.reason << ") inside cycle cooldown, skipping";
      return false;
    }
    // Breaker check last: in the half-open state allow() consumes the single
    // probe slot, so it must only run once every other gate has passed.
    if (!breaker_.allow()) {
      obs::EventLog::instance().emit(
          "cycle_skip", "warn",
          "circuit breaker open, dropping drift trigger (reason=\"" + report.reason + "\")",
          obs::current_trace_id());
      log_debug() << "[autopilot] drift (" << report.reason
                  << ") but cycle circuit breaker is open, skipping";
      return false;
    }
    cycle_in_flight_ = true;
    event.drift = report;
  }

  // One trace id spans the whole firing — drift event, cycle spans, promote
  // event and the WARN/ERROR lines all cross-reference on it.
  const std::uint64_t cycle_trace = obs::Tracer::instance().force_request();
  obs::TraceContext trace_ctx(cycle_trace);
  if (metrics_.triggers != nullptr) metrics_.triggers->inc();
  obs::EventLog::instance().emit(
      "drift_trigger", "warn",
      "reason=\"" + event.drift.reason + "\" " + drift_detail(event.drift), cycle_trace);
  obs::EventLog::instance().emit(
      "cycle_start", "info", "incumbent=v" + std::to_string(registry_.active_version()),
      cycle_trace);

  log_debug() << "[autopilot] drift detected (" << event.drift.reason << ") -> running cycle";
  try {
    event.cycle = trainer_.run_cycle();
    obs::EventLog::instance().emit(
        "cycle_finish", "info",
        "candidate=v" + std::to_string(event.cycle.candidate_version) +
            " promoted=" + (event.cycle.promoted ? "true" : "false") + " decision=\"" +
            event.cycle.decision + '"',
        cycle_trace);
    if (metrics_.cycles_promoted != nullptr)
      (event.cycle.promoted ? metrics_.cycles_promoted : metrics_.cycles_rejected)->inc();
  } catch (const std::exception& e) {
    event.cycle_failed = true;
    event.error = e.what();
    if (metrics_.cycle_failures != nullptr) metrics_.cycle_failures->inc();
    obs::EventLog::instance().emit("cycle_fail", "error",
                                   "error=\"" + event.error + '"', cycle_trace);
    log_warn() << "[autopilot] cycle failed: " << e.what() << kv("trace_id", cycle_trace);
  }
  // Feed the breaker; announce open/close transitions in the flight
  // recorder (times_opened distinguishes a re-open from a failure that the
  // threshold still tolerates).
  const std::uint64_t opened_before = breaker_.times_opened();
  const bool was_open_path = breaker_.state() != support::CircuitBreaker::State::kClosed;
  if (event.cycle_failed) {
    breaker_.record_failure();
    if (breaker_.times_opened() != opened_before)
      obs::EventLog::instance().emit(
          "breaker_open", "error",
          "consecutive_failures=" + std::to_string(breaker_.consecutive_failures()) +
              " cooldown_ms=" + std::to_string(options_.breaker.open_cooldown.count()),
          cycle_trace);
  } else {
    breaker_.record_success();
    if (was_open_path)
      obs::EventLog::instance().emit("breaker_close", "info", "probe cycle succeeded",
                                     cycle_trace);
  }
  // GC failures are reported separately: a retention hiccup must not be
  // mistaken for a failed retraining cycle (the promotion, if any, already
  // happened and is serving).
  if (!event.cycle_failed && options_.gc_after_cycle) {
    try {
      event.gc = registry_.gc(options_.gc);
      if (!event.gc.removed.empty()) {
        if (metrics_.gc_removed != nullptr)
          metrics_.gc_removed->inc(event.gc.removed.size());
        std::string removed = "removed=";
        for (std::size_t i = 0; i < event.gc.removed.size(); ++i)
          removed += (i > 0 ? ",v" : "v") + std::to_string(event.gc.removed[i]);
        obs::EventLog::instance().emit("gc", "info", std::move(removed), cycle_trace);
      }
    } catch (const std::exception& e) {
      event.gc_failed = true;
      event.error = e.what();
      obs::EventLog::instance().emit("gc_fail", "error", "error=\"" + event.error + '"',
                                     cycle_trace);
      log_warn() << "[autopilot] post-cycle gc failed: " << e.what()
                 << kv("trace_id", cycle_trace);
    }
  }

  // Whatever the outcome, re-anchor drift detection on the traffic the
  // (possibly new) serving model produces from here on.
  service_.clear_recent_predictions();

  std::lock_guard<std::mutex> lock(mu_);
  monitor_.rebaseline();
  cycle_in_flight_ = false;
  const bool succeeded = !event.cycle_failed;
  if (succeeded) ++cycles_;
  have_last_cycle_ = true;
  last_cycle_end_ = std::chrono::steady_clock::now();
  history_.push_back(std::move(event));
  return succeeded;
}

std::uint64_t ContinualScheduler::polls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return polls_;
}

std::uint64_t ContinualScheduler::cycles_run() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cycles_;
}

serve::DriftReport ContinualScheduler::last_report() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_report_;
}

std::vector<SchedulerEvent> ContinualScheduler::history() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_;
}

const char* ContinualScheduler::phase() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cycle_in_flight_ ? "cycle" : "idle";
}

}  // namespace tcm::registry
