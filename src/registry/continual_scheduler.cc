#include "registry/continual_scheduler.h"

#include <exception>

#include "support/log.h"

namespace tcm::registry {

ContinualScheduler::ContinualScheduler(ModelRegistry& registry,
                                       serve::PredictionService& service,
                                       ContinualTrainer& trainer,
                                       ContinualSchedulerOptions options)
    : registry_(registry),
      service_(service),
      trainer_(trainer),
      options_(std::move(options)),
      monitor_(options_.drift) {}

ContinualScheduler::~ContinualScheduler() { stop(); }

void ContinualScheduler::start() {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (running_) return;
  stopping_ = false;
  running_ = true;
  thread_ = std::thread([this] { loop(); });
}

void ContinualScheduler::stop() {
  // The thread handle is claimed under the lock: of two concurrent stop()
  // calls exactly one joins, the other sees running_ == false and returns.
  std::thread claimed;
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (!running_) return;
    stopping_ = true;
    running_ = false;
    claimed = std::move(thread_);
  }
  stop_cv_.notify_all();
  claimed.join();
}

void ContinualScheduler::loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(thread_mu_);
      if (stop_cv_.wait_for(lock, options_.poll_interval, [this] { return stopping_; }))
        return;
    }
    poll_once();
  }
}

bool ContinualScheduler::poll_once() {
  // Snapshot the service first (stats() takes the service's own locks).
  const serve::ServeStats stats = service_.stats();
  const std::vector<double> window = service_.recent_predictions();

  // Observe and decide under mu_; run the (potentially minutes-long) cycle
  // *outside* it so last_report()/cycles_run()/history() stay responsive
  // while training — exactly when an operator wants to watch. A
  // cycle_in_flight_ flag keeps concurrent poll_once() calls from stacking
  // cycles.
  SchedulerEvent event;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++polls_;
    const serve::DriftReport report = monitor_.observe(stats, window);
    last_report_ = report;
    if (!report.triggered) return false;

    // Budget and wall-clock cooldown. A suppressed trigger is dropped, not
    // queued: if the drift persists, the monitor will fire again after its
    // own cooldown. Only *successful* cycles consume the budget — failures
    // are retried (paced by the cooldowns), not allowed to exhaust it.
    if (cycle_in_flight_) return false;
    if (options_.max_cycles > 0 && cycles_ >= static_cast<std::uint64_t>(options_.max_cycles)) {
      log_debug() << "[autopilot] drift (" << report.reason << ") but cycle budget "
                  << options_.max_cycles << " exhausted";
      return false;
    }
    const auto now = std::chrono::steady_clock::now();
    if (have_last_cycle_ && now - last_cycle_end_ < options_.cycle_cooldown) {
      log_debug() << "[autopilot] drift (" << report.reason << ") inside cycle cooldown, skipping";
      return false;
    }
    cycle_in_flight_ = true;
    event.drift = report;
  }

  log_debug() << "[autopilot] drift detected (" << event.drift.reason << ") -> running cycle";
  try {
    event.cycle = trainer_.run_cycle();
  } catch (const std::exception& e) {
    event.cycle_failed = true;
    event.error = e.what();
    log_warn() << "[autopilot] cycle failed: " << e.what();
  }
  // GC failures are reported separately: a retention hiccup must not be
  // mistaken for a failed retraining cycle (the promotion, if any, already
  // happened and is serving).
  if (!event.cycle_failed && options_.gc_after_cycle) {
    try {
      event.gc = registry_.gc(options_.gc);
    } catch (const std::exception& e) {
      event.gc_failed = true;
      event.error = e.what();
      log_warn() << "[autopilot] post-cycle gc failed: " << e.what();
    }
  }

  // Whatever the outcome, re-anchor drift detection on the traffic the
  // (possibly new) serving model produces from here on.
  service_.clear_recent_predictions();

  std::lock_guard<std::mutex> lock(mu_);
  monitor_.rebaseline();
  cycle_in_flight_ = false;
  const bool succeeded = !event.cycle_failed;
  if (succeeded) ++cycles_;
  have_last_cycle_ = true;
  last_cycle_end_ = std::chrono::steady_clock::now();
  history_.push_back(std::move(event));
  return succeeded;
}

std::uint64_t ContinualScheduler::polls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return polls_;
}

std::uint64_t ContinualScheduler::cycles_run() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cycles_;
}

serve::DriftReport ContinualScheduler::last_report() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_report_;
}

std::vector<SchedulerEvent> ContinualScheduler::history() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_;
}

}  // namespace tcm::registry
