#include "registry/model_registry.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <set>
#include <sstream>
#include <stdexcept>

#include "nn/serialize.h"
#include "support/failpoint.h"
#include "support/log.h"
#include "support/retry.h"

namespace fs = std::filesystem;

namespace tcm::registry {
namespace {

constexpr const char* kManifestHeader = "tcm-manifest";
constexpr const char* kActiveHeader = "tcm-active";
constexpr int kFormatVersion = 1;
constexpr const char* kWeightsFile = "weights.bin";
constexpr const char* kManifestFile = "manifest.txt";
constexpr const char* kActiveFile = "ACTIVE";
constexpr const char* kStagingPrefix = ".staging-";
constexpr const char* kTrashPrefix = ".gc-";

std::string version_name(int version) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "v%04d", version);
  return buf;
}

// Parses "v0042" -> 42; returns 0 for anything else.
int parse_version_name(const std::string& name) {
  if (name.size() < 2 || name[0] != 'v') return 0;
  int v = 0;
  for (std::size_t i = 1; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    v = v * 10 + (name[i] - '0');
  }
  return v;
}

// Retry budget for the storage primitives below: a transient blip (EINTR,
// flaky disk, NFS hiccup) must not fail a promote or a continual cycle.
// Every wrapped operation is idempotent, so re-running converges. Backoffs
// stay small: the registry mutex is held across these ops.
support::RetryOptions io_retry_options(const char* op) {
  support::RetryOptions options;
  options.max_attempts = 3;
  options.initial_backoff = std::chrono::milliseconds(5);
  options.max_backoff = std::chrono::milliseconds(100);
  options.on_retry = [op](int attempt, const std::string& why) {
    log_warn() << "ModelRegistry: retrying " << op << " after attempt " << attempt << ": "
               << why;
  };
  return options;
}

// fsync a file (or, with O_DIRECTORY, a directory — required to persist the
// rename that published an entry inside it). POSIX-only, like rename(2)
// atomicity this module already rests on.
void fsync_path(const fs::path& path, bool directory) {
  support::with_retries(io_retry_options("fsync"), [&] {
    TCM_FAILPOINT("registry.fsync");
    const int fd = ::open(path.c_str(), directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY);
    if (fd < 0)
      throw std::runtime_error("ModelRegistry: cannot open for fsync: " + path.string());
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) throw std::runtime_error("ModelRegistry: fsync failed on " + path.string());
  });
}

// Crash- and power-loss-safe file write: stage under a temporary name in the
// same directory, fsync the staged data, atomically rename into place, then
// fsync the directory so the rename itself is durable. After a power cut the
// path holds either the old content or the new content, never a torn file.
void atomic_write_file(const fs::path& path, const std::string& content) {
  // Retried as a unit: the staged write restarts from scratch, so a retry
  // after any partial failure converges to the same published content.
  support::with_retries(io_retry_options("atomic write"), [&] {
    const fs::path tmp = path.string() + ".tmp";
    {
      std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
      if (!f) throw std::runtime_error("ModelRegistry: cannot write " + tmp.string());
      f.write(content.data(), static_cast<std::streamsize>(content.size()));
      f.flush();
      if (!f) throw std::runtime_error("ModelRegistry: short write to " + tmp.string());
    }
    fsync_path(tmp, /*directory=*/false);
    TCM_FAILPOINT("registry.rename");
    fs::rename(tmp, path);
    fsync_path(path.parent_path(), /*directory=*/true);
  });
}

std::string read_file(const fs::path& path) {
  return support::with_retries(io_retry_options("read"), [&] {
    std::ifstream f(path, std::ios::binary);
    if (!f) throw std::runtime_error("ModelRegistry: cannot read " + path.string());
    std::ostringstream out;
    out << f.rdbuf();
    return out.str();
  });
}

void write_double(std::ostringstream& out, const char* key, double v) {
  out << key << ' ' << std::setprecision(17) << v << '\n';
}

void write_int_list(std::ostringstream& out, const char* key, const std::vector<int>& xs) {
  out << key;
  for (int x : xs) out << ' ' << x;
  out << '\n';
}

}  // namespace

std::uint64_t feature_config_hash(const model::FeatureConfig& config) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ULL;  // FNV prime
    }
  };
  mix(static_cast<std::uint64_t>(config.max_depth));
  mix(static_cast<std::uint64_t>(config.max_accesses));
  mix(static_cast<std::uint64_t>(config.max_rank));
  mix(config.log_transform ? 1 : 0);
  mix(config.include_par_vec_tags ? 1 : 0);
  mix(static_cast<std::uint64_t>(config.schema_version));
  return h;
}

std::string manifest_to_string(const ModelManifest& m) {
  std::ostringstream out;
  out << kManifestHeader << ' ' << kFormatVersion << '\n';
  out << "version " << m.version << '\n';
  out << "model " << m.model_kind << '\n';
  out << "parent " << m.parent_version << '\n';
  out << "created " << m.created_unix << '\n';
  out << "feature_hash " << m.feature_hash << '\n';
  out << "features.max_depth " << m.config.features.max_depth << '\n';
  out << "features.max_accesses " << m.config.features.max_accesses << '\n';
  out << "features.max_rank " << m.config.features.max_rank << '\n';
  out << "features.log_transform " << (m.config.features.log_transform ? 1 : 0) << '\n';
  out << "features.include_par_vec_tags " << (m.config.features.include_par_vec_tags ? 1 : 0)
      << '\n';
  out << "features.schema_version " << m.config.features.schema_version << '\n';
  write_int_list(out, "embed_hidden", m.config.embed_hidden);
  out << "embed_size " << m.config.embed_size << '\n';
  write_int_list(out, "merge_hidden", m.config.merge_hidden);
  write_int_list(out, "regress_hidden", m.config.regress_hidden);
  write_double(out, "dropout", static_cast<double>(m.config.dropout));
  out << "ff_max_comps " << m.config.ff_max_comps << '\n';
  write_double(out, "exp_head_limit", static_cast<double>(m.config.exp_head_limit));
  write_double(out, "metrics.mape", m.metrics.mape);
  write_double(out, "metrics.pearson", m.metrics.pearson);
  write_double(out, "metrics.spearman", m.metrics.spearman);
  write_double(out, "metrics.r2", m.metrics.r2);
  write_double(out, "metrics.mse", m.metrics.mse);
  out << "metrics.n " << m.metrics.n << '\n';
  out << "provenance " << m.provenance << '\n';
  return out.str();
}

ModelManifest manifest_from_string(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line))
    throw std::runtime_error("ModelRegistry: empty manifest");
  {
    std::istringstream header(line);
    std::string magic;
    int fmt = 0;
    header >> magic >> fmt;
    if (magic != kManifestHeader)
      throw std::runtime_error("ModelRegistry: bad manifest header '" + line + "'");
    if (fmt != kFormatVersion)
      throw std::runtime_error("ModelRegistry: unsupported manifest format " +
                               std::to_string(fmt));
  }
  ModelManifest m;
  // Manifests written before the LOOPer-class feature revision carry no
  // schema_version key: they describe v1 feature vectors. (Their stored
  // feature_hash was also computed without this field, so recomputing the
  // hash from the parsed config flags them as unservable either way.)
  m.config.features.schema_version = 1;
  const auto read_int_list = [](std::istringstream& rest) {
    std::vector<int> xs;
    int x;
    while (rest >> x) xs.push_back(x);
    return xs;
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream rest(line);
    std::string key;
    rest >> key;
    int b = 0;
    // List keys read values until extraction fails and provenance may be
    // empty, so only scalar keys get the post-extraction failure check.
    bool scalar = true;
    if (key == "version") rest >> m.version;
    else if (key == "model") rest >> m.model_kind;
    else if (key == "parent") rest >> m.parent_version;
    else if (key == "created") rest >> m.created_unix;
    else if (key == "feature_hash") rest >> m.feature_hash;
    else if (key == "features.max_depth") rest >> m.config.features.max_depth;
    else if (key == "features.max_accesses") rest >> m.config.features.max_accesses;
    else if (key == "features.max_rank") rest >> m.config.features.max_rank;
    else if (key == "features.log_transform") { rest >> b; m.config.features.log_transform = b; }
    else if (key == "features.include_par_vec_tags") {
      rest >> b;
      m.config.features.include_par_vec_tags = b;
    }
    else if (key == "features.schema_version") rest >> m.config.features.schema_version;
    else if (key == "embed_hidden") { m.config.embed_hidden = read_int_list(rest); scalar = false; }
    else if (key == "embed_size") rest >> m.config.embed_size;
    else if (key == "merge_hidden") { m.config.merge_hidden = read_int_list(rest); scalar = false; }
    else if (key == "regress_hidden") {
      m.config.regress_hidden = read_int_list(rest);
      scalar = false;
    }
    else if (key == "dropout") rest >> m.config.dropout;
    else if (key == "ff_max_comps") rest >> m.config.ff_max_comps;
    else if (key == "exp_head_limit") rest >> m.config.exp_head_limit;
    else if (key == "metrics.mape") rest >> m.metrics.mape;
    else if (key == "metrics.pearson") rest >> m.metrics.pearson;
    else if (key == "metrics.spearman") rest >> m.metrics.spearman;
    else if (key == "metrics.r2") rest >> m.metrics.r2;
    else if (key == "metrics.mse") rest >> m.metrics.mse;
    else if (key == "metrics.n") rest >> m.metrics.n;
    else if (key == "provenance") {
      std::getline(rest >> std::ws, m.provenance);
      scalar = false;
    } else {
      scalar = false;  // unknown keys are skipped so newer writers stay readable
    }
    if (scalar && rest.fail())
      throw std::runtime_error("ModelRegistry: malformed manifest line '" + line + "'");
  }
  if (m.version <= 0 || m.model_kind.empty())
    throw std::runtime_error("ModelRegistry: manifest missing version or model kind");
  return m;
}

std::unique_ptr<model::SpeedupPredictor> make_model(const ModelManifest& m) {
  // The Rng only drives the Glorot init that load_parameters overwrites.
  Rng rng(0);
  if (m.model_kind == "recursive-lstm")
    return std::make_unique<model::CostModel>(m.config, rng);
  if (m.model_kind == "lstm-only")
    return std::make_unique<model::LstmOnlyModel>(m.config, rng);
  if (m.model_kind == "feedforward-only")
    return std::make_unique<model::FeedForwardModel>(m.config, rng);
  throw std::runtime_error("ModelRegistry: unknown model kind '" + m.model_kind + "'");
}

ModelRegistry::ModelRegistry(std::string root) : root_(std::move(root)) {
  fs::create_directories(root_);
  std::lock_guard<std::mutex> lock(mu_);
  clean_stale_locked();
}

// Sweeps the debris a writer killed mid-operation can leave at the root:
// `*.tmp` staging files (atomic_write_file), `.staging-*` version directories
// (register_version) and `.gc-*` trash directories (gc). All of them are
// pre-publish or post-unpublish state — published versions are never named
// like this — so removing them cannot lose committed data.
void ModelRegistry::clean_stale_locked() {
  std::vector<fs::path> stale;
  for (const auto& entry : fs::directory_iterator(root_)) {
    const std::string name = entry.path().filename().string();
    const bool tmp_file = name.size() > 4 && name.ends_with(".tmp");
    const bool staging = name.rfind(kStagingPrefix, 0) == 0;
    const bool trash = name.rfind(kTrashPrefix, 0) == 0;
    if (tmp_file || staging || trash) stale.push_back(entry.path());
  }
  for (const fs::path& p : stale) fs::remove_all(p);
  if (!stale.empty()) fsync_path(root_, /*directory=*/true);
}

std::string ModelRegistry::version_dir(int version) const {
  return (fs::path(root_) / version_name(version)).string();
}

std::string ModelRegistry::weights_path(int version) const {
  return (fs::path(version_dir(version)) / kWeightsFile).string();
}

std::string ModelRegistry::manifest_path(int version) const {
  return (fs::path(version_dir(version)) / kManifestFile).string();
}

int ModelRegistry::next_version_locked() const {
  int highest = 0;
  for (const auto& entry : fs::directory_iterator(root_))
    highest = std::max(highest, parse_version_name(entry.path().filename().string()));
  return highest + 1;
}

int ModelRegistry::register_version(model::SpeedupPredictor& model, ModelManifest manifest) {
  std::lock_guard<std::mutex> lock(mu_);
  const int version = next_version_locked();
  manifest.version = version;
  if (manifest.model_kind.empty()) manifest.model_kind = model.name();
  manifest.feature_hash = feature_config_hash(manifest.config.features);
  manifest.created_unix = static_cast<std::int64_t>(std::time(nullptr));

  // Stage the whole version directory, then publish it with one rename: a
  // crash in between leaves only a .staging dir that opening the registry
  // sweeps, never a half-written vNNNN. The weights file, the staged
  // directory and the root are fsynced so the publish survives power loss.
  const fs::path staging = fs::path(root_) / (kStagingPrefix + version_name(version));
  fs::remove_all(staging);
  fs::create_directories(staging);
  if (!nn::save_parameters(model.module(), (staging / kWeightsFile).string()))
    throw std::runtime_error("ModelRegistry: cannot write weights under " + staging.string());
  fsync_path(staging / kWeightsFile, /*directory=*/false);
  atomic_write_file(staging / kManifestFile, manifest_to_string(manifest));
  // Idempotent publish unit: a retry after the rename already happened (e.g.
  // the directory fsync failed transiently) only re-runs the fsync.
  support::with_retries(io_retry_options("publish version"), [&] {
    TCM_FAILPOINT("registry.rename");
    if (fs::exists(staging)) fs::rename(staging, version_dir(version));
    fsync_path(root_, /*directory=*/true);
  });
  return version;
}

ModelManifest ModelRegistry::manifest(int version) const {
  const std::string path = manifest_path(version);
  if (!fs::exists(path))
    throw std::runtime_error("ModelRegistry: no such version " + std::to_string(version));
  ModelManifest m = manifest_from_string(read_file(path));
  if (m.version != version)
    throw std::runtime_error("ModelRegistry: manifest of " + version_name(version) +
                             " claims version " + std::to_string(m.version));
  return m;
}

std::unique_ptr<model::SpeedupPredictor> ModelRegistry::load(int version) const {
  TCM_FAILPOINT("checkpoint.load");
  const ModelManifest m = manifest(version);
  const std::uint64_t recomputed = feature_config_hash(m.config.features);
  if (recomputed != m.feature_hash)
    throw std::runtime_error(
        "ModelRegistry: feature-config hash mismatch in manifest of " + version_name(version) +
        " (manifest " + std::to_string(m.feature_hash) + " vs current featurization " +
        std::to_string(recomputed) +
        "; checkpoint was trained on a different feature schema and is not servable)");
  std::unique_ptr<model::SpeedupPredictor> model = make_model(m);
  if (!nn::load_parameters(model->module(), weights_path(version)))
    throw std::runtime_error("ModelRegistry: cannot open weights of " + version_name(version));
  return model;
}

std::unique_ptr<model::SpeedupPredictor> ModelRegistry::load_active() const {
  const int version = active_version();
  if (version == 0) throw std::runtime_error("ModelRegistry: no active version");
  return load(version);
}

std::vector<int> ModelRegistry::versions_locked() const {
  std::vector<int> versions;
  for (const auto& entry : fs::directory_iterator(root_)) {
    const int v = parse_version_name(entry.path().filename().string());
    if (v > 0 && fs::exists(manifest_path(v))) versions.push_back(v);
  }
  std::sort(versions.begin(), versions.end());
  return versions;
}

std::vector<ModelManifest> ModelRegistry::list() const {
  std::vector<int> versions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    versions = versions_locked();
  }
  std::vector<ModelManifest> manifests;
  manifests.reserve(versions.size());
  for (int v : versions) manifests.push_back(manifest(v));
  return manifests;
}

std::pair<int, int> ModelRegistry::read_active_locked() const {
  const fs::path path = fs::path(root_) / kActiveFile;
  if (!fs::exists(path)) return {0, 0};
  std::istringstream in(read_file(path));
  std::string magic;
  int fmt = 0, active = 0, previous = 0;
  std::string key;
  in >> magic >> fmt;
  if (magic != kActiveHeader || fmt != kFormatVersion)
    throw std::runtime_error("ModelRegistry: corrupt ACTIVE file");
  while (in >> key) {
    if (key == "active") in >> active;
    else if (key == "previous") in >> previous;
  }
  return {active, previous};
}

void ModelRegistry::write_active_locked(int active, int previous) {
  // Chaos site: a crash action dies here, mid-promote — after the target
  // version is fully published but before (or while) the ACTIVE pointer
  // moves. Recovery is the registry's normal open path: the sweep removes
  // any .tmp debris and ACTIVE still names a complete version.
  TCM_FAILPOINT("registry.promote");
  std::ostringstream out;
  out << kActiveHeader << ' ' << kFormatVersion << '\n';
  out << "active " << active << '\n';
  out << "previous " << previous << '\n';
  atomic_write_file(fs::path(root_) / kActiveFile, out.str());
}

void ModelRegistry::promote(int version) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!fs::exists(manifest_path(version)))
    throw std::runtime_error("ModelRegistry: cannot promote unknown version " +
                             std::to_string(version));
  const auto [active, previous] = read_active_locked();
  (void)previous;
  if (active == version) return;  // already active; keep the rollback target
  write_active_locked(version, active);
}

int ModelRegistry::rollback() {
  std::lock_guard<std::mutex> lock(mu_);
  const auto [active, previous] = read_active_locked();
  if (previous == 0)
    throw std::runtime_error("ModelRegistry: no previous version to roll back to");
  write_active_locked(previous, active);
  return previous;
}

GcReport ModelRegistry::gc(const GcPolicy& policy) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::vector<int> versions = versions_locked();
  GcReport report;
  if (versions.empty()) return report;

  std::set<int> protected_set;
  // Newest keep_last ids: the post-mortem window.
  const int keep = std::max(policy.keep_last, 0);
  for (std::size_t i = versions.size() > static_cast<std::size_t>(keep)
                           ? versions.size() - static_cast<std::size_t>(keep)
                           : 0;
       i < versions.size(); ++i)
    protected_set.insert(versions[i]);
  // ACTIVE, the rollback target, and their fine-tune ancestry. The chain walk
  // stops at versions already collected earlier (their manifests are gone).
  const auto [active, previous] = read_active_locked();
  for (int head : {active, previous}) {
    int v = head;
    while (v > 0 && fs::exists(manifest_path(v)) && protected_set.insert(v).second)
      v = manifest(v).parent_version;
  }

  // Unpublish expired versions with an atomic rename into a `.gc-` trash
  // name, fsync the root so the disappearance is durable, then delete the
  // trash. A crash mid-delete leaves only trash that the next open sweeps.
  std::vector<fs::path> trash;
  for (int v : versions) {
    if (protected_set.count(v)) {
      report.kept.push_back(v);
      continue;
    }
    const fs::path dst = fs::path(root_) / (kTrashPrefix + version_name(v));
    fs::remove_all(dst);
    fs::rename(version_dir(v), dst);
    trash.push_back(dst);
    report.removed.push_back(v);
  }
  if (!trash.empty()) {
    fsync_path(root_, /*directory=*/true);
    for (const fs::path& p : trash) fs::remove_all(p);
  }
  return report;
}

int ModelRegistry::active_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return read_active_locked().first;
}

int ModelRegistry::previous_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return read_active_locked().second;
}

}  // namespace tcm::registry
