// Continual-learning loop: keep the serving cost model fresh without ever
// stopping the service.
//
// LOOPer (Merouani et al., 2024) and MetaTune (Ryu & Sung, 2021) both show
// learned cost models improve when continually retrained on newly measured
// schedules. ContinualTrainer is the driver that closes that loop on top of
// ModelRegistry and serve::PredictionService:
//
//   1. generate   — fresh datagen samples (new programs x schedules, measured
//                   on the simulated machine), split into fine-tune/holdout;
//                   when a measured-feedback buffer is wired in, a sample of
//                   schedules the service actually served is drained,
//                   re-executed on the simulator for real measured speedups,
//                   and mixed into the fine-tune set (configurable ratio) —
//                   cycles train on what serving saw, not only on synthetic
//                   draws;
//   2. fine-tune  — a registry-loaded *copy* of the incumbent (the serving
//                   snapshot is never trained) with model::train_model;
//   3. register   — the candidate checkpoint, parented to the incumbent;
//   4. canary     — reload the candidate through the registry (the exact
//                   artifact that would serve) and shadow it on live traffic,
//                   reading disagreement stats from ServeStats;
//   5. decide     — promote (registry ACTIVE pointer + zero-downtime
//                   hot-swap of the service) or reject on the metric gate.
//
// The gate is two-sided by design: the holdout metrics decide whether the
// candidate is *better* (offline quality), while the shadow stats check the
// *serving path* — the registered artifact must load, run on real traffic
// shapes without errors, and rank candidates consistently; a blown-up
// checkpoint fails here even when its offline numbers look fine.
#pragma once

#include <cstdint>
#include <string>

#include <memory>

#include "datagen/dataset_builder.h"
#include "model/train.h"
#include "registry/model_registry.h"
#include "serve/feedback_buffer.h"
#include "serve/prediction_service.h"

namespace tcm::registry {

struct ContinualTrainerOptions {
  // Fresh data generated per cycle. `data.features` must match the serving
  // featurization (checked at construction).
  datagen::DatasetBuildOptions data;
  model::TrainOptions train;   // fine-tuning recipe
  double train_frac = 0.75;    // rest of the fresh data is the holdout gate set

  // Promotion gate.
  double max_mape_regression = 0.0;  // holdout: cand_mape <= inc_mape * (1 + x)
  double min_shadow_spearman = 0.5;  // serving sanity: rank agreement floor
  double shadow_fraction = 1.0;      // fraction of live batches the canary scores

  // Measured feedback: when set, each cycle drains this buffer (fed by the
  // service's raw submit path), re-executes the drained schedules on the
  // simulator and mixes the measured samples into the fine-tune set. The
  // holdout gate stays purely on fresh synthetic data so the promote
  // decision is comparable across cycles.
  std::shared_ptr<serve::FeedbackBuffer> feedback;
  // Cap on the measured share of the fine-tune set (0.25 = at most one
  // measured sample per three synthetic ones).
  double feedback_fraction = 0.25;
  // Hard cap on re-executions per cycle (simulator time budget).
  int max_feedback_samples = 256;

  std::uint64_t seed = 2024;  // varied per cycle so data never repeats
};

// One cycle's audit trail.
struct CycleReport {
  int incumbent_version = 0;
  int candidate_version = 0;
  bool promoted = false;
  model::EvalMetrics incumbent_holdout;  // incumbent on the fresh holdout
  model::EvalMetrics candidate_holdout;  // candidate on the same holdout
  // Measured-feedback mixing: served schedules re-executed into the
  // fine-tune set, and drained samples that failed re-execution or
  // featurization (skipped, never fatal).
  std::size_t feedback_samples = 0;
  std::size_t feedback_dropped = 0;
  std::uint64_t shadow_requests = 0;
  std::uint64_t shadow_failures = 0;
  double shadow_mape = 0;      // candidate vs incumbent on shared live traffic
  double shadow_spearman = 0;
  std::string decision;        // human-readable gate outcome
};

class ContinualTrainer {
 public:
  // The registry must have an active version (the incumbent) and the service
  // must be serving with a featurization whose hash matches the incumbent
  // manifest's; throws std::runtime_error otherwise.
  ContinualTrainer(ModelRegistry& registry, serve::PredictionService& service,
                   ContinualTrainerOptions options);

  // Runs one full generate -> fine-tune -> register -> shadow -> decide
  // cycle. On promotion the registry's ACTIVE pointer moves to the candidate
  // and the service is hot-swapped to it; otherwise the incumbent keeps
  // serving and the candidate remains in the registry as a rejected version.
  CycleReport run_cycle();

  // Re-promotes the registry's previous version and hot-swaps the service
  // back to it; returns the restored version. The escape hatch when a
  // promoted model misbehaves in full production.
  int rollback();

 private:
  ModelRegistry& registry_;
  serve::PredictionService& service_;
  ContinualTrainerOptions options_;
  std::uint64_t cycle_ = 0;
};

}  // namespace tcm::registry
