#include "registry/continual_trainer.h"

#include <algorithm>
#include <future>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "model/dataset.h"
#include "obs/event_log.h"
#include "obs/trace.h"
#include "sim/executor.h"
#include "support/log.h"

namespace tcm::registry {
namespace {

// Program ids for measured-feedback samples, far above any datagen id so the
// mixed fine-tune set keeps per-program batching intact without collisions.
constexpr int kFeedbackProgramIdBase = 1 << 20;

// Replays every holdout sample through the service as live traffic so the
// shadow candidate scores real request shapes. Featurizations are already
// computed in the dataset; failures surface as exceptions on the futures
// and are deliberately fatal here — the canary must not paper over them.
void replay_traffic(serve::PredictionService& service, const model::Dataset& ds) {
  std::vector<std::future<serve::Prediction>> futures;
  futures.reserve(ds.size());
  for (const model::DataPoint& point : ds.points)
    futures.push_back(
        service.submit(std::make_shared<const model::FeaturizedProgram>(point.feats)));
  service.flush();
  for (auto& f : futures) f.get();
  // Client promises resolve before shadow scoring; quiesce so the canary
  // stats cover every replayed batch before the gate reads them.
  service.quiesce();
}

}  // namespace

ContinualTrainer::ContinualTrainer(ModelRegistry& registry, serve::PredictionService& service,
                                   ContinualTrainerOptions options)
    : registry_(registry), service_(service), options_(std::move(options)) {
  const int incumbent = registry_.active_version();
  if (incumbent == 0)
    throw std::runtime_error("ContinualTrainer: registry has no active version to fine-tune");
  const std::uint64_t incumbent_hash =
      feature_config_hash(registry_.manifest(incumbent).config.features);
  if (incumbent_hash != feature_config_hash(service_.options().features))
    throw std::runtime_error(
        "ContinualTrainer: service featurization does not match the incumbent manifest");
  if (incumbent_hash != feature_config_hash(options_.data.features))
    throw std::runtime_error(
        "ContinualTrainer: datagen featurization does not match the incumbent manifest");
}

CycleReport ContinualTrainer::run_cycle() {
  CycleReport report;
  report.incumbent_version = registry_.active_version();
  const ModelManifest incumbent_manifest = registry_.manifest(report.incumbent_version);

  // Cycles are rare and expensive, so trace every one (when tracing is on
  // at all) rather than subjecting them to the request sampling rate. A
  // caller that already runs under a trace (the scheduler stamps one per
  // trigger) keeps its id so drift events, cycle spans and promote events
  // cross-reference.
  const std::uint64_t inherited_trace = obs::current_trace_id();
  const std::uint64_t cycle_trace =
      inherited_trace != 0 ? inherited_trace : obs::Tracer::instance().force_request();
  obs::TraceContext trace_ctx(cycle_trace);
  obs::ScopedSpan cycle_span("cycle.run", cycle_trace);

  // --- 1. Fresh data ------------------------------------------------------
  datagen::DatasetBuildOptions data = options_.data;
  data.seed = options_.seed + 0x9e3779b97f4a7c15ULL * ++cycle_;
  if (cycle_trace != 0)
    obs::Tracer::instance().set_label(cycle_trace, "cycle-" + std::to_string(cycle_));
  const auto [fresh, split] = [&] {
    TCM_TRACE_SPAN("cycle.datagen");
    model::Dataset ds = datagen::build_dataset(data);
    model::DatasetSplit sp =
        model::split_by_program(ds, options_.train_frac, 1.0 - options_.train_frac, data.seed);
    return std::make_pair(std::move(ds), std::move(sp));
  }();
  log_debug() << "[cycle " << cycle_ << "] fresh data: " << fresh.size() << " samples ("
             << split.train.size() << " fine-tune / " << split.validation.size() << " holdout)";

  // --- 1b. Measured feedback: re-execute a sample of served schedules -----
  // The drained (program, schedule) pairs are what clients actually asked
  // the service to score; re-executing them on the simulator turns the
  // service's own traffic into labeled fine-tune data. The holdout is left
  // untouched: the gate compares incumbent and candidate on the same fresh
  // synthetic distribution every cycle.
  model::Dataset finetune = split.train;
  if (options_.feedback) {
    std::vector<serve::ServedSample> served = options_.feedback->drain();
    const double f = std::clamp(options_.feedback_fraction, 0.0, 0.95);
    const auto ratio_cap = static_cast<std::size_t>(
        f / (1.0 - f) * static_cast<double>(split.train.size()));
    const std::size_t cap =
        std::min<std::size_t>({served.size(),
                               static_cast<std::size_t>(std::max(options_.max_feedback_samples, 0)),
                               ratio_cap});
    sim::Executor executor(sim::MachineModel(options_.data.machine), options_.data.executor,
                           data.seed ^ 0xfeedbacULL);
    for (std::size_t i = 0; i < cap; ++i) {
      const serve::ServedSample& sample = served[i];
      try {
        const double speedup = executor.measure_speedup(sample.program, sample.schedule);
        auto feats = model::featurize(sample.program, sample.schedule, options_.data.features);
        if (!feats) {
          ++report.feedback_dropped;
          continue;
        }
        model::DataPoint point;
        point.program_id = kFeedbackProgramIdBase + static_cast<int>(i);
        point.feats = std::move(*feats);
        point.speedup = speedup;
        finetune.points.push_back(std::move(point));
        ++report.feedback_samples;
      } catch (const std::exception&) {
        ++report.feedback_dropped;  // illegal schedule or simulator failure
      }
    }
    report.feedback_dropped += served.size() - cap;  // over budget, not re-executed
    if (!served.empty())
      log_debug() << "[cycle " << cycle_ << "] measured feedback: " << served.size()
                 << " served samples drained, " << report.feedback_samples << " mixed in, "
                 << report.feedback_dropped << " dropped";
  }

  // --- 2. Fine-tune a registry-loaded copy of the incumbent ---------------
  // The serving snapshot is never trained; both sides here are fresh loads.
  std::unique_ptr<model::SpeedupPredictor> incumbent = registry_.load(report.incumbent_version);
  report.incumbent_holdout = model::evaluate(*incumbent, split.validation);
  std::unique_ptr<model::SpeedupPredictor> candidate = registry_.load(report.incumbent_version);
  {
    TCM_TRACE_SPAN("cycle.finetune");
    model::train_model(*candidate, finetune, &split.validation, options_.train);
  }
  report.candidate_holdout = model::evaluate(*candidate, split.validation);

  // --- 3. Register the candidate ------------------------------------------
  ModelManifest manifest;
  manifest.config = incumbent_manifest.config;
  manifest.parent_version = report.incumbent_version;
  manifest.metrics = report.candidate_holdout;
  manifest.provenance = "continual cycle " + std::to_string(cycle_) + ": fine-tuned v" +
                        std::to_string(report.incumbent_version) + " on " +
                        std::to_string(split.train.size()) + " fresh + " +
                        std::to_string(report.feedback_samples) + " measured-feedback samples (" +
                        std::to_string(options_.train.epochs) + " epochs)";
  {
    TCM_TRACE_SPAN("cycle.register");
    report.candidate_version = registry_.register_version(*candidate, manifest);
  }

  // --- 4. Canary: shadow the *registered artifact* on live traffic --------
  std::shared_ptr<model::SpeedupPredictor> canary = registry_.load(report.candidate_version);
  serve::ServeStats stats;
  {
    TCM_TRACE_SPAN("cycle.canary");
    service_.quiesce();  // batches pinned before set_shadow must not leak into its stats
    service_.set_shadow(canary, report.candidate_version, options_.shadow_fraction);
    replay_traffic(service_, split.validation);
    stats = service_.stats();
    service_.clear_shadow();
  }
  report.shadow_requests = stats.shadow_requests;
  report.shadow_failures = stats.shadow_failures;
  report.shadow_mape = stats.shadow_mape;
  report.shadow_spearman = stats.shadow_spearman;

  // --- 5. Decide -----------------------------------------------------------
  const double mape_ceiling =
      report.incumbent_holdout.mape * (1.0 + options_.max_mape_regression);
  if (stats.shadow_failures > 0) {
    report.decision = "rejected: shadow forward errors on live traffic";
  } else if (stats.shadow_requests == 0) {
    report.decision = "rejected: canary scored no traffic";
  } else if (report.candidate_holdout.mape > mape_ceiling) {
    report.decision = "rejected: holdout MAPE " + std::to_string(report.candidate_holdout.mape) +
                      " above ceiling " + std::to_string(mape_ceiling);
  } else if (report.shadow_spearman < options_.min_shadow_spearman) {
    report.decision = "rejected: shadow rank agreement " +
                      std::to_string(report.shadow_spearman) + " below floor " +
                      std::to_string(options_.min_shadow_spearman);
  } else {
    TCM_TRACE_SPAN("cycle.promote");
    registry_.promote(report.candidate_version);
    service_.swap_model(std::move(canary), report.candidate_version);
    obs::EventLog::instance().emit(
        "promote", "info",
        "from=v" + std::to_string(report.incumbent_version) + " to=v" +
            std::to_string(report.candidate_version) + " by=cycle",
        cycle_trace);
    report.promoted = true;
    report.decision = "promoted: holdout MAPE " + std::to_string(report.candidate_holdout.mape) +
                      " vs incumbent " + std::to_string(report.incumbent_holdout.mape) +
                      ", shadow spearman " + std::to_string(report.shadow_spearman);
  }
  log_debug() << "[cycle " << cycle_ << "] v" << report.incumbent_version << " -> v"
             << report.candidate_version << ": " << report.decision;
  return report;
}

int ContinualTrainer::rollback() {
  const int from = registry_.active_version();
  const int restored = registry_.rollback();
  service_.swap_model(registry_.load(restored), restored);
  obs::EventLog::instance().emit(
      "rollback", "warn", "from=v" + std::to_string(from) + " to=v" + std::to_string(restored),
      obs::current_trace_id());
  return restored;
}

}  // namespace tcm::registry
