// Continual-learning autopilot: drift signals in, retraining cycles out,
// no human in the loop.
//
// ContinualTrainer (continual_trainer.h) runs one cycle when *asked*; the
// scheduler decides *when to ask*. A background thread polls the live
// service on a fixed interval, feeds each ServeStats snapshot plus the
// recent-prediction window into a serve::DriftMonitor, and when the monitor
// triggers — distribution shift (PSI/KS) over predicted speedups, elevated
// failure rate, or standing-shadow disagreement — it runs one full
// generate -> fine-tune -> register -> shadow -> decide cycle, then applies
// the registry retention policy (GcPolicy) so rejected candidates expire
// instead of accumulating forever.
//
// Guard rails, because an autopilot that retrains in a tight loop is worse
// than no autopilot:
//   - the monitor's own cooldown dedupes a sustained shift into one trigger;
//   - `cycle_cooldown` lower-bounds the wall-clock gap between cycles
//     (training is expensive; drift detection is not);
//   - `max_cycles` caps the total retraining budget of one scheduler run;
//   - after every cycle the monitor is re-baselined and the service's
//     prediction window cleared, so the *new* model's traffic becomes the
//     next reference — a promoted model never trips the monitor merely by
//     predicting differently than its predecessor;
//   - a cycle that throws (datagen, training or registry failure) is
//     recorded and swallowed: the serving path must never die because the
//     retraining path did.
//
// All public methods are thread-safe. poll_once() exposes one synchronous
// poll step for tests and for callers that want to own the cadence.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/watchdog.h"
#include "registry/continual_trainer.h"
#include "registry/model_registry.h"
#include "serve/drift_monitor.h"
#include "serve/prediction_service.h"
#include "support/circuit_breaker.h"

namespace tcm::registry {

struct ContinualSchedulerOptions {
  serve::DriftMonitorOptions drift;
  std::chrono::milliseconds poll_interval{250};
  // Minimum wall-clock gap between two cycles (on top of the monitor's
  // observation-counted cooldown). 0 = no extra gap.
  std::chrono::milliseconds cycle_cooldown{0};
  // Total cycles this scheduler may run; 0 = unbounded.
  int max_cycles = 0;
  // Retention policy applied after every cycle (gc_after_cycle = false
  // leaves collection to explicit ModelRegistry::gc() calls).
  GcPolicy gc;
  bool gc_after_cycle = true;
  // Shared metrics registry for the autopilot time series (drift signal
  // gauges, poll/trigger/cycle counters); null = not exported.
  std::shared_ptr<obs::MetricsRegistry> metrics;
  // Watchdog the poll thread registers a (non-critical) heartbeat with;
  // null = no liveness tracking. The heartbeat refreshes around the trainer
  // call, so a multi-minute cycle reads as at most `degraded`, never 503.
  std::shared_ptr<obs::Watchdog> watchdog;
  std::chrono::milliseconds poller_stall_after{60000};
  // Circuit breaker over retraining cycles: `failure_threshold` consecutive
  // failed cycles open it (triggers are dropped instead of burning training
  // compute against a persistently failing dependency); after
  // `open_cooldown` exactly one probe cycle is admitted, and its outcome
  // closes or re-opens the breaker. /healthz reports "degraded" while open.
  support::CircuitBreaker::Options breaker;
};

// The autopilot's registry-owned metric families. register_autopilot_metrics
// get-or-creates all of them (zero-valued) so /metrics serves the full
// tcm_drift_*/tcm_autopilot_* surface from the first scrape, whether or not
// a scheduler is running; the scheduler calls it too and receives the same
// instruments to update.
struct AutopilotMetrics {
  obs::Gauge* signal_psi = nullptr;             // tcm_drift_signal{signal=...}
  obs::Gauge* signal_ks = nullptr;
  obs::Gauge* signal_failure_rate = nullptr;
  obs::Gauge* signal_shadow_mape = nullptr;
  obs::Gauge* signal_shadow_spearman = nullptr;
  obs::Gauge* threshold_psi = nullptr;          // tcm_drift_threshold{signal=...}
  obs::Gauge* threshold_ks = nullptr;
  obs::Gauge* threshold_failure_rate = nullptr;
  obs::Gauge* threshold_shadow_mape = nullptr;
  obs::Gauge* threshold_shadow_spearman = nullptr;
  obs::Gauge* reference_size = nullptr;         // tcm_drift_reference_size
  obs::Gauge* window_size = nullptr;            // tcm_drift_window_size
  obs::Gauge* drifted = nullptr;                // tcm_drift_drifted
  obs::Counter* polls = nullptr;                // tcm_autopilot_polls_total
  obs::Counter* triggers = nullptr;             // tcm_autopilot_triggers_total
  obs::Counter* cycles_promoted = nullptr;      // tcm_autopilot_cycles_total{outcome=...}
  obs::Counter* cycles_rejected = nullptr;
  obs::Counter* cycle_failures = nullptr;       // tcm_autopilot_cycle_failures_total
  obs::Counter* gc_removed = nullptr;           // tcm_autopilot_gc_removed_total

  void update_drift(const serve::DriftReport& report) const;
};

AutopilotMetrics register_autopilot_metrics(obs::MetricsRegistry& registry);

// One autopilot firing: what the monitor saw, what the cycle did, what the
// collector removed.
struct SchedulerEvent {
  serve::DriftReport drift;
  CycleReport cycle;
  GcReport gc;
  bool cycle_failed = false;  // run_cycle threw; `error` holds the message
  bool gc_failed = false;     // cycle succeeded but the post-cycle gc threw
  std::string error;
};

class ContinualScheduler {
 public:
  // The trainer (and therefore the registry/service) must outlive the
  // scheduler. The scheduler does not start polling until start().
  ContinualScheduler(ModelRegistry& registry, serve::PredictionService& service,
                     ContinualTrainer& trainer, ContinualSchedulerOptions options);
  ~ContinualScheduler();  // stops the thread if still running

  ContinualScheduler(const ContinualScheduler&) = delete;
  ContinualScheduler& operator=(const ContinualScheduler&) = delete;

  void start();  // idempotent
  void stop();   // blocks until the poll thread exits; idempotent

  // One synchronous poll step: observe, and if the monitor triggered and
  // budget/cooldown allow, run a cycle (+ GC). Returns true when a cycle
  // ran *successfully* (a failed cycle is recorded in history() with
  // cycle_failed set, does not consume the max_cycles budget, and returns
  // false). The background thread calls exactly this; the cycle itself
  // runs outside the internal mutex, so the observer methods below stay
  // responsive while training.
  bool poll_once();

  std::uint64_t polls() const;
  std::uint64_t cycles_run() const;  // successful cycles only
  serve::DriftReport last_report() const;     // most recent observation
  std::vector<SchedulerEvent> history() const;  // one entry per trigger

  // "cycle" while a retraining cycle is in flight, else "idle"; the
  // /debug/state scheduler phase.
  const char* phase() const;

  // Cycle circuit-breaker observers ("closed"/"open"/"half_open"; see
  // support/circuit_breaker.h). An open breaker degrades /healthz.
  const char* breaker_state() const { return breaker_.state_name(); }
  bool breaker_open() const { return breaker_.state() == support::CircuitBreaker::State::kOpen; }
  std::uint64_t breaker_times_opened() const { return breaker_.times_opened(); }
  int breaker_consecutive_failures() const { return breaker_.consecutive_failures(); }

 private:
  void loop();

  ModelRegistry& registry_;
  serve::PredictionService& service_;
  ContinualTrainer& trainer_;
  const ContinualSchedulerOptions options_;
  AutopilotMetrics metrics_;  // all null when options_.metrics is null
  support::CircuitBreaker breaker_;  // thread-safe; its own internal mutex

  mutable std::mutex mu_;  // guards everything below + the monitor
  serve::DriftMonitor monitor_;
  serve::DriftReport last_report_;
  std::vector<SchedulerEvent> history_;
  std::uint64_t polls_ = 0;
  std::uint64_t cycles_ = 0;  // successful cycles (the max_cycles budget)
  bool cycle_in_flight_ = false;
  std::chrono::steady_clock::time_point last_cycle_end_{};
  bool have_last_cycle_ = false;

  std::mutex thread_mu_;  // guards thread lifecycle (start/stop)
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace tcm::registry
