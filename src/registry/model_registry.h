// Versioned model registry: the MLOps layer between training and serving.
//
// The paper trains its cost model offline and freezes it inside the
// autoscheduler; a production service instead retrains on fresh data and
// rolls new models out while traffic flows. The registry is the durable
// half of that story:
//
//   root/
//     v0001/ weights.bin manifest.txt     one immutable version per dir
//     v0002/ ...
//     ACTIVE                              "active N previous M" pointer
//
// Every version pairs an nn::save_parameters checkpoint with a manifest
// recording the architecture (enough to reconstruct the model), the
// featurization it was trained for (as a hash, checked at load time), the
// validation metrics at registration, the parent version it was fine-tuned
// from, and free-form provenance. All writes are corruption-safe against
// process crashes: files and version directories are staged under temporary
// names and atomically renamed into place, so a crash mid-register or
// mid-promote leaves either the old state or the new state, never a torn
// one. (Power-loss durability would additionally require fsyncing the
// staged data and the directory before/after each rename — a recorded
// follow-up, not provided today.)
//
// In-process calls are serialized by an internal mutex; cross-process
// safety rests on the atomicity of rename(2) (concurrent writers on one
// root are not coordinated beyond that).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "model/cost_model.h"
#include "model/train.h"

namespace tcm::registry {

// Stable 64-bit (FNV-1a) hash of every featurization-relevant field of a
// FeatureConfig. Two configs with equal hashes produce identical feature
// vectors for any (program, schedule) pair, so a model checkpoint is only
// servable behind featurization whose hash matches its manifest's.
std::uint64_t feature_config_hash(const model::FeatureConfig& config);

// Everything the registry records about one version besides the weights.
struct ModelManifest {
  int version = 0;             // assigned by register_version
  std::string model_kind;      // SpeedupPredictor::name(): "recursive-lstm", ...
  model::ModelConfig config;   // reconstructs the architecture at load time
  std::uint64_t feature_hash = 0;  // feature_config_hash(config.features)
  int parent_version = 0;      // 0 = trained from scratch, else fine-tune parent
  std::string provenance;      // free-form: dataset, recipe, trigger (one line)
  std::int64_t created_unix = 0;   // stamped by register_version
  model::EvalMetrics metrics;  // validation metrics at registration time
};

class ModelRegistry {
 public:
  // Opens (creating directories as needed) a registry rooted at `root`.
  explicit ModelRegistry(std::string root);

  // Stores the model's parameters plus the manifest under the next free
  // version id and returns that id. `manifest.version`, `created_unix` and
  // `feature_hash` are filled in here; `model_kind` defaults to
  // `model.name()` when empty. Does not change the active version.
  int register_version(model::SpeedupPredictor& model, ModelManifest manifest);

  // Reconstructs the architecture from the manifest and loads the weights.
  // Throws std::runtime_error when the version does not exist, the manifest
  // is malformed, its feature-config hash does not match the stored config
  // (a tampered or torn manifest must never reach serving), or the weights
  // mismatch the architecture.
  std::unique_ptr<model::SpeedupPredictor> load(int version) const;

  // Convenience: load(active_version()). Throws when nothing is active.
  std::unique_ptr<model::SpeedupPredictor> load_active() const;

  // Parsed manifest of one version / of all versions (ascending).
  ModelManifest manifest(int version) const;
  std::vector<ModelManifest> list() const;

  // Atomically points ACTIVE at `version` (which must exist), remembering
  // the outgoing active version for rollback.
  void promote(int version);

  // Re-promotes the previous active version and returns it. Throws when
  // there is no previous version to roll back to.
  int rollback();

  int active_version() const;    // 0 when nothing has been promoted
  int previous_version() const;  // 0 when there is no rollback target

  const std::string& root() const { return root_; }
  std::string version_dir(int version) const;
  std::string weights_path(int version) const;
  std::string manifest_path(int version) const;

 private:
  int next_version_locked() const;
  void write_active_locked(int active, int previous);
  std::pair<int, int> read_active_locked() const;  // {active, previous}

  std::string root_;
  mutable std::mutex mu_;
};

// Manifest (de)serialization, exposed for tests. The format is line-based
// "key value..." text with a versioned header.
std::string manifest_to_string(const ModelManifest& m);
ModelManifest manifest_from_string(const std::string& text);

// Constructs an untrained model of the manifest's kind and config (weights
// are meant to be overwritten by load_parameters). Throws on unknown kind.
std::unique_ptr<model::SpeedupPredictor> make_model(const ModelManifest& m);

}  // namespace tcm::registry
