// Versioned model registry: the MLOps layer between training and serving.
//
// The paper trains its cost model offline and freezes it inside the
// autoscheduler; a production service instead retrains on fresh data and
// rolls new models out while traffic flows. The registry is the durable
// half of that story:
//
//   root/
//     v0001/ weights.bin manifest.txt     one immutable version per dir
//     v0002/ ...
//     ACTIVE                              "active N previous M" pointer
//
// Every version pairs an nn::save_parameters checkpoint with a manifest
// recording the architecture (enough to reconstruct the model), the
// featurization it was trained for (as a hash, checked at load time), the
// validation metrics at registration, the parent version it was fine-tuned
// from, and free-form provenance. All writes are corruption-safe against
// process crashes *and* power loss: files and version directories are
// staged under temporary names, fsynced (data first, then the containing
// directory after each rename) and atomically renamed into place, so a
// crash or power cut mid-register or mid-promote leaves either the old
// state or the new state on disk, never a torn one. Stale leftovers of a
// crashed writer (`*.tmp` files, `.staging-*` / `.gc-*` directories) are
// swept when the registry is opened.
//
// Retention is bounded by gc(): a GcPolicy keeps the newest N versions
// plus the ACTIVE version, the rollback target, and their full fine-tune
// ancestry; everything else — in practice rejected continual-learning
// candidates — expires. The ContinualScheduler invokes gc() after every
// cycle; callers can also run it explicitly.
//
// In-process calls are serialized by an internal mutex. Cross-process
// *readers* rest on the atomicity of rename(2); concurrent cross-process
// writers are not supported — in particular, opening a registry sweeps
// stale staging state, which would destroy another live process's
// in-flight register/promote. One writer process per root.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "model/cost_model.h"
#include "model/train.h"

namespace tcm::registry {

// Stable 64-bit (FNV-1a) hash of every featurization-relevant field of a
// FeatureConfig. Two configs with equal hashes produce identical feature
// vectors for any (program, schedule) pair, so a model checkpoint is only
// servable behind featurization whose hash matches its manifest's.
std::uint64_t feature_config_hash(const model::FeatureConfig& config);

// Everything the registry records about one version besides the weights.
struct ModelManifest {
  int version = 0;             // assigned by register_version
  std::string model_kind;      // SpeedupPredictor::name(): "recursive-lstm", ...
  model::ModelConfig config;   // reconstructs the architecture at load time
  std::uint64_t feature_hash = 0;  // feature_config_hash(config.features)
  int parent_version = 0;      // 0 = trained from scratch, else fine-tune parent
  std::string provenance;      // free-form: dataset, recipe, trigger (one line)
  std::int64_t created_unix = 0;   // stamped by register_version
  model::EvalMetrics metrics;  // validation metrics at registration time
};

// Retention policy for ModelRegistry::gc(). A version survives collection
// when any of the following holds:
//   - it is among the newest `keep_last` version ids (post-mortem window,
//     so a just-rejected candidate stays inspectable for a while),
//   - it is the ACTIVE version or the rollback target (previous), or
//   - it is on the fine-tune ancestry (parent chain) of either — rolling
//     back and re-fine-tuning must never dangle.
// Everything else expires; in steady state that is old rejected candidates.
struct GcPolicy {
  int keep_last = 3;
};

struct GcReport {
  std::vector<int> removed;  // versions deleted from disk (ascending)
  std::vector<int> kept;     // versions that survived (ascending)
};

class ModelRegistry {
 public:
  // Opens (creating directories as needed) a registry rooted at `root` and
  // sweeps stale temporaries (`*.tmp`, `.staging-*`, `.gc-*`) left behind by
  // a writer that crashed between staging and publishing.
  explicit ModelRegistry(std::string root);

  // Stores the model's parameters plus the manifest under the next free
  // version id and returns that id. `manifest.version`, `created_unix` and
  // `feature_hash` are filled in here; `model_kind` defaults to
  // `model.name()` when empty. Does not change the active version.
  int register_version(model::SpeedupPredictor& model, ModelManifest manifest);

  // Reconstructs the architecture from the manifest and loads the weights.
  // Throws std::runtime_error when the version does not exist, the manifest
  // is malformed, its feature-config hash does not match the stored config
  // (a tampered or torn manifest must never reach serving), or the weights
  // mismatch the architecture.
  std::unique_ptr<model::SpeedupPredictor> load(int version) const;

  // Convenience: load(active_version()). Throws when nothing is active.
  std::unique_ptr<model::SpeedupPredictor> load_active() const;

  // Parsed manifest of one version / of all versions (ascending).
  ModelManifest manifest(int version) const;
  std::vector<ModelManifest> list() const;

  // Atomically points ACTIVE at `version` (which must exist), remembering
  // the outgoing active version for rollback.
  void promote(int version);

  // Re-promotes the previous active version and returns it. Throws when
  // there is no previous version to roll back to.
  int rollback();

  int active_version() const;    // 0 when nothing has been promoted
  int previous_version() const;  // 0 when there is no rollback target

  // Applies the retention policy: expired version directories disappear
  // atomically (renamed aside, then deleted) and the surviving checkpoints
  // are untouched on disk, bit for bit. Safe to run at any time, including
  // while versions are being served (loads pin nothing on disk — a served
  // snapshot lives in memory — but the protected set guarantees ACTIVE and
  // the rollback target always remain loadable).
  GcReport gc(const GcPolicy& policy = {});

  const std::string& root() const { return root_; }
  std::string version_dir(int version) const;
  std::string weights_path(int version) const;
  std::string manifest_path(int version) const;

 private:
  int next_version_locked() const;
  void write_active_locked(int active, int previous);
  std::pair<int, int> read_active_locked() const;  // {active, previous}
  std::vector<int> versions_locked() const;        // ascending, manifest present
  void clean_stale_locked();                       // sweep crashed-writer leftovers

  std::string root_;
  mutable std::mutex mu_;
};

// Manifest (de)serialization, exposed for tests. The format is line-based
// "key value..." text with a versioned header.
std::string manifest_to_string(const ModelManifest& m);
ModelManifest manifest_from_string(const std::string& text);

// Constructs an untrained model of the manifest's kind and config (weights
// are meant to be overwritten by load_parameters). Throws on unknown kind.
std::unique_ptr<model::SpeedupPredictor> make_model(const ModelManifest& m);

}  // namespace tcm::registry
