// Random program and schedule generation (Section 3 of the paper).
//
// The program generator emits sequences of computations where each
// computation is a variant (or combination) of the three patterns found in
// TIRAMISU programs:
//   (1) simple assignments over input arrays / previously computed buffers,
//   (2) stencils (neighbourhood reads with constant offsets),
//   (3) reductions (accumulation over extra loop dimensions).
// Programs are correct by construction: extents and offsets are chosen so
// every access stays in bounds, and consumers read only buffers produced by
// earlier computations (enabling fusion opportunities).
//
// The schedule generator draws random transformation sequences and keeps
// only legal ones, mirroring the paper's validity rules ("tiling is not
// applied if the loop extent is smaller than the tile size", etc.); here the
// rules are enforced exactly by the transformation engine's legality checks.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/program.h"
#include "support/rng.h"
#include "transforms/schedule.h"

namespace tcm::datagen {

struct GeneratorOptions {
  int min_comps = 1;
  int max_comps = 4;
  int min_depth = 2;
  int max_depth = 4;           // per-computation nest depth
  int max_store_rank = 3;      // buffer rank of outputs
  int max_load_rank = 4;       // cap on input-buffer rank (deep reductions
                               // load a subset of the iterators, as in conv)
  std::int64_t min_extent = 8;
  std::int64_t max_extent = 512;
  // Bounds on the iteration count of a single computation: the floor keeps
  // trivially small programs (where any parallelization is catastrophic)
  // rare, matching the paper's data sizes; the cap keeps the synthetic
  // workload distribution realistic.
  std::int64_t min_iterations = 1LL << 12;
  std::int64_t max_iterations = 1LL << 26;

  double p_reduction = 0.35;
  double p_stencil = 0.35;          // applied when not a reduction
  double p_consume_previous = 0.5;  // read an earlier computation's output
  double p_extra_load = 0.5;        // add a second input load
  // When consuming the immediately preceding computation, probability of
  // reusing its store iterators so both computations natively share a root
  // nest (pre-fused structure, as TIRAMISU front ends commonly emit).
  // Distinct iterators produce multi-root programs, which remain the
  // default.
  double p_share_root = 0.3;
  int max_stencil_halo = 2;

  // Small programs whose interpreter execution is fast; used by the
  // semantics property tests.
  static GeneratorOptions tiny() {
    GeneratorOptions o;
    o.min_extent = 3;
    o.max_extent = 12;
    o.min_iterations = 1;
    o.max_iterations = 1 << 12;
    return o;
  }
};

class RandomProgramGenerator {
 public:
  explicit RandomProgramGenerator(GeneratorOptions options = {});

  // Deterministic in (options, seed).
  ir::Program generate(std::uint64_t seed) const;

 private:
  GeneratorOptions options_;
};

struct ScheduleGeneratorOptions {
  std::vector<std::int64_t> tile_sizes = {8, 16, 32, 64, 128};
  std::vector<int> unroll_factors = {2, 4, 8, 16};
  std::vector<int> vector_widths = {4, 8};
  std::vector<std::int64_t> skew_factors = {1, 2, 3};
  double p_fuse = 0.5;
  double p_skew = 0.3;
  // When skewing, probability of following up with the wavefront interchange
  // of the skewed pair (kept only when the dependence-distance check allows
  // it; the skew alone is retried otherwise).
  double p_wavefront = 0.5;
  // Probability of a general unimodular transform, sampled as a random
  // composition of the engine's primitives so it is always decomposable.
  double p_unimodular = 0.15;
  double p_interchange = 0.4;
  double p_tile = 0.5;
  double p_tile_3d = 0.25;  // when tiling, probability of 3-D tiling
  double p_unroll = 0.4;
  double p_parallelize = 0.7;
  double p_vectorize = 0.4;
  // Probability that parallelization targets level 1 instead of level 0.
  double p_parallel_inner = 0.15;
};

class RandomScheduleGenerator {
 public:
  explicit RandomScheduleGenerator(ScheduleGeneratorOptions options = {});

  // Draws a random legal schedule for `p`. Every transformation is kept only
  // if the incrementally extended schedule still applies, so the result is
  // legal by construction (possibly the identity schedule).
  transforms::Schedule generate(const ir::Program& p, Rng& rng) const;

 private:
  ScheduleGeneratorOptions options_;
};

}  // namespace tcm::datagen
