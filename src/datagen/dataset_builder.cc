#include "datagen/dataset_builder.h"

#include <set>

#include "support/log.h"
#include "transforms/apply.h"

namespace tcm::datagen {
namespace {

// Samples for one program with a dedicated RNG stream and executor.
std::vector<model::DataPoint> sample_program(const ir::Program& program, int program_id,
                                             int num_schedules,
                                             const DatasetBuildOptions& options,
                                             std::uint64_t seed) {
  std::vector<model::DataPoint> points;
  Rng rng(seed);
  sim::Executor executor(sim::MachineModel(options.machine), options.executor, rng.next_u64());
  RandomScheduleGenerator sched_gen(options.scheduler);

  const double base_time = executor.measure_seconds(program);
  std::set<std::string> seen;
  for (int si = 0; si < num_schedules; ++si) {
    const transforms::Schedule schedule = sched_gen.generate(program, rng);
    if (options.dedupe_schedules && !seen.insert(schedule.to_string()).second) continue;

    transforms::ApplyResult applied = transforms::try_apply_schedule(program, schedule);
    if (!applied.ok) continue;  // generator guarantees legality; defensive
    std::string error;
    auto feats = model::featurize(program, schedule, options.features, &error);
    if (!feats) {
      log_warn() << "datagen: featurization failed for program " << program_id << ": " << error;
      continue;
    }
    const double opt_time = executor.measure_seconds(applied.program);
    model::DataPoint point;
    point.program_id = program_id;
    point.feats = std::move(*feats);
    point.speedup = base_time / opt_time;
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace

model::Dataset build_dataset(const DatasetBuildOptions& options) {
  RandomProgramGenerator gen(options.generator);
  std::vector<std::vector<model::DataPoint>> per_program(
      static_cast<std::size_t>(options.num_programs));

#pragma omp parallel for schedule(dynamic)
  for (int pi = 0; pi < options.num_programs; ++pi) {
    const std::uint64_t program_seed = options.seed * 0x9e3779b97f4a7c15ULL + 2654435761ULL * pi;
    const ir::Program program = gen.generate(program_seed);
    per_program[static_cast<std::size_t>(pi)] =
        sample_program(program, pi, options.schedules_per_program, options, program_seed ^ 0x5bf0);
  }

  model::Dataset ds;
  for (auto& points : per_program)
    for (auto& p : points) ds.points.push_back(std::move(p));
  return ds;
}

model::Dataset build_for_program(const ir::Program& program, int program_id, int num_schedules,
                                 const DatasetBuildOptions& options, std::uint64_t seed) {
  model::Dataset ds;
  ds.points = sample_program(program, program_id, num_schedules, options, seed);
  return ds;
}

}  // namespace tcm::datagen
