#include "datagen/generator.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "ir/builder.h"
#include "transforms/apply.h"

namespace tcm::datagen {
namespace {

using ir::IndexExpr;
using ir::ProgramBuilder;
using ir::SExpr;
using ir::Var;

// Log-uniform extent in [lo, hi].
std::int64_t sample_extent(Rng& rng, std::int64_t lo, std::int64_t hi) {
  const double llo = std::log(static_cast<double>(lo));
  const double lhi = std::log(static_cast<double>(hi));
  const double v = std::exp(rng.uniform_real(llo, lhi));
  return std::clamp<std::int64_t>(static_cast<std::int64_t>(std::llround(v)), lo, hi);
}

// Description of a previously generated computation, for consumers.
struct ProducedBuffer {
  int comp_id;
  int buffer_id;
  std::vector<std::int64_t> dims;
  std::vector<Var> store_vars;  // for root sharing with the next computation
};

struct GenState {
  ProgramBuilder* b = nullptr;
  const GeneratorOptions* opt = nullptr;
  std::vector<ProducedBuffer> produced;
  int name_counter = 0;
};

SExpr random_op_combine(Rng& rng, SExpr a, SExpr b) {
  switch (rng.uniform_int(0, 3)) {
    case 0: return a + b;
    case 1: return a - b;
    case 2: return a * b;
    default: return a / b;
  }
}

}  // namespace

RandomProgramGenerator::RandomProgramGenerator(GeneratorOptions options) : options_(options) {}

ir::Program RandomProgramGenerator::generate(std::uint64_t seed) const {
  Rng rng(seed ^ 0x7a9e1ce5b171f00dULL);
  ProgramBuilder builder("rand_" + std::to_string(seed));
  GenState st;
  st.b = &builder;
  st.opt = &options_;

  const int num_comps =
      static_cast<int>(rng.uniform_int(options_.min_comps, options_.max_comps));

  for (int ci = 0; ci < num_comps; ++ci) {
    const bool is_reduction = rng.bernoulli(options_.p_reduction);
    const bool is_stencil = !is_reduction && rng.bernoulli(options_.p_stencil);

    // --- pick the consumed producer (if any) --------------------------------
    const ProducedBuffer* producer = nullptr;
    if (!st.produced.empty() && rng.bernoulli(options_.p_consume_previous))
      producer = &st.produced[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(st.produced.size()) - 1))];
    // Consuming the immediately preceding computation optionally reuses its
    // store iterators, so the builder nests both computations under one root
    // (the loop-sharing path of Figure 1a). Decided before extents are
    // capped: shared iterators must keep the producer's extents.
    const bool share_root = producer && producer->comp_id == st.produced.back().comp_id &&
                            rng.bernoulli(options_.p_share_root);

    // --- choose nest shape ----------------------------------------------------
    int store_rank;
    if (producer) {
      store_rank = static_cast<int>(producer->dims.size());
    } else {
      store_rank = static_cast<int>(
          rng.uniform_int(1, std::min(options_.max_store_rank,
                                      options_.max_depth - (is_reduction ? 1 : 0))));
    }
    int depth = store_rank;
    if (is_reduction) {
      const int max_red = options_.max_depth - store_rank;
      depth += static_cast<int>(rng.uniform_int(1, std::max<std::int64_t>(1, max_red)));
    }

    // --- extents ---------------------------------------------------------------
    std::vector<std::int64_t> extents(static_cast<std::size_t>(depth));
    for (int l = 0; l < depth; ++l) {
      if (producer && l < store_rank) {
        extents[static_cast<std::size_t>(l)] = producer->dims[static_cast<std::size_t>(l)];
      } else {
        extents[static_cast<std::size_t>(l)] =
            sample_extent(rng, options_.min_extent, options_.max_extent);
      }
    }
    // Enforce the iteration cap by shrinking the largest extents.
    auto total = [&] {
      std::int64_t t = 1;
      for (auto e : extents) t *= e;
      return t;
    };
    while (total() > options_.max_iterations) {
      // Shared iterators are pinned to the producer's extents (the Vars are
      // reused verbatim); only the private levels may shrink.
      const int first = share_root ? store_rank : 0;
      if (first >= depth) break;
      auto it = std::max_element(extents.begin() + first, extents.end());
      if (*it <= options_.min_extent) break;
      *it = std::max(options_.min_extent, *it / 2);
    }
    if (!producer) {
      while (total() < options_.min_iterations) {
        auto it = std::min_element(extents.begin(), extents.end());
        if (*it >= options_.max_extent) break;
        *it = std::min(options_.max_extent, *it * 2);
      }
    }

    // --- iterators ---------------------------------------------------------------
    // Shared-root consumers reuse the producer's store Vars; fresh Vars
    // otherwise, which yields multi-root programs that fusion can later merge.
    const std::string prefix = "c" + std::to_string(ci) + "_";
    std::vector<Var> iters;
    for (int l = 0; l < depth; ++l) {
      if (share_root && l < store_rank)
        iters.push_back(producer->store_vars[static_cast<std::size_t>(l)]);
      else
        iters.push_back(
            builder.var(prefix + "i" + std::to_string(l), extents[static_cast<std::size_t>(l)]));
    }
    std::vector<Var> store_vars(iters.begin(), iters.begin() + store_rank);

    // --- right-hand side -----------------------------------------------------------
    SExpr rhs;
    const int halo =
        is_stencil ? static_cast<int>(rng.uniform_int(1, options_.max_stencil_halo)) : 0;

    if (producer) {
      std::vector<IndexExpr> idx;
      for (int l = 0; l < store_rank; ++l) idx.push_back(iters[static_cast<std::size_t>(l)]);
      rhs = builder.load(producer->buffer_id, idx);
    }

    if (!producer || rng.bernoulli(options_.p_extra_load) || is_reduction || is_stencil) {
      if (is_stencil) {
        // Fresh input sized extent + 2*halo on the stencil dims (the last
        // one or two store dims), so offsets 0..2h stay in bounds.
        const int stencil_dims = std::min(store_rank, 1 + static_cast<int>(rng.uniform_int(0, 1)));
        std::vector<std::int64_t> dims;
        for (int l = 0; l < store_rank; ++l) {
          std::int64_t d = extents[static_cast<std::size_t>(l)];
          if (l >= store_rank - stencil_dims) d += 2 * halo;
          dims.push_back(d);
        }
        const int in_buf =
            builder.input(prefix + "in" + std::to_string(st.name_counter++), dims);
        const int points = static_cast<int>(rng.uniform_int(2, 5));
        SExpr acc;
        for (int pt = 0; pt < points; ++pt) {
          std::vector<IndexExpr> idx;
          for (int l = 0; l < store_rank; ++l) {
            IndexExpr e = iters[static_cast<std::size_t>(l)];
            if (l >= store_rank - stencil_dims)
              e = e + IndexExpr(rng.uniform_int(0, 2 * halo));
            idx.push_back(e);
          }
          SExpr term = builder.load(in_buf, idx);
          if (rng.bernoulli(0.5)) term = term * SExpr(rng.uniform_real(0.1, 2.0));
          acc = acc.valid() ? acc + term : term;
        }
        rhs = rhs.valid() ? random_op_combine(rng, rhs, acc) : acc;
      } else if (is_reduction) {
        // Two loads a la contraction: one over (a subset of) the iterators
        // including the reduction iters, one over the reduction iters
        // (+ trailing store dims when available). When the nest is deeper
        // than max_load_rank, the load picks a subset of iterators, the way
        // a convolution's weight tensor does.
        std::vector<int> a_levels;
        if (depth <= options_.max_load_rank) {
          for (int l = 0; l < depth; ++l) a_levels.push_back(l);
        } else {
          // Always include the reduction iters (up to the cap), then fill
          // with store iters from the innermost outwards.
          for (int l = store_rank; l < depth && static_cast<int>(a_levels.size()) <
                                                    options_.max_load_rank;
               ++l)
            a_levels.push_back(l);
          for (int l = store_rank - 1;
               l >= 0 && static_cast<int>(a_levels.size()) < options_.max_load_rank; --l)
            a_levels.insert(a_levels.begin(), l);
        }
        std::vector<std::int64_t> dims_a;
        std::vector<IndexExpr> idx_a;
        for (int l : a_levels) {
          dims_a.push_back(extents[static_cast<std::size_t>(l)]);
          idx_a.push_back(iters[static_cast<std::size_t>(l)]);
        }
        const int a_buf = builder.input(prefix + "ina" + std::to_string(st.name_counter++), dims_a);
        SExpr term = builder.load(a_buf, idx_a);
        if (rng.bernoulli(0.7)) {
          std::vector<std::int64_t> dims_b;
          std::vector<IndexExpr> idx_b;
          for (int l = store_rank;
               l < depth && static_cast<int>(idx_b.size()) < options_.max_load_rank; ++l) {
            dims_b.push_back(extents[static_cast<std::size_t>(l)]);
            idx_b.push_back(iters[static_cast<std::size_t>(l)]);
          }
          // Optionally one store dim to make it matmul-shaped.
          if (store_rank >= 1 && static_cast<int>(idx_b.size()) < options_.max_load_rank &&
              rng.bernoulli(0.6)) {
            const int l = static_cast<int>(rng.uniform_int(0, store_rank - 1));
            dims_b.push_back(extents[static_cast<std::size_t>(l)]);
            idx_b.push_back(iters[static_cast<std::size_t>(l)]);
          }
          const int b_buf =
              builder.input(prefix + "inb" + std::to_string(st.name_counter++), dims_b);
          term = term * builder.load(b_buf, idx_b);
        }
        rhs = rhs.valid() ? rhs + term : term;
      } else {
        // Simple elementwise load of a fresh input, occasionally transposed
        // (interesting for interchange) when the leading extents allow it.
        std::vector<std::int64_t> dims;
        std::vector<IndexExpr> idx;
        for (int l = 0; l < store_rank; ++l) {
          dims.push_back(extents[static_cast<std::size_t>(l)]);
          idx.push_back(iters[static_cast<std::size_t>(l)]);
        }
        if (store_rank >= 2 && rng.bernoulli(0.3)) {
          std::swap(dims[dims.size() - 1], dims[dims.size() - 2]);
          std::swap(idx[idx.size() - 1], idx[idx.size() - 2]);
        }
        const int in_buf = builder.input(prefix + "in" + std::to_string(st.name_counter++), dims);
        SExpr term = builder.load(in_buf, idx);
        if (rng.bernoulli(0.4)) term = random_op_combine(rng, term, SExpr(rng.uniform_real(0.5, 3.0)));
        rhs = rhs.valid() ? random_op_combine(rng, rhs, term) : term;
      }
    }

    if (rng.bernoulli(0.3)) rhs = rhs + SExpr(rng.uniform_real(-1.0, 1.0));

    const std::string name = "comp" + std::to_string(ci);
    int out_buffer = -1;
    const int comp_id = builder.computation(name, iters, store_vars, rhs, &out_buffer);
    std::vector<std::int64_t> out_dims(extents.begin(), extents.begin() + store_rank);
    st.produced.push_back(ProducedBuffer{comp_id, out_buffer, std::move(out_dims), store_vars});
  }

  return builder.build();
}

RandomScheduleGenerator::RandomScheduleGenerator(ScheduleGeneratorOptions options)
    : options_(options) {}

transforms::Schedule RandomScheduleGenerator::generate(const ir::Program& p, Rng& rng) const {
  transforms::Schedule schedule;

  // Keep a candidate transformation only when the extended schedule is
  // still legal (valid-by-construction, as in the paper's generator).
  auto keep_if_legal = [&](transforms::Schedule& s) {
    return transforms::try_apply_schedule(p, s).ok;
  };
  auto try_add = [&](auto member, auto spec) {
    transforms::Schedule candidate = schedule;
    (candidate.*member).push_back(spec);
    if (keep_if_legal(candidate)) schedule = std::move(candidate);
  };

  // --- fusion: walk adjacent root pairs --------------------------------------
  for (std::size_t r = 0; r + 1 < p.roots.size(); ++r) {
    if (!rng.bernoulli(options_.p_fuse)) continue;
    // Representative computations of each root nest.
    auto comp_under = [&](int root) -> int {
      int loop_id = root;
      while (true) {
        for (const ir::BodyItem& item : p.loop(loop_id).body)
          if (item.kind == ir::BodyItem::Kind::Computation) return item.index;
        // descend into the first child loop
        bool descended = false;
        for (const ir::BodyItem& item : p.loop(loop_id).body) {
          if (item.kind == ir::BodyItem::Kind::Loop) {
            loop_id = item.index;
            descended = true;
            break;
          }
        }
        if (!descended) return -1;
      }
    };
    const int ca = comp_under(p.roots[r]);
    const int cb = comp_under(p.roots[r + 1]);
    if (ca < 0 || cb < 0) continue;
    const int max_depth = static_cast<int>(
        std::min(p.nest_of(ca).size(), p.nest_of(cb).size()));
    const int depth = static_cast<int>(rng.uniform_int(1, max_depth));
    try_add(&transforms::Schedule::fusions, transforms::FuseSpec{ca, cb, depth});
  }

  // --- per computation decisions ------------------------------------------------
  for (const ir::Computation& c : p.comps) {
    const std::vector<std::int64_t> extents = p.extents_of(c.id);
    const int depth = static_cast<int>(extents.size());

    if (depth >= 2 && !options_.skew_factors.empty() && rng.bernoulli(options_.p_skew)) {
      const int la = static_cast<int>(rng.uniform_int(0, depth - 2));
      const std::int64_t f = options_.skew_factors[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(options_.skew_factors.size()) - 1))];
      const bool wavefront = rng.bernoulli(options_.p_wavefront);
      transforms::Schedule candidate = schedule;
      candidate.skews.push_back(transforms::SkewSpec{c.id, la, f});
      if (wavefront)
        candidate.interchanges.push_back(transforms::InterchangeSpec{c.id, la, la + 1});
      if (keep_if_legal(candidate)) schedule = std::move(candidate);
      else if (wavefront)  // the wavefront swap may be the illegal part
        try_add(&transforms::Schedule::skews, transforms::SkewSpec{c.id, la, f});
    }

    if (depth >= 2 && rng.bernoulli(options_.p_unimodular)) {
      // Sample the transform as a composition of the engine's primitives
      // (permutation, then adjacent skew, then optional wavefront swap of
      // the skewed pair) so the resulting matrix is always decomposable.
      const int k = (depth >= 3 && rng.bernoulli(0.5)) ? 3 : 2;
      const int level = static_cast<int>(rng.uniform_int(0, depth - k));
      std::vector<int> sigma(static_cast<std::size_t>(k));
      for (int i = 0; i < k; ++i) sigma[static_cast<std::size_t>(i)] = i;
      for (int i = k - 1; i > 0; --i)
        std::swap(sigma[static_cast<std::size_t>(i)],
                  sigma[static_cast<std::size_t>(rng.uniform_int(0, i))]);
      std::vector<std::int64_t> u(static_cast<std::size_t>(k * k), 0);
      for (int r = 0; r < k; ++r)
        u[static_cast<std::size_t>(r * k + sigma[static_cast<std::size_t>(r)])] = 1;
      if (rng.bernoulli(0.7)) {
        const int pos = static_cast<int>(rng.uniform_int(0, k - 2));
        const std::int64_t f = static_cast<std::int64_t>(rng.uniform_int(1, 3));
        // Left-multiply by I + f*E[pos+1][pos]: row pos+1 += f * row pos.
        for (int col = 0; col < k; ++col)
          u[static_cast<std::size_t>((pos + 1) * k + col)] +=
              f * u[static_cast<std::size_t>(pos * k + col)];
        if (rng.bernoulli(0.5))  // wavefront: swap the skewed pair's rows
          for (int col = 0; col < k; ++col)
            std::swap(u[static_cast<std::size_t>(pos * k + col)],
                      u[static_cast<std::size_t>((pos + 1) * k + col)]);
      }
      try_add(&transforms::Schedule::unimodulars,
              transforms::UnimodularSpec{c.id, level, std::move(u)});
    }

    if (depth >= 2 && rng.bernoulli(options_.p_interchange)) {
      const int la = static_cast<int>(rng.uniform_int(0, depth - 2));
      const int lb = static_cast<int>(rng.uniform_int(la + 1, depth - 1));
      try_add(&transforms::Schedule::interchanges, transforms::InterchangeSpec{c.id, la, lb});
    }

    if (depth >= 2 && rng.bernoulli(options_.p_tile)) {
      const int d = (depth >= 3 && rng.bernoulli(options_.p_tile_3d)) ? 3 : 2;
      const int level = static_cast<int>(rng.uniform_int(0, depth - d));
      std::vector<std::int64_t> sizes;
      for (int k = 0; k < d; ++k) {
        std::vector<std::int64_t> fitting;
        for (std::int64_t s : options_.tile_sizes)
          if (s <= extents[static_cast<std::size_t>(level + k)]) fitting.push_back(s);
        if (fitting.empty()) break;
        sizes.push_back(fitting[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(fitting.size()) - 1))]);
      }
      if (static_cast<int>(sizes.size()) == d)
        try_add(&transforms::Schedule::tiles, transforms::TileSpec{c.id, level, sizes});
    }

    if (rng.bernoulli(options_.p_unroll)) {
      std::vector<int> fitting;
      for (int f : options_.unroll_factors)
        if (f <= extents.back()) fitting.push_back(f);
      if (!fitting.empty())
        try_add(&transforms::Schedule::unrolls,
                transforms::UnrollSpec{c.id, fitting[static_cast<std::size_t>(rng.uniform_int(
                                                 0, static_cast<std::int64_t>(fitting.size()) - 1))]});
    }

    if (rng.bernoulli(options_.p_parallelize)) {
      const int level = (depth >= 2 && rng.bernoulli(options_.p_parallel_inner)) ? 1 : 0;
      try_add(&transforms::Schedule::parallels, transforms::ParallelizeSpec{c.id, level});
    }

    if (rng.bernoulli(options_.p_vectorize)) {
      std::vector<int> fitting;
      for (int w : options_.vector_widths)
        if (w <= extents.back()) fitting.push_back(w);
      if (!fitting.empty())
        try_add(&transforms::Schedule::vectorizes,
                transforms::VectorizeSpec{c.id, fitting[static_cast<std::size_t>(rng.uniform_int(
                                                    0, static_cast<std::int64_t>(fitting.size()) - 1))]});
    }
  }

  return schedule;
}

}  // namespace tcm::datagen
