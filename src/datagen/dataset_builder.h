// End-to-end dataset construction (Section 3, "Dataset Construction"):
// random programs x random schedules, each executed on the simulated machine
// (median of N noisy runs) to obtain the measured speedup, then featurized.
//
// The paper built 56,250 programs x 32 schedules (~1.8M samples) in 3 weeks
// on a 16-node cluster; the same pipeline here runs at tens of thousands of
// samples per minute because the execution substrate is analytical.
#pragma once

#include <cstdint>

#include "datagen/generator.h"
#include "model/dataset.h"
#include "sim/executor.h"

namespace tcm::datagen {

struct DatasetBuildOptions {
  int num_programs = 1000;
  int schedules_per_program = 32;  // the paper's count
  GeneratorOptions generator;
  ScheduleGeneratorOptions scheduler;
  model::FeatureConfig features;
  sim::ExecutorOptions executor;
  sim::MachineSpec machine;
  std::uint64_t seed = 2021;
  // Drop duplicate schedules within a program (the paper's random sequences
  // are not deduplicated; keep parity by default).
  bool dedupe_schedules = false;
};

// Builds the dataset. Deterministic in the options; parallelized across
// programs with OpenMP.
model::Dataset build_dataset(const DatasetBuildOptions& options);

// Builds the (program, schedule, speedup) triplets for a *specific* program,
// useful for benchmark-set evaluation. Speedups are measured against the
// untransformed program.
model::Dataset build_for_program(const ir::Program& program, int program_id, int num_schedules,
                                 const DatasetBuildOptions& options, std::uint64_t seed);

}  // namespace tcm::datagen
