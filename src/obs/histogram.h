// Low-overhead histogram metrics: the /metrics latency series.
//
// The serving stack used to export two summary quantiles computed from a
// mutex-guarded latency ring; when p99 regressed there was no way to tell
// *which stage* ate the time. This layer replaces that with native
// Prometheus histograms over fixed log-spaced buckets:
//
//   - Histogram::observe() is wait-free — one branchy bucket search over a
//     small immutable bounds array plus two relaxed atomic adds — so it can
//     sit on the per-request hot path (queue wait, featurize, inference)
//     without a lock.
//   - MetricsRegistry names histograms and renders the text exposition
//     (0.0.4): grouped families, `_bucket{le=...}` cumulative counts,
//     `_sum`/`_count`, one HELP/TYPE preamble per family. Histograms of one
//     family are distinguished by a label set (e.g. stage="queue_wait").
//   - quantile() interpolates p50/p99 out of the buckets so ServeStats keeps
//     its summary fields without the old ring.
//
// Registration takes a mutex (once, at service construction); observation
// and snapshotting never do. References returned by histogram() are stable
// for the registry's lifetime.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tcm::obs {

// `count` log-spaced upper bounds: start, start*factor, start*factor^2, ...
// The implicit final +Inf bucket is added by the Histogram itself.
std::vector<double> exponential_buckets(double start, double factor, int count);

class Histogram {
 public:
  // `labels` is a raw Prometheus label body without braces (e.g.
  // `stage="infer"`), empty for an unlabeled family member.
  Histogram(std::string name, std::string help, std::string labels,
            std::vector<double> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  // Wait-free; negative observations clamp into the first bucket.
  void observe(double value);

  struct Snapshot {
    std::vector<double> bounds;        // upper bounds, ascending (no +Inf)
    std::vector<std::uint64_t> counts; // per-bucket, bounds.size()+1 entries
    std::uint64_t count = 0;           // == sum of counts
    double sum = 0;
  };
  Snapshot snapshot() const;

  // Interpolated quantile (q in [0,1]) from the current buckets; 0 when the
  // histogram is empty. Approximate by construction — bounded by the bucket
  // resolution — which is all a summary stat needs.
  double quantile(double q) const;

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }
  const std::string& labels() const { return labels_; }

 private:
  const std::string name_;
  const std::string help_;
  const std::string labels_;
  const std::vector<double> bounds_;
  // bounds_.size()+1 buckets; the last is the +Inf overflow.
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<double> sum_{0};
};

class MetricsRegistry {
 public:
  // Get-or-create by (name, labels); `help` and `bounds` are taken from the
  // first registration of the pair. Thread-safe; the reference is stable.
  Histogram& histogram(const std::string& name, const std::string& help,
                       const std::string& labels, std::vector<double> bounds);

  // Prometheus 0.0.4 text: families in first-registration order, HELP/TYPE
  // once per family, then `_bucket`/`_sum`/`_count` per label set.
  std::string render_prometheus() const;

 private:
  mutable std::mutex mu_;
  std::deque<Histogram> histograms_;  // deque: references must not move
};

}  // namespace tcm::obs
