// Low-overhead histogram metrics: the /metrics latency series.
//
// The serving stack used to export two summary quantiles computed from a
// mutex-guarded latency ring; when p99 regressed there was no way to tell
// *which stage* ate the time. This layer replaces that with native
// Prometheus histograms over fixed log-spaced buckets:
//
//   - Histogram::observe() is wait-free — one branchy bucket search over a
//     small immutable bounds array plus two relaxed atomic adds — so it can
//     sit on the per-request hot path (queue wait, featurize, inference)
//     without a lock.
//   - quantile() interpolates p50/p99 out of the buckets so ServeStats keeps
//     its summary fields without the old ring.
//
// Naming, registration and the text exposition live in obs/metrics.h
// (MetricsRegistry), alongside counters and gauges. Observation and
// snapshotting never take a lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace tcm::obs {

// `count` log-spaced upper bounds: start, start*factor, start*factor^2, ...
// The implicit final +Inf bucket is added by the Histogram itself.
std::vector<double> exponential_buckets(double start, double factor, int count);

class Histogram {
 public:
  // `labels` is a raw Prometheus label body without braces (e.g.
  // `stage="infer"`), empty for an unlabeled family member.
  Histogram(std::string name, std::string help, std::string labels,
            std::vector<double> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  // Wait-free; negative observations clamp into the first bucket.
  void observe(double value);

  struct Snapshot {
    std::vector<double> bounds;        // upper bounds, ascending (no +Inf)
    std::vector<std::uint64_t> counts; // per-bucket, bounds.size()+1 entries
    std::uint64_t count = 0;           // == sum of counts
    double sum = 0;
  };
  Snapshot snapshot() const;

  // Interpolated quantile (q in [0,1]) from the current buckets; 0 when the
  // histogram is empty. Approximate by construction — bounded by the bucket
  // resolution — which is all a summary stat needs.
  double quantile(double q) const;

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }
  const std::string& labels() const { return labels_; }

 private:
  const std::string name_;
  const std::string help_;
  const std::string labels_;
  const std::vector<double> bounds_;
  // bounds_.size()+1 buckets; the last is the +Inf overflow.
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<double> sum_{0};
};

}  // namespace tcm::obs
