#include "obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tcm::obs {

std::vector<double> exponential_buckets(double start, double factor, int count) {
  if (start <= 0 || factor <= 1.0 || count < 1)
    throw std::invalid_argument("exponential_buckets: need start > 0, factor > 1, count >= 1");
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double b = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

Histogram::Histogram(std::string name, std::string help, std::string labels,
                     std::vector<double> bounds)
    : name_(std::move(name)), help_(std::move(help)), labels_(std::move(labels)),
      bounds_(std::move(bounds)) {
  if (bounds_.empty()) throw std::invalid_argument("Histogram: need at least one bucket bound");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::invalid_argument("Histogram: bucket bounds must be ascending");
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double value) {
  // upper_bound over a ~two-dozen-entry immutable array: a handful of
  // comparisons, no lock — cheap enough for the per-request hot path.
  const std::size_t idx = static_cast<std::size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  if (value > 0) sum_.fetch_add(value, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
    s.count += s.counts[i];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

double Histogram::quantile(double q) const {
  const Snapshot s = snapshot();
  if (s.count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(s.count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < s.counts.size(); ++i) {
    if (s.counts[i] == 0) {
      continue;
    }
    const double prev = static_cast<double>(cum);
    cum += s.counts[i];
    if (static_cast<double>(cum) < target) continue;
    // Interpolate inside bucket i: [lo, hi) with s.counts[i] observations.
    const double lo = i == 0 ? 0.0 : s.bounds[i - 1];
    // The overflow bucket has no upper bound; report its lower edge.
    if (i == s.bounds.size()) return lo;
    const double hi = s.bounds[i];
    const double fraction = (target - prev) / static_cast<double>(s.counts[i]);
    return lo + fraction * (hi - lo);
  }
  return s.bounds.back();
}

}  // namespace tcm::obs
