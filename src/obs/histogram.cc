#include "obs/histogram.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <stdexcept>

namespace tcm::obs {

namespace {

void append_double(double v, std::string& out) {
  if (std::isnan(v)) {
    out += "NaN";
    return;
  }
  if (std::isinf(v)) {
    out += v > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buf[32];
  auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, end);
}

}  // namespace

std::vector<double> exponential_buckets(double start, double factor, int count) {
  if (start <= 0 || factor <= 1.0 || count < 1)
    throw std::invalid_argument("exponential_buckets: need start > 0, factor > 1, count >= 1");
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double b = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

Histogram::Histogram(std::string name, std::string help, std::string labels,
                     std::vector<double> bounds)
    : name_(std::move(name)), help_(std::move(help)), labels_(std::move(labels)),
      bounds_(std::move(bounds)) {
  if (bounds_.empty()) throw std::invalid_argument("Histogram: need at least one bucket bound");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::invalid_argument("Histogram: bucket bounds must be ascending");
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double value) {
  // upper_bound over a ~two-dozen-entry immutable array: a handful of
  // comparisons, no lock — cheap enough for the per-request hot path.
  const std::size_t idx = static_cast<std::size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  if (value > 0) sum_.fetch_add(value, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
    s.count += s.counts[i];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

double Histogram::quantile(double q) const {
  const Snapshot s = snapshot();
  if (s.count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(s.count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < s.counts.size(); ++i) {
    if (s.counts[i] == 0) {
      continue;
    }
    const double prev = static_cast<double>(cum);
    cum += s.counts[i];
    if (static_cast<double>(cum) < target) continue;
    // Interpolate inside bucket i: [lo, hi) with s.counts[i] observations.
    const double lo = i == 0 ? 0.0 : s.bounds[i - 1];
    // The overflow bucket has no upper bound; report its lower edge.
    if (i == s.bounds.size()) return lo;
    const double hi = s.bounds[i];
    const double fraction = (target - prev) / static_cast<double>(s.counts[i]);
    return lo + fraction * (hi - lo);
  }
  return s.bounds.back();
}

Histogram& MetricsRegistry::histogram(const std::string& name, const std::string& help,
                                      const std::string& labels, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Histogram& h : histograms_)
    if (h.name() == name && h.labels() == labels) return h;
  return histograms_.emplace_back(name, help, labels, std::move(bounds));
}

std::string MetricsRegistry::render_prometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  // Families in first-registration order; members of one family rendered
  // together under a single HELP/TYPE preamble.
  std::vector<const std::string*> family_order;
  for (const Histogram& h : histograms_) {
    bool seen = false;
    for (const std::string* f : family_order)
      if (*f == h.name()) seen = true;
    if (!seen) family_order.push_back(&h.name());
  }
  for (const std::string* family : family_order) {
    bool preamble = false;
    for (const Histogram& h : histograms_) {
      if (h.name() != *family) continue;
      if (!preamble) {
        out += "# HELP " + h.name() + ' ' + h.help() + '\n';
        out += "# TYPE " + h.name() + " histogram\n";
        preamble = true;
      }
      const Histogram::Snapshot s = h.snapshot();
      const std::string sep = h.labels().empty() ? "" : h.labels() + ",";
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i <= s.bounds.size(); ++i) {
        cum += s.counts[i];
        out += h.name() + "_bucket{" + sep + "le=\"";
        if (i == s.bounds.size()) {
          out += "+Inf";
        } else {
          append_double(s.bounds[i], out);
        }
        out += "\"} " + std::to_string(cum) + '\n';
      }
      const std::string label_block = h.labels().empty() ? "" : '{' + h.labels() + '}';
      out += h.name() + "_sum" + label_block + ' ';
      append_double(s.sum, out);
      out += '\n';
      out += h.name() + "_count" + label_block + ' ' + std::to_string(s.count) + '\n';
    }
  }
  return out;
}

}  // namespace tcm::obs
