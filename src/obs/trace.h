// Sampled per-request trace spans for the serving stack.
//
// A request that passes the sampling gate at the HTTP edge gets a nonzero
// *trace id* which rides a thread-local context through the synchronous
// layers (HttpServer handler -> api::Service::predict -> featurization) and
// a PendingRequest field across the batcher's thread hop, so the spans a
// batch worker records (queue wait, batch assembly, fused inference, shadow
// scoring) correlate with the HTTP span of the request that triggered them.
// Continual-learning cycles trace the same way (datagen, fine-tune, canary,
// promote), always sampled — cycles are rare and expensive.
//
// Span records land in a fixed-capacity ring (oldest overwritten) guarded
// by a mutex that only *sampled* work ever touches: at the default 1%
// sampling 99% of requests pay exactly one relaxed atomic increment for the
// sampling draw and one thread-local read per span site — measured <2%
// serving-throughput overhead in bench_obs_overhead (and ~0% at 0%
// sampling, where the enabled() check short-circuits everything). Defining
// TCM_DISABLE_TRACING compiles every TCM_TRACE_SPAN site out entirely.
//
// Export is Chrome trace_event JSON ("ph":"X" complete events, microsecond
// timestamps), consumable by chrome://tracing and Perfetto, served at
// GET /debug/traces and written by `tcm_serve --trace-out`.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace tcm::obs {

// Small dense id of the calling OS thread (assigned on first use); stable
// for the thread's lifetime and compact enough for trace_event "tid".
std::uint32_t trace_thread_id();

struct SpanRecord {
  const char* name = nullptr;   // static string: span sites pass literals
  std::uint64_t trace_id = 0;   // request correlation id, nonzero
  std::uint64_t start_ns = 0;   // steady-clock nanoseconds
  std::uint64_t end_ns = 0;
  std::uint32_t tid = 0;
};

class Tracer {
 public:
  static Tracer& instance();

  // rate in [0,1]: 0 disables tracing (the default), 1 traces everything,
  // 0.01 traces every 100th request (deterministic stride, so a bench run
  // has a reproducible sampled set).
  void set_sample_rate(double rate);
  double sample_rate() const;
  bool enabled() const { return stride_.load(std::memory_order_relaxed) != 0; }

  // Ring capacity in spans (default 1<<14). Clears recorded spans.
  void set_capacity(std::size_t spans);

  // Sampling draw for a new request: a fresh nonzero trace id when sampled,
  // 0 otherwise. One relaxed fetch_add on the unsampled path.
  std::uint64_t sample_request();
  // Always returns a fresh trace id when tracing is enabled (0 when not):
  // for work that must be captured whenever anyone is looking, e.g.
  // continual-learning cycles.
  std::uint64_t force_request();

  // Attaches a human-facing request id (e.g. the X-Request-Id value) to a
  // trace id; exported as the spans' "request_id" argument.
  void set_label(std::uint64_t trace_id, std::string label);

  // Records one finished span. `name` must outlive the tracer (pass string
  // literals). No-op when trace_id is 0.
  void record(const char* name, std::uint64_t trace_id, std::uint64_t start_ns,
              std::uint64_t end_ns);

  // Recorded spans, oldest first.
  std::vector<SpanRecord> spans() const;
  std::string label(std::uint64_t trace_id) const;  // "" when none attached

  // Chrome trace_event JSON document: {"displayTimeUnit":...,
  // "traceEvents":[{"ph":"X",...},...]}.
  std::string export_chrome_json() const;

  void clear();

  static std::uint64_t now_ns();

 private:
  Tracer();

  std::atomic<std::uint32_t> stride_{0};  // 0 = disabled, else sample every Nth
  std::atomic<std::uint64_t> draws_{0};
  std::atomic<std::uint64_t> next_trace_id_{1};

  mutable std::mutex mu_;  // ring + labels; touched only by sampled work
  std::vector<SpanRecord> ring_;
  std::size_t ring_capacity_ = 1 << 14;
  std::size_t ring_next_ = 0;
  bool ring_wrapped_ = false;
  std::vector<std::pair<std::uint64_t, std::string>> labels_;  // FIFO-capped
};

// Thread-local trace id of the request currently being served on this
// thread; 0 when the request is unsampled (or there is none).
std::uint64_t current_trace_id();

// RAII: installs `trace_id` as the calling thread's current trace context
// and restores the previous one on destruction.
class TraceContext {
 public:
  explicit TraceContext(std::uint64_t trace_id);
  ~TraceContext();
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

 private:
  std::uint64_t previous_;
};

// RAII span. The implicit form reads the thread context; the explicit form
// is for work executing on a different thread than the request (batch
// workers). When the trace id is 0 the constructor does not even read the
// clock.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : ScopedSpan(name, current_trace_id()) {}
  ScopedSpan(const char* name, std::uint64_t trace_id)
      : name_(name), trace_id_(trace_id),
        start_ns_(trace_id == 0 ? 0 : Tracer::now_ns()) {}
  ~ScopedSpan() {
    if (trace_id_ != 0) Tracer::instance().record(name_, trace_id_, start_ns_, Tracer::now_ns());
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t trace_id_;
  std::uint64_t start_ns_;
};

#ifndef TCM_DISABLE_TRACING
#define TCM_TRACE_CONCAT_(a, b) a##b
#define TCM_TRACE_CONCAT(a, b) TCM_TRACE_CONCAT_(a, b)
#define TCM_TRACE_SPAN(name) ::tcm::obs::ScopedSpan TCM_TRACE_CONCAT(tcm_span_, __LINE__)(name)
#else
#define TCM_TRACE_SPAN(name) ((void)0)
#endif

}  // namespace tcm::obs
