// Watchdog: heartbeat-based liveness for background threads.
//
// The serving stack runs a dozen threads that must never silently stop:
// batch workers (requests queue forever if they wedge), the HTTP acceptor
// and workers (the port goes dark), the autopilot poller (drift goes
// unanswered). Each registers a named heartbeat; the thread beats on every
// loop iteration, marks itself idle while blocked waiting for work (idle
// threads never stall — a keep-alive connection with no traffic is not an
// incident), and names its current activity while busy so a stall report
// says *what* it was doing, not just that it stopped.
//
// report() folds the heartbeat ages into one readiness verdict:
//   healthy   — nothing stalled
//   degraded  — a non-critical thread stalled (autopilot poller); serving
//               still works, /healthz stays 200 so load balancers keep
//               routing, but the state is surfaced
//   unhealthy — a critical thread stalled (batch worker, HTTP acceptor);
//               /healthz turns 503 with the per-thread reason
//
// beat()/set_busy()/set_idle() are wait-free (relaxed atomic stores) so they
// can sit on per-batch and per-request paths. The clock is injectable so
// tests drive stall detection deterministically without sleeping.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace tcm::obs {

class Watchdog {
 public:
  // Steady nanoseconds; injectable for tests (nullptr = steady_clock).
  using NowFn = std::uint64_t (*)();

  explicit Watchdog(NowFn now = nullptr);

  // Opaque reference to a heartbeat slot. Slots live in a stable deque, so
  // the pointer stays valid (and beats stay lock-free) while other threads
  // register concurrently.
  struct Handle {
    void* slot = nullptr;
    bool valid() const { return slot != nullptr; }
  };

  // Registers a heartbeat; the thread starts idle. `stall_after` is how
  // long a *busy* heartbeat may age before the thread counts as stalled;
  // `critical` decides unhealthy vs degraded. Thread-safe.
  Handle register_thread(std::string name, std::chrono::milliseconds stall_after, bool critical);

  // Removes the heartbeat (clean thread exit); the slot is retired, not
  // reused, so stale handles can never alias a new thread.
  void unregister(Handle h);

  // Wait-free. set_busy names the current activity (must be a string
  // literal); set_idle marks the thread as blocked-waiting-for-work. All
  // three refresh the heartbeat.
  void beat(Handle h);
  void set_busy(Handle h, const char* activity);
  void set_idle(Handle h);

  enum class Health { kHealthy, kDegraded, kUnhealthy };
  static const char* health_name(Health h);  // "healthy"/"degraded"/"unhealthy"

  struct ThreadReport {
    std::string name;
    bool critical = false;
    bool idle = true;
    const char* activity = "";      // last set_busy() label
    double age_seconds = 0;         // since last beat
    double stall_after_seconds = 0;
    bool stalled = false;
  };
  struct Report {
    Health health = Health::kHealthy;
    std::vector<ThreadReport> threads;
    // "batch_worker_0 stalled for 12.4s in infer" — one clause per stalled
    // thread, "; "-joined; empty when healthy.
    std::string reason;
  };
  Report report() const;

  std::size_t registered_threads() const;

 private:
  struct Entry {
    std::string name;
    std::uint64_t stall_after_ns = 0;
    bool critical = false;
    std::atomic<bool> active{true};
    std::atomic<bool> idle{true};
    std::atomic<const char*> activity{""};
    std::atomic<std::uint64_t> last_beat_ns{0};
  };

  std::uint64_t now_ns() const;

  const NowFn now_;
  mutable std::mutex mu_;  // guards registration; beats are lock-free
  std::deque<Entry> entries_;  // deque: handles index into stable storage
};

}  // namespace tcm::obs
