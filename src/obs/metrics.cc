#include "obs/metrics.h"

#include <charconv>
#include <cmath>
#include <stdexcept>

namespace tcm::obs {

namespace {

void append_double(double v, std::string& out) {
  if (std::isnan(v)) {
    out += "NaN";
    return;
  }
  if (std::isinf(v)) {
    out += v > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buf[32];
  auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, end);
}

const char* kind_type_name(int kind) {
  switch (kind) {
    case 0: return "histogram";
    case 1: return "counter";
    default: return "gauge";
  }
}

}  // namespace

const std::string* MetricsRegistry::entry_name(const Entry& e) const {
  switch (e.kind) {
    case Kind::kHistogram: return &histograms_[e.index].name();
    case Kind::kCounter: return &counters_[e.index].name();
    case Kind::kGauge: return &gauges_[e.index].name();
    case Kind::kCallbackGauge: return &callback_gauges_[e.index].name;
  }
  return nullptr;
}

void MetricsRegistry::check_kind(const std::string& name, Kind kind) const {
  // Callback gauges and plain gauges share the `gauge` exposition type and
  // may coexist in one family; any other cross-kind reuse is a bug.
  const auto type_of = [](Kind k) {
    if (k == Kind::kHistogram) return 0;
    if (k == Kind::kCounter) return 1;
    return 2;
  };
  for (const Entry& e : order_) {
    if (*entry_name(e) == name && type_of(e.kind) != type_of(kind))
      throw std::logic_error("MetricsRegistry: family '" + name + "' registered as " +
                             kind_type_name(type_of(e.kind)) + " and " +
                             kind_type_name(type_of(kind)));
  }
}

Histogram& MetricsRegistry::histogram(const std::string& name, const std::string& help,
                                      const std::string& labels, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Histogram& h : histograms_)
    if (h.name() == name && h.labels() == labels) return h;
  check_kind(name, Kind::kHistogram);
  Histogram& h = histograms_.emplace_back(name, help, labels, std::move(bounds));
  order_.push_back({Kind::kHistogram, histograms_.size() - 1});
  return h;
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& help,
                                  const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Counter& c : counters_)
    if (c.name() == name && c.labels() == labels) return c;
  check_kind(name, Kind::kCounter);
  Counter& c = counters_.emplace_back(name, help, labels);
  order_.push_back({Kind::kCounter, counters_.size() - 1});
  return c;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Gauge& g : gauges_)
    if (g.name() == name && g.labels() == labels) return g;
  check_kind(name, Kind::kGauge);
  Gauge& g = gauges_.emplace_back(name, help, labels);
  order_.push_back({Kind::kGauge, gauges_.size() - 1});
  return g;
}

void MetricsRegistry::gauge_callback(const std::string& name, const std::string& help,
                                     const std::string& labels, std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  for (CallbackGauge& g : callback_gauges_) {
    if (g.name == name && g.labels == labels) {
      g.fn = std::move(fn);  // re-registration replaces the source
      return;
    }
  }
  check_kind(name, Kind::kCallbackGauge);
  callback_gauges_.push_back({name, help, labels, std::move(fn)});
  order_.push_back({Kind::kCallbackGauge, callback_gauges_.size() - 1});
}

std::string MetricsRegistry::render_prometheus(std::set<std::string>* emitted_families) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  // Families in first-registration order; members of one family rendered
  // together under a single HELP/TYPE preamble (skipped entirely when the
  // caller already emitted this family elsewhere on the response).
  std::vector<const std::string*> family_order;
  for (const Entry& e : order_) {
    const std::string* name = entry_name(e);
    bool seen = false;
    for (const std::string* f : family_order)
      if (*f == *name) seen = true;
    if (!seen) family_order.push_back(name);
  }
  for (const std::string* family : family_order) {
    bool preamble = emitted_families != nullptr && emitted_families->count(*family) > 0;
    if (emitted_families != nullptr) emitted_families->insert(*family);
    for (const Entry& e : order_) {
      if (*entry_name(e) != *family) continue;
      const auto preamble_for = [&](const std::string& help, const char* type) {
        if (preamble) return;
        out += "# HELP " + *family + ' ' + help + '\n';
        out += "# TYPE " + *family + ' ' + type + '\n';
        preamble = true;
      };
      switch (e.kind) {
        case Kind::kHistogram: {
          const Histogram& h = histograms_[e.index];
          preamble_for(h.help(), "histogram");
          const Histogram::Snapshot s = h.snapshot();
          const std::string sep = h.labels().empty() ? "" : h.labels() + ",";
          std::uint64_t cum = 0;
          for (std::size_t i = 0; i <= s.bounds.size(); ++i) {
            cum += s.counts[i];
            out += h.name() + "_bucket{" + sep + "le=\"";
            if (i == s.bounds.size()) {
              out += "+Inf";
            } else {
              append_double(s.bounds[i], out);
            }
            out += "\"} " + std::to_string(cum) + '\n';
          }
          const std::string label_block = h.labels().empty() ? "" : '{' + h.labels() + '}';
          out += h.name() + "_sum" + label_block + ' ';
          append_double(s.sum, out);
          out += '\n';
          out += h.name() + "_count" + label_block + ' ' + std::to_string(s.count) + '\n';
          break;
        }
        case Kind::kCounter: {
          const Counter& c = counters_[e.index];
          preamble_for(c.help(), "counter");
          const std::string label_block = c.labels().empty() ? "" : '{' + c.labels() + '}';
          out += c.name() + label_block + ' ' + std::to_string(c.value()) + '\n';
          break;
        }
        case Kind::kGauge: {
          const Gauge& g = gauges_[e.index];
          preamble_for(g.help(), "gauge");
          const std::string label_block = g.labels().empty() ? "" : '{' + g.labels() + '}';
          out += g.name() + label_block + ' ';
          append_double(g.value(), out);
          out += '\n';
          break;
        }
        case Kind::kCallbackGauge: {
          const CallbackGauge& g = callback_gauges_[e.index];
          preamble_for(g.help, "gauge");
          const std::string label_block = g.labels.empty() ? "" : '{' + g.labels + '}';
          out += g.name + label_block + ' ';
          append_double(g.fn ? g.fn() : 0.0, out);
          out += '\n';
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace tcm::obs
