// Process self-metrics: RSS, open fds, thread count, uptime — the numbers a
// dashboard needs to tell "the model regressed" apart from "the process is
// leaking". Read from /proc on Linux; zeros elsewhere.
#pragma once

#include <cstdint>

namespace tcm::obs {

class MetricsRegistry;

struct ProcessStats {
  std::uint64_t resident_bytes = 0;  // VmRSS
  std::uint64_t virtual_bytes = 0;   // VmSize
  std::uint64_t open_fds = 0;
  std::uint64_t threads = 0;
  double uptime_seconds = 0;  // since the first read_process_stats() call
};

ProcessStats read_process_stats();

// Registers tcm_process_* callback gauges (sampled per scrape) plus the
// constant `tcm_build_info{compiler=...,mode=...} 1` gauge.
void register_process_metrics(MetricsRegistry& registry);

}  // namespace tcm::obs
