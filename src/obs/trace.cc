#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

namespace tcm::obs {

namespace {

constexpr std::size_t kMaxLabels = 4096;

thread_local std::uint64_t t_current_trace_id = 0;

// JSON string escape for request-id labels (client-supplied bytes).
void append_escaped(const std::string& s, std::string& out) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::uint32_t trace_thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Tracer::Tracer() { ring_.reserve(ring_capacity_); }

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_sample_rate(double rate) {
  std::uint32_t stride = 0;
  if (rate > 0) {
    rate = std::min(rate, 1.0);
    stride = static_cast<std::uint32_t>(std::llround(1.0 / rate));
    if (stride == 0) stride = 1;
  }
  stride_.store(stride, std::memory_order_relaxed);
}

double Tracer::sample_rate() const {
  const std::uint32_t stride = stride_.load(std::memory_order_relaxed);
  return stride == 0 ? 0.0 : 1.0 / static_cast<double>(stride);
}

void Tracer::set_capacity(std::size_t spans) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_capacity_ = std::max<std::size_t>(spans, 1);
  ring_.clear();
  ring_.reserve(ring_capacity_);
  ring_next_ = 0;
  ring_wrapped_ = false;
}

std::uint64_t Tracer::sample_request() {
  const std::uint32_t stride = stride_.load(std::memory_order_relaxed);
  if (stride == 0) return 0;
  if (draws_.fetch_add(1, std::memory_order_relaxed) % stride != 0) return 0;
  return next_trace_id_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Tracer::force_request() {
  if (stride_.load(std::memory_order_relaxed) == 0) return 0;
  return next_trace_id_.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::set_label(std::uint64_t trace_id, std::string label) {
  if (trace_id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (labels_.size() >= kMaxLabels) labels_.erase(labels_.begin());
  labels_.emplace_back(trace_id, std::move(label));
}

void Tracer::record(const char* name, std::uint64_t trace_id, std::uint64_t start_ns,
                    std::uint64_t end_ns) {
  if (trace_id == 0) return;
  SpanRecord span;
  span.name = name;
  span.trace_id = trace_id;
  span.start_ns = start_ns;
  span.end_ns = end_ns;
  span.tid = trace_thread_id();
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < ring_capacity_) {
    ring_.push_back(span);
  } else {
    ring_[ring_next_] = span;
    ring_next_ = (ring_next_ + 1) % ring_capacity_;
    ring_wrapped_ = true;
  }
}

std::vector<SpanRecord> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!ring_wrapped_) return ring_;
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(ring_next_), ring_.end());
  out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(ring_next_));
  return out;
}

std::string Tracer::label(std::uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = labels_.rbegin(); it != labels_.rend(); ++it)
    if (it->first == trace_id) return it->second;
  return "";
}

std::string Tracer::export_chrome_json() const {
  std::vector<SpanRecord> all = spans();
  // chrome://tracing sorts internally, but a time-ordered export diffs
  // cleanly and is easier on the eyes raw.
  std::stable_sort(all.begin(), all.end(),
                   [](const SpanRecord& a, const SpanRecord& b) { return a.start_ns < b.start_ns; });
  std::string out;
  out.reserve(128 + all.size() * 160);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& s : all) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += s.name;
    out += "\",\"cat\":\"tcm\",\"ph\":\"X\",\"ts\":";
    // trace_event timestamps are microseconds; keep ns resolution as the
    // fractional part.
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(s.start_ns) / 1e3);
    out += buf;
    out += ",\"dur\":";
    std::snprintf(buf, sizeof buf, "%.3f",
                  static_cast<double>(s.end_ns - s.start_ns) / 1e3);
    out += buf;
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(s.tid);
    out += ",\"args\":{\"request_id\":\"";
    const std::string lbl = label(s.trace_id);
    if (lbl.empty()) {
      char idbuf[32];
      std::snprintf(idbuf, sizeof idbuf, "trace-%llu",
                    static_cast<unsigned long long>(s.trace_id));
      out += idbuf;
    } else {
      append_escaped(lbl, out);
    }
    out += "\"}}";
  }
  out += "]}";
  return out;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  ring_next_ = 0;
  ring_wrapped_ = false;
  labels_.clear();
}

std::uint64_t Tracer::now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

std::uint64_t current_trace_id() { return t_current_trace_id; }

TraceContext::TraceContext(std::uint64_t trace_id) : previous_(t_current_trace_id) {
  t_current_trace_id = trace_id;
}

TraceContext::~TraceContext() { t_current_trace_id = previous_; }

}  // namespace tcm::obs
