#include "obs/process.h"

#include <unistd.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <string>

#ifdef __linux__
#include <dirent.h>
#endif

#include "obs/metrics.h"

namespace tcm::obs {

namespace {

std::chrono::steady_clock::time_point process_start() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

#ifdef __linux__
std::uint64_t count_open_fds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  std::uint64_t n = 0;
  while (::readdir(dir) != nullptr) ++n;
  ::closedir(dir);
  // ".", ".." and the directory's own fd.
  return n > 3 ? n - 3 : 0;
}
#endif

}  // namespace

ProcessStats read_process_stats() {
  ProcessStats s;
  s.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - process_start()).count();
#ifdef __linux__
  // /proc/self/status has kB-denominated VmRSS/VmSize and the thread count;
  // one short sequential read per scrape.
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    const auto parse_kb = [&](const char* key) -> std::uint64_t {
      return std::strtoull(line.c_str() + std::strlen(key), nullptr, 10) * 1024;
    };
    if (line.rfind("VmRSS:", 0) == 0) {
      s.resident_bytes = parse_kb("VmRSS:");
    } else if (line.rfind("VmSize:", 0) == 0) {
      s.virtual_bytes = parse_kb("VmSize:");
    } else if (line.rfind("Threads:", 0) == 0) {
      s.threads = std::strtoull(line.c_str() + std::strlen("Threads:"), nullptr, 10);
    }
  }
  s.open_fds = count_open_fds();
#endif
  return s;
}

void register_process_metrics(MetricsRegistry& registry) {
  process_start();  // pin the uptime epoch to registration time at the latest
  registry.gauge_callback("tcm_process_resident_memory_bytes", "Resident set size (VmRSS).", "",
                          [] { return static_cast<double>(read_process_stats().resident_bytes); });
  registry.gauge_callback("tcm_process_virtual_memory_bytes", "Virtual memory size (VmSize).", "",
                          [] { return static_cast<double>(read_process_stats().virtual_bytes); });
  registry.gauge_callback("tcm_process_open_fds", "Open file descriptors.", "",
                          [] { return static_cast<double>(read_process_stats().open_fds); });
  registry.gauge_callback("tcm_process_threads", "OS threads in the process.", "",
                          [] { return static_cast<double>(read_process_stats().threads); });
  registry.gauge_callback("tcm_process_uptime_seconds", "Seconds since process start.", "",
                          [] { return read_process_stats().uptime_seconds; });

  std::string build_labels = "compiler=\"";
#if defined(__clang__)
  build_labels += "clang ";
  build_labels += __clang_version__;
#elif defined(__GNUC__)
  build_labels += "gcc " + std::to_string(__GNUC__) + "." + std::to_string(__GNUC_MINOR__);
#else
  build_labels += "unknown";
#endif
  build_labels += "\",mode=\"";
#ifdef NDEBUG
  build_labels += "release";
#else
  build_labels += "debug";
#endif
  build_labels += "\"";
  registry.gauge("tcm_build_info", "Constant 1; build metadata in the labels.", build_labels)
      .set(1.0);
}

}  // namespace tcm::obs
