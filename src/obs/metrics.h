// Counter/gauge metrics and the unified MetricsRegistry.
//
// PR 6 introduced the registry holding only histograms; every other family
// on /metrics was hand-rendered from a StatsSnapshot in api/metrics.cc, so
// drift signals, cycle outcomes and cache ratios could not be owned by the
// subsystems that produce them. This layer completes the instrument set:
//
//   - Counter: monotone uint64, wait-free inc()/add() (one relaxed atomic
//     fetch_add), for event totals (autopilot cycles, drift triggers).
//   - Gauge: settable double, wait-free set()/add(), for point-in-time
//     values (queue depth, cache hit ratio, drift signal levels).
//   - Callback gauges: sampled at render time, for values that live outside
//     any subsystem object (process RSS/fds/uptime from /proc).
//
// MetricsRegistry hands out all three plus histograms, keyed (name, labels)
// get-or-create with stable references, and renders one Prometheus 0.0.4
// text block: families in first-registration order, exactly one HELP/TYPE
// preamble per family regardless of how many label sets it has. Callers
// that hand-render additional families on the same response pass a shared
// `emitted_families` set so no family ever gets a second TYPE line.
//
// Registration takes a mutex (once, at construction time); updates never do.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "obs/histogram.h"

namespace tcm::obs {

class Counter {
 public:
  Counter(std::string name, std::string help, std::string labels)
      : name_(std::move(name)), help_(std::move(help)), labels_(std::move(labels)) {}

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  // Wait-free.
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }
  const std::string& labels() const { return labels_; }

 private:
  const std::string name_;
  const std::string help_;
  const std::string labels_;
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  Gauge(std::string name, std::string help, std::string labels)
      : name_(std::move(name)), help_(std::move(help)), labels_(std::move(labels)) {}

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  // Wait-free (add() is a CAS loop, still lock-free; contention on a gauge
  // is one writer in practice).
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }
  const std::string& labels() const { return labels_; }

 private:
  const std::string name_;
  const std::string help_;
  const std::string labels_;
  std::atomic<double> value_{0.0};
};

class MetricsRegistry {
 public:
  // Get-or-create by (name, labels); `help` (and `bounds` for histograms)
  // are taken from the first registration of the pair. Thread-safe; the
  // returned references are stable for the registry's lifetime. Registering
  // one family name under two different instrument kinds is a programming
  // error and throws.
  Histogram& histogram(const std::string& name, const std::string& help,
                       const std::string& labels, std::vector<double> bounds);
  Counter& counter(const std::string& name, const std::string& help,
                   const std::string& labels = "");
  Gauge& gauge(const std::string& name, const std::string& help, const std::string& labels = "");

  // A gauge whose value is pulled from `fn` at render time; for
  // process-global sources (/proc) where no object owns the number. The
  // callback must stay valid for the registry's lifetime and be callable
  // from any thread.
  void gauge_callback(const std::string& name, const std::string& help,
                      const std::string& labels, std::function<double()> fn);

  // Prometheus 0.0.4 text: families in first-registration order, HELP/TYPE
  // once per family, then one sample line (or bucket block) per label set.
  // When `emitted_families` is non-null, families already in the set get
  // samples but no HELP/TYPE preamble, and every family rendered here is
  // added to it — the dedupe contract with hand-rendered expositions.
  std::string render_prometheus(std::set<std::string>* emitted_families = nullptr) const;

 private:
  enum class Kind { kHistogram, kCounter, kGauge, kCallbackGauge };
  struct CallbackGauge {
    std::string name;
    std::string help;
    std::string labels;
    std::function<double()> fn;
  };
  // (kind, index into that kind's deque) in registration order; render
  // groups consecutive same-name runs into one family block.
  struct Entry {
    Kind kind;
    std::size_t index;
  };

  const std::string* entry_name(const Entry& e) const;
  void check_kind(const std::string& name, Kind kind) const;

  mutable std::mutex mu_;
  std::deque<Histogram> histograms_;  // deques: references must not move
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<CallbackGauge> callback_gauges_;
  std::vector<Entry> order_;
};

}  // namespace tcm::obs
