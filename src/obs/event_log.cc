#include "obs/event_log.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>

namespace tcm::obs {

namespace {

constexpr std::size_t kDefaultCapacity = 512;

std::int64_t wall_ms_now() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void append_escaped(const std::string& s, std::string& out) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_event_json(const Event& e, std::string& out) {
  out += "{\"seq\":" + std::to_string(e.seq);
  out += ",\"wall_ms\":" + std::to_string(e.wall_ms);
  out += ",\"type\":\"";
  out += e.type;
  out += "\",\"severity\":\"";
  out += e.severity;
  out += "\",\"trace_id\":" + std::to_string(e.trace_id);
  out += ",\"detail\":\"";
  append_escaped(e.detail, out);
  out += "\"}";
}

// write(2) the whole buffer, retrying on short writes; best-effort.
void write_all(int fd, const char* data, std::size_t len) noexcept {
  while (len > 0) {
    const ::ssize_t n = ::write(fd, data, len);
    if (n <= 0) return;
    data += static_cast<std::size_t>(n);
    len -= static_cast<std::size_t>(n);
  }
}

}  // namespace

EventLog::EventLog() : capacity_(kDefaultCapacity) { ring_.resize(capacity_); }

EventLog& EventLog::instance() {
  static EventLog log;
  return log;
}

void EventLog::emit(const char* type, const char* severity, std::string detail,
                    std::uint64_t trace_id) {
  const std::int64_t now = wall_ms_now();
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t seq = emitted_.load(std::memory_order_relaxed) + 1;
  Event& slot = ring_[static_cast<std::size_t>((seq - 1) % capacity_)];
  slot.seq = seq;
  slot.wall_ms = now;
  slot.type = type;
  slot.severity = severity;
  slot.trace_id = trace_id;
  slot.detail = std::move(detail);
  emitted_.store(seq, std::memory_order_release);
}

std::vector<Event> EventLog::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t emitted = emitted_.load(std::memory_order_relaxed);
  const std::uint64_t resident = emitted < capacity_ ? emitted : capacity_;
  std::vector<Event> out;
  out.reserve(static_cast<std::size_t>(resident));
  for (std::uint64_t seq = emitted - resident + 1; seq <= emitted; ++seq)
    out.push_back(ring_[static_cast<std::size_t>((seq - 1) % capacity_)]);
  return out;
}

std::string EventLog::render_json() const {
  const std::vector<Event> snap = events();
  const std::uint64_t emitted = total_emitted();
  std::string out;
  out.reserve(128 + snap.size() * 96);
  out += "{\"emitted\":" + std::to_string(emitted);
  out += ",\"dropped\":" + std::to_string(emitted - snap.size());
  out += ",\"events\":[";
  for (std::size_t i = 0; i < snap.size(); ++i) {
    if (i > 0) out += ',';
    append_event_json(snap[i], out);
  }
  out += "]}";
  return out;
}

void EventLog::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity > 0 ? capacity : 1;
  ring_.assign(capacity_, Event{});
  emitted_.store(0, std::memory_order_relaxed);
}

void EventLog::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.assign(capacity_, Event{});
  emitted_.store(0, std::memory_order_relaxed);
}

void EventLog::dump_to_fd(int fd) const noexcept {
  // No lock, no allocation: callable from a fatal-signal handler. Slots are
  // read racily — an event being overwritten concurrently may tear — but
  // every byte written is still valid JSON, and details are copied into a
  // bounded stack buffer. At crash time that trade is the right one.
  char buf[512];
  const std::uint64_t emitted = emitted_.load(std::memory_order_acquire);
  const std::uint64_t resident = emitted < capacity_ ? emitted : capacity_;
  int n = std::snprintf(buf, sizeof buf, "{\"emitted\":%llu,\"dropped\":%llu,\"events\":[",
                        static_cast<unsigned long long>(emitted),
                        static_cast<unsigned long long>(emitted - resident));
  write_all(fd, buf, static_cast<std::size_t>(n));
  bool first = true;
  for (std::uint64_t seq = emitted - resident + 1; seq <= emitted; ++seq) {
    const Event& e = ring_[static_cast<std::size_t>((seq - 1) % capacity_)];
    // Escape the detail into a bounded buffer (quotes/backslashes only; the
    // emitters produce plain logfmt ASCII).
    char detail[256];
    std::size_t di = 0;
    for (std::size_t i = 0; i < e.detail.size() && di + 2 < sizeof detail; ++i) {
      const char c = e.detail[i];
      if (c == '"' || c == '\\') detail[di++] = '\\';
      detail[di++] = static_cast<unsigned char>(c) < 0x20 ? ' ' : c;
    }
    detail[di] = '\0';
    n = std::snprintf(buf, sizeof buf,
                      "%s{\"seq\":%llu,\"wall_ms\":%lld,\"type\":\"%s\",\"severity\":\"%s\","
                      "\"trace_id\":%llu,\"detail\":\"%s\"}",
                      first ? "" : ",", static_cast<unsigned long long>(e.seq),
                      static_cast<long long>(e.wall_ms), e.type, e.severity,
                      static_cast<unsigned long long>(e.trace_id), detail);
    if (n > 0) write_all(fd, buf, static_cast<std::size_t>(n) < sizeof buf
                                      ? static_cast<std::size_t>(n)
                                      : sizeof buf - 1);
    first = false;
  }
  write_all(fd, "]}\n", 3);
}

}  // namespace tcm::obs
