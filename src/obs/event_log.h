// Flight recorder: a bounded ring of structured events.
//
// Latency histograms say *how slow*; traces say *where the time went*; the
// event log says *what happened* — the discrete state changes that explain
// a postmortem: drift triggered (with the signal values that fired), cycle
// started/finished/failed, model promoted/rolled back (with versions),
// hot-swap applied, slow request, HTTP 5xx, registry GC. Emission sites are
// rare (per cycle / per incident, never per request), so a short
// mutex-guarded critical section per emit is cheap; readers copy the ring.
//
// The log is a process-wide singleton so the fatal-signal path can reach it
// without any object plumbing: dump_to_fd() walks the ring with snprintf +
// write() only — no locks, no allocation — so a crash handler can leave a
// parseable black box behind even while another thread holds the mutex.
// Racing emitters can at worst tear one in-flight event; seq gaps in the
// dump are expected and harmless.
//
// JSON format (render_json(), /debug/events, --flight-recorder-out):
//   {"emitted":N,"dropped":N,"events":[
//     {"seq":12,"wall_ms":1754560000123,"type":"drift_trigger",
//      "severity":"warn","trace_id":7,"detail":"psi=0.31 threshold=0.25"}]}
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace tcm::obs {

struct Event {
  std::uint64_t seq = 0;      // 1-based, strictly increasing across the ring
  std::int64_t wall_ms = 0;   // unix epoch milliseconds
  const char* type = "";      // static literal: "cycle_start", "promote", ...
  const char* severity = "";  // "info" | "warn" | "error"
  std::uint64_t trace_id = 0; // correlates with traces/logs; 0 = none
  std::string detail;         // logfmt payload: "from=v1 to=v2"
};

class EventLog {
 public:
  static EventLog& instance();

  // `type` and `severity` must be string literals (stored by pointer so the
  // signal-path dump never touches the allocator for them).
  void emit(const char* type, const char* severity, std::string detail,
            std::uint64_t trace_id = 0);

  // Oldest-first copy of the resident ring.
  std::vector<Event> events() const;

  std::uint64_t total_emitted() const { return emitted_.load(std::memory_order_relaxed); }
  std::size_t capacity() const { return capacity_; }

  std::string render_json() const;

  // Resizes the ring (drops resident events); test hook.
  void set_capacity(std::size_t capacity);
  void clear();

  // Async-signal best-effort dump: fixed buffers, write(2) only, no lock.
  // Event details are read racily; the output is still well-formed JSON.
  void dump_to_fd(int fd) const noexcept;

 private:
  EventLog();

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<Event> ring_;   // ring_[ (seq-1) % capacity_ ]
  std::atomic<std::uint64_t> emitted_{0};
};

}  // namespace tcm::obs
