#include "obs/watchdog.h"

#include <cstdio>

namespace tcm::obs {

Watchdog::Watchdog(NowFn now) : now_(now) {}

std::uint64_t Watchdog::now_ns() const {
  if (now_ != nullptr) return now_();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Watchdog::Handle Watchdog::register_thread(std::string name,
                                           std::chrono::milliseconds stall_after, bool critical) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_.emplace_back();
  e.name = std::move(name);
  e.stall_after_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(stall_after).count());
  e.critical = critical;
  e.last_beat_ns.store(now_ns(), std::memory_order_relaxed);
  return Handle{&e};
}

void Watchdog::unregister(Handle h) {
  if (!h.valid()) return;
  static_cast<Entry*>(h.slot)->active.store(false, std::memory_order_relaxed);
}

void Watchdog::beat(Handle h) {
  if (!h.valid()) return;
  static_cast<Entry*>(h.slot)->last_beat_ns.store(now_ns(), std::memory_order_relaxed);
}

void Watchdog::set_busy(Handle h, const char* activity) {
  if (!h.valid()) return;
  Entry& e = *static_cast<Entry*>(h.slot);
  e.activity.store(activity, std::memory_order_relaxed);
  e.idle.store(false, std::memory_order_relaxed);
  e.last_beat_ns.store(now_ns(), std::memory_order_relaxed);
}

void Watchdog::set_idle(Handle h) {
  if (!h.valid()) return;
  Entry& e = *static_cast<Entry*>(h.slot);
  e.idle.store(true, std::memory_order_relaxed);
  e.last_beat_ns.store(now_ns(), std::memory_order_relaxed);
}

const char* Watchdog::health_name(Health h) {
  switch (h) {
    case Health::kHealthy: return "healthy";
    case Health::kDegraded: return "degraded";
    case Health::kUnhealthy: return "unhealthy";
  }
  return "?";
}

Watchdog::Report Watchdog::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  Report r;
  const std::uint64_t now = now_ns();
  for (const Entry& e : entries_) {
    if (!e.active.load(std::memory_order_relaxed)) continue;
    ThreadReport t;
    t.name = e.name;
    t.critical = e.critical;
    t.idle = e.idle.load(std::memory_order_relaxed);
    t.activity = e.activity.load(std::memory_order_relaxed);
    const std::uint64_t beat = e.last_beat_ns.load(std::memory_order_relaxed);
    const std::uint64_t age = now > beat ? now - beat : 0;
    t.age_seconds = static_cast<double>(age) * 1e-9;
    t.stall_after_seconds = static_cast<double>(e.stall_after_ns) * 1e-9;
    t.stalled = !t.idle && age > e.stall_after_ns;
    if (t.stalled) {
      if (!r.reason.empty()) r.reason += "; ";
      char buf[160];
      std::snprintf(buf, sizeof buf, "%s stalled for %.1fs%s%s", t.name.c_str(), t.age_seconds,
                    *t.activity != '\0' ? " in " : "", t.activity);
      r.reason += buf;
      if (e.critical) {
        r.health = Health::kUnhealthy;
      } else if (r.health == Health::kHealthy) {
        r.health = Health::kDegraded;
      }
    }
    r.threads.push_back(std::move(t));
  }
  return r;
}

std::size_t Watchdog::registered_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const Entry& e : entries_)
    if (e.active.load(std::memory_order_relaxed)) ++n;
  return n;
}

}  // namespace tcm::obs
