// Affine dependence analysis over the rectangular iteration domains of our
// IR. Used to decide fusion legality (producer-consumer alignment) and
// parallelization/vectorization legality (no loop-carried dependence at the
// chosen level). Because every store in the IR indexes each buffer dimension
// by a single (possibly tile-split) iterator, dependences can be bounded
// exactly by interval arithmetic on a value-space difference row.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ir/program.h"

namespace tcm::transforms {

// Range of the value-space difference for one buffer dimension:
//   D = (index value the consumer reads) - (index value the producer has
//        produced at the consumer's current shared iteration)
// over the consumer's iteration domain, assuming producer and consumer share
// their first `shared_depth` loops.
//   max <= 0 : the consumer only reads already-produced values (legal order)
//   min == max == 0 : producer and consumer instances are perfectly aligned
//   max > 0  : the consumer may read values produced later (illegal if the
//              shared loop orders them)
// `row` is the producer store row under analysis. Returns nullopt when the
// store row depends on producer-private loops (conservatively unanalyzable).
std::optional<ir::AccessMatrix::Range> value_difference_range(
    const ir::AccessMatrix& store, int row, const ir::AccessMatrix& load, int shared_depth,
    std::span<const std::int64_t> consumer_extents);

// True iff computation `consumer` reads the buffer written by `producer`.
bool reads_output_of(const ir::Program& p, int consumer_id, int producer_id);

// Checks whether fusing the nests of producer computations `comps_a` with
// consumers `comps_b` at `depth` shared loops preserves every producer ->
// consumer dependence. Returns the first violation, or nullopt when legal.
std::optional<std::string> check_fusion_dependences(const ir::Program& p,
                                                    std::span<const int> comps_a,
                                                    std::span<const int> comps_b, int depth);

// True when some dependence is carried by the loop `loop_id`: an iteration
// of that loop may read a value produced by a *different* iteration of it.
// Such a loop must not be parallelized or vectorized.
bool level_carries_dependence(const ir::Program& p, int loop_id);

// --- dependence distance vectors (skewing / wavefront legality) ---

// Per-level ranges of the dependence distance vector of the flow dependence
// producer -> consumer through `load` (a load in the consumer reading the
// producer's output buffer), expressed in the programs's *current* loop
// basis over the shared loop prefix of the two nests:
//   d[l] = (consumer iteration at level l) - (shared-prefix iteration of the
//          producer instance that wrote the value being read)
// The analysis lifts both access matrices to a rectangular "raw" basis (tile
// pairs re-merged, skewed pairs un-skewed), pins each raw iterator of the
// producer instance via store rows with unit coefficient, solves the
// resulting interval per raw level, and maps the raw distances back through
// the tile / skew structure. Levels whose producing iteration cannot be
// pinned get the full +/- iteration span. Returns nullopt when the pair is
// not analyzable at all (e.g. a non-canonical split access pattern), in
// which case callers must be conservative.
std::optional<std::vector<ir::AccessMatrix::Range>> dependence_distance_ranges(
    const ir::Program& p, int producer_id, int consumer_id, const ir::BufferAccess& load);

// True iff a distance vector with the given per-level ranges is provably
// lexicographically non-negative; an all-zero vector is legal only when the
// producer precedes the consumer textually (`producer_first`).
bool distances_lex_nonneg(std::span<const ir::AccessMatrix::Range> d, bool producer_first);

// Whole-program sanity check used by the legality fuzz tests: verifies every
// analyzable producer -> consumer dependence distance vector is
// lexicographically non-negative under the current loop structure. Returns
// the first provable violation, or nullopt when none is found.
std::optional<std::string> check_lexicographic_order(const ir::Program& p);

}  // namespace tcm::transforms
