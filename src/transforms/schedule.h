// Schedules: sequences of code transformations applied to a program.
//
// Following the paper's search space (Figure 3 and Section 2), extended to
// the LOOPer-class space of the follow-up work (skewing and general
// unimodular transformations, arXiv 2206.03684 / 2403.11522), a schedule is
// a canonically ordered sequence:
//   fusions -> skews -> unimodulars -> interchanges -> tilings ->
//   unrollings -> parallelization -> vectorization
// Interchange/skew/unimodular/tile levels refer to the computation's loop
// nest *before tiling* (fusion, skewing and interchange do not renumber
// levels); the applier maps them to the restructured tree. Unroll and
// vectorize always target the innermost loop of the computation, as in the
// paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tcm::transforms {

// Fuse the root loop nests containing computations a and b at `depth` loops.
// The two nests must be adjacent top-level nests with matching extents on the
// first `depth` levels.
struct FuseSpec {
  int comp_a = -1;
  int comp_b = -1;
  int depth = 1;
  bool operator==(const FuseSpec&) const = default;
};

// Swap two loop levels of a computation's nest.
struct InterchangeSpec {
  int comp = -1;
  int level_a = 0;
  int level_b = 1;
  bool operator==(const InterchangeSpec&) const = default;
};

// Skew the adjacent pair (level_a, level_a+1) of the computation's nest with
// factor f >= 1: the inner iterator is reindexed to t = j + f*i. Skewing
// alone never reorders iterations (it is a pure change of basis and is
// always legal when structurally applicable); its payoff is the wavefront
// order obtained by subsequently interchanging the skewed pair, which is
// where the dependence-distance legality check bites.
struct SkewSpec {
  int comp = -1;
  int level_a = 0;              // outer loop of the pair; inner is level_a+1
  std::int64_t factor = 1;
  bool operator==(const SkewSpec&) const = default;
};

// General unimodular transform of `k` adjacent levels starting at `level`,
// where k*k = coeffs.size() (row-major, k = 2 or 3): new iteration vector
// y = U x. Subsumes interchange (permutation matrices) and skewing
// (elementary skew matrices). The applier decomposes U into the supported
// primitive sequence P2 * skew * P1 (any permutation, at most one adjacent
// skew with factor in [1,8], optionally followed by the wavefront swap of
// the skewed pair) and rejects undecomposable matrices as illegal.
struct UnimodularSpec {
  int comp = -1;
  int level = 0;
  std::vector<std::int64_t> coeffs;  // row-major k x k, |det| == 1
  bool operator==(const UnimodularSpec&) const = default;
};

// Tile `sizes.size()` consecutive loop levels starting at `level`:
// (i, j) -> (i/s0, j/s1, i%s0, j%s1). Supports 2-D and 3-D tiling.
struct TileSpec {
  int comp = -1;
  int level = 0;
  std::vector<std::int64_t> sizes;
  bool operator==(const TileSpec&) const = default;
};

// Unroll the innermost loop of the computation by `factor` (annotation).
struct UnrollSpec {
  int comp = -1;
  int factor = 2;
  bool operator==(const UnrollSpec&) const = default;
};

// Mark the loop at `level` (pre-tiling coordinates) of the computation's
// nest as parallel.
struct ParallelizeSpec {
  int comp = -1;
  int level = 0;
  bool operator==(const ParallelizeSpec&) const = default;
};

// Vectorize the innermost loop of the computation with the given width.
struct VectorizeSpec {
  int comp = -1;
  int width = 8;
  bool operator==(const VectorizeSpec&) const = default;
};

struct Schedule {
  std::vector<FuseSpec> fusions;
  std::vector<SkewSpec> skews;
  std::vector<UnimodularSpec> unimodulars;
  std::vector<InterchangeSpec> interchanges;
  std::vector<TileSpec> tiles;
  std::vector<UnrollSpec> unrolls;
  std::vector<ParallelizeSpec> parallels;
  std::vector<VectorizeSpec> vectorizes;

  bool empty() const {
    return fusions.empty() && skews.empty() && unimodulars.empty() && interchanges.empty() &&
           tiles.empty() && unrolls.empty() && parallels.empty() && vectorizes.empty();
  }

  // Total number of transformation commands.
  std::size_t size() const {
    return fusions.size() + skews.size() + unimodulars.size() + interchanges.size() +
           tiles.size() + unrolls.size() + parallels.size() + vectorizes.size();
  }

  // Human-readable rendering, e.g. "fuse(c0,c1,@1); interchange(c0,0,2); ...".
  std::string to_string() const;

  bool operator==(const Schedule&) const = default;
};

}  // namespace tcm::transforms
