// Schedules: sequences of code transformations applied to a program.
//
// Following the paper's search space (Figure 3 and Section 2), a schedule is
// a canonically ordered sequence:
//   fusions -> interchanges -> tilings -> unrollings -> parallelization ->
//   vectorization
// Interchange/tile levels refer to the computation's loop nest *before
// tiling* (fusion and interchange do not renumber levels); the applier maps
// them to the restructured tree. Unroll and vectorize always target the
// innermost loop of the computation, as in the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tcm::transforms {

// Fuse the root loop nests containing computations a and b at `depth` loops.
// The two nests must be adjacent top-level nests with matching extents on the
// first `depth` levels.
struct FuseSpec {
  int comp_a = -1;
  int comp_b = -1;
  int depth = 1;
  bool operator==(const FuseSpec&) const = default;
};

// Swap two loop levels of a computation's nest.
struct InterchangeSpec {
  int comp = -1;
  int level_a = 0;
  int level_b = 1;
  bool operator==(const InterchangeSpec&) const = default;
};

// Tile `sizes.size()` consecutive loop levels starting at `level`:
// (i, j) -> (i/s0, j/s1, i%s0, j%s1). Supports 2-D and 3-D tiling.
struct TileSpec {
  int comp = -1;
  int level = 0;
  std::vector<std::int64_t> sizes;
  bool operator==(const TileSpec&) const = default;
};

// Unroll the innermost loop of the computation by `factor` (annotation).
struct UnrollSpec {
  int comp = -1;
  int factor = 2;
  bool operator==(const UnrollSpec&) const = default;
};

// Mark the loop at `level` (pre-tiling coordinates) of the computation's
// nest as parallel.
struct ParallelizeSpec {
  int comp = -1;
  int level = 0;
  bool operator==(const ParallelizeSpec&) const = default;
};

// Vectorize the innermost loop of the computation with the given width.
struct VectorizeSpec {
  int comp = -1;
  int width = 8;
  bool operator==(const VectorizeSpec&) const = default;
};

struct Schedule {
  std::vector<FuseSpec> fusions;
  std::vector<InterchangeSpec> interchanges;
  std::vector<TileSpec> tiles;
  std::vector<UnrollSpec> unrolls;
  std::vector<ParallelizeSpec> parallels;
  std::vector<VectorizeSpec> vectorizes;

  bool empty() const {
    return fusions.empty() && interchanges.empty() && tiles.empty() && unrolls.empty() &&
           parallels.empty() && vectorizes.empty();
  }

  // Total number of transformation commands.
  std::size_t size() const {
    return fusions.size() + interchanges.size() + tiles.size() + unrolls.size() +
           parallels.size() + vectorizes.size();
  }

  // Human-readable rendering, e.g. "fuse(c0,c1,@1); interchange(c0,0,2); ...".
  std::string to_string() const;

  bool operator==(const Schedule&) const = default;
};

}  // namespace tcm::transforms
