#include "transforms/apply.h"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "transforms/dependence.h"

namespace tcm::transforms {
namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

bool is_power_of_two(int x) { return x > 0 && (x & (x - 1)) == 0; }

void collect_comps(const ir::Program& p, int loop_id, std::vector<int>& out) {
  for (const ir::BodyItem& item : p.loop(loop_id).body) {
    if (item.kind == ir::BodyItem::Kind::Loop) collect_comps(p, item.index, out);
    else out.push_back(item.index);
  }
}

// Rewrites access-matrix columns for a d-dimensional tiling at level t:
// old column t+k (k < d) becomes outer column t+k with coefficient v*s_k and
// inner column t+d+k with coefficient v; later columns shift right by d.
ir::AccessMatrix tile_columns(const ir::AccessMatrix& m, int t,
                              std::span<const std::int64_t> sizes) {
  const int d = static_cast<int>(sizes.size());
  ir::AccessMatrix out(m.rank(), m.depth() + d);
  for (int r = 0; r < m.rank(); ++r) {
    out.set(r, out.depth(), m.constant(r));
    for (int c = 0; c < m.depth(); ++c) {
      const std::int64_t v = m.at(r, c);
      if (c < t) {
        out.set(r, c, v);
      } else if (c < t + d) {
        const int k = c - t;
        out.set(r, t + k, v * sizes[static_cast<std::size_t>(k)]);
        out.set(r, t + d + k, v);
      } else {
        out.set(r, c + d, v);
      }
    }
  }
  return out;
}

// Stateful applier working on a private copy of the program.
class Applier {
 public:
  explicit Applier(const ir::Program& p) : prog_(p) {}

  // Each step returns an error string on legality failure.
  std::optional<std::string> fuse(const FuseSpec& s);
  std::optional<std::string> skew(const SkewSpec& s);
  std::optional<std::string> unimodular(const UnimodularSpec& s);
  std::optional<std::string> interchange(const InterchangeSpec& s);
  std::optional<std::string> tile(const TileSpec& s);
  std::optional<std::string> unroll(const UnrollSpec& s);
  std::optional<std::string> parallelize(const ParallelizeSpec& s);
  std::optional<std::string> vectorize(const VectorizeSpec& s);

  // Renumbers the loop arena after structural edits and re-validates.
  std::optional<std::string> finalize();

  ir::Program take() { return std::move(prog_); }

 private:
  std::optional<std::string> check_comp(int comp_id) const {
    if (comp_id < 0 || comp_id >= static_cast<int>(prog_.comps.size()))
      return "unknown computation id " + std::to_string(comp_id);
    return std::nullopt;
  }

  // Checks that swapping levels (la, lb) of the nests under loop `b_id`
  // preserves every producer->consumer dependence: the post-swap distance
  // vector is the pre-swap one with entries la and lb exchanged (the raw
  // distances and the per-level mapping are invariant under the swap), so
  // the check runs *before* any mutation and needs no rollback.
  std::optional<std::string> check_interchange_dependences(int b_id, int la, int lb) const {
    std::vector<int> comps;
    collect_comps(prog_, b_id, comps);
    if (comps.size() < 2) return std::nullopt;
    const std::vector<int> order = prog_.comps_in_order();
    std::vector<int> order_index(prog_.comps.size(), 0);
    for (std::size_t i = 0; i < order.size(); ++i)
      order_index[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
    for (int pa : comps) {
      const ir::Computation& prod = prog_.comp(pa);
      for (int cb : comps) {
        if (pa == cb) continue;
        const ir::Computation& cons = prog_.comp(cb);
        for (const ir::BufferAccess& load : cons.rhs.loads()) {
          if (load.buffer_id != prod.store.buffer_id) continue;
          auto dvec = dependence_distance_ranges(prog_, pa, cb, load);
          if (!dvec)
            return "interchange: dependence of " + cons.name + " on " + prod.name +
                   " is not analyzable";
          if (la < static_cast<int>(dvec->size()) && lb < static_cast<int>(dvec->size()))
            std::swap((*dvec)[static_cast<std::size_t>(la)],
                      (*dvec)[static_cast<std::size_t>(lb)]);
          const bool prod_first = order_index[static_cast<std::size_t>(pa)] <
                                  order_index[static_cast<std::size_t>(cb)];
          if (!distances_lex_nonneg(*dvec, prod_first))
            return "interchange: would reverse the dependence of " + cons.name + " on " +
                   prod.name + " (lexicographically negative distance after swap)";
        }
      }
    }
    return std::nullopt;
  }

  // True iff levels [a, b] of `nest` form a perfectly nested chain: each
  // loop in [a, b) has exactly one body item, the next loop of the nest.
  bool perfectly_nested(const std::vector<int>& nest, int a, int b) const {
    for (int l = a; l < b; ++l) {
      const ir::LoopNode& ln = prog_.loop(nest[static_cast<std::size_t>(l)]);
      if (ln.body.size() != 1) return false;
      const ir::BodyItem& only = ln.body.front();
      if (only.kind != ir::BodyItem::Kind::Loop ||
          only.index != nest[static_cast<std::size_t>(l + 1)])
        return false;
    }
    return true;
  }

  // Maps a pre-tiling level of `comp` to the current nest index, accounting
  // for an earlier tiling of the same nest.
  int map_level(int comp_id, int level) const {
    auto it = tiled_.find(comp_id);
    if (it == tiled_.end()) return level;
    const auto& [t, d] = it->second;
    if (level < t + d) return level;  // outer tile loops keep their index
    return level + d;
  }

  ir::Program prog_;
  // comp id -> (tile level, tile dims) for nests already tiled; shared nests
  // record every computation they cover.
  std::map<int, std::pair<int, int>> tiled_;
};

std::optional<std::string> Applier::fuse(const FuseSpec& s) {
  if (auto e = check_comp(s.comp_a)) return e;
  if (auto e = check_comp(s.comp_b)) return e;
  if (s.depth < 1) return std::string("fusion depth must be >= 1");

  const std::vector<int> nest_a = prog_.nest_of(s.comp_a);
  const std::vector<int> nest_b = prog_.nest_of(s.comp_b);
  const int root_a = nest_a.front();
  const int root_b = nest_b.front();
  if (root_a == root_b) return std::string("fusion: computations already share a nest");

  // The nests must be adjacent top-level nests, a before b.
  const auto it_a = std::find(prog_.roots.begin(), prog_.roots.end(), root_a);
  const auto it_b = std::find(prog_.roots.begin(), prog_.roots.end(), root_b);
  if (it_a == prog_.roots.end() || it_b == prog_.roots.end())
    return std::string("fusion: computations must live in top-level nests");
  if (it_b != it_a + 1) return std::string("fusion: nests must be textually adjacent (a before b)");

  if (s.depth > static_cast<int>(nest_a.size()) || s.depth > static_cast<int>(nest_b.size()))
    return std::string("fusion: depth exceeds a nest's depth");

  // Matching extents on the fused levels.
  for (int l = 0; l < s.depth; ++l) {
    const auto& la = prog_.loop(nest_a[static_cast<std::size_t>(l)]);
    const auto& lb = prog_.loop(nest_b[static_cast<std::size_t>(l)]);
    if (la.iter.extent != lb.iter.extent)
      return "fusion: extent mismatch at level " + std::to_string(l);
    if (la.tail_of != -1 || lb.tail_of != -1)
      return std::string("fusion: cannot fuse tiled loops");
    if (la.skew_of != -1 || lb.skew_of != -1)
      return std::string("fusion: cannot fuse skewed loops");
  }

  // The b-side must be a pure chain above the fusion depth so that merging
  // does not reorder statements of nest b relative to each other.
  if (!perfectly_nested(nest_b, 0, s.depth - 1))
    return std::string("fusion: nest b is not perfectly nested down to the fusion depth");

  // Dependence legality.
  std::vector<int> comps_a, comps_b;
  collect_comps(prog_, root_a, comps_a);
  collect_comps(prog_, root_b, comps_b);
  if (auto err = check_fusion_dependences(prog_, comps_a, comps_b, s.depth)) return err;

  // Merge: move children of b's level-l loop into a's level-l loop.
  for (int l = 0; l < s.depth; ++l) {
    ir::LoopNode& la = prog_.loop(nest_a[static_cast<std::size_t>(l)]);
    ir::LoopNode& lb = prog_.loop(nest_b[static_cast<std::size_t>(l)]);
    la.tag_fused = true;
    if (l == s.depth - 1) {
      // Move everything.
      for (const ir::BodyItem& item : lb.body) {
        if (item.kind == ir::BodyItem::Kind::Loop) prog_.loop(item.index).parent = la.id;
        else prog_.comps[static_cast<std::size_t>(item.index)].loop_id = la.id;
        la.body.push_back(item);
      }
      lb.body.clear();
    }
    // For l < depth-1 the only child of lb is the next loop of nest_b, which
    // merges one level deeper; nothing else to move (chain requirement).
  }
  prog_.roots.erase(it_b);
  return std::nullopt;
}

std::optional<std::string> Applier::skew(const SkewSpec& s) {
  if (auto e = check_comp(s.comp)) return e;
  if (s.factor < 1 || s.factor > 16)
    return std::string("skew: factor must be in [1, 16]");
  const int la = s.level_a;
  const int lb = la + 1;
  const std::vector<int> nest = prog_.nest_of(s.comp);
  if (la < 0 || lb >= static_cast<int>(nest.size()))
    return std::string("skew: level out of range");
  for (int l = la; l <= lb; ++l) {
    const ir::LoopNode& ln = prog_.loop(nest[static_cast<std::size_t>(l)]);
    if (ln.tail_of != -1 || ln.tag_tiled)
      return std::string("skew: cannot skew tiled loops");
    if (ln.skew_of != -1) return std::string("skew: loop is already part of a skewed pair");
  }
  if (!perfectly_nested(nest, la, lb))
    return std::string("skew: levels are not perfectly nested");

  // t = j + f*i: a pure change of basis, always legal on its own. Execution
  // order is unchanged (offset mode); the dependence check bites only when
  // the pair is subsequently interchanged into wavefront order.
  ir::LoopNode& outer = prog_.loop(nest[static_cast<std::size_t>(la)]);
  ir::LoopNode& inner = prog_.loop(nest[static_cast<std::size_t>(lb)]);
  outer.skew_of = inner.id;
  outer.skew_factor = s.factor;
  outer.skew_is_sum = false;
  inner.skew_of = outer.id;
  inner.skew_factor = s.factor;
  inner.skew_is_sum = true;
  inner.iter.name = outer.iter.name + "+" + inner.iter.name;
  for (ir::LoopNode* l : {&outer, &inner}) {
    l->tag_skewed = true;
    l->tag_skew_factor = s.factor;
  }

  // Rewrite accesses: values are preserved when column lb is evaluated with
  // the skewed iterator t = j + f*i.
  std::vector<int> comps;
  collect_comps(prog_, inner.id, comps);
  for (int cid : comps) {
    ir::Computation& c = prog_.comps[static_cast<std::size_t>(cid)];
    c.store.matrix.skew(la, lb, s.factor);
    c.rhs = c.rhs.map_accesses([&](const ir::AccessMatrix& m) {
      ir::AccessMatrix out = m;
      out.skew(la, lb, s.factor);
      return out;
    });
  }
  return std::nullopt;
}

std::optional<std::string> Applier::unimodular(const UnimodularSpec& s) {
  if (auto e = check_comp(s.comp)) return e;
  int k = 0;
  if (s.coeffs.size() == 4) k = 2;
  else if (s.coeffs.size() == 9) k = 3;
  else return std::string("unimodular: coefficient matrix must be 2x2 or 3x3");
  const std::vector<int> nest = prog_.nest_of(s.comp);
  if (s.level < 0 || s.level + k > static_cast<int>(nest.size()))
    return std::string("unimodular: level out of range");
  for (int l = s.level; l < s.level + k; ++l) {
    const ir::LoopNode& ln = prog_.loop(nest[static_cast<std::size_t>(l)]);
    if (ln.tail_of != -1 || ln.tag_tiled)
      return std::string("unimodular: cannot transform tiled loops");
    if (ln.skew_of != -1) return std::string("unimodular: cannot transform skewed loops");
  }
  if (!perfectly_nested(nest, s.level, s.level + k - 1))
    return std::string("unimodular: levels are not perfectly nested");

  auto at = [&](int r, int c) { return s.coeffs[static_cast<std::size_t>(r * k + c)]; };
  std::int64_t det = 0;
  if (k == 2) {
    det = at(0, 0) * at(1, 1) - at(0, 1) * at(1, 0);
  } else {
    det = at(0, 0) * (at(1, 1) * at(2, 2) - at(1, 2) * at(2, 1)) -
          at(0, 1) * (at(1, 0) * at(2, 2) - at(1, 2) * at(2, 0)) +
          at(0, 2) * (at(1, 0) * at(2, 1) - at(1, 1) * at(2, 0));
  }
  if (det != 1 && det != -1) return std::string("unimodular: |det| must be 1");

  // Decompose U = P2 * L * P1 into the engine's primitives: P1 an arbitrary
  // permutation (applied as interchanges before skewing, so the skew-band
  // restrictions do not fire), L identity or one adjacent skew, P2 identity
  // or the wavefront swap of the skewed pair (which carries the real
  // dependence-distance check). Deterministic first match wins.
  using Mat = std::vector<std::int64_t>;  // row-major k x k
  auto mul = [&](const Mat& x, const Mat& y) {
    Mat out(static_cast<std::size_t>(k * k), 0);
    for (int r = 0; r < k; ++r)
      for (int c = 0; c < k; ++c) {
        std::int64_t v = 0;
        for (int m = 0; m < k; ++m)
          v += x[static_cast<std::size_t>(r * k + m)] * y[static_cast<std::size_t>(m * k + c)];
        out[static_cast<std::size_t>(r * k + c)] = v;
      }
    return out;
  };
  auto ident = [&] {
    Mat m(static_cast<std::size_t>(k * k), 0);
    for (int i = 0; i < k; ++i) m[static_cast<std::size_t>(i * k + i)] = 1;
    return m;
  };
  // Permutation sigma as a matrix: new level r holds old iterator sigma[r].
  auto perm_mat = [&](const std::vector<int>& sigma) {
    Mat m(static_cast<std::size_t>(k * k), 0);
    for (int r = 0; r < k; ++r) m[static_cast<std::size_t>(r * k + sigma[static_cast<std::size_t>(r)])] = 1;
    return m;
  };

  std::vector<int> sigma(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) sigma[static_cast<std::size_t>(i)] = i;
  std::vector<std::vector<int>> perms;
  do {
    perms.push_back(sigma);
  } while (std::next_permutation(sigma.begin(), sigma.end()));

  const Mat target(s.coeffs.begin(), s.coeffs.end());
  struct Plan {
    std::vector<int> p1;
    int skew_pos = -1;  // band-relative; -1: no skew
    std::int64_t factor = 0;
    bool wavefront = false;
  };
  std::optional<Plan> plan;
  for (const auto& p1 : perms) {
    if (plan) break;
    const Mat m1 = perm_mat(p1);
    // L = identity.
    if (mul(ident(), m1) == target) {
      plan = Plan{p1, -1, 0, false};
      break;
    }
    for (int pos = 0; pos + 1 < k && !plan; ++pos) {
      for (std::int64_t f = 1; f <= 8 && !plan; ++f) {
        Mat l = ident();
        l[static_cast<std::size_t>((pos + 1) * k + pos)] = f;  // t = x_{pos+1} + f*x_pos
        const Mat lm1 = mul(l, m1);
        if (lm1 == target) {
          plan = Plan{p1, pos, f, false};
          break;
        }
        std::vector<int> swap_sigma(static_cast<std::size_t>(k));
        for (int i = 0; i < k; ++i) swap_sigma[static_cast<std::size_t>(i)] = i;
        std::swap(swap_sigma[static_cast<std::size_t>(pos)],
                  swap_sigma[static_cast<std::size_t>(pos + 1)]);
        if (mul(perm_mat(swap_sigma), lm1) == target)
          plan = Plan{p1, pos, f, true};
      }
    }
  }
  if (!plan)
    return std::string(
        "unimodular: matrix is not decomposable into permutation + adjacent skew "
        "(+ wavefront) primitives");

  // Apply P1 as interchanges: selection-sort the band into sigma order.
  std::vector<int> slot(static_cast<std::size_t>(k));  // slot[r] = original level in slot r
  for (int i = 0; i < k; ++i) slot[static_cast<std::size_t>(i)] = i;
  for (int r = 0; r < k; ++r) {
    const int want = plan->p1[static_cast<std::size_t>(r)];
    const auto it = std::find(slot.begin() + r, slot.end(), want);
    const int j = static_cast<int>(it - slot.begin());
    if (j == r) continue;
    if (auto e = interchange({s.comp, s.level + r, s.level + j}))
      return "unimodular: " + *e;
    std::swap(slot[static_cast<std::size_t>(r)], slot[static_cast<std::size_t>(j)]);
  }
  if (plan->skew_pos >= 0) {
    if (auto e = skew({s.comp, s.level + plan->skew_pos, plan->factor}))
      return "unimodular: " + *e;
    if (plan->wavefront) {
      if (auto e = interchange({s.comp, s.level + plan->skew_pos, s.level + plan->skew_pos + 1}))
        return "unimodular: " + *e;
    }
  }
  const std::vector<int> new_nest = prog_.nest_of(s.comp);
  for (int l = s.level; l < s.level + k; ++l)
    prog_.loop(new_nest[static_cast<std::size_t>(l)]).tag_unimodular = true;
  return std::nullopt;
}

std::optional<std::string> Applier::interchange(const InterchangeSpec& s) {
  if (auto e = check_comp(s.comp)) return e;
  int la = s.level_a, lb = s.level_b;
  if (la > lb) std::swap(la, lb);
  if (la == lb) return std::string("interchange: identical levels");
  const std::vector<int> nest = prog_.nest_of(s.comp);
  if (la < 0 || lb >= static_cast<int>(nest.size()))
    return std::string("interchange: level out of range");
  bool band_has_skew = false;
  for (int l = la; l <= lb; ++l) {
    const ir::LoopNode& ln = prog_.loop(nest[static_cast<std::size_t>(l)]);
    if (ln.tail_of != -1 || ln.tag_tiled)
      return std::string("interchange: cannot interchange tiled loops");
    if (ln.skew_of != -1) band_has_skew = true;
  }
  // A band containing skewed loops may only be swapped when (la, lb) is
  // exactly the skewed pair: that is the wavefront toggle. Any other swap
  // would tear the pair apart.
  if (band_has_skew &&
      (lb != la + 1 ||
       prog_.loop(nest[static_cast<std::size_t>(la)]).skew_of !=
           nest[static_cast<std::size_t>(lb)]))
    return std::string("interchange: cannot interchange across a skewed pair");
  if (!perfectly_nested(nest, la, lb))
    return std::string("interchange: levels do not delimit a perfectly nested chain");

  ir::LoopNode& a = prog_.loop(nest[static_cast<std::size_t>(la)]);
  ir::LoopNode& b = prog_.loop(nest[static_cast<std::size_t>(lb)]);

  // Dependence legality, checked before any mutation (see helper comment).
  if (auto e = check_interchange_dependences(b.id, la, lb)) return e;

  std::swap(a.iter, b.iter);
  a.tag_interchanged = true;
  b.tag_interchanged = true;

  if (band_has_skew) {
    // The skew bookkeeping follows the iterator: partner ids already point at
    // each other's nodes, but the sum flag and the mode-dependent extents
    // must be fixed up for the new positions.
    std::swap(a.skew_is_sum, b.skew_is_sum);
    std::swap(a.tag_skewed, b.tag_skewed);
    std::swap(a.tag_skew_factor, b.tag_skew_factor);
    std::swap(a.tag_unimodular, b.tag_unimodular);
    const std::int64_t f = a.skew_factor;
    if (a.skew_is_sum) {
      // offset -> wave: t moves outside; it now iterates plainly over
      // E_t = M + f*(N-1) while the inner partner is windowed.
      a.iter.extent = a.iter.extent + f * (b.iter.extent - 1);
    } else {
      // wave -> offset: t moves back inside with its original extent M.
      b.iter.extent = b.iter.extent - f * (a.iter.extent - 1);
    }
  }

  // Remap every access of every computation under the deeper loop.
  std::vector<int> comps;
  collect_comps(prog_, b.id, comps);
  for (int cid : comps) {
    ir::Computation& c = prog_.comps[static_cast<std::size_t>(cid)];
    c.store.matrix.interchange(la, lb);
    c.rhs = c.rhs.map_accesses([&](const ir::AccessMatrix& m) {
      ir::AccessMatrix out = m;
      out.interchange(la, lb);
      return out;
    });
  }
  return std::nullopt;
}

std::optional<std::string> Applier::tile(const TileSpec& s) {
  if (auto e = check_comp(s.comp)) return e;
  const int d = static_cast<int>(s.sizes.size());
  if (d < 2 || d > 3) return std::string("tile: only 2-D and 3-D tiling supported");
  const std::vector<int> nest = prog_.nest_of(s.comp);
  if (s.level < 0 || s.level + d > static_cast<int>(nest.size()))
    return std::string("tile: level out of range");
  for (int k = 0; k < d; ++k) {
    const ir::LoopNode& ln = prog_.loop(nest[static_cast<std::size_t>(s.level + k)]);
    if (ln.tail_of != -1 || ln.tag_tiled) return std::string("tile: loop already tiled");
    if (ln.skew_of != -1) return std::string("tile: cannot tile skewed loops");
    const std::int64_t size = s.sizes[static_cast<std::size_t>(k)];
    if (size < 2) return std::string("tile: size must be >= 2");
    if (size > ln.iter.extent)
      return "tile: size " + std::to_string(size) + " exceeds extent " +
             std::to_string(ln.iter.extent);
  }
  if (!perfectly_nested(nest, s.level, s.level + d - 1))
    return std::string("tile: levels are not perfectly nested");

  // Record which computations live under the tiled band (they all live under
  // the deepest tiled loop by the chain property).
  const int deepest = nest[static_cast<std::size_t>(s.level + d - 1)];
  std::vector<int> comps;
  collect_comps(prog_, deepest, comps);
  for (int cid : comps) {
    if (tiled_.count(cid)) return std::string("tile: computation nest already tiled");
  }

  // Save the original body of the deepest tiled loop: it becomes the body of
  // the innermost new tile loop.
  ir::LoopNode& deepest_loop = prog_.loop(deepest);
  std::vector<ir::BodyItem> inner_body = std::move(deepest_loop.body);
  deepest_loop.body.clear();

  // Convert the existing loops into the outer tile loops.
  std::vector<std::int64_t> orig_extents(static_cast<std::size_t>(d));
  for (int k = 0; k < d; ++k) {
    ir::LoopNode& outer = prog_.loop(nest[static_cast<std::size_t>(s.level + k)]);
    orig_extents[static_cast<std::size_t>(k)] = outer.iter.extent;
    outer.iter.extent = ceil_div(outer.iter.extent, s.sizes[static_cast<std::size_t>(k)]);
    outer.iter.name += "_o";
    outer.tag_tiled = true;
    outer.tag_tile_factor = s.sizes[static_cast<std::size_t>(k)];
  }

  // Create the inner tile loops, chained under the deepest outer loop.
  int parent = deepest;
  for (int k = 0; k < d; ++k) {
    ir::LoopNode inner;
    const ir::LoopNode& outer = prog_.loop(nest[static_cast<std::size_t>(s.level + k)]);
    inner.iter.name = outer.iter.name.substr(0, outer.iter.name.size() - 2) + "_i";
    inner.iter.extent = s.sizes[static_cast<std::size_t>(k)];
    inner.parent = parent;
    inner.tail_of = outer.id;
    inner.orig_extent = orig_extents[static_cast<std::size_t>(k)];
    const int inner_id = prog_.add_loop(std::move(inner));
    prog_.loop(parent).body.push_back(ir::BodyItem::loop(inner_id));
    parent = inner_id;
  }

  // Attach the original body under the innermost tile loop.
  ir::LoopNode& innermost = prog_.loop(parent);
  innermost.body = std::move(inner_body);
  for (const ir::BodyItem& item : innermost.body) {
    if (item.kind == ir::BodyItem::Kind::Loop) prog_.loop(item.index).parent = parent;
    else prog_.comps[static_cast<std::size_t>(item.index)].loop_id = parent;
  }

  // Rewrite all access matrices of computations under the band.
  for (int cid : comps) {
    ir::Computation& c = prog_.comps[static_cast<std::size_t>(cid)];
    c.store.matrix = tile_columns(c.store.matrix, s.level, s.sizes);
    c.rhs = c.rhs.map_accesses(
        [&](const ir::AccessMatrix& m) { return tile_columns(m, s.level, s.sizes); });
    tiled_[cid] = {s.level, d};
  }
  return std::nullopt;
}

std::optional<std::string> Applier::unroll(const UnrollSpec& s) {
  if (auto e = check_comp(s.comp)) return e;
  if (s.factor < 2) return std::string("unroll: factor must be >= 2");
  const std::vector<int> nest = prog_.nest_of(s.comp);
  ir::LoopNode& inner = prog_.loop(nest.back());
  if (inner.unroll != 0) return std::string("unroll: loop already unrolled");
  if (s.factor > inner.iter.extent) return std::string("unroll: factor exceeds extent");
  inner.unroll = s.factor;
  return std::nullopt;
}

std::optional<std::string> Applier::parallelize(const ParallelizeSpec& s) {
  if (auto e = check_comp(s.comp)) return e;
  const std::vector<int> nest = prog_.nest_of(s.comp);
  const int level = map_level(s.comp, s.level);
  if (level < 0 || level >= static_cast<int>(nest.size()))
    return std::string("parallelize: level out of range");
  ir::LoopNode& loop = prog_.loop(nest[static_cast<std::size_t>(level)]);
  if (loop.parallel) return std::string("parallelize: loop already parallel");

  // The level must not be a reduction level of any computation under it.
  std::vector<int> comps;
  collect_comps(prog_, loop.id, comps);
  for (int cid : comps) {
    const std::vector<int> cnest = prog_.nest_of(cid);
    const auto pos = std::find(cnest.begin(), cnest.end(), loop.id);
    const int clevel = static_cast<int>(pos - cnest.begin());
    if (prog_.comp(cid).store.matrix.invariant_to(clevel))
      return "parallelize: level is a reduction level of " + prog_.comp(cid).name;
  }
  if (level_carries_dependence(prog_, loop.id))
    return std::string("parallelize: loop carries a dependence");
  loop.parallel = true;
  return std::nullopt;
}

std::optional<std::string> Applier::vectorize(const VectorizeSpec& s) {
  if (auto e = check_comp(s.comp)) return e;
  if (!is_power_of_two(s.width) || s.width < 2 || s.width > 16)
    return std::string("vectorize: width must be a power of two in [2,16]");
  const std::vector<int> nest = prog_.nest_of(s.comp);
  ir::LoopNode& inner = prog_.loop(nest.back());
  if (inner.vector_width != 0) return std::string("vectorize: loop already vectorized");
  if (s.width > inner.iter.extent) return std::string("vectorize: width exceeds extent");
  if (level_carries_dependence(prog_, inner.id))
    return std::string("vectorize: loop carries a dependence");
  inner.vector_width = s.width;
  return std::nullopt;
}

std::optional<std::string> Applier::finalize() {
  // Renumber loops: DFS order from roots, dropping unreachable (fused-away)
  // nodes.
  std::vector<int> old_to_new(prog_.loops.size(), -1);
  std::vector<ir::LoopNode> new_loops;
  std::function<void(int)> walk = [&](int loop_id) {
    old_to_new[static_cast<std::size_t>(loop_id)] = static_cast<int>(new_loops.size());
    new_loops.push_back(prog_.loop(loop_id));
    for (const ir::BodyItem& item : prog_.loop(loop_id).body)
      if (item.kind == ir::BodyItem::Kind::Loop) walk(item.index);
  };
  for (int r : prog_.roots) walk(r);

  for (ir::LoopNode& l : new_loops) {
    l.id = old_to_new[static_cast<std::size_t>(l.id)];
    if (l.parent != -1) l.parent = old_to_new[static_cast<std::size_t>(l.parent)];
    if (l.tail_of != -1) l.tail_of = old_to_new[static_cast<std::size_t>(l.tail_of)];
    if (l.skew_of != -1) l.skew_of = old_to_new[static_cast<std::size_t>(l.skew_of)];
    for (ir::BodyItem& item : l.body)
      if (item.kind == ir::BodyItem::Kind::Loop)
        item.index = old_to_new[static_cast<std::size_t>(item.index)];
  }
  for (int& r : prog_.roots) r = old_to_new[static_cast<std::size_t>(r)];
  for (ir::Computation& c : prog_.comps)
    c.loop_id = old_to_new[static_cast<std::size_t>(c.loop_id)];
  prog_.loops = std::move(new_loops);

  if (auto err = prog_.validate())
    return "internal error: transformed program invalid: " + *err;
  return std::nullopt;
}

}  // namespace

ApplyResult try_apply_schedule(const ir::Program& p, const Schedule& s) {
  ApplyResult result;
  Applier applier(p);
  auto step = [&](std::optional<std::string> err) {
    if (err && result.error.empty()) result.error = *err;
    return !err;
  };
  for (const auto& f : s.fusions)
    if (!step(applier.fuse(f))) return result;
  for (const auto& sk : s.skews)
    if (!step(applier.skew(sk))) return result;
  for (const auto& u : s.unimodulars)
    if (!step(applier.unimodular(u))) return result;
  for (const auto& i : s.interchanges)
    if (!step(applier.interchange(i))) return result;
  for (const auto& t : s.tiles)
    if (!step(applier.tile(t))) return result;
  for (const auto& u : s.unrolls)
    if (!step(applier.unroll(u))) return result;
  for (const auto& pr : s.parallels)
    if (!step(applier.parallelize(pr))) return result;
  for (const auto& v : s.vectorizes)
    if (!step(applier.vectorize(v))) return result;
  if (!step(applier.finalize())) return result;
  result.ok = true;
  result.program = applier.take();
  return result;
}

ir::Program apply_schedule(const ir::Program& p, const Schedule& s) {
  ApplyResult r = try_apply_schedule(p, s);
  if (!r.ok) throw std::invalid_argument("apply_schedule: " + r.error);
  return std::move(r.program);
}

bool is_legal(const ir::Program& p, const Schedule& s, std::string* why) {
  ApplyResult r = try_apply_schedule(p, s);
  if (!r.ok && why) *why = r.error;
  return r.ok;
}

}  // namespace tcm::transforms
