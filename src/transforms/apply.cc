#include "transforms/apply.h"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "transforms/dependence.h"

namespace tcm::transforms {
namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

bool is_power_of_two(int x) { return x > 0 && (x & (x - 1)) == 0; }

void collect_comps(const ir::Program& p, int loop_id, std::vector<int>& out) {
  for (const ir::BodyItem& item : p.loop(loop_id).body) {
    if (item.kind == ir::BodyItem::Kind::Loop) collect_comps(p, item.index, out);
    else out.push_back(item.index);
  }
}

// Rewrites access-matrix columns for a d-dimensional tiling at level t:
// old column t+k (k < d) becomes outer column t+k with coefficient v*s_k and
// inner column t+d+k with coefficient v; later columns shift right by d.
ir::AccessMatrix tile_columns(const ir::AccessMatrix& m, int t,
                              std::span<const std::int64_t> sizes) {
  const int d = static_cast<int>(sizes.size());
  ir::AccessMatrix out(m.rank(), m.depth() + d);
  for (int r = 0; r < m.rank(); ++r) {
    out.set(r, out.depth(), m.constant(r));
    for (int c = 0; c < m.depth(); ++c) {
      const std::int64_t v = m.at(r, c);
      if (c < t) {
        out.set(r, c, v);
      } else if (c < t + d) {
        const int k = c - t;
        out.set(r, t + k, v * sizes[static_cast<std::size_t>(k)]);
        out.set(r, t + d + k, v);
      } else {
        out.set(r, c + d, v);
      }
    }
  }
  return out;
}

// Stateful applier working on a private copy of the program.
class Applier {
 public:
  explicit Applier(const ir::Program& p) : prog_(p) {}

  // Each step returns an error string on legality failure.
  std::optional<std::string> fuse(const FuseSpec& s);
  std::optional<std::string> interchange(const InterchangeSpec& s);
  std::optional<std::string> tile(const TileSpec& s);
  std::optional<std::string> unroll(const UnrollSpec& s);
  std::optional<std::string> parallelize(const ParallelizeSpec& s);
  std::optional<std::string> vectorize(const VectorizeSpec& s);

  // Renumbers the loop arena after structural edits and re-validates.
  std::optional<std::string> finalize();

  ir::Program take() { return std::move(prog_); }

 private:
  std::optional<std::string> check_comp(int comp_id) const {
    if (comp_id < 0 || comp_id >= static_cast<int>(prog_.comps.size()))
      return "unknown computation id " + std::to_string(comp_id);
    return std::nullopt;
  }

  // True iff levels [a, b] of `nest` form a perfectly nested chain: each
  // loop in [a, b) has exactly one body item, the next loop of the nest.
  bool perfectly_nested(const std::vector<int>& nest, int a, int b) const {
    for (int l = a; l < b; ++l) {
      const ir::LoopNode& ln = prog_.loop(nest[static_cast<std::size_t>(l)]);
      if (ln.body.size() != 1) return false;
      const ir::BodyItem& only = ln.body.front();
      if (only.kind != ir::BodyItem::Kind::Loop ||
          only.index != nest[static_cast<std::size_t>(l + 1)])
        return false;
    }
    return true;
  }

  // Maps a pre-tiling level of `comp` to the current nest index, accounting
  // for an earlier tiling of the same nest.
  int map_level(int comp_id, int level) const {
    auto it = tiled_.find(comp_id);
    if (it == tiled_.end()) return level;
    const auto& [t, d] = it->second;
    if (level < t + d) return level;  // outer tile loops keep their index
    return level + d;
  }

  ir::Program prog_;
  // comp id -> (tile level, tile dims) for nests already tiled; shared nests
  // record every computation they cover.
  std::map<int, std::pair<int, int>> tiled_;
};

std::optional<std::string> Applier::fuse(const FuseSpec& s) {
  if (auto e = check_comp(s.comp_a)) return e;
  if (auto e = check_comp(s.comp_b)) return e;
  if (s.depth < 1) return std::string("fusion depth must be >= 1");

  const std::vector<int> nest_a = prog_.nest_of(s.comp_a);
  const std::vector<int> nest_b = prog_.nest_of(s.comp_b);
  const int root_a = nest_a.front();
  const int root_b = nest_b.front();
  if (root_a == root_b) return std::string("fusion: computations already share a nest");

  // The nests must be adjacent top-level nests, a before b.
  const auto it_a = std::find(prog_.roots.begin(), prog_.roots.end(), root_a);
  const auto it_b = std::find(prog_.roots.begin(), prog_.roots.end(), root_b);
  if (it_a == prog_.roots.end() || it_b == prog_.roots.end())
    return std::string("fusion: computations must live in top-level nests");
  if (it_b != it_a + 1) return std::string("fusion: nests must be textually adjacent (a before b)");

  if (s.depth > static_cast<int>(nest_a.size()) || s.depth > static_cast<int>(nest_b.size()))
    return std::string("fusion: depth exceeds a nest's depth");

  // Matching extents on the fused levels.
  for (int l = 0; l < s.depth; ++l) {
    const auto& la = prog_.loop(nest_a[static_cast<std::size_t>(l)]);
    const auto& lb = prog_.loop(nest_b[static_cast<std::size_t>(l)]);
    if (la.iter.extent != lb.iter.extent)
      return "fusion: extent mismatch at level " + std::to_string(l);
    if (la.tail_of != -1 || lb.tail_of != -1)
      return std::string("fusion: cannot fuse tiled loops");
  }

  // The b-side must be a pure chain above the fusion depth so that merging
  // does not reorder statements of nest b relative to each other.
  if (!perfectly_nested(nest_b, 0, s.depth - 1))
    return std::string("fusion: nest b is not perfectly nested down to the fusion depth");

  // Dependence legality.
  std::vector<int> comps_a, comps_b;
  collect_comps(prog_, root_a, comps_a);
  collect_comps(prog_, root_b, comps_b);
  if (auto err = check_fusion_dependences(prog_, comps_a, comps_b, s.depth)) return err;

  // Merge: move children of b's level-l loop into a's level-l loop.
  for (int l = 0; l < s.depth; ++l) {
    ir::LoopNode& la = prog_.loop(nest_a[static_cast<std::size_t>(l)]);
    ir::LoopNode& lb = prog_.loop(nest_b[static_cast<std::size_t>(l)]);
    la.tag_fused = true;
    if (l == s.depth - 1) {
      // Move everything.
      for (const ir::BodyItem& item : lb.body) {
        if (item.kind == ir::BodyItem::Kind::Loop) prog_.loop(item.index).parent = la.id;
        else prog_.comps[static_cast<std::size_t>(item.index)].loop_id = la.id;
        la.body.push_back(item);
      }
      lb.body.clear();
    }
    // For l < depth-1 the only child of lb is the next loop of nest_b, which
    // merges one level deeper; nothing else to move (chain requirement).
  }
  prog_.roots.erase(it_b);
  return std::nullopt;
}

std::optional<std::string> Applier::interchange(const InterchangeSpec& s) {
  if (auto e = check_comp(s.comp)) return e;
  int la = s.level_a, lb = s.level_b;
  if (la > lb) std::swap(la, lb);
  if (la == lb) return std::string("interchange: identical levels");
  const std::vector<int> nest = prog_.nest_of(s.comp);
  if (lb >= static_cast<int>(nest.size()))
    return std::string("interchange: level out of range");
  for (int l = la; l <= lb; ++l) {
    const ir::LoopNode& ln = prog_.loop(nest[static_cast<std::size_t>(l)]);
    if (ln.tail_of != -1 || ln.tag_tiled)
      return std::string("interchange: cannot interchange tiled loops");
  }
  if (!perfectly_nested(nest, la, lb))
    return std::string("interchange: levels do not delimit a perfectly nested chain");

  ir::LoopNode& a = prog_.loop(nest[static_cast<std::size_t>(la)]);
  ir::LoopNode& b = prog_.loop(nest[static_cast<std::size_t>(lb)]);
  std::swap(a.iter, b.iter);
  a.tag_interchanged = true;
  b.tag_interchanged = true;

  // Remap every access of every computation under the deeper loop.
  std::vector<int> comps;
  collect_comps(prog_, b.id, comps);
  for (int cid : comps) {
    ir::Computation& c = prog_.comps[static_cast<std::size_t>(cid)];
    c.store.matrix.interchange(la, lb);
    c.rhs = c.rhs.map_accesses([&](const ir::AccessMatrix& m) {
      ir::AccessMatrix out = m;
      out.interchange(la, lb);
      return out;
    });
  }
  return std::nullopt;
}

std::optional<std::string> Applier::tile(const TileSpec& s) {
  if (auto e = check_comp(s.comp)) return e;
  const int d = static_cast<int>(s.sizes.size());
  if (d < 2 || d > 3) return std::string("tile: only 2-D and 3-D tiling supported");
  const std::vector<int> nest = prog_.nest_of(s.comp);
  if (s.level < 0 || s.level + d > static_cast<int>(nest.size()))
    return std::string("tile: level out of range");
  for (int k = 0; k < d; ++k) {
    const ir::LoopNode& ln = prog_.loop(nest[static_cast<std::size_t>(s.level + k)]);
    if (ln.tail_of != -1 || ln.tag_tiled) return std::string("tile: loop already tiled");
    const std::int64_t size = s.sizes[static_cast<std::size_t>(k)];
    if (size < 2) return std::string("tile: size must be >= 2");
    if (size > ln.iter.extent)
      return "tile: size " + std::to_string(size) + " exceeds extent " +
             std::to_string(ln.iter.extent);
  }
  if (!perfectly_nested(nest, s.level, s.level + d - 1))
    return std::string("tile: levels are not perfectly nested");

  // Record which computations live under the tiled band (they all live under
  // the deepest tiled loop by the chain property).
  const int deepest = nest[static_cast<std::size_t>(s.level + d - 1)];
  std::vector<int> comps;
  collect_comps(prog_, deepest, comps);
  for (int cid : comps) {
    if (tiled_.count(cid)) return std::string("tile: computation nest already tiled");
  }

  // Save the original body of the deepest tiled loop: it becomes the body of
  // the innermost new tile loop.
  ir::LoopNode& deepest_loop = prog_.loop(deepest);
  std::vector<ir::BodyItem> inner_body = std::move(deepest_loop.body);
  deepest_loop.body.clear();

  // Convert the existing loops into the outer tile loops.
  std::vector<std::int64_t> orig_extents(static_cast<std::size_t>(d));
  for (int k = 0; k < d; ++k) {
    ir::LoopNode& outer = prog_.loop(nest[static_cast<std::size_t>(s.level + k)]);
    orig_extents[static_cast<std::size_t>(k)] = outer.iter.extent;
    outer.iter.extent = ceil_div(outer.iter.extent, s.sizes[static_cast<std::size_t>(k)]);
    outer.iter.name += "_o";
    outer.tag_tiled = true;
    outer.tag_tile_factor = s.sizes[static_cast<std::size_t>(k)];
  }

  // Create the inner tile loops, chained under the deepest outer loop.
  int parent = deepest;
  for (int k = 0; k < d; ++k) {
    ir::LoopNode inner;
    const ir::LoopNode& outer = prog_.loop(nest[static_cast<std::size_t>(s.level + k)]);
    inner.iter.name = outer.iter.name.substr(0, outer.iter.name.size() - 2) + "_i";
    inner.iter.extent = s.sizes[static_cast<std::size_t>(k)];
    inner.parent = parent;
    inner.tail_of = outer.id;
    inner.orig_extent = orig_extents[static_cast<std::size_t>(k)];
    const int inner_id = prog_.add_loop(std::move(inner));
    prog_.loop(parent).body.push_back(ir::BodyItem::loop(inner_id));
    parent = inner_id;
  }

  // Attach the original body under the innermost tile loop.
  ir::LoopNode& innermost = prog_.loop(parent);
  innermost.body = std::move(inner_body);
  for (const ir::BodyItem& item : innermost.body) {
    if (item.kind == ir::BodyItem::Kind::Loop) prog_.loop(item.index).parent = parent;
    else prog_.comps[static_cast<std::size_t>(item.index)].loop_id = parent;
  }

  // Rewrite all access matrices of computations under the band.
  for (int cid : comps) {
    ir::Computation& c = prog_.comps[static_cast<std::size_t>(cid)];
    c.store.matrix = tile_columns(c.store.matrix, s.level, s.sizes);
    c.rhs = c.rhs.map_accesses(
        [&](const ir::AccessMatrix& m) { return tile_columns(m, s.level, s.sizes); });
    tiled_[cid] = {s.level, d};
  }
  return std::nullopt;
}

std::optional<std::string> Applier::unroll(const UnrollSpec& s) {
  if (auto e = check_comp(s.comp)) return e;
  if (s.factor < 2) return std::string("unroll: factor must be >= 2");
  const std::vector<int> nest = prog_.nest_of(s.comp);
  ir::LoopNode& inner = prog_.loop(nest.back());
  if (inner.unroll != 0) return std::string("unroll: loop already unrolled");
  if (s.factor > inner.iter.extent) return std::string("unroll: factor exceeds extent");
  inner.unroll = s.factor;
  return std::nullopt;
}

std::optional<std::string> Applier::parallelize(const ParallelizeSpec& s) {
  if (auto e = check_comp(s.comp)) return e;
  const std::vector<int> nest = prog_.nest_of(s.comp);
  const int level = map_level(s.comp, s.level);
  if (level < 0 || level >= static_cast<int>(nest.size()))
    return std::string("parallelize: level out of range");
  ir::LoopNode& loop = prog_.loop(nest[static_cast<std::size_t>(level)]);
  if (loop.parallel) return std::string("parallelize: loop already parallel");

  // The level must not be a reduction level of any computation under it.
  std::vector<int> comps;
  collect_comps(prog_, loop.id, comps);
  for (int cid : comps) {
    const std::vector<int> cnest = prog_.nest_of(cid);
    const auto pos = std::find(cnest.begin(), cnest.end(), loop.id);
    const int clevel = static_cast<int>(pos - cnest.begin());
    if (prog_.comp(cid).store.matrix.invariant_to(clevel))
      return "parallelize: level is a reduction level of " + prog_.comp(cid).name;
  }
  if (level_carries_dependence(prog_, loop.id))
    return std::string("parallelize: loop carries a dependence");
  loop.parallel = true;
  return std::nullopt;
}

std::optional<std::string> Applier::vectorize(const VectorizeSpec& s) {
  if (auto e = check_comp(s.comp)) return e;
  if (!is_power_of_two(s.width) || s.width < 2 || s.width > 16)
    return std::string("vectorize: width must be a power of two in [2,16]");
  const std::vector<int> nest = prog_.nest_of(s.comp);
  ir::LoopNode& inner = prog_.loop(nest.back());
  if (inner.vector_width != 0) return std::string("vectorize: loop already vectorized");
  if (s.width > inner.iter.extent) return std::string("vectorize: width exceeds extent");
  if (level_carries_dependence(prog_, inner.id))
    return std::string("vectorize: loop carries a dependence");
  inner.vector_width = s.width;
  return std::nullopt;
}

std::optional<std::string> Applier::finalize() {
  // Renumber loops: DFS order from roots, dropping unreachable (fused-away)
  // nodes.
  std::vector<int> old_to_new(prog_.loops.size(), -1);
  std::vector<ir::LoopNode> new_loops;
  std::function<void(int)> walk = [&](int loop_id) {
    old_to_new[static_cast<std::size_t>(loop_id)] = static_cast<int>(new_loops.size());
    new_loops.push_back(prog_.loop(loop_id));
    for (const ir::BodyItem& item : prog_.loop(loop_id).body)
      if (item.kind == ir::BodyItem::Kind::Loop) walk(item.index);
  };
  for (int r : prog_.roots) walk(r);

  for (ir::LoopNode& l : new_loops) {
    l.id = old_to_new[static_cast<std::size_t>(l.id)];
    if (l.parent != -1) l.parent = old_to_new[static_cast<std::size_t>(l.parent)];
    if (l.tail_of != -1) l.tail_of = old_to_new[static_cast<std::size_t>(l.tail_of)];
    for (ir::BodyItem& item : l.body)
      if (item.kind == ir::BodyItem::Kind::Loop)
        item.index = old_to_new[static_cast<std::size_t>(item.index)];
  }
  for (int& r : prog_.roots) r = old_to_new[static_cast<std::size_t>(r)];
  for (ir::Computation& c : prog_.comps)
    c.loop_id = old_to_new[static_cast<std::size_t>(c.loop_id)];
  prog_.loops = std::move(new_loops);

  if (auto err = prog_.validate())
    return "internal error: transformed program invalid: " + *err;
  return std::nullopt;
}

}  // namespace

ApplyResult try_apply_schedule(const ir::Program& p, const Schedule& s) {
  ApplyResult result;
  Applier applier(p);
  auto step = [&](std::optional<std::string> err) {
    if (err && result.error.empty()) result.error = *err;
    return !err;
  };
  for (const auto& f : s.fusions)
    if (!step(applier.fuse(f))) return result;
  for (const auto& i : s.interchanges)
    if (!step(applier.interchange(i))) return result;
  for (const auto& t : s.tiles)
    if (!step(applier.tile(t))) return result;
  for (const auto& u : s.unrolls)
    if (!step(applier.unroll(u))) return result;
  for (const auto& pr : s.parallels)
    if (!step(applier.parallelize(pr))) return result;
  for (const auto& v : s.vectorizes)
    if (!step(applier.vectorize(v))) return result;
  if (!step(applier.finalize())) return result;
  result.ok = true;
  result.program = applier.take();
  return result;
}

ir::Program apply_schedule(const ir::Program& p, const Schedule& s) {
  ApplyResult r = try_apply_schedule(p, s);
  if (!r.ok) throw std::invalid_argument("apply_schedule: " + r.error);
  return std::move(r.program);
}

bool is_legal(const ir::Program& p, const Schedule& s, std::string* why) {
  ApplyResult r = try_apply_schedule(p, s);
  if (!r.ok && why) *why = r.error;
  return r.ok;
}

}  // namespace tcm::transforms
