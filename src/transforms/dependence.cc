#include "transforms/dependence.h"

#include <algorithm>
#include <functional>
#include <sstream>
#include <vector>

namespace tcm::transforms {
namespace {

// Collect all computation ids under a loop subtree, in execution order.
void collect_comps(const ir::Program& p, int loop_id, std::vector<int>& out) {
  for (const ir::BodyItem& item : p.loop(loop_id).body) {
    if (item.kind == ir::BodyItem::Kind::Loop) collect_comps(p, item.index, out);
    else out.push_back(item.index);
  }
}

// Store row with a non-zero coefficient at column `col`, or -1.
int store_row_for_col(const ir::AccessMatrix& store, int col) {
  for (int r = 0; r < store.rank(); ++r)
    if (store.at(r, col) != 0) return r;
  return -1;
}

// Length of the common loop prefix of two computations' nests.
int shared_prefix(const ir::Program& p, int comp_a, int comp_b) {
  const std::vector<int> na = p.nest_of(comp_a);
  const std::vector<int> nb = p.nest_of(comp_b);
  int shared = 0;
  while (shared < static_cast<int>(na.size()) && shared < static_cast<int>(nb.size()) &&
         na[static_cast<std::size_t>(shared)] == nb[static_cast<std::size_t>(shared)])
    ++shared;
  return shared;
}

}  // namespace

std::optional<ir::AccessMatrix::Range> value_difference_range(
    const ir::AccessMatrix& store, int row, const ir::AccessMatrix& load, int shared_depth,
    std::span<const std::int64_t> consumer_extents) {
  if (row < 0 || row >= store.rank() || row >= load.rank()) return std::nullopt;
  // The producer must fully determine this dimension within the shared loops;
  // coefficients on producer-private loops make the produced range depend on
  // iterators the consumer cannot see.
  for (int c = shared_depth; c < store.depth(); ++c)
    if (store.at(row, c) != 0) return std::nullopt;

  std::int64_t lo = load.constant(row) - store.constant(row);
  std::int64_t hi = lo;
  for (int c = 0; c < load.depth(); ++c) {
    std::int64_t coef = load.at(row, c);
    if (c < shared_depth) coef -= store.at(row, c);
    if (coef == 0) continue;
    if (c >= static_cast<int>(consumer_extents.size())) return std::nullopt;
    const std::int64_t span = consumer_extents[static_cast<std::size_t>(c)] - 1;
    if (span < 0) return std::nullopt;
    if (coef > 0) hi += coef * span;
    else lo += coef * span;
  }
  return ir::AccessMatrix::Range{lo, hi};
}

bool reads_output_of(const ir::Program& p, int consumer_id, int producer_id) {
  const int buf = p.comp(producer_id).store.buffer_id;
  for (const ir::BufferAccess& a : p.comp(consumer_id).rhs.loads())
    if (a.buffer_id == buf) return true;
  return false;
}

std::optional<std::string> check_fusion_dependences(const ir::Program& p,
                                                    std::span<const int> comps_a,
                                                    std::span<const int> comps_b, int depth) {
  for (int pa : comps_a) {
    const ir::Computation& prod = p.comp(pa);
    for (int cb : comps_b) {
      const ir::Computation& cons = p.comp(cb);
      const auto cons_extents = p.extents_of(cb);
      for (const ir::BufferAccess& load : cons.rhs.loads()) {
        if (load.buffer_id != prod.store.buffer_id) continue;
        for (int level = 0; level < depth; ++level) {
          const int row = store_row_for_col(prod.store.matrix, level);
          if (row < 0) {
            std::ostringstream os;
            os << "fusion at depth " << depth << " illegal: level " << level
               << " is not a produced dimension of " << prod.name << " read by " << cons.name;
            return os.str();
          }
          const auto range =
              value_difference_range(prod.store.matrix, row, load.matrix, depth, cons_extents);
          if (!range) {
            std::ostringstream os;
            os << "fusion at depth " << depth << " illegal: dependence of " << cons.name
               << " on " << prod.name << " is not analyzable at level " << level;
            return os.str();
          }
          if (range->max > 0) {
            std::ostringstream os;
            os << "fusion at depth " << depth << " illegal: " << cons.name
               << " may read values " << prod.name << " produces in later iterations of level "
               << level << " (difference max " << range->max << ")";
            return os.str();
          }
        }
      }
    }
  }
  return std::nullopt;
}

bool level_carries_dependence(const ir::Program& p, int loop_id) {
  std::vector<int> comps;
  collect_comps(p, loop_id, comps);
  // Depth position of the loop (== its column in nests that contain it).
  int level = 0;
  for (int l = p.loop(loop_id).parent; l != -1; l = p.loop(l).parent) ++level;

  for (int pa : comps) {
    const ir::Computation& prod = p.comp(pa);
    for (int cb : comps) {
      if (pa == cb) continue;
      const ir::Computation& cons = p.comp(cb);
      const auto cons_extents = p.extents_of(cb);
      for (const ir::BufferAccess& load : cons.rhs.loads()) {
        if (load.buffer_id != prod.store.buffer_id) continue;
        const int row = store_row_for_col(prod.store.matrix, level);
        if (row < 0) return true;  // loop does not produce the dim: accumulation order
        const int shared = shared_prefix(p, pa, cb);
        const auto range =
            value_difference_range(prod.store.matrix, row, load.matrix, shared, cons_extents);
        if (!range || range->min != 0 || range->max != 0) return true;
      }
    }
  }
  return false;
}

}  // namespace tcm::transforms
