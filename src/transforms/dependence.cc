#include "transforms/dependence.h"

#include <algorithm>
#include <functional>
#include <sstream>
#include <vector>

namespace tcm::transforms {
namespace {

// Collect all computation ids under a loop subtree, in execution order.
void collect_comps(const ir::Program& p, int loop_id, std::vector<int>& out) {
  for (const ir::BodyItem& item : p.loop(loop_id).body) {
    if (item.kind == ir::BodyItem::Kind::Loop) collect_comps(p, item.index, out);
    else out.push_back(item.index);
  }
}

// Store row with a non-zero coefficient at column `col`, or -1.
int store_row_for_col(const ir::AccessMatrix& store, int col) {
  for (int r = 0; r < store.rank(); ++r)
    if (store.at(r, col) != 0) return r;
  return -1;
}

// Length of the common loop prefix of two computations' nests.
int shared_prefix(const ir::Program& p, int comp_a, int comp_b) {
  const std::vector<int> na = p.nest_of(comp_a);
  const std::vector<int> nb = p.nest_of(comp_b);
  int shared = 0;
  while (shared < static_cast<int>(na.size()) && shared < static_cast<int>(nb.size()) &&
         na[static_cast<std::size_t>(shared)] == nb[static_cast<std::size_t>(shared)])
    ++shared;
  return shared;
}

}  // namespace

std::optional<ir::AccessMatrix::Range> value_difference_range(
    const ir::AccessMatrix& store, int row, const ir::AccessMatrix& load, int shared_depth,
    std::span<const std::int64_t> consumer_extents) {
  if (row < 0 || row >= store.rank() || row >= load.rank()) return std::nullopt;
  // The producer must fully determine this dimension within the shared loops;
  // coefficients on producer-private loops make the produced range depend on
  // iterators the consumer cannot see.
  for (int c = shared_depth; c < store.depth(); ++c)
    if (store.at(row, c) != 0) return std::nullopt;

  std::int64_t lo = load.constant(row) - store.constant(row);
  std::int64_t hi = lo;
  for (int c = 0; c < load.depth(); ++c) {
    std::int64_t coef = load.at(row, c);
    if (c < shared_depth) coef -= store.at(row, c);
    if (coef == 0) continue;
    if (c >= static_cast<int>(consumer_extents.size())) return std::nullopt;
    const std::int64_t span = consumer_extents[static_cast<std::size_t>(c)] - 1;
    if (span < 0) return std::nullopt;
    if (coef > 0) hi += coef * span;
    else lo += coef * span;
  }
  return ir::AccessMatrix::Range{lo, hi};
}

bool reads_output_of(const ir::Program& p, int consumer_id, int producer_id) {
  const int buf = p.comp(producer_id).store.buffer_id;
  for (const ir::BufferAccess& a : p.comp(consumer_id).rhs.loads())
    if (a.buffer_id == buf) return true;
  return false;
}

std::optional<std::string> check_fusion_dependences(const ir::Program& p,
                                                    std::span<const int> comps_a,
                                                    std::span<const int> comps_b, int depth) {
  for (int pa : comps_a) {
    const ir::Computation& prod = p.comp(pa);
    for (int cb : comps_b) {
      const ir::Computation& cons = p.comp(cb);
      const auto cons_extents = p.extents_of(cb);
      for (const ir::BufferAccess& load : cons.rhs.loads()) {
        if (load.buffer_id != prod.store.buffer_id) continue;
        for (int level = 0; level < depth; ++level) {
          const int row = store_row_for_col(prod.store.matrix, level);
          if (row < 0) {
            std::ostringstream os;
            os << "fusion at depth " << depth << " illegal: level " << level
               << " is not a produced dimension of " << prod.name << " read by " << cons.name;
            return os.str();
          }
          const auto range =
              value_difference_range(prod.store.matrix, row, load.matrix, depth, cons_extents);
          if (!range) {
            std::ostringstream os;
            os << "fusion at depth " << depth << " illegal: dependence of " << cons.name
               << " on " << prod.name << " is not analyzable at level " << level;
            return os.str();
          }
          if (range->max > 0) {
            std::ostringstream os;
            os << "fusion at depth " << depth << " illegal: " << cons.name
               << " may read values " << prod.name << " produces in later iterations of level "
               << level << " (difference max " << range->max << ")";
            return os.str();
          }
        }
      }
    }
  }
  return std::nullopt;
}

namespace {

// --- raw-basis machinery for dependence distance vectors ---------------------
//
// Tile pairs and skewed pairs make the current loop basis non-rectangular
// (tail trip counts, wavefront windows). To solve dependences with plain
// interval arithmetic we lift the shared loop prefix to a "raw" basis:
// every tile (outer, inner) pair collapses back to one iterator of the
// original extent, and every skewed (i, t) pair is un-skewed back to (i, j).
// The raw domain is rectangular by construction, distances are solved there,
// and the per-level results are mapped back through the structure.

std::int64_t floor_div(std::int64_t a, std::int64_t b) {  // b > 0
  return a >= 0 ? a / b : -((-a + b - 1) / b);
}

struct SharedLevel {
  enum class Kind { Plain, TileOuter, TileInner, SkewSum, SkewPartner };
  Kind kind = Kind::Plain;
  int raw = -1;                 // raw iterator this level draws from
  int raw_i = -1;               // SkewSum: raw iterator of the partner (i)
  int partner_pos = -1;         // pair levels: nest position of the other half
  std::int64_t size = 0;        // Tile*: inner tile extent
  std::int64_t factor = 0;      // Skew*: f
};

struct RawBasis {
  std::vector<SharedLevel> levels;     // one per shared nest position
  std::vector<std::int64_t> extents;   // per raw iterator (rectangular)
};

// Lifts the first `shared` loops of `nest` to the raw basis. Returns nullopt
// when the structure is not one we can un-transform (e.g. a tile pair
// straddling the shared prefix), in which case callers must be conservative.
std::optional<RawBasis> build_raw_basis(const ir::Program& p, const std::vector<int>& nest,
                                        int shared) {
  RawBasis basis;
  basis.levels.resize(static_cast<std::size_t>(shared));
  std::vector<int> pos_of_loop;  // loop id -> prefix position or -1
  pos_of_loop.assign(p.loops.size(), -1);
  for (int c = 0; c < shared; ++c) pos_of_loop[static_cast<std::size_t>(nest[c])] = c;

  std::vector<char> done(static_cast<std::size_t>(shared), 0);
  for (int c = 0; c < shared; ++c) {
    if (done[static_cast<std::size_t>(c)]) continue;
    const ir::LoopNode& l = p.loop(nest[static_cast<std::size_t>(c)]);
    if (l.skew_of != -1) {
      const int pp = pos_of_loop[static_cast<std::size_t>(l.skew_of)];
      if (pp < 0) return std::nullopt;  // pair straddles the prefix
      const int sum_pos = l.skew_is_sum ? c : pp;
      const int par_pos = l.skew_is_sum ? pp : c;
      const ir::LoopNode& sum = p.loop(nest[static_cast<std::size_t>(sum_pos)]);
      const ir::LoopNode& par = p.loop(nest[static_cast<std::size_t>(par_pos)]);
      const int raw_i = static_cast<int>(basis.extents.size());
      basis.extents.push_back(par.iter.extent);
      const int raw_j = static_cast<int>(basis.extents.size());
      basis.extents.push_back(p.skew_orig_inner_extent(sum));
      basis.levels[static_cast<std::size_t>(sum_pos)] = {SharedLevel::Kind::SkewSum, raw_j,
                                                         raw_i, par_pos, 0, sum.skew_factor};
      basis.levels[static_cast<std::size_t>(par_pos)] = {SharedLevel::Kind::SkewPartner, raw_i,
                                                         -1, sum_pos, 0, sum.skew_factor};
      done[static_cast<std::size_t>(sum_pos)] = done[static_cast<std::size_t>(par_pos)] = 1;
    } else if (l.tail_of != -1) {
      const int op = pos_of_loop[static_cast<std::size_t>(l.tail_of)];
      if (op < 0) return std::nullopt;  // tile pair straddles the prefix
      const int raw = static_cast<int>(basis.extents.size());
      basis.extents.push_back(l.orig_extent);
      basis.levels[static_cast<std::size_t>(c)] = {SharedLevel::Kind::TileInner, raw, -1, op,
                                                   l.iter.extent, 0};
      basis.levels[static_cast<std::size_t>(op)] = {SharedLevel::Kind::TileOuter, raw, -1, c,
                                                    l.iter.extent, 0};
      done[static_cast<std::size_t>(c)] = done[static_cast<std::size_t>(op)] = 1;
    } else {
      // Plain now; may be claimed later as TileOuter by a deeper inner loop.
      const int raw = static_cast<int>(basis.extents.size());
      basis.extents.push_back(l.iter.extent);
      basis.levels[static_cast<std::size_t>(c)] = {SharedLevel::Kind::Plain, raw, -1, -1, 0, 0};
    }
  }
  // A tile outer claimed after being provisionally marked Plain leaves a stale
  // raw iterator behind; rebuild extent bookkeeping by a second pass instead.
  // (TileInner always appears after its outer in nest order, so the outer was
  // marked Plain first; drop the stale Plain raw slot by remapping.)
  std::vector<int> remap(basis.extents.size(), -1);
  std::vector<std::int64_t> extents;
  for (const SharedLevel& lv : basis.levels) {
    if (lv.kind == SharedLevel::Kind::TileOuter) continue;  // shares inner's raw
    if (remap[static_cast<std::size_t>(lv.raw)] == -1) {
      remap[static_cast<std::size_t>(lv.raw)] = static_cast<int>(extents.size());
      extents.push_back(basis.extents[static_cast<std::size_t>(lv.raw)]);
    }
  }
  for (SharedLevel& lv : basis.levels) {
    lv.raw = remap[static_cast<std::size_t>(lv.raw)];
    if (lv.raw_i != -1) lv.raw_i = remap[static_cast<std::size_t>(lv.raw_i)];
  }
  basis.extents = std::move(extents);
  return basis;
}

// Value hull span of the iterator at nest position `c` (values in [0, span]).
// Only the offset-mode t-loop has values exceeding its counter range.
std::int64_t value_span(const ir::Program& p, const std::vector<int>& nest, int c) {
  const ir::LoopNode& l = p.loop(nest[static_cast<std::size_t>(c)]);
  if (l.skew_of != -1 && l.skew_is_sum && !p.is_wave_sum(l)) {
    const ir::LoopNode& partner = p.loop(l.skew_of);
    return l.skew_factor * (partner.iter.extent - 1) + l.iter.extent - 1;
  }
  return l.iter.extent - 1;
}

// Converts row r of access matrix `m` (current basis) to coefficients over
// the raw iterators of the shared prefix. Returns false when the row does not
// follow the canonical tile pattern (outer coef == inner coef * tile size),
// in which case the row cannot be used for pinning.
bool raw_row(const RawBasis& basis, const ir::AccessMatrix& m, int r,
             std::vector<std::int64_t>& raw_coef) {
  raw_coef.assign(basis.extents.size(), 0);
  for (int c = 0; c < static_cast<int>(basis.levels.size()); ++c) {
    const SharedLevel& lv = basis.levels[static_cast<std::size_t>(c)];
    switch (lv.kind) {
      case SharedLevel::Kind::Plain:
        raw_coef[static_cast<std::size_t>(lv.raw)] += m.at(r, c);
        break;
      case SharedLevel::Kind::TileInner: {
        const std::int64_t v = m.at(r, c);
        if (m.at(r, lv.partner_pos) != v * lv.size) return false;
        raw_coef[static_cast<std::size_t>(lv.raw)] += v;
        break;
      }
      case SharedLevel::Kind::TileOuter:
        break;  // folded into the inner half
      case SharedLevel::Kind::SkewSum: {
        // value = cs*t + cp*i = cs*(j + f*i) + cp*i = cs*j + (cp + f*cs)*i
        const std::int64_t cs = m.at(r, c);
        const std::int64_t cp = m.at(r, lv.partner_pos);
        raw_coef[static_cast<std::size_t>(lv.raw)] += cs;
        raw_coef[static_cast<std::size_t>(lv.raw_i)] += cp + lv.factor * cs;
        break;
      }
      case SharedLevel::Kind::SkewPartner:
        break;  // folded into the sum half
    }
  }
  return true;
}

}  // namespace

std::optional<std::vector<ir::AccessMatrix::Range>> dependence_distance_ranges(
    const ir::Program& p, int producer_id, int consumer_id, const ir::BufferAccess& load) {
  const ir::Computation& prod = p.comp(producer_id);
  const std::vector<int> pn = p.nest_of(producer_id);
  const std::vector<int> cn = p.nest_of(consumer_id);
  const int shared = shared_prefix(p, producer_id, consumer_id);
  const auto basis = build_raw_basis(p, cn, shared);
  if (!basis) return std::nullopt;
  const int nraw = static_cast<int>(basis->extents.size());
  const ir::AccessMatrix& S = prod.store.matrix;
  const ir::AccessMatrix& L = load.matrix;

  const int rows = std::min(S.rank(), L.rank());
  std::vector<std::vector<std::int64_t>> sraw(static_cast<std::size_t>(rows));
  std::vector<std::vector<std::int64_t>> lraw(static_cast<std::size_t>(rows));
  std::vector<char> usable(static_cast<std::size_t>(rows), 0);
  for (int r = 0; r < rows; ++r) {
    usable[static_cast<std::size_t>(r)] =
        raw_row(*basis, S, r, sraw[static_cast<std::size_t>(r)]) &&
        raw_row(*basis, L, r, lraw[static_cast<std::size_t>(r)]);
    if (!usable[static_cast<std::size_t>(r)]) continue;
    // Pinning additionally requires the produced index to be independent of
    // producer-private loops.
    for (int c = shared; c < S.depth(); ++c)
      if (S.at(r, c) != 0) usable[static_cast<std::size_t>(r)] = 0;
  }

  // Solve the distance per raw iterator.
  std::vector<ir::AccessMatrix::Range> draw(static_cast<std::size_t>(nraw));
  for (int c = 0; c < nraw; ++c) {
    int pin = -1;
    for (int r = 0; r < rows && pin < 0; ++r) {
      if (!usable[static_cast<std::size_t>(r)]) continue;
      bool ok = sraw[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] == 1;
      for (int k = 0; ok && k < nraw; ++k)
        if (k != c && sraw[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)] != 0)
          ok = false;
      if (ok) pin = r;
    }
    const std::int64_t span_c = basis->extents[static_cast<std::size_t>(c)] - 1;
    if (pin < 0) {
      draw[static_cast<std::size_t>(c)] = {-span_c, span_c};
      continue;
    }
    // y_prod_c = lraw[pin] . y_cons + sum(private L coefs * values) + Lconst - Sconst
    // d_c = y_cons_c - y_prod_c.
    std::int64_t lo = S.constant(pin) - L.constant(pin);
    std::int64_t hi = lo;
    auto add_term = [&](std::int64_t coef, std::int64_t span) {
      if (coef > 0) hi += coef * span;
      else lo += coef * span;
    };
    for (int k = 0; k < nraw; ++k) {
      std::int64_t coef = -lraw[static_cast<std::size_t>(pin)][static_cast<std::size_t>(k)];
      if (k == c) coef += 1;
      if (coef != 0) add_term(coef, basis->extents[static_cast<std::size_t>(k)] - 1);
    }
    for (int cp = shared; cp < L.depth(); ++cp) {
      const std::int64_t coef = -L.at(pin, cp);
      if (coef != 0) add_term(coef, value_span(p, cn, cp));
    }
    draw[static_cast<std::size_t>(c)] = {lo, hi};
  }

  // Map the raw distances back through the tile / skew structure.
  std::vector<ir::AccessMatrix::Range> out(static_cast<std::size_t>(shared));
  for (int c = 0; c < shared; ++c) {
    const SharedLevel& lv = basis->levels[static_cast<std::size_t>(c)];
    const ir::AccessMatrix::Range d = draw[static_cast<std::size_t>(lv.raw)];
    switch (lv.kind) {
      case SharedLevel::Kind::Plain:
        out[static_cast<std::size_t>(c)] = d;
        break;
      case SharedLevel::Kind::TileOuter:
        out[static_cast<std::size_t>(c)] = {floor_div(d.min, lv.size),
                                            floor_div(d.max + lv.size - 1, lv.size)};
        break;
      case SharedLevel::Kind::TileInner:
        out[static_cast<std::size_t>(c)] =
            (d.min == 0 && d.max == 0) ? ir::AccessMatrix::Range{0, 0}
                                       : ir::AccessMatrix::Range{-(lv.size - 1), lv.size - 1};
        break;
      case SharedLevel::Kind::SkewSum: {
        // d_t = d_j + f*d_i, with f > 0.
        const ir::AccessMatrix::Range di = draw[static_cast<std::size_t>(lv.raw_i)];
        out[static_cast<std::size_t>(c)] = {d.min + lv.factor * di.min,
                                            d.max + lv.factor * di.max};
        break;
      }
      case SharedLevel::Kind::SkewPartner:
        out[static_cast<std::size_t>(c)] = d;
        break;
    }
  }
  return out;
}

bool distances_lex_nonneg(std::span<const ir::AccessMatrix::Range> d, bool producer_first) {
  for (const ir::AccessMatrix::Range& r : d) {
    if (r.min > 0) return true;   // provably carried positively here
    if (r.min < 0) return false;  // may be negative while all earlier are zero
  }
  return producer_first;  // all-zero distance: textual order decides
}

std::optional<std::string> check_lexicographic_order(const ir::Program& p) {
  const std::vector<int> order = p.comps_in_order();
  std::vector<int> order_index(p.comps.size(), 0);
  for (std::size_t i = 0; i < order.size(); ++i)
    order_index[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] =
        static_cast<int>(i);

  for (const ir::Computation& prod : p.comps) {
    for (const ir::Computation& cons : p.comps) {
      if (prod.id == cons.id) continue;
      for (const ir::BufferAccess& load : cons.rhs.loads()) {
        if (load.buffer_id != prod.store.buffer_id) continue;
        const auto dvec = dependence_distance_ranges(p, prod.id, cons.id, load);
        if (!dvec) continue;  // unanalyzable: no claim either way
        const bool prod_first = order_index[static_cast<std::size_t>(prod.id)] <
                                order_index[static_cast<std::size_t>(cons.id)];
        if (!distances_lex_nonneg(*dvec, prod_first)) {
          std::ostringstream os;
          os << "dependence " << prod.name << " -> " << cons.name
             << " has a lexicographically negative distance vector: [";
          for (std::size_t k = 0; k < dvec->size(); ++k)
            os << (k ? ", " : "") << "[" << (*dvec)[k].min << "," << (*dvec)[k].max << "]";
          os << "]" << (prod_first ? "" : " (producer textually after consumer)");
          return os.str();
        }
      }
    }
  }
  return std::nullopt;
}

bool level_carries_dependence(const ir::Program& p, int loop_id) {
  std::vector<int> comps;
  collect_comps(p, loop_id, comps);
  // Depth position of the loop (== its column in nests that contain it).
  int level = 0;
  for (int l = p.loop(loop_id).parent; l != -1; l = p.loop(l).parent) ++level;

  for (int pa : comps) {
    const ir::Computation& prod = p.comp(pa);
    for (int cb : comps) {
      if (pa == cb) continue;
      const ir::Computation& cons = p.comp(cb);
      const auto cons_extents = p.extents_of(cb);
      for (const ir::BufferAccess& load : cons.rhs.loads()) {
        if (load.buffer_id != prod.store.buffer_id) continue;
        // Fast path: producer and consumer instances perfectly aligned at
        // this loop (value difference identically zero).
        bool safe = false;
        const int row = store_row_for_col(prod.store.matrix, level);
        const int shared = shared_prefix(p, pa, cb);
        if (row >= 0) {
          const auto range =
              value_difference_range(prod.store.matrix, row, load.matrix, shared, cons_extents);
          safe = range && range->min == 0 && range->max == 0;
        }
        if (!safe) {
          // Distance-vector path: the level is dependence-free when the
          // distance here is exactly zero, or when some outer level provably
          // carries the whole dependence (strictly positive distance). The
          // latter is what legalizes inner-parallel wavefronts.
          const auto dvec = dependence_distance_ranges(p, pa, cb, load);
          if (dvec && level < static_cast<int>(dvec->size())) {
            const ir::AccessMatrix::Range d = (*dvec)[static_cast<std::size_t>(level)];
            if (d.min == 0 && d.max == 0) safe = true;
            for (int k = 0; !safe && k < level; ++k)
              if ((*dvec)[static_cast<std::size_t>(k)].min > 0) safe = true;
          }
        }
        if (!safe) return true;
      }
    }
  }
  return false;
}

}  // namespace tcm::transforms
