// Application of schedules to programs.
//
// A Schedule is applied in canonical order (fusions, interchanges, tilings,
// unrollings, parallelization, vectorization). Structural transformations
// rewrite the loop tree and every affected access matrix; annotation
// transformations tag loops. Each step is legality-checked:
//   - fusion: adjacent top-level nests, matching extents, and all
//     producer->consumer dependences preserved (affine distance analysis);
//   - interchange: the two levels must delimit a perfectly nested chain;
//   - tiling: consecutive perfectly nested levels, 2 <= size <= extent,
//     nothing tiled twice (non-divisible sizes are handled with exact tail
//     iteration bounds);
//   - unroll: innermost loop, 2 <= factor <= extent;
//   - parallelize: not a reduction level of any computation under the loop
//     and no loop-carried dependence;
//   - vectorize: innermost loop, power-of-two width <= extent, no carried
//     dependence.
#pragma once

#include <string>

#include "ir/program.h"
#include "transforms/schedule.h"

namespace tcm::transforms {

struct ApplyResult {
  bool ok = false;
  std::string error;    // reason of the first legality failure when !ok
  ir::Program program;  // the transformed program when ok
};

// Applies `s` to `p`, returning the transformed program or the first
// legality error. `p` itself is never modified.
ApplyResult try_apply_schedule(const ir::Program& p, const Schedule& s);

// Throwing convenience wrapper around try_apply_schedule.
ir::Program apply_schedule(const ir::Program& p, const Schedule& s);

// True iff the schedule is legal for the program; the failure reason is
// written to `why` when provided.
bool is_legal(const ir::Program& p, const Schedule& s, std::string* why = nullptr);

}  // namespace tcm::transforms
