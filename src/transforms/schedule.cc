#include "transforms/schedule.h"

#include <sstream>

namespace tcm::transforms {

std::string Schedule::to_string() const {
  std::ostringstream os;
  bool first = true;
  auto sep = [&] {
    if (!first) os << "; ";
    first = false;
  };
  for (const auto& f : fusions) {
    sep();
    os << "fuse(c" << f.comp_a << ",c" << f.comp_b << ",depth=" << f.depth << ")";
  }
  for (const auto& s : skews) {
    sep();
    os << "skew(c" << s.comp << ",L" << s.level_a << ",L" << s.level_a + 1 << ",f=" << s.factor
       << ")";
  }
  for (const auto& u : unimodulars) {
    sep();
    os << "unimodular(c" << u.comp << ",L" << u.level << ",[";
    for (std::size_t k = 0; k < u.coeffs.size(); ++k) os << (k ? "," : "") << u.coeffs[k];
    os << "])";
  }
  for (const auto& i : interchanges) {
    sep();
    os << "interchange(c" << i.comp << ",L" << i.level_a << ",L" << i.level_b << ")";
  }
  for (const auto& t : tiles) {
    sep();
    os << "tile(c" << t.comp << ",L" << t.level << ",";
    for (std::size_t k = 0; k < t.sizes.size(); ++k) os << (k ? "x" : "") << t.sizes[k];
    os << ")";
  }
  for (const auto& u : unrolls) {
    sep();
    os << "unroll(c" << u.comp << "," << u.factor << ")";
  }
  for (const auto& p : parallels) {
    sep();
    os << "parallelize(c" << p.comp << ",L" << p.level << ")";
  }
  for (const auto& v : vectorizes) {
    sep();
    os << "vectorize(c" << v.comp << "," << v.width << ")";
  }
  if (first) return "<identity>";
  return os.str();
}

}  // namespace tcm::transforms
