// Parameter serialization: a simple tagged binary format
//   "TCMW" u32_version u64_count { u32 name_len, name, i32 rows, i32 cols,
//   f32 data[rows*cols] }* u32_crc32
// Shapes and names must match at load time, which catches configuration
// mismatches between training and inference. Version 2 appends a CRC-32 of
// all tensor bytes; loading verifies it and throws on mismatch, so bit-rot
// in a checkpoint surfaces as a load error (mapped to FAILED_PRECONDITION
// by the registry/api layer) instead of corrupt predictions. Version 1
// files, which lack the trailer, still load.
#pragma once

#include <string>

#include "nn/modules.h"

namespace tcm::nn {

// Writes all parameters of `m`. Returns false on I/O failure.
bool save_parameters(Module& m, const std::string& path);

// Loads parameters into `m`. Throws std::runtime_error on format or
// name/shape mismatch; returns false when the file cannot be opened.
bool load_parameters(Module& m, const std::string& path);

}  // namespace tcm::nn
