// Parameter serialization: a simple tagged binary format
//   "TCMW" u32_version u64_count { u32 name_len, name, i32 rows, i32 cols,
//   f32 data[rows*cols] }*
// Shapes and names must match at load time, which catches configuration
// mismatches between training and inference.
#pragma once

#include <string>

#include "nn/modules.h"

namespace tcm::nn {

// Writes all parameters of `m`. Returns false on I/O failure.
bool save_parameters(Module& m, const std::string& path);

// Loads parameters into `m`. Throws std::runtime_error on format or
// name/shape mismatch; returns false when the file cannot be opened.
bool load_parameters(Module& m, const std::string& path);

}  // namespace tcm::nn
