// Tape-based reverse-mode automatic differentiation.
//
// Variables wrap a Tensor plus an optional graph node recording how the
// value was produced. The graph is dynamic: the recursive loop-embedding
// layer of the cost model builds a different graph per program tree, exactly
// like the PyTorch implementation the paper describes.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "nn/tensor.h"

namespace tcm::nn {

struct VarNode {
  Tensor value;
  Tensor grad;             // allocated lazily on first accumulation
  bool grad_ready = false;
  bool requires_grad = false;
  bool is_leaf = false;    // true for parameters (grad kept after backward)
  std::vector<std::shared_ptr<VarNode>> parents;
  // Propagates `grad_out` (d loss / d value) into the parents' grads.
  std::function<void(const Tensor& grad_out)> backward_fn;

  // Adds g into this node's grad buffer.
  void accumulate(const Tensor& g);
};

class Variable {
 public:
  Variable() = default;
  // Constant (no gradient tracking).
  explicit Variable(Tensor value);
  // Leaf with gradient tracking (parameters / inputs under test).
  static Variable leaf(Tensor value);
  // Interior node produced by an op.
  static Variable op_result(Tensor value, std::vector<Variable> parents,
                            std::function<void(const Tensor&)> backward_fn);

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const;
  Tensor& mutable_value();  // used by optimizers updating parameters in place
  const Tensor& grad() const;
  bool has_grad() const { return node_ && node_->grad_ready; }
  bool requires_grad() const { return node_ && node_->requires_grad; }
  void zero_grad();

  int rows() const { return value().rows(); }
  int cols() const { return value().cols(); }

  std::shared_ptr<VarNode> node() const { return node_; }

 private:
  std::shared_ptr<VarNode> node_;
};

// Runs reverse-mode differentiation from a scalar root ([1,1] value):
// topologically orders the reachable graph and invokes backward functions.
// Gradients accumulate into every requires_grad node reachable from root.
void backward(const Variable& root);

}  // namespace tcm::nn
