#include "nn/ops.h"

#include <cmath>
#include <stdexcept>

namespace tcm::nn {
namespace {

void check_same_shape(const Variable& a, const Variable& b, const char* op) {
  if (!a.value().same_shape(b.value()))
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                a.value().shape_string() + " vs " + b.value().shape_string());
}

// Elementwise unary op helper: forward f, backward df (as function of input
// value x and output value y). The backward closure reads the saved output
// through a weak_ptr to the op's own node — weak, because a shared_ptr would
// form a node -> backward_fn -> node ownership cycle — instead of keeping a
// full tensor copy alive per op; during backward() the node is reachable
// from the root and therefore lockable.
template <typename F, typename DF>
Variable unary(const Variable& a, F f, DF df) {
  Tensor out(a.rows(), a.cols());
  const Tensor& x = a.value();
  for (std::size_t i = 0; i < out.size(); ++i) out.data()[i] = f(x.data()[i]);
  Variable result = Variable::op_result(std::move(out), {a}, {});
  if (result.requires_grad()) {
    auto an = a.node();
    std::weak_ptr<VarNode> self = result.node();
    result.node()->backward_fn = [an, self, df](const Tensor& g) {
      if (!an->requires_grad) return;
      const std::shared_ptr<VarNode> out_node = self.lock();
      if (!out_node) throw std::logic_error("unary backward: output node expired");
      const Tensor& y = out_node->value;
      Tensor gx(g.rows(), g.cols());
      const Tensor& x = an->value;
      for (std::size_t i = 0; i < gx.size(); ++i)
        gx.data()[i] = g.data()[i] * df(x.data()[i], y.data()[i]);
      an->accumulate(gx);
    };
  }
  return result;
}

}  // namespace

Variable matmul(const Variable& a, const Variable& b) {
  Tensor out = matmul(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return Variable::op_result(std::move(out), {a, b}, [an, bn](const Tensor& g) {
    if (an->requires_grad) an->accumulate(matmul_nt(g, bn->value));
    if (bn->requires_grad) bn->accumulate(matmul_tn(an->value, g));
  });
}

Variable add(const Variable& a, const Variable& b) {
  const bool broadcast = b.rows() == 1 && a.rows() != 1;
  if (!broadcast) check_same_shape(a, b, "add");
  if (broadcast && a.cols() != b.cols()) throw std::invalid_argument("add: bias width mismatch");
  Tensor out = a.value();
  if (broadcast) {
    for (int r = 0; r < out.rows(); ++r)
      for (int c = 0; c < out.cols(); ++c) out.at(r, c) += b.value().at(0, c);
  } else {
    out.add_(b.value());
  }
  auto an = a.node();
  auto bn = b.node();
  return Variable::op_result(std::move(out), {a, b}, [an, bn, broadcast](const Tensor& g) {
    if (an->requires_grad) an->accumulate(g);
    if (!bn->requires_grad) return;
    if (!broadcast) {
      bn->accumulate(g);
    } else {
      Tensor gb(1, g.cols());
      for (int r = 0; r < g.rows(); ++r)
        for (int c = 0; c < g.cols(); ++c) gb.at(0, c) += g.at(r, c);
      bn->accumulate(gb);
    }
  });
}

Variable sub(const Variable& a, const Variable& b) {
  check_same_shape(a, b, "sub");
  Tensor out = a.value();
  out.add_scaled_(b.value(), -1.0f);
  auto an = a.node();
  auto bn = b.node();
  return Variable::op_result(std::move(out), {a, b}, [an, bn](const Tensor& g) {
    if (an->requires_grad) an->accumulate(g);
    if (bn->requires_grad) {
      Tensor gb = g;
      gb.scale_(-1.0f);
      bn->accumulate(gb);
    }
  });
}

Variable mul(const Variable& a, const Variable& b) {
  check_same_shape(a, b, "mul");
  Tensor out(a.rows(), a.cols());
  for (std::size_t i = 0; i < out.size(); ++i)
    out.data()[i] = a.value().data()[i] * b.value().data()[i];
  auto an = a.node();
  auto bn = b.node();
  return Variable::op_result(std::move(out), {a, b}, [an, bn](const Tensor& g) {
    if (an->requires_grad) {
      Tensor ga(g.rows(), g.cols());
      for (std::size_t i = 0; i < ga.size(); ++i)
        ga.data()[i] = g.data()[i] * bn->value.data()[i];
      an->accumulate(ga);
    }
    if (bn->requires_grad) {
      Tensor gb(g.rows(), g.cols());
      for (std::size_t i = 0; i < gb.size(); ++i)
        gb.data()[i] = g.data()[i] * an->value.data()[i];
      bn->accumulate(gb);
    }
  });
}

Variable div(const Variable& a, const Variable& b) {
  check_same_shape(a, b, "div");
  Tensor out(a.rows(), a.cols());
  for (std::size_t i = 0; i < out.size(); ++i)
    out.data()[i] = a.value().data()[i] / b.value().data()[i];
  auto an = a.node();
  auto bn = b.node();
  return Variable::op_result(std::move(out), {a, b}, [an, bn](const Tensor& g) {
    if (an->requires_grad) {
      Tensor ga(g.rows(), g.cols());
      for (std::size_t i = 0; i < ga.size(); ++i)
        ga.data()[i] = g.data()[i] / bn->value.data()[i];
      an->accumulate(ga);
    }
    if (bn->requires_grad) {
      Tensor gb(g.rows(), g.cols());
      for (std::size_t i = 0; i < gb.size(); ++i) {
        const float bv = bn->value.data()[i];
        gb.data()[i] = -g.data()[i] * an->value.data()[i] / (bv * bv);
      }
      bn->accumulate(gb);
    }
  });
}

Variable scale(const Variable& a, float s) {
  Tensor out = a.value();
  out.scale_(s);
  auto an = a.node();
  return Variable::op_result(std::move(out), {a}, [an, s](const Tensor& g) {
    if (!an->requires_grad) return;
    Tensor ga = g;
    ga.scale_(s);
    an->accumulate(ga);
  });
}

Variable sigmoid(const Variable& a) {
  return unary(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Variable tanh_op(const Variable& a) {
  return unary(a, [](float x) { return std::tanh(x); },
               [](float, float y) { return 1.0f - y * y; });
}

Variable relu(const Variable& a) {
  return unary(a, [](float x) { return x > 0.0f ? x : 0.0f; },
               [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Variable elu(const Variable& a, float alpha) {
  return unary(
      a, [alpha](float x) { return x > 0.0f ? x : alpha * (std::exp(x) - 1.0f); },
      [alpha](float x, float y) { return x > 0.0f ? 1.0f : y + alpha; });
}

Variable abs_op(const Variable& a) {
  return unary(a, [](float x) { return std::abs(x); },
               [](float x, float) { return x >= 0.0f ? 1.0f : -1.0f; });
}

Variable exp_op(const Variable& a) {
  return unary(a, [](float x) { return std::exp(x); }, [](float, float y) { return y; });
}

Variable exp_bounded(const Variable& a, float limit) {
  return exp_op(scale(tanh_op(scale(a, 1.0f / limit)), limit));
}

Variable log_op(const Variable& a) {
  return unary(a, [](float x) { return std::log(x); }, [](float x, float) { return 1.0f / x; });
}

Variable dropout(const Variable& a, float p, bool training, Rng& rng) {
  if (p < 0.0f || p >= 1.0f) throw std::invalid_argument("dropout: p must be in [0,1)");
  if (!training || p == 0.0f) return a;
  // Single fused pass: draw the mask and apply it in one sweep (the mask is
  // kept for the backward closure).
  Tensor mask(a.rows(), a.cols());
  Tensor out(a.rows(), a.cols());
  const float keep_scale = 1.0f / (1.0f - p);
  const Tensor& x = a.value();
  for (std::size_t i = 0; i < out.size(); ++i) {
    const float m = rng.bernoulli(p) ? 0.0f : keep_scale;
    mask.data()[i] = m;
    out.data()[i] = x.data()[i] * m;
  }
  auto an = a.node();
  return Variable::op_result(std::move(out), {a}, [an, mask](const Tensor& g) {
    if (!an->requires_grad) return;
    Tensor ga(g.rows(), g.cols());
    for (std::size_t i = 0; i < ga.size(); ++i) ga.data()[i] = g.data()[i] * mask.data()[i];
    an->accumulate(ga);
  });
}

Variable concat_cols(const Variable& a, const Variable& b) {
  if (a.rows() != b.rows()) throw std::invalid_argument("concat_cols: row mismatch");
  const int n1 = a.cols(), n2 = b.cols();
  Tensor out(a.rows(), n1 + n2);
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < n1; ++c) out.at(r, c) = a.value().at(r, c);
    for (int c = 0; c < n2; ++c) out.at(r, n1 + c) = b.value().at(r, c);
  }
  auto an = a.node();
  auto bn = b.node();
  return Variable::op_result(std::move(out), {a, b}, [an, bn, n1, n2](const Tensor& g) {
    if (an->requires_grad) {
      Tensor ga(g.rows(), n1);
      for (int r = 0; r < g.rows(); ++r)
        for (int c = 0; c < n1; ++c) ga.at(r, c) = g.at(r, c);
      an->accumulate(ga);
    }
    if (bn->requires_grad) {
      Tensor gb(g.rows(), n2);
      for (int r = 0; r < g.rows(); ++r)
        for (int c = 0; c < n2; ++c) gb.at(r, c) = g.at(r, n1 + c);
      bn->accumulate(gb);
    }
  });
}

Variable slice_cols(const Variable& a, int from, int to) {
  if (from < 0 || to > a.cols() || from >= to)
    throw std::invalid_argument("slice_cols: bad range");
  Tensor out(a.rows(), to - from);
  for (int r = 0; r < a.rows(); ++r)
    for (int c = from; c < to; ++c) out.at(r, c - from) = a.value().at(r, c);
  auto an = a.node();
  const int cols = a.cols();
  return Variable::op_result(std::move(out), {a}, [an, from, to, cols](const Tensor& g) {
    if (!an->requires_grad) return;
    Tensor ga(g.rows(), cols);
    for (int r = 0; r < g.rows(); ++r)
      for (int c = from; c < to; ++c) ga.at(r, c) = g.at(r, c - from);
    an->accumulate(ga);
  });
}

Variable mean_all(const Variable& a) {
  const float inv_n = 1.0f / static_cast<float>(a.value().size());
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.value().size(); ++i) acc += a.value().data()[i];
  auto an = a.node();
  const int rows = a.rows(), cols = a.cols();
  return Variable::op_result(Tensor::scalar(acc * inv_n), {a},
                             [an, inv_n, rows, cols](const Tensor& g) {
                               if (!an->requires_grad) return;
                               Tensor ga = Tensor::full(rows, cols, g.item() * inv_n);
                               an->accumulate(ga);
                             });
}

Variable mape_loss(const Variable& pred, const Tensor& target) {
  if (!pred.value().same_shape(target)) throw std::invalid_argument("mape_loss: shape mismatch");
  for (std::size_t i = 0; i < target.size(); ++i)
    if (target.data()[i] == 0.0f) throw std::invalid_argument("mape_loss: zero target");
  Tensor abs_inv_target(target.rows(), target.cols());
  for (std::size_t i = 0; i < target.size(); ++i)
    abs_inv_target.data()[i] = 1.0f / std::abs(target.data()[i]);
  const Variable diff = sub(pred, Variable(target));
  const Variable scaled = mul(diff, Variable(abs_inv_target));
  return mean_all(abs_op(scaled));
}

Variable mse_loss(const Variable& pred, const Tensor& target) {
  if (!pred.value().same_shape(target)) throw std::invalid_argument("mse_loss: shape mismatch");
  const Variable diff = sub(pred, Variable(target));
  return mean_all(mul(diff, diff));
}

Variable log_ratio_loss(const Variable& pred, const Tensor& target) {
  if (!pred.value().same_shape(target))
    throw std::invalid_argument("log_ratio_loss: shape mismatch");
  Tensor log_target(target.rows(), target.cols());
  for (std::size_t i = 0; i < target.size(); ++i) {
    if (target.data()[i] <= 0.0f) throw std::invalid_argument("log_ratio_loss: target <= 0");
    log_target.data()[i] = std::log(target.data()[i]);
  }
  return mean_all(abs_op(sub(log_op(pred), Variable(log_target))));
}

}  // namespace tcm::nn
