// A minimal dense 2-D float tensor. Everything in the cost model operates on
// [batch, features] matrices (scalars are [1,1]), which keeps the autograd
// layer small without giving up batching.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace tcm::nn {

class Tensor {
 public:
  Tensor() = default;
  Tensor(int rows, int cols);  // zero-initialized

  static Tensor zeros(int rows, int cols);
  static Tensor full(int rows, int cols, float value);
  static Tensor ones(int rows, int cols) { return full(rows, cols, 1.0f); }
  // Row-major copy of `values` (size must be rows*cols).
  static Tensor from(int rows, int cols, std::span<const float> values);
  static Tensor scalar(float v) { return full(1, 1, v); }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool same_shape(const Tensor& o) const { return rows_ == o.rows_ && cols_ == o.cols_; }

  float& at(int r, int c) { return data_[static_cast<std::size_t>(r) * cols_ + c]; }
  float at(int r, int c) const { return data_[static_cast<std::size_t>(r) * cols_ + c]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return data_; }
  std::span<const float> span() const { return data_; }

  // Reshapes in place to [rows, cols] without shrinking the underlying
  // storage: same-size or smaller reshapes never touch the heap, which is
  // what lets InferenceArena reuse one buffer across differently-shaped
  // forward passes. Element values are unspecified afterwards (newly grown
  // elements are zero, surviving ones keep stale data) — callers overwrite.
  void resize(int rows, int cols);
  // Allocated capacity of the underlying storage, in elements.
  std::size_t capacity() const { return data_.capacity(); }

  // Value of a [1,1] tensor.
  float item() const;

  // --- in-place helpers (used by optimizers and backward kernels) ---
  void fill(float v);
  void add_(const Tensor& o);                 // this += o
  void add_scaled_(const Tensor& o, float s); // this += s * o
  void scale_(float s);                       // this *= s

  std::string shape_string() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
};

// out = a * b for [M,K] x [K,N]; OpenMP-parallel blocked kernel.
Tensor matmul(const Tensor& a, const Tensor& b);
// out = a * b^T for [M,K] x [N,K] -> [M,N].
Tensor matmul_nt(const Tensor& a, const Tensor& b);
// out = a^T * b for [K,M] x [K,N] -> [M,N].
Tensor matmul_tn(const Tensor& a, const Tensor& b);

}  // namespace tcm::nn
