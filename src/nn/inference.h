// Tape-free fused inference engine.
//
// The training path (nn/ops.h) builds an autograd graph per op: every matmul
// or activation allocates a shared_ptr<VarNode>, a std::function backward
// closure and backward-only tensor copies. That is the right trade for
// training, but the cost model sits on the critical path of schedule search
// (tens of thousands of candidate scores per program), where all of that is
// pure overhead. This header is the inference-only counterpart:
//
//   - InferenceArena: a bump allocator of reusable Tensor buffers. A forward
//     pass allocates scratch via alloc() and the caller reset()s between
//     passes; once warm (buffer shapes have stabilized), steady-state passes
//     perform zero heap allocations, observable via heap_allocations().
//   - Fused kernels: linear (matmul + broadcast bias) with an optional fused
//     ELU, and a saturating-exponential head applied in place. Activation
//     sweeps use branchless polynomial exp/tanh/sigmoid (~2e-7 relative
//     error — libm's scalar calls would otherwise dominate the tape-free
//     pass) and the hot loops carry runtime ISA dispatch (x86-64-v3/v4
//     clones) so the portable binary runs wide on AVX machines. The result
//     is numerically within 1e-5 relative error of the autograd forward,
//     not bitwise equal; each batch row is still computed independently, so
//     predictions never depend on how requests were batched.
//   - PackedLSTMCell: [W_ih; W_hh] pre-packed into one [In+H, 4H] matrix at
//     pack time, so a step is a single matmul over the concatenated [x, h]
//     input followed by one sweep applying all four gate activations and the
//     c/h update in place.
//   - PackedMLP: borrows the Linear parameters (no copies) and chains the
//     fused linear kernels through arena buffers.
//
// Thread-safety: packed structures are immutable after pack() and safe to
// read concurrently; an InferenceArena belongs to exactly one thread at a
// time (serving uses one arena per worker).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "nn/modules.h"
#include "nn/tensor.h"

namespace tcm::nn {

class InferenceArena {
 public:
  InferenceArena() = default;
  InferenceArena(const InferenceArena&) = delete;
  InferenceArena& operator=(const InferenceArena&) = delete;

  // Hands out the next scratch buffer, reshaped to [rows, cols]. Contents
  // are unspecified (callers overwrite or fill()). The reference stays valid
  // until reset() reuses the slot — the pool is a deque, so later allocs
  // never relocate earlier buffers.
  Tensor& alloc(int rows, int cols);

  // Makes every buffer reusable again. Invalidates the *contents* of
  // previously returned references (the memory stays alive).
  void reset() {
    cursor_ = 0;
    ptr_scratch_.clear();
    index_scratch_.clear();
  }

  // Number of heap allocations the arena has performed: new pool slots plus
  // capacity growth of existing slots. Steady-state forward passes leave
  // this counter unchanged — the zero-allocation property the inference
  // tests assert. Readable from other threads (stats reporting).
  std::uint64_t heap_allocations() const {
    return heap_allocs_.load(std::memory_order_relaxed);
  }

  std::size_t buffers() const { return pool_.size(); }

  // Reusable non-tensor scratch for model walks (comp-embedding pointers,
  // tree-order indices). Cleared by reset(); capacity persists, so these
  // also stop allocating once warm.
  std::vector<const Tensor*>& ptr_scratch() { return ptr_scratch_; }
  std::vector<int>& index_scratch() { return index_scratch_; }

 private:
  std::deque<Tensor> pool_;  // deque: references stay valid as the pool grows
  std::size_t cursor_ = 0;
  std::atomic<std::uint64_t> heap_allocs_{0};
  std::vector<const Tensor*> ptr_scratch_;
  std::vector<int> index_scratch_;
};

// out = x @ w + b with x [B, In], w [In, N], b [1, N] broadcast over rows.
// `out` must be pre-shaped to [B, N] (arena-allocated). Accumulates over the
// inner dimension in the same order as nn::matmul, then adds the bias — so
// each row's result is independent of the batch composition.
void linear_forward(const Tensor& x, const Tensor& w, const Tensor& b, Tensor& out);

// Same as linear_forward with ELU (alpha = 1) fused into the final sweep.
void linear_elu(const Tensor& x, const Tensor& w, const Tensor& b, Tensor& out);

// In place: x <- exp(limit * tanh(x / limit)), the model's bounded
// exponential head (see nn::exp_bounded).
void exp_bounded_inplace(Tensor& x, float limit);

// An LSTM cell with its two weight matrices pre-packed for inference.
struct PackedLSTMCell {
  Tensor w;  // [In + H, 4H]: rows [0, In) from w_ih, rows [In, In+H) from w_hh
  Tensor b;  // [1, 4H]
  int input_size = 0;
  int hidden_size = 0;

  static PackedLSTMCell pack(const LSTMCell& cell);

  // One step: reads x [B, In], updates h and c [B, H] in place. Gate order
  // matches LSTMCell ([i, f, g, o]). Scratch comes from `arena`.
  void step(const Tensor& x, Tensor& h, Tensor& c, InferenceArena& arena) const;
};

// An MLP whose layers borrow the module's parameter tensors (packing copies
// nothing); forward chains fused linear/ELU kernels through arena buffers.
// Dropout is an inference no-op and therefore absent.
struct PackedMLP {
  struct Layer {
    const Tensor* w = nullptr;  // [In, Out]
    const Tensor* b = nullptr;  // [1, Out]
  };
  std::vector<Layer> layers;
  bool activate_last = true;

  static PackedMLP pack(const MLP& mlp);

  // Returns the output buffer (arena-owned, valid until arena reset).
  Tensor& forward(const Tensor& x, InferenceArena& arena) const;
};

// Lazily-built, concurrently-readable cache of a model's packed inference
// plan (its PackedMLPs/PackedLSTMCells). Many inference threads may race on
// the first get(): one builds under the mutex, the rest wait, and after the
// release-store every reader takes the lock-free path. invalidate() must not
// run concurrently with get() — it is for the single-threaded "parameters
// just changed" moment (training, weight loading), matching the
// SpeedupPredictor thread-safety contract.
template <typename PlanT>
class PlanCache {
 public:
  template <typename Build>
  const PlanT& get(Build&& build) const {
    if (!ready_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!plan_) plan_ = std::make_shared<const PlanT>(build());
      ready_.store(true, std::memory_order_release);
    }
    return *plan_;
  }

  void invalidate() {
    std::lock_guard<std::mutex> lock(mu_);
    plan_.reset();
    ready_.store(false, std::memory_order_release);
  }

 private:
  mutable std::mutex mu_;
  mutable std::atomic<bool> ready_{false};
  mutable std::shared_ptr<const PlanT> plan_;
};

}  // namespace tcm::nn
