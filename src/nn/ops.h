// Differentiable operations. Every op builds a graph node whose backward
// function propagates gradients to its parents. Shapes are [rows, cols];
// `linear`'s bias broadcasts over rows.
#pragma once

#include "nn/autograd.h"
#include "support/rng.h"

namespace tcm::nn {

// c = a @ b   ([M,K] x [K,N])
Variable matmul(const Variable& a, const Variable& b);

// Elementwise a + b (same shape), or b broadcast over rows when b is [1,N].
Variable add(const Variable& a, const Variable& b);
// Elementwise a - b (same shape).
Variable sub(const Variable& a, const Variable& b);
// Elementwise a * b (same shape).
Variable mul(const Variable& a, const Variable& b);
// Elementwise a / b (same shape).
Variable div(const Variable& a, const Variable& b);
// a * s for a scalar constant s.
Variable scale(const Variable& a, float s);

Variable sigmoid(const Variable& a);
Variable tanh_op(const Variable& a);
Variable relu(const Variable& a);
// ELU as used by the paper's model (alpha = 1).
Variable elu(const Variable& a, float alpha = 1.0f);
Variable abs_op(const Variable& a);
Variable exp_op(const Variable& a);
// Natural log; inputs must be strictly positive.
Variable log_op(const Variable& a);

// exp(limit * tanh(x / limit)): a smoothly saturating exponential head used
// to produce strictly positive speedup predictions across several orders of
// magnitude without overflow.
Variable exp_bounded(const Variable& a, float limit = 16.0f);

// Inverted dropout: active only when `training`; when not training the input
// is returned untouched and `rng` is never drawn from, which makes inference
// forwards safe to run concurrently (see SpeedupPredictor::forward_batch).
// When training, scales kept activations by
// 1/(1-p) so evaluation needs no rescaling.
Variable dropout(const Variable& a, float p, bool training, Rng& rng);

// Concatenation along columns: [B,N1] ++ [B,N2] -> [B,N1+N2].
Variable concat_cols(const Variable& a, const Variable& b);

// Column slice [from, to) -> [B, to-from].
Variable slice_cols(const Variable& a, int from, int to);

// Mean over all elements -> [1,1].
Variable mean_all(const Variable& a);

// --- losses ---------------------------------------------------------------

// Mean absolute percentage error (the paper's loss): mean(|pred - y| / |y|).
// `target` must be non-zero everywhere.
Variable mape_loss(const Variable& pred, const Tensor& target);

// Mean squared error (the Halide baseline's loss).
Variable mse_loss(const Variable& pred, const Tensor& target);

// Mean absolute log-ratio: mean(|log(pred) - log(y)|). A well-conditioned
// surrogate for MAPE: |log r| ~ |r - 1| = APE near r = pred/y = 1, but its
// gradients do not blow up as 1/y on small targets. `pred` must be positive.
Variable log_ratio_loss(const Variable& pred, const Tensor& target);

}  // namespace tcm::nn
