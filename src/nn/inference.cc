#include "nn/inference.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace tcm::nn {
namespace {

// ---------------------------------------------------------------------------
// SIMD dispatch
//
// The library is built portable (plain -O3, x86-64 baseline), but the fused
// inference kernels below are the serving hot path, so they are additionally
// compiled for the x86-64-v3 (AVX2+FMA) and x86-64-v4 (AVX-512) feature
// levels with runtime ifunc dispatch where the toolchain supports it. The
// binary still runs on baseline machines; on wide cores the kernels run
// wide. Training kernels (nn/tensor.cc) stay baseline on purpose — this is
// an inference-only engine. TCM_NATIVE builds make the whole tree native
// instead.
// ---------------------------------------------------------------------------
// ifunc resolvers run before sanitizer runtimes initialize and crash under
// TSan/ASan, so dispatch is compiled out in sanitizer builds (the macros
// below) and under -DTCM_SANITIZE (TCM_NO_IFUNC, set by CMake).
#if defined(__x86_64__) && defined(__has_attribute) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__) && !defined(TCM_NO_IFUNC)
// GCC 11 is the first release that understands the x86-64-v3/v4 level names.
#if __has_attribute(target_clones) && defined(__GNUC__) && __GNUC__ >= 11
#define TCM_TARGET_CLONES \
  __attribute__((target_clones("arch=x86-64-v4", "arch=x86-64-v3", "default")))
#endif
#endif
#ifndef TCM_TARGET_CLONES
#define TCM_TARGET_CLONES
#endif

// ---------------------------------------------------------------------------
// Branchless polynomial transcendentals
//
// std::exp/std::tanh are scalar libm calls; a gate sweep over a batch makes
// tens of thousands of them and they dominate the forward pass once the
// tape is gone. These approximations are plain float arithmetic (min/max,
// FMA-able polynomial, exponent bit-stuffing), so the compiler vectorizes
// the surrounding loops. Relative error ~2e-7 (degree-5 minimax on the
// range-reduced argument, Cephes coefficients) — two orders below the 1e-5
// parity contract of infer_batch.
// ---------------------------------------------------------------------------

inline float fast_exp(float x) {
  // Clamp: exp(-87) underflows to ~6e-39, exp(88) is near FLT_MAX.
  x = std::min(88.0f, std::max(-87.0f, x));
  // Round k = nearbyint(x * log2(e)) via the 1.5*2^23 trick (branchless,
  // vectorizes; exact for |x*log2e| < 2^22, which the clamp guarantees).
  const float t = x * 1.44269504088896341f + 12582912.0f;
  const float k = t - 12582912.0f;
  // r = x - k*ln2 in two parts for accuracy.
  const float r = (x - k * 0.693145751953125f) - k * 1.42860677e-6f;
  float p = 1.9875691500e-4f;
  p = p * r + 1.3981999507e-3f;
  p = p * r + 8.3334519073e-3f;
  p = p * r + 4.1665795894e-2f;
  p = p * r + 1.6666665459e-1f;
  p = p * r + 5.0000001201e-1f;
  p = p * r * r + r + 1.0f;
  // Multiply by 2^k by building the float directly.
  const std::int32_t ki = static_cast<std::int32_t>(k);
  const float scale = std::bit_cast<float>((ki + 127) << 23);
  return p * scale;
}

inline float fast_sigmoid(float x) { return 1.0f / (1.0f + fast_exp(-x)); }

inline float fast_tanh(float x) {
  // tanh(x) = 1 - 2/(exp(2x) + 1); the fast_exp clamp bounds the argument.
  return 1.0f - 2.0f / (fast_exp(2.0f * x) + 1.0f);
}

// ---------------------------------------------------------------------------
// Fused kernel cores (ISA-dispatched)
// ---------------------------------------------------------------------------

// out += x @ w for x [m,k], w [k,n], out [m,n], as a 4x16 register-tiled
// micro-kernel: a 4-row x 16-column accumulator tile lives in vector
// registers across the whole k loop (per k step: one 16-wide w load, four x
// broadcasts, four FMAs — no accumulator traffic through memory). Per
// output element the accumulation order over k is the plain i-k-j order in
// every code path, so results are independent of m (batch-composition
// invariance, relied on by the serving tests). The layer widths used by the
// model (64..256, multiples of 16) take the tiled path exactly.
inline constexpr int kTileCols = 16;

TCM_TARGET_CLONES
void accumulate_matmul(const float* __restrict px, const float* __restrict pw,
                       float* __restrict po, int m, int k, int n) {
  const int n_tiled = n - n % kTileCols;
  int i0 = 0;
  for (; i0 + 4 <= m; i0 += 4) {
    const std::size_t r = static_cast<std::size_t>(i0);
    const float* __restrict x0 = px + r * k;
    const float* __restrict x1 = x0 + k;
    const float* __restrict x2 = x1 + k;
    const float* __restrict x3 = x2 + k;
    float* __restrict o0 = po + r * n;
    float* __restrict o1 = o0 + n;
    float* __restrict o2 = o1 + n;
    float* __restrict o3 = o2 + n;
    for (int j0 = 0; j0 < n_tiled; j0 += kTileCols) {
      float acc0[kTileCols] = {}, acc1[kTileCols] = {}, acc2[kTileCols] = {},
            acc3[kTileCols] = {};
      const float* __restrict wcol = pw + j0;
      for (int kk = 0; kk < k; ++kk) {
        const float* __restrict wrow = wcol + static_cast<std::size_t>(kk) * n;
        const float a0 = x0[kk], a1 = x1[kk], a2 = x2[kk], a3 = x3[kk];
        for (int t = 0; t < kTileCols; ++t) {
          const float wv = wrow[t];
          acc0[t] += a0 * wv;
          acc1[t] += a1 * wv;
          acc2[t] += a2 * wv;
          acc3[t] += a3 * wv;
        }
      }
      for (int t = 0; t < kTileCols; ++t) {
        o0[j0 + t] += acc0[t];
        o1[j0 + t] += acc1[t];
        o2[j0 + t] += acc2[t];
        o3[j0 + t] += acc3[t];
      }
    }
    // Column remainder of the 4-row block.
    if (n_tiled < n) {
      for (int kk = 0; kk < k; ++kk) {
        const float* __restrict wrow = pw + static_cast<std::size_t>(kk) * n;
        const float a0 = x0[kk], a1 = x1[kk], a2 = x2[kk], a3 = x3[kk];
        for (int j = n_tiled; j < n; ++j) {
          const float wv = wrow[j];
          o0[j] += a0 * wv;
          o1[j] += a1 * wv;
          o2[j] += a2 * wv;
          o3[j] += a3 * wv;
        }
      }
    }
  }
  // Row remainder.
  for (int i = i0; i < m; ++i) {
    float* __restrict orow = po + static_cast<std::size_t>(i) * n;
    const float* __restrict xrow = px + static_cast<std::size_t>(i) * k;
    for (int kk = 0; kk < k; ++kk) {
      const float xv = xrow[kk];
      const float* __restrict wrow = pw + static_cast<std::size_t>(kk) * n;
      for (int j = 0; j < n; ++j) orow[j] += xv * wrow[j];
    }
  }
}

TCM_TARGET_CLONES
void bias_sweep(float* __restrict po, const float* __restrict pb, int m, int n) {
  for (int i = 0; i < m; ++i) {
    float* __restrict orow = po + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) orow[j] += pb[j];
  }
}

TCM_TARGET_CLONES
void bias_elu_sweep(float* __restrict po, const float* __restrict pb, int m, int n) {
  for (int i = 0; i < m; ++i) {
    float* __restrict orow = po + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float v = orow[j] + pb[j];
      orow[j] = v > 0.0f ? v : fast_exp(v) - 1.0f;
    }
  }
}

// All four gate activations plus the c/h update, one sweep, in place.
// Gate order matches LSTMCell: [i, f, g, o] slabs of width hs.
TCM_TARGET_CLONES
void lstm_gate_sweep(const float* __restrict pg, float* __restrict ph, float* __restrict pc,
                     int batch, int hs) {
  for (int r = 0; r < batch; ++r) {
    const float* __restrict g = pg + static_cast<std::size_t>(r) * 4 * hs;
    float* __restrict hr = ph + static_cast<std::size_t>(r) * hs;
    float* __restrict cr = pc + static_cast<std::size_t>(r) * hs;
    for (int j = 0; j < hs; ++j) {
      const float gi = fast_sigmoid(g[j]);
      const float gf = fast_sigmoid(g[hs + j]);
      const float gg = fast_tanh(g[2 * hs + j]);
      const float go = fast_sigmoid(g[3 * hs + j]);
      const float cv = gf * cr[j] + gi * gg;
      cr[j] = cv;
      hr[j] = go * fast_tanh(cv);
    }
  }
}

TCM_TARGET_CLONES
void exp_bounded_sweep(float* __restrict p, std::size_t n, float limit) {
  const float inv_limit = 1.0f / limit;
  for (std::size_t i = 0; i < n; ++i)
    p[i] = fast_exp(limit * fast_tanh(p[i] * inv_limit));
}

void check_linear_shapes(const Tensor& x, const Tensor& w, const Tensor& b, const Tensor& out,
                         const char* op) {
  if (x.cols() != w.rows() || b.rows() != 1 || b.cols() != w.cols() || out.rows() != x.rows() ||
      out.cols() != w.cols())
    throw std::invalid_argument(std::string(op) + ": shape mismatch " + x.shape_string() + " @ " +
                                w.shape_string() + " + " + b.shape_string() + " -> " +
                                out.shape_string());
}

}  // namespace

Tensor& InferenceArena::alloc(int rows, int cols) {
  if (cursor_ == pool_.size()) {
    pool_.emplace_back(rows, cols);
    heap_allocs_.fetch_add(1, std::memory_order_relaxed);
    ++cursor_;
    return pool_.back();
  }
  Tensor& t = pool_[cursor_++];
  const std::size_t need = static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
  if (need > t.capacity()) heap_allocs_.fetch_add(1, std::memory_order_relaxed);
  t.resize(rows, cols);
  return t;
}

void linear_forward(const Tensor& x, const Tensor& w, const Tensor& b, Tensor& out) {
  check_linear_shapes(x, w, b, out, "linear_forward");
  out.fill(0.0f);
  accumulate_matmul(x.data(), w.data(), out.data(), x.rows(), x.cols(), w.cols());
  bias_sweep(out.data(), b.data(), out.rows(), out.cols());
}

void linear_elu(const Tensor& x, const Tensor& w, const Tensor& b, Tensor& out) {
  check_linear_shapes(x, w, b, out, "linear_elu");
  out.fill(0.0f);
  accumulate_matmul(x.data(), w.data(), out.data(), x.rows(), x.cols(), w.cols());
  bias_elu_sweep(out.data(), b.data(), out.rows(), out.cols());
}

void exp_bounded_inplace(Tensor& x, float limit) {
  exp_bounded_sweep(x.data(), x.size(), limit);
}

PackedLSTMCell PackedLSTMCell::pack(const LSTMCell& cell) {
  PackedLSTMCell packed;
  packed.input_size = cell.input_size();
  packed.hidden_size = cell.hidden_size();
  const Tensor& w_ih = cell.weight_ih();  // [In, 4H]
  const Tensor& w_hh = cell.weight_hh();  // [H, 4H]
  const int in = packed.input_size, h = packed.hidden_size, gates = 4 * packed.hidden_size;
  packed.w = Tensor(in + h, gates);
  for (int r = 0; r < in; ++r)
    for (int c = 0; c < gates; ++c) packed.w.at(r, c) = w_ih.at(r, c);
  for (int r = 0; r < h; ++r)
    for (int c = 0; c < gates; ++c) packed.w.at(in + r, c) = w_hh.at(r, c);
  packed.b = cell.bias();
  return packed;
}

void PackedLSTMCell::step(const Tensor& x, Tensor& h, Tensor& c, InferenceArena& arena) const {
  const int batch = x.rows();
  if (x.cols() != input_size || h.rows() != batch || h.cols() != hidden_size ||
      c.rows() != batch || c.cols() != hidden_size)
    throw std::invalid_argument("PackedLSTMCell::step: shape mismatch");

  // One matmul over the concatenated [x, h] input against the packed weight.
  Tensor& xh = arena.alloc(batch, input_size + hidden_size);
  for (int r = 0; r < batch; ++r) {
    float* __restrict dst = xh.data() + static_cast<std::size_t>(r) * (input_size + hidden_size);
    const float* __restrict xr = x.data() + static_cast<std::size_t>(r) * input_size;
    const float* __restrict hr = h.data() + static_cast<std::size_t>(r) * hidden_size;
    std::copy(xr, xr + input_size, dst);
    std::copy(hr, hr + hidden_size, dst + input_size);
  }
  Tensor& gates = arena.alloc(batch, 4 * hidden_size);
  linear_forward(xh, w, b, gates);
  lstm_gate_sweep(gates.data(), h.data(), c.data(), batch, hidden_size);
}

PackedMLP PackedMLP::pack(const MLP& mlp) {
  PackedMLP packed;
  packed.activate_last = mlp.activates_last();
  packed.layers.reserve(mlp.layers().size());
  for (const auto& layer : mlp.layers())
    packed.layers.push_back(Layer{&layer->weight(), &layer->bias()});
  return packed;
}

Tensor& PackedMLP::forward(const Tensor& x, InferenceArena& arena) const {
  if (layers.empty()) throw std::logic_error("PackedMLP::forward: no layers");
  const Tensor* h = &x;
  Tensor* out = nullptr;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const Layer& layer = layers[i];
    out = &arena.alloc(h->rows(), layer.w->cols());
    const bool last = (i + 1 == layers.size());
    if (!last || activate_last) {
      linear_elu(*h, *layer.w, *layer.b, *out);
    } else {
      linear_forward(*h, *layer.w, *layer.b, *out);
    }
    h = out;
  }
  return *out;
}

}  // namespace tcm::nn
