// Optimization: AdamW with decoupled weight decay (Loshchilov & Hutter) and
// the One Cycle learning-rate policy (Smith & Topin) — the exact training
// recipe of the paper's appendix A.1.
#pragma once

#include <vector>

#include "nn/modules.h"

namespace tcm::nn {

struct AdamWOptions {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 0.0075;  // the paper's coefficient
  // Global gradient-norm clip applied before each step (0 disables). MAPE
  // gradients explode on tiny-speedup samples; clipping keeps them bounded.
  double max_grad_norm = 1.0;
};

class AdamW {
 public:
  AdamW(std::vector<Parameter*> params, AdamWOptions options = {});

  // Applies one update using the gradients accumulated on the parameters.
  // Parameters without a gradient this step are skipped.
  void step();

  void zero_grad();

  void set_lr(double lr) { options_.lr = lr; }
  double lr() const { return options_.lr; }
  const AdamWOptions& options() const { return options_; }
  std::int64_t step_count() const { return t_; }

 private:
  std::vector<Parameter*> params_;
  AdamWOptions options_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  std::int64_t t_ = 0;
};

// One Cycle policy: linear warm-up from initial_lr to max_lr over the first
// `pct_start` fraction of steps, then cosine annealing down to final_lr.
class OneCycleLR {
 public:
  OneCycleLR(AdamW* optimizer, double max_lr, std::int64_t total_steps, double pct_start = 0.3,
             double div_factor = 25.0, double final_div_factor = 1e4);

  // Advances the schedule one step and updates the optimizer's lr.
  void step();

  double current_lr() const;
  std::int64_t steps_taken() const { return t_; }

 private:
  AdamW* optimizer_;
  double max_lr_;
  std::int64_t total_steps_;
  double pct_start_;
  double initial_lr_;
  double final_lr_;
  std::int64_t t_ = 0;
};

}  // namespace tcm::nn
