#include "nn/optim.h"

#include <cmath>
#include <stdexcept>

namespace tcm::nn {

AdamW::AdamW(std::vector<Parameter*> params, AdamWOptions options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->var.rows(), p->var.cols());
    v_.emplace_back(p->var.rows(), p->var.cols());
  }
}

void AdamW::step() {
  ++t_;
  double grad_scale = 1.0;
  if (options_.max_grad_norm > 0.0) {
    double sq = 0.0;
    for (Parameter* p : params_) {
      if (!p->var.has_grad()) continue;
      for (float g : p->var.grad().span()) sq += static_cast<double>(g) * g;
    }
    const double norm = std::sqrt(sq);
    if (norm > options_.max_grad_norm) grad_scale = options_.max_grad_norm / norm;
  }
  const double b1 = options_.beta1, b2 = options_.beta2;
  const double bias1 = 1.0 - std::pow(b1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(b2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    if (!p->var.has_grad()) continue;
    const Tensor& g = p->var.grad();
    Tensor& value = p->var.mutable_value();
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    float* pm = m.data();
    float* pv = v.data();
    float* pw = value.data();
    const float* pg = g.data();
    for (std::size_t k = 0; k < value.size(); ++k) {
      const double gk = grad_scale * pg[k];
      pm[k] = static_cast<float>(b1 * pm[k] + (1.0 - b1) * gk);
      pv[k] = static_cast<float>(b2 * pv[k] + (1.0 - b2) * gk * gk);
      const double mhat = pm[k] / bias1;
      const double vhat = pv[k] / bias2;
      // Decoupled weight decay: decay is applied to the weights directly,
      // scaled by the learning rate, not folded into the gradient.
      pw[k] = static_cast<float>(pw[k] - options_.lr * (mhat / (std::sqrt(vhat) + options_.eps) +
                                                        options_.weight_decay * pw[k]));
    }
  }
}

void AdamW::zero_grad() {
  for (Parameter* p : params_) p->var.zero_grad();
}

OneCycleLR::OneCycleLR(AdamW* optimizer, double max_lr, std::int64_t total_steps,
                       double pct_start, double div_factor, double final_div_factor)
    : optimizer_(optimizer),
      max_lr_(max_lr),
      total_steps_(total_steps),
      pct_start_(pct_start),
      initial_lr_(max_lr / div_factor),
      final_lr_(max_lr / final_div_factor) {
  if (!optimizer) throw std::invalid_argument("OneCycleLR: null optimizer");
  if (total_steps <= 0) throw std::invalid_argument("OneCycleLR: total_steps must be positive");
  optimizer_->set_lr(initial_lr_);
}

double OneCycleLR::current_lr() const {
  const double warmup_steps = pct_start_ * static_cast<double>(total_steps_);
  const double t = static_cast<double>(t_);
  if (t <= warmup_steps && warmup_steps > 0) {
    const double frac = t / warmup_steps;
    // Cosine ramp up.
    return initial_lr_ + (max_lr_ - initial_lr_) * 0.5 * (1.0 - std::cos(M_PI * frac));
  }
  const double denom = std::max(1.0, static_cast<double>(total_steps_) - warmup_steps);
  const double frac = std::min(1.0, (t - warmup_steps) / denom);
  // Cosine anneal down.
  return final_lr_ + (max_lr_ - final_lr_) * 0.5 * (1.0 + std::cos(M_PI * frac));
}

void OneCycleLR::step() {
  ++t_;
  optimizer_->set_lr(current_lr());
}

}  // namespace tcm::nn
