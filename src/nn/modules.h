// Neural-network modules: parameter containers plus forward functions.
//
// Matches the building blocks of the paper's model (appendix A.1): fully
// connected layers with ELU + dropout, and LSTM cells.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/ops.h"
#include "support/rng.h"

namespace tcm::nn {

// A named trainable parameter.
struct Parameter {
  std::string name;
  Variable var;
};

// Base class collecting parameters for optimizers and serialization.
// Modules are pinned in memory once constructed (registration hands out
// stable pointers), hence neither copyable nor movable.
class Module {
 public:
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  Module(Module&&) = delete;
  Module& operator=(Module&&) = delete;
  virtual ~Module() = default;

  // All trainable parameters, in a stable order.
  std::vector<Parameter*> parameters();

  // Total number of trainable scalars.
  std::size_t parameter_count();

  void zero_grad();

 protected:
  Parameter* register_parameter(std::string name, Tensor init);
  void register_submodule(const std::string& prefix, Module* m);

 private:
  std::vector<Parameter> own_;
  std::vector<std::pair<std::string, Module*>> submodules_;
};

// Glorot (Xavier) uniform initialization, as used by the paper.
Tensor glorot_uniform(int fan_in, int fan_out, Rng& rng);

// y = x W + b with W [in, out].
class Linear : public Module {
 public:
  Linear(int in, int out, Rng& rng, std::string name = "linear");
  Variable forward(const Variable& x) const;
  int in_features() const { return in_; }
  int out_features() const { return out_; }

  // Parameter views for the tape-free inference engine (nn/inference.h).
  const Tensor& weight() const { return w_->var.value(); }
  const Tensor& bias() const { return b_->var.value(); }

 private:
  int in_, out_;
  Parameter* w_;
  Parameter* b_;
};

// Multi-layer perceptron with ELU + dropout after every layer except
// (optionally) the last. Layer sizes include input and output:
// {in, h1, ..., out}.
class MLP : public Module {
 public:
  MLP(std::vector<int> sizes, float dropout_p, Rng& rng, std::string name = "mlp",
      bool activate_last = true);
  // `training` enables dropout; `rng` drives the dropout masks.
  Variable forward(const Variable& x, bool training, Rng& rng) const;

  int in_features() const;
  int out_features() const;

  // Structure views for the tape-free inference engine (nn/inference.h).
  const std::vector<std::unique_ptr<Linear>>& layers() const { return layers_; }
  bool activates_last() const { return activate_last_; }

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  float dropout_p_;
  bool activate_last_;
};

// Standard LSTM cell (Hochreiter & Schmidhuber), gate order [i, f, g, o].
class LSTMCell : public Module {
 public:
  LSTMCell(int input_size, int hidden_size, Rng& rng, std::string name = "lstm");

  struct State {
    Variable h;  // [B, H]
    Variable c;  // [B, H]
  };

  // Zero-initialized state for a batch.
  State initial_state(int batch) const;

  State forward(const Variable& x, const State& state) const;

  int input_size() const { return input_size_; }
  int hidden_size() const { return hidden_size_; }

  // Parameter views for the tape-free inference engine (nn/inference.h).
  const Tensor& weight_ih() const { return w_ih_->var.value(); }
  const Tensor& weight_hh() const { return w_hh_->var.value(); }
  const Tensor& bias() const { return b_->var.value(); }

 private:
  int input_size_, hidden_size_;
  Parameter* w_ih_;  // [In, 4H]
  Parameter* w_hh_;  // [H, 4H]
  Parameter* b_;     // [1, 4H]
};

}  // namespace tcm::nn
