#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>

#include "support/crc32.h"

namespace tcm::nn {
namespace {

constexpr char kMagic[4] = {'T', 'C', 'M', 'W'};
// v2 appends a CRC-32 of every tensor's raw bytes after the last tensor, so
// a corrupted or truncated weight file is rejected at load instead of
// silently serving garbage predictions. v1 files (no trailer) still load.
constexpr std::uint32_t kVersion = 2;

template <typename T>
void write_pod(std::ofstream& f, const T& v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& f) {
  T v{};
  f.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!f) throw std::runtime_error("load_parameters: truncated file");
  return v;
}

}  // namespace

bool save_parameters(Module& m, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f.write(kMagic, 4);
  write_pod(f, kVersion);
  const auto params = m.parameters();
  write_pod(f, static_cast<std::uint64_t>(params.size()));
  std::uint32_t crc = 0;
  for (const Parameter* p : params) {
    write_pod(f, static_cast<std::uint32_t>(p->name.size()));
    f.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    write_pod(f, static_cast<std::int32_t>(p->var.rows()));
    write_pod(f, static_cast<std::int32_t>(p->var.cols()));
    const Tensor& t = p->var.value();
    const std::size_t bytes = t.size() * sizeof(float);
    f.write(reinterpret_cast<const char*>(t.data()), static_cast<std::streamsize>(bytes));
    crc = crc32(t.data(), bytes, crc);
  }
  write_pod(f, crc);
  return static_cast<bool>(f);
}

bool load_parameters(Module& m, const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  char magic[4];
  f.read(magic, 4);
  if (!f || std::string(magic, 4) != std::string(kMagic, 4))
    throw std::runtime_error("load_parameters: bad magic");
  const auto version = read_pod<std::uint32_t>(f);
  if (version != 1 && version != kVersion)
    throw std::runtime_error("load_parameters: unsupported version");
  const auto count = read_pod<std::uint64_t>(f);
  const auto params = m.parameters();
  if (count != params.size())
    throw std::runtime_error("load_parameters: parameter count mismatch");
  std::uint32_t crc = 0;
  for (Parameter* p : params) {
    const auto name_len = read_pod<std::uint32_t>(f);
    std::string name(name_len, '\0');
    f.read(name.data(), name_len);
    if (!f || name != p->name)
      throw std::runtime_error("load_parameters: expected parameter '" + p->name + "', found '" +
                               name + "'");
    const auto rows = read_pod<std::int32_t>(f);
    const auto cols = read_pod<std::int32_t>(f);
    if (rows != p->var.rows() || cols != p->var.cols())
      throw std::runtime_error("load_parameters: shape mismatch for " + p->name);
    Tensor& t = p->var.mutable_value();
    const std::size_t bytes = t.size() * sizeof(float);
    f.read(reinterpret_cast<char*>(t.data()), static_cast<std::streamsize>(bytes));
    if (!f) throw std::runtime_error("load_parameters: truncated tensor data");
    crc = crc32(t.data(), bytes, crc);
  }
  if (version >= 2) {
    const auto stored = read_pod<std::uint32_t>(f);
    if (stored != crc)
      throw std::runtime_error("load_parameters: checksum mismatch (weights corrupted)");
  }
  return true;
}

}  // namespace tcm::nn
