#include "nn/tensor.h"

#include <sstream>
#include <stdexcept>

namespace tcm::nn {

Tensor::Tensor(int rows, int cols) : rows_(rows), cols_(cols) {
  if (rows < 0 || cols < 0) throw std::invalid_argument("Tensor: negative shape");
  data_.assign(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), 0.0f);
}

Tensor Tensor::zeros(int rows, int cols) { return Tensor(rows, cols); }

Tensor Tensor::full(int rows, int cols, float value) {
  Tensor t(rows, cols);
  t.fill(value);
  return t;
}

Tensor Tensor::from(int rows, int cols, std::span<const float> values) {
  Tensor t(rows, cols);
  if (values.size() != t.size()) throw std::invalid_argument("Tensor::from: size mismatch");
  std::copy(values.begin(), values.end(), t.data_.begin());
  return t;
}

float Tensor::item() const {
  if (rows_ != 1 || cols_ != 1) throw std::logic_error("Tensor::item: not a scalar");
  return data_[0];
}

void Tensor::resize(int rows, int cols) {
  if (rows < 0 || cols < 0) throw std::invalid_argument("Tensor::resize: negative shape");
  rows_ = rows;
  cols_ = cols;
  data_.resize(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::add_(const Tensor& o) {
  if (!same_shape(o)) throw std::invalid_argument("Tensor::add_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
}

void Tensor::add_scaled_(const Tensor& o, float s) {
  if (!same_shape(o)) throw std::invalid_argument("Tensor::add_scaled_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * o.data_[i];
}

void Tensor::scale_(float s) {
  for (float& v : data_) v *= s;
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << '[' << rows_ << ',' << cols_ << ']';
  return os.str();
}

namespace {
// Threshold below which threading overhead is not worth it. Training batches
// are small ([32, ~400] x [~400, 180]); fork/join and spin-wait overhead
// dominates below a few Mflop, so only genuinely large products go parallel.
constexpr std::size_t kParallelFlops = 1 << 22;
}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("matmul: inner dim mismatch");
  const int m = a.rows(), k = a.cols(), n = b.cols();
  Tensor out(m, n);
  const float* __restrict pa = a.data();
  const float* __restrict pb = b.data();
  float* __restrict po = out.data();
  const std::size_t flops = static_cast<std::size_t>(m) * k * n;
  // i-k-j with 4-row register blocking: the inner j loop is a branch-free
  // multi-axpy the compiler can keep in vector registers, and each loaded b
  // row feeds four output rows. The per-element accumulation order over k is
  // the plain i-k-j order for every row, so results do not depend on m
  // (batch-composition invariance, relied on by the serving tests).
#pragma omp parallel for schedule(static) if (flops > kParallelFlops)
  for (int i0 = 0; i0 < m; i0 += 4) {
    if (i0 + 4 <= m) {
      const std::size_t r = static_cast<std::size_t>(i0);
      float* __restrict o0 = po + r * n;
      float* __restrict o1 = o0 + n;
      float* __restrict o2 = o1 + n;
      float* __restrict o3 = o2 + n;
      for (int kk = 0; kk < k; ++kk) {
        const float* __restrict brow = pb + static_cast<std::size_t>(kk) * n;
        const float a0 = pa[r * k + kk];
        const float a1 = pa[(r + 1) * k + kk];
        const float a2 = pa[(r + 2) * k + kk];
        const float a3 = pa[(r + 3) * k + kk];
        for (int j = 0; j < n; ++j) {
          const float bv = brow[j];
          o0[j] += a0 * bv;
          o1[j] += a1 * bv;
          o2[j] += a2 * bv;
          o3[j] += a3 * bv;
        }
      }
    } else {
      for (int i = i0; i < m; ++i) {
        float* __restrict orow = po + static_cast<std::size_t>(i) * n;
        for (int kk = 0; kk < k; ++kk) {
          const float av = pa[static_cast<std::size_t>(i) * k + kk];
          const float* __restrict brow = pb + static_cast<std::size_t>(kk) * n;
          for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
        }
      }
    }
  }
  return out;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  if (a.cols() != b.cols()) throw std::invalid_argument("matmul_nt: inner dim mismatch");
  const int m = a.rows(), k = a.cols(), n = b.rows();
  Tensor out(m, n);
  const float* __restrict pa = a.data();
  const float* __restrict pb = b.data();
  float* __restrict po = out.data();
  const std::size_t flops = static_cast<std::size_t>(m) * k * n;
#pragma omp parallel for schedule(static) if (flops > kParallelFlops)
  for (int i = 0; i < m; ++i) {
    const float* __restrict arow = pa + static_cast<std::size_t>(i) * k;
    float* __restrict orow = po + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* __restrict brow = pb + static_cast<std::size_t>(j) * k;
      float acc = 0.0f;
      for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      orow[j] = acc;
    }
  }
  return out;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  if (a.rows() != b.rows()) throw std::invalid_argument("matmul_tn: inner dim mismatch");
  const int m = a.cols(), k = a.rows(), n = b.cols();
  Tensor out(m, n);
  const float* __restrict pa = a.data();
  const float* __restrict pb = b.data();
  float* __restrict po = out.data();
  const std::size_t flops = static_cast<std::size_t>(m) * k * n;
  // Same 4-row register blocking as matmul; the four a loads per k step are
  // contiguous here (a is walked transposed).
#pragma omp parallel for schedule(static) if (flops > kParallelFlops)
  for (int i0 = 0; i0 < m; i0 += 4) {
    if (i0 + 4 <= m) {
      const std::size_t r = static_cast<std::size_t>(i0);
      float* __restrict o0 = po + r * n;
      float* __restrict o1 = o0 + n;
      float* __restrict o2 = o1 + n;
      float* __restrict o3 = o2 + n;
      for (int kk = 0; kk < k; ++kk) {
        const float* __restrict acol = pa + static_cast<std::size_t>(kk) * m + r;
        const float* __restrict brow = pb + static_cast<std::size_t>(kk) * n;
        const float a0 = acol[0], a1 = acol[1], a2 = acol[2], a3 = acol[3];
        for (int j = 0; j < n; ++j) {
          const float bv = brow[j];
          o0[j] += a0 * bv;
          o1[j] += a1 * bv;
          o2[j] += a2 * bv;
          o3[j] += a3 * bv;
        }
      }
    } else {
      for (int i = i0; i < m; ++i) {
        float* __restrict orow = po + static_cast<std::size_t>(i) * n;
        for (int kk = 0; kk < k; ++kk) {
          const float av = pa[static_cast<std::size_t>(kk) * m + i];
          const float* __restrict brow = pb + static_cast<std::size_t>(kk) * n;
          for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
        }
      }
    }
  }
  return out;
}

}  // namespace tcm::nn
