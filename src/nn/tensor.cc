#include "nn/tensor.h"

#include <sstream>
#include <stdexcept>

namespace tcm::nn {

Tensor::Tensor(int rows, int cols) : rows_(rows), cols_(cols) {
  if (rows < 0 || cols < 0) throw std::invalid_argument("Tensor: negative shape");
  data_.assign(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), 0.0f);
}

Tensor Tensor::zeros(int rows, int cols) { return Tensor(rows, cols); }

Tensor Tensor::full(int rows, int cols, float value) {
  Tensor t(rows, cols);
  t.fill(value);
  return t;
}

Tensor Tensor::from(int rows, int cols, std::span<const float> values) {
  Tensor t(rows, cols);
  if (values.size() != t.size()) throw std::invalid_argument("Tensor::from: size mismatch");
  std::copy(values.begin(), values.end(), t.data_.begin());
  return t;
}

float Tensor::item() const {
  if (rows_ != 1 || cols_ != 1) throw std::logic_error("Tensor::item: not a scalar");
  return data_[0];
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::add_(const Tensor& o) {
  if (!same_shape(o)) throw std::invalid_argument("Tensor::add_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
}

void Tensor::add_scaled_(const Tensor& o, float s) {
  if (!same_shape(o)) throw std::invalid_argument("Tensor::add_scaled_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * o.data_[i];
}

void Tensor::scale_(float s) {
  for (float& v : data_) v *= s;
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << '[' << rows_ << ',' << cols_ << ']';
  return os.str();
}

namespace {
// Threshold below which threading overhead is not worth it. Training batches
// are small ([32, ~400] x [~400, 180]); fork/join and spin-wait overhead
// dominates below a few Mflop, so only genuinely large products go parallel.
constexpr std::size_t kParallelFlops = 1 << 22;
}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("matmul: inner dim mismatch");
  const int m = a.rows(), k = a.cols(), n = b.cols();
  Tensor out(m, n);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const std::size_t flops = static_cast<std::size_t>(m) * k * n;
#pragma omp parallel for schedule(static) if (flops > kParallelFlops)
  for (int i = 0; i < m; ++i) {
    float* orow = po + static_cast<std::size_t>(i) * n;
    for (int kk = 0; kk < k; ++kk) {
      const float av = pa[static_cast<std::size_t>(i) * k + kk];
      if (av == 0.0f) continue;
      const float* brow = pb + static_cast<std::size_t>(kk) * n;
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  if (a.cols() != b.cols()) throw std::invalid_argument("matmul_nt: inner dim mismatch");
  const int m = a.rows(), k = a.cols(), n = b.rows();
  Tensor out(m, n);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const std::size_t flops = static_cast<std::size_t>(m) * k * n;
#pragma omp parallel for schedule(static) if (flops > kParallelFlops)
  for (int i = 0; i < m; ++i) {
    const float* arow = pa + static_cast<std::size_t>(i) * k;
    float* orow = po + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = pb + static_cast<std::size_t>(j) * k;
      float acc = 0.0f;
      for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      orow[j] = acc;
    }
  }
  return out;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  if (a.rows() != b.rows()) throw std::invalid_argument("matmul_tn: inner dim mismatch");
  const int m = a.cols(), k = a.rows(), n = b.cols();
  Tensor out(m, n);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const std::size_t flops = static_cast<std::size_t>(m) * k * n;
#pragma omp parallel for schedule(static) if (flops > kParallelFlops)
  for (int i = 0; i < m; ++i) {
    float* orow = po + static_cast<std::size_t>(i) * n;
    for (int kk = 0; kk < k; ++kk) {
      const float av = pa[static_cast<std::size_t>(kk) * m + i];
      if (av == 0.0f) continue;
      const float* brow = pb + static_cast<std::size_t>(kk) * n;
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

}  // namespace tcm::nn
