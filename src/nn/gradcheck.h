// Numerical gradient checking: compares analytic gradients against central
// finite differences. Used by the test suite on every op and module.
#pragma once

#include <functional>

#include "nn/autograd.h"

namespace tcm::nn {

struct GradCheckResult {
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  bool ok = false;
};

// `f` maps the leaf variables to a scalar Variable (a fresh graph must be
// built on every call because leaf values are perturbed between calls).
// Checks d f / d leaf for every element of every leaf.
GradCheckResult grad_check(const std::function<Variable(std::vector<Variable>&)>& f,
                           std::vector<Variable>& leaves, double epsilon = 1e-3,
                           double tolerance = 5e-2);

}  // namespace tcm::nn
