#include "nn/modules.h"

#include <cmath>
#include <stdexcept>

namespace tcm::nn {

std::vector<Parameter*> Module::parameters() {
  std::vector<Parameter*> out;
  for (Parameter& p : own_) out.push_back(&p);
  for (auto& [prefix, m] : submodules_) {
    for (Parameter* p : m->parameters()) out.push_back(p);
  }
  return out;
}

std::size_t Module::parameter_count() {
  std::size_t n = 0;
  for (Parameter* p : parameters()) n += p->var.value().size();
  return n;
}

void Module::zero_grad() {
  for (Parameter* p : parameters()) p->var.zero_grad();
}

Parameter* Module::register_parameter(std::string name, Tensor init) {
  // own_ must not reallocate after handing out pointers: modules register all
  // parameters in their constructor, so reserve defensively.
  own_.reserve(8);
  if (own_.size() == own_.capacity())
    throw std::logic_error("Module: too many parameters registered");
  own_.push_back(Parameter{std::move(name), Variable::leaf(std::move(init))});
  return &own_.back();
}

void Module::register_submodule(const std::string& prefix, Module* m) {
  submodules_.emplace_back(prefix, m);
}

Tensor glorot_uniform(int fan_in, int fan_out, Rng& rng) {
  const float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  Tensor t(fan_in, fan_out);
  for (std::size_t i = 0; i < t.size(); ++i)
    t.data()[i] = static_cast<float>(rng.uniform_real(-limit, limit));
  return t;
}

Linear::Linear(int in, int out, Rng& rng, std::string name) : in_(in), out_(out) {
  w_ = register_parameter(name + ".w", glorot_uniform(in, out, rng));
  b_ = register_parameter(name + ".b", Tensor::zeros(1, out));
}

Variable Linear::forward(const Variable& x) const {
  if (x.cols() != in_)
    throw std::invalid_argument("Linear: input width " + std::to_string(x.cols()) +
                                " != " + std::to_string(in_));
  return add(matmul(x, w_->var), b_->var);
}

MLP::MLP(std::vector<int> sizes, float dropout_p, Rng& rng, std::string name, bool activate_last)
    : dropout_p_(dropout_p), activate_last_(activate_last) {
  if (sizes.size() < 2) throw std::invalid_argument("MLP: need at least in/out sizes");
  layers_.reserve(sizes.size() - 1);
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
    layers_.push_back(
        std::make_unique<Linear>(sizes[i], sizes[i + 1], rng, name + ".l" + std::to_string(i)));
    register_submodule(name + ".l" + std::to_string(i), layers_.back().get());
  }
}

Variable MLP::forward(const Variable& x, bool training, Rng& rng) const {
  Variable h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->forward(h);
    const bool last = (i + 1 == layers_.size());
    if (!last || activate_last_) {
      h = elu(h);
      if (dropout_p_ > 0.0f) h = dropout(h, dropout_p_, training, rng);
    }
  }
  return h;
}

int MLP::in_features() const { return layers_.front()->in_features(); }
int MLP::out_features() const { return layers_.back()->out_features(); }

LSTMCell::LSTMCell(int input_size, int hidden_size, Rng& rng, std::string name)
    : input_size_(input_size), hidden_size_(hidden_size) {
  w_ih_ = register_parameter(name + ".w_ih", glorot_uniform(input_size, 4 * hidden_size, rng));
  w_hh_ = register_parameter(name + ".w_hh", glorot_uniform(hidden_size, 4 * hidden_size, rng));
  Tensor bias = Tensor::zeros(1, 4 * hidden_size);
  // Forget-gate bias of 1: standard trick for stable early training.
  for (int c = hidden_size; c < 2 * hidden_size; ++c) bias.at(0, c) = 1.0f;
  b_ = register_parameter(name + ".b", std::move(bias));
}

LSTMCell::State LSTMCell::initial_state(int batch) const {
  return State{Variable(Tensor::zeros(batch, hidden_size_)),
               Variable(Tensor::zeros(batch, hidden_size_))};
}

LSTMCell::State LSTMCell::forward(const Variable& x, const State& state) const {
  if (x.cols() != input_size_) throw std::invalid_argument("LSTMCell: input width mismatch");
  const int h = hidden_size_;
  Variable gates = add(add(matmul(x, w_ih_->var), matmul(state.h, w_hh_->var)), b_->var);
  const Variable i = sigmoid(slice_cols(gates, 0, h));
  const Variable f = sigmoid(slice_cols(gates, h, 2 * h));
  const Variable g = tanh_op(slice_cols(gates, 2 * h, 3 * h));
  const Variable o = sigmoid(slice_cols(gates, 3 * h, 4 * h));
  const Variable c_next = add(mul(f, state.c), mul(i, g));
  const Variable h_next = mul(o, tanh_op(c_next));
  return State{h_next, c_next};
}

}  // namespace tcm::nn
