#include "nn/autograd.h"

#include <stdexcept>
#include <unordered_set>

namespace tcm::nn {

void VarNode::accumulate(const Tensor& g) {
  if (!grad_ready) {
    grad = Tensor::zeros(value.rows(), value.cols());
    grad_ready = true;
  }
  grad.add_(g);
}

Variable::Variable(Tensor value) {
  node_ = std::make_shared<VarNode>();
  node_->value = std::move(value);
}

Variable Variable::leaf(Tensor value) {
  Variable v(std::move(value));
  v.node_->requires_grad = true;
  v.node_->is_leaf = true;
  return v;
}

Variable Variable::op_result(Tensor value, std::vector<Variable> parents,
                             std::function<void(const Tensor&)> backward_fn) {
  Variable v(std::move(value));
  bool needs_grad = false;
  for (const Variable& p : parents) {
    if (!p.defined()) throw std::invalid_argument("op_result: undefined parent");
    needs_grad = needs_grad || p.node_->requires_grad;
    v.node_->parents.push_back(p.node_);
  }
  if (needs_grad) {
    v.node_->requires_grad = true;
    v.node_->backward_fn = std::move(backward_fn);
  }
  return v;
}

const Tensor& Variable::value() const {
  if (!node_) throw std::logic_error("Variable::value on empty variable");
  return node_->value;
}

Tensor& Variable::mutable_value() {
  if (!node_) throw std::logic_error("Variable::mutable_value on empty variable");
  return node_->value;
}

const Tensor& Variable::grad() const {
  if (!node_ || !node_->grad_ready)
    throw std::logic_error("Variable::grad: no gradient accumulated");
  return node_->grad;
}

void Variable::zero_grad() {
  if (!node_) return;
  node_->grad_ready = false;
  node_->grad = Tensor();
}

void backward(const Variable& root) {
  if (!root.defined()) throw std::invalid_argument("backward: empty root");
  if (root.rows() != 1 || root.cols() != 1)
    throw std::invalid_argument("backward: root must be scalar");
  if (!root.requires_grad()) return;

  // Iterative post-order topological sort over requires_grad nodes.
  std::vector<VarNode*> order;
  std::unordered_set<VarNode*> visited;
  std::vector<std::pair<VarNode*, std::size_t>> stack;
  stack.emplace_back(root.node().get(), 0);
  visited.insert(root.node().get());
  while (!stack.empty()) {
    auto& [node, child] = stack.back();
    if (child < node->parents.size()) {
      VarNode* parent = node->parents[child].get();
      ++child;
      if (parent->requires_grad && !visited.count(parent)) {
        visited.insert(parent);
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  root.node()->accumulate(Tensor::ones(1, 1));
  // Reverse topological order: root last in `order`, so walk backwards.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    VarNode* node = *it;
    if (node->backward_fn && node->grad_ready) node->backward_fn(node->grad);
    // Free interior gradients eagerly; leaves keep theirs for the optimizer.
    if (!node->is_leaf) {
      node->grad = Tensor();
      node->grad_ready = false;
    }
  }
}

}  // namespace tcm::nn
