#include "nn/gradcheck.h"

#include <cmath>

namespace tcm::nn {

GradCheckResult grad_check(const std::function<Variable(std::vector<Variable>&)>& f,
                           std::vector<Variable>& leaves, double epsilon, double tolerance) {
  GradCheckResult result;

  // Analytic gradients.
  for (Variable& leaf : leaves) leaf.zero_grad();
  Variable loss = f(leaves);
  backward(loss);
  std::vector<Tensor> analytic;
  analytic.reserve(leaves.size());
  for (Variable& leaf : leaves)
    analytic.push_back(leaf.has_grad() ? leaf.grad()
                                       : Tensor::zeros(leaf.rows(), leaf.cols()));

  // Central differences.
  for (std::size_t li = 0; li < leaves.size(); ++li) {
    Tensor& value = leaves[li].mutable_value();
    for (std::size_t k = 0; k < value.size(); ++k) {
      const float saved = value.data()[k];
      value.data()[k] = static_cast<float>(saved + epsilon);
      const double plus = static_cast<double>(f(leaves).value().item());
      value.data()[k] = static_cast<float>(saved - epsilon);
      const double minus = static_cast<double>(f(leaves).value().item());
      value.data()[k] = saved;
      const double numeric = (plus - minus) / (2.0 * epsilon);
      const double a = static_cast<double>(analytic[li].data()[k]);
      const double abs_err = std::abs(a - numeric);
      const double rel_err = abs_err / std::max({1.0, std::abs(a), std::abs(numeric)});
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, rel_err);
    }
  }
  result.ok = result.max_rel_error <= tolerance;
  return result;
}

}  // namespace tcm::nn
