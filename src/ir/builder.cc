#include "ir/builder.h"

#include <algorithm>
#include <stdexcept>

namespace tcm::ir {

// ---------------------------------------------------------------------------
// IndexExpr
// ---------------------------------------------------------------------------

IndexExpr operator+(IndexExpr a, const IndexExpr& b) {
  for (const auto& [id, c] : b.coef_) a.coef_[id] += c;
  a.constant_ += b.constant_;
  std::erase_if(a.coef_, [](const auto& kv) { return kv.second == 0; });
  return a;
}

IndexExpr operator-(IndexExpr a, const IndexExpr& b) {
  for (const auto& [id, c] : b.coef_) a.coef_[id] -= c;
  a.constant_ -= b.constant_;
  std::erase_if(a.coef_, [](const auto& kv) { return kv.second == 0; });
  return a;
}

IndexExpr operator*(std::int64_t k, IndexExpr a) {
  for (auto& [id, c] : a.coef_) c *= k;
  a.constant_ *= k;
  std::erase_if(a.coef_, [](const auto& kv) { return kv.second == 0; });
  return a;
}

IndexExpr operator*(IndexExpr a, std::int64_t k) { return k * std::move(a); }

// ---------------------------------------------------------------------------
// SExpr
// ---------------------------------------------------------------------------

struct SExpr::Node {
  ExprKind kind = ExprKind::Constant;
  double value = 0.0;
  int buffer_id = -1;
  std::vector<IndexExpr> indices;
  SExpr lhs, rhs;
};

SExpr::SExpr(double v) {
  auto n = std::make_shared<Node>();
  n->kind = ExprKind::Constant;
  n->value = v;
  node_ = std::move(n);
}

namespace {
SExpr make_binary(ExprKind op, SExpr a, SExpr b);
}  // namespace

SExpr operator+(SExpr a, SExpr b) { return make_binary(ExprKind::Add, std::move(a), std::move(b)); }
SExpr operator-(SExpr a, SExpr b) { return make_binary(ExprKind::Sub, std::move(a), std::move(b)); }
SExpr operator*(SExpr a, SExpr b) { return make_binary(ExprKind::Mul, std::move(a), std::move(b)); }
SExpr operator/(SExpr a, SExpr b) { return make_binary(ExprKind::Div, std::move(a), std::move(b)); }
SExpr max(SExpr a, SExpr b) { return make_binary(ExprKind::Max, std::move(a), std::move(b)); }
SExpr min(SExpr a, SExpr b) { return make_binary(ExprKind::Min, std::move(a), std::move(b)); }

// SExprDetail is a friend of SExpr (declared in the header): it provides the
// construction hooks used below without exposing them in the public API.
struct SExprDetail {
  static SExpr binary(ExprKind op, SExpr a, SExpr b) {
    auto n = std::make_shared<SExpr::Node>();
    n->kind = op;
    n->lhs = std::move(a);
    n->rhs = std::move(b);
    return SExpr(std::move(n));
  }
  static SExpr load(int buffer_id, std::vector<IndexExpr> idx) {
    auto n = std::make_shared<SExpr::Node>();
    n->kind = ExprKind::Load;
    n->buffer_id = buffer_id;
    n->indices = std::move(idx);
    return SExpr(std::move(n));
  }
  static const SExpr::Node* node(const SExpr& e) { return e.node_.get(); }
};

// ---------------------------------------------------------------------------
// ProgramBuilder
// ---------------------------------------------------------------------------

ProgramBuilder::ProgramBuilder(std::string name) { program_.name = std::move(name); }

Var ProgramBuilder::var(std::string name, std::int64_t extent) {
  if (extent <= 0) throw std::invalid_argument("var " + name + ": extent must be positive");
  vars_.push_back(VarInfo{std::move(name), extent});
  return Var{static_cast<int>(vars_.size()) - 1, extent};
}

int ProgramBuilder::input(std::string name, std::vector<std::int64_t> dims) {
  for (auto d : dims)
    if (d <= 0) throw std::invalid_argument("input " + name + ": non-positive dim");
  Buffer b;
  b.name = std::move(name);
  b.dims = std::move(dims);
  b.is_input = true;
  return program_.add_buffer(std::move(b));
}

SExpr ProgramBuilder::load(int buffer_id, std::vector<IndexExpr> indices) const {
  if (buffer_id < 0 || buffer_id >= static_cast<int>(program_.buffers.size()))
    throw std::invalid_argument("load: unknown buffer id");
  const Buffer& b = program_.buffers[static_cast<std::size_t>(buffer_id)];
  if (static_cast<int>(indices.size()) != b.rank())
    throw std::invalid_argument("load of " + b.name + ": index arity != buffer rank");
  return SExprDetail::load(buffer_id, std::move(indices));
}

int ProgramBuilder::computation(const std::string& name, const std::vector<Var>& iters,
                                const std::vector<Var>& store_vars, const SExpr& rhs,
                                int* out_buffer_id) {
  Buffer out;
  out.name = name;
  for (const Var& v : store_vars) out.dims.push_back(v.extent);
  out.is_input = false;
  const int buffer_id = program_.add_buffer(std::move(out));
  if (out_buffer_id) *out_buffer_id = buffer_id;
  return declare_computation(buffer_id, name, iters, store_vars, rhs);
}

int ProgramBuilder::computation_into(int buffer_id, const std::string& name,
                                     const std::vector<Var>& iters,
                                     const std::vector<Var>& store_vars, const SExpr& rhs) {
  if (buffer_id < 0 || buffer_id >= static_cast<int>(program_.buffers.size()))
    throw std::invalid_argument("computation_into: unknown buffer");
  if (program_.buffers[static_cast<std::size_t>(buffer_id)].is_input)
    throw std::invalid_argument("computation_into: cannot write input buffer");
  return declare_computation(buffer_id, name, iters, store_vars, rhs);
}

int ProgramBuilder::declare_computation(int buffer_id, const std::string& name,
                                        const std::vector<Var>& iters,
                                        const std::vector<Var>& store_vars, const SExpr& rhs) {
  if (built_) throw std::logic_error("ProgramBuilder: already built");
  if (iters.empty()) throw std::invalid_argument(name + ": computation needs iterators");
  if (!rhs.valid()) throw std::invalid_argument(name + ": empty rhs");

  // store_vars must be a subsequence of iters
  {
    std::size_t pos = 0;
    for (const Var& sv : store_vars) {
      while (pos < iters.size() && iters[pos].id != sv.id) ++pos;
      if (pos == iters.size())
        throw std::invalid_argument(name + ": store vars must be a subsequence of iterators");
      ++pos;
    }
  }
  // no duplicate iterators
  for (std::size_t i = 0; i < iters.size(); ++i)
    for (std::size_t j = i + 1; j < iters.size(); ++j)
      if (iters[i].id == iters[j].id)
        throw std::invalid_argument(name + ": duplicate iterator in nest");

  // Create/share the loop nest. Share the longest prefix of loops whose vars
  // match the previous computation's nest.
  std::size_t shared = 0;
  while (shared < prev_nest_.size() && shared < iters.size() &&
         prev_nest_[shared].first == iters[shared].id)
    ++shared;

  std::vector<std::pair<int, int>> nest(prev_nest_.begin(),
                                        prev_nest_.begin() + static_cast<std::ptrdiff_t>(shared));
  int parent = shared == 0 ? -1 : nest.back().second;
  for (std::size_t i = shared; i < iters.size(); ++i) {
    LoopNode l;
    l.iter.name = vars_[static_cast<std::size_t>(iters[i].id)].name;
    l.iter.extent = iters[i].extent;
    l.parent = parent;
    const int loop_id = program_.add_loop(std::move(l));
    if (parent == -1) program_.roots.push_back(loop_id);
    else program_.loop(parent).body.push_back(BodyItem::loop(loop_id));
    parent = loop_id;
    nest.emplace_back(iters[i].id, loop_id);
  }

  // Store access: identity over the store vars' positions in iters.
  AccessMatrix store(static_cast<int>(store_vars.size()), static_cast<int>(iters.size()));
  for (std::size_t r = 0; r < store_vars.size(); ++r) {
    for (std::size_t c = 0; c < iters.size(); ++c) {
      if (iters[c].id == store_vars[r].id) {
        store.set(static_cast<int>(r), static_cast<int>(c), 1);
        break;
      }
    }
  }

  Computation comp;
  comp.name = name;
  comp.store = BufferAccess{buffer_id, std::move(store)};
  comp.rhs = lower_sexpr(rhs, iters);
  comp.is_reduction = store_vars.size() < iters.size();
  comp.loop_id = parent;
  const int comp_id = program_.add_computation(std::move(comp));
  program_.loop(parent).body.push_back(BodyItem::computation(comp_id));

  prev_nest_ = std::move(nest);
  return comp_id;
}

AccessMatrix ProgramBuilder::lower_indices(const std::vector<IndexExpr>& indices,
                                           const std::vector<Var>& iters) const {
  AccessMatrix m(static_cast<int>(indices.size()), static_cast<int>(iters.size()));
  for (std::size_t r = 0; r < indices.size(); ++r) {
    for (const auto& [var_id, coef] : indices[r].coefficients()) {
      bool found = false;
      for (std::size_t c = 0; c < iters.size(); ++c) {
        if (iters[c].id == var_id) {
          m.set(static_cast<int>(r), static_cast<int>(c), coef);
          found = true;
          break;
        }
      }
      if (!found)
        throw std::invalid_argument(
            "access index uses a variable that is not an iterator of the computation: " +
            vars_[static_cast<std::size_t>(var_id)].name);
    }
    m.set(static_cast<int>(r), static_cast<int>(iters.size()), indices[r].constant());
  }
  return m;
}

Expr ProgramBuilder::lower_sexpr(const SExpr& e, const std::vector<Var>& iters) const {
  const SExpr::Node* n = SExprDetail::node(e);
  if (!n) throw std::invalid_argument("lower_sexpr: empty expression");
  switch (n->kind) {
    case ExprKind::Constant:
      return Expr::constant(n->value);
    case ExprKind::Load:
      return Expr::load(BufferAccess{n->buffer_id, lower_indices(n->indices, iters)});
    default:
      return Expr::binary(n->kind, lower_sexpr(n->lhs, iters), lower_sexpr(n->rhs, iters));
  }
}

Program ProgramBuilder::build() {
  if (built_) throw std::logic_error("ProgramBuilder::build called twice");
  built_ = true;
  if (auto err = program_.validate())
    throw std::logic_error("ProgramBuilder: invalid program: " + *err);
  return std::move(program_);
}

int ProgramBuilder::buffer_of(int comp_id) const { return program_.comp(comp_id).store.buffer_id; }

namespace {

SExpr make_binary(ExprKind op, SExpr a, SExpr b) {
  if (!a.valid() || !b.valid()) throw std::invalid_argument("SExpr binary: invalid operand");
  return SExprDetail::binary(op, std::move(a), std::move(b));
}

}  // namespace

}  // namespace tcm::ir
