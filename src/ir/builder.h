// ProgramBuilder: an embedded-DSL front end mirroring the TIRAMISU API from
// Section 2 of the paper. Example (the paper's convolution):
//
//   ProgramBuilder b("conv");
//   Var n = b.var("n", batch), fout = b.var("fout", F), fin = b.var("fin", C);
//   Var y = b.var("y", H - 2), x = b.var("x", W - 2);
//   Var k0 = b.var("k0", 3), k1 = b.var("k1", 3);
//   int input = b.input("input", {batch, C, H, W});
//   int weights = b.input("weights", {F, C, 3, 3});
//   b.computation("conv", {n, fout, y, x, fin, k0, k1}, {n, fout, y, x},
//                 b.load(weights, {fout, fin, k0, k1}) *
//                     b.load(input, {n, fin, y + k0, x + k1}));
//   Program p = b.build();
//
// Consecutive computations that use the same Var objects for their leading
// iterators share those loops, producing trees like Figure 1a.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/program.h"

namespace tcm::ir {

// An iterator variable handle; created by ProgramBuilder::var.
struct Var {
  int id = -1;
  std::int64_t extent = 0;
};

// Affine index expression: sum of coefficient * Var plus a constant.
// Built with natural operator syntax: y + k0, 2 * x, x - 1, ...
class IndexExpr {
 public:
  IndexExpr() = default;
  IndexExpr(Var v) { coef_[v.id] = 1; }            // NOLINT(google-explicit-constructor)
  IndexExpr(std::int64_t c) : constant_(c) {}      // NOLINT(google-explicit-constructor)
  IndexExpr(int c) : constant_(c) {}               // NOLINT(google-explicit-constructor)

  const std::map<int, std::int64_t>& coefficients() const { return coef_; }
  std::int64_t constant() const { return constant_; }

  friend IndexExpr operator+(IndexExpr a, const IndexExpr& b);
  friend IndexExpr operator-(IndexExpr a, const IndexExpr& b);
  friend IndexExpr operator*(std::int64_t k, IndexExpr a);
  friend IndexExpr operator*(IndexExpr a, std::int64_t k);

 private:
  std::map<int, std::int64_t> coef_;  // var id -> coefficient
  std::int64_t constant_ = 0;
};

// Namespace-scope declarations so the operators apply to anything convertible
// to IndexExpr (Var, integers), not just IndexExpr itself.
IndexExpr operator+(IndexExpr a, const IndexExpr& b);
IndexExpr operator-(IndexExpr a, const IndexExpr& b);
IndexExpr operator*(std::int64_t k, IndexExpr a);
IndexExpr operator*(IndexExpr a, std::int64_t k);

// Symbolic RHS expression used while building; lowered to ir::Expr when the
// owning computation is declared (at which point iterator positions are known).
class SExpr {
 public:
  SExpr() = default;
  SExpr(double v);  // NOLINT(google-explicit-constructor) constant
  SExpr(int v) : SExpr(static_cast<double>(v)) {}  // NOLINT

  friend SExpr operator+(SExpr a, SExpr b);
  friend SExpr operator-(SExpr a, SExpr b);
  friend SExpr operator*(SExpr a, SExpr b);
  friend SExpr operator/(SExpr a, SExpr b);
  friend SExpr max(SExpr a, SExpr b);
  friend SExpr min(SExpr a, SExpr b);

  bool valid() const { return node_ != nullptr; }

 private:
  struct Node;
  explicit SExpr(std::shared_ptr<const Node> n) : node_(std::move(n)) {}
  std::shared_ptr<const Node> node_;
  friend class ProgramBuilder;
  friend struct SExprDetail;
};

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name);

  // Declares an iterator ranging over [0, extent).
  Var var(std::string name, std::int64_t extent);

  // Declares an external input buffer; returns its buffer id.
  int input(std::string name, std::vector<std::int64_t> dims);

  // Builds a symbolic load of buffer `buffer_id` at the given affine indices.
  SExpr load(int buffer_id, std::vector<IndexExpr> indices) const;

  // Declares a computation. `iters` is the loop nest, outermost first.
  // `store_vars` selects which iterators index the output buffer (must be a
  // subsequence of `iters`); when it omits some iterators the computation is
  // a reduction over the omitted ones. A fresh output buffer named after the
  // computation is created; its id is returned via out_buffer_id.
  // Returns the computation id.
  int computation(const std::string& name, const std::vector<Var>& iters,
                  const std::vector<Var>& store_vars, const SExpr& rhs,
                  int* out_buffer_id = nullptr);

  // Same, but accumulates into an existing (non-input) buffer instead of
  // creating a new one. Used for update statements like x1 += A*y.
  int computation_into(int buffer_id, const std::string& name, const std::vector<Var>& iters,
                       const std::vector<Var>& store_vars, const SExpr& rhs);

  // Starts a new top-level nest: the next computation opens fresh loops even
  // if its leading iterators reuse the previous computation's Var objects.
  // (Distinct Vars already produce multi-root programs implicitly; this makes
  // multi-root construction explicit and Var-reuse safe.)
  void new_root() { prev_nest_.clear(); }

  // Number of top-level loop nests declared so far.
  int num_roots() const { return static_cast<int>(program_.roots.size()); }

  // Finalizes, validates and returns the program. The builder must not be
  // reused afterwards.
  Program build();

  // Buffer id of the output buffer a computation writes (valid after the
  // computation is declared).
  int buffer_of(int comp_id) const;

 private:
  struct VarInfo {
    std::string name;
    std::int64_t extent = 0;
  };

  int declare_computation(int buffer_id, const std::string& name, const std::vector<Var>& iters,
                          const std::vector<Var>& store_vars, const SExpr& rhs);
  AccessMatrix lower_indices(const std::vector<IndexExpr>& indices,
                             const std::vector<Var>& iters) const;
  Expr lower_sexpr(const SExpr& e, const std::vector<Var>& iters) const;

  Program program_;
  std::vector<VarInfo> vars_;
  // Nest of the previous computation: (var id, loop id) outermost first; used
  // for loop sharing.
  std::vector<std::pair<int, int>> prev_nest_;
  bool built_ = false;
};

}  // namespace tcm::ir
