#include "ir/expr.h"

#include <functional>
#include <sstream>
#include <stdexcept>

namespace tcm::ir {

Expr Expr::constant(double v) {
  auto n = std::make_shared<Node>();
  n->kind = ExprKind::Constant;
  n->value = v;
  return Expr(std::move(n));
}

Expr Expr::load(BufferAccess access) {
  auto n = std::make_shared<Node>();
  n->kind = ExprKind::Load;
  n->access = std::move(access);
  return Expr(std::move(n));
}

Expr Expr::binary(ExprKind op, Expr lhs, Expr rhs) {
  switch (op) {
    case ExprKind::Add:
    case ExprKind::Sub:
    case ExprKind::Mul:
    case ExprKind::Div:
    case ExprKind::Max:
    case ExprKind::Min:
      break;
    default:
      throw std::invalid_argument("Expr::binary: not a binary op");
  }
  if (!lhs.valid() || !rhs.valid())
    throw std::invalid_argument("Expr::binary: invalid operand");
  auto n = std::make_shared<Node>();
  n->kind = op;
  n->lhs = std::move(lhs);
  n->rhs = std::move(rhs);
  return Expr(std::move(n));
}

ExprKind Expr::kind() const {
  if (!node_) throw std::logic_error("Expr::kind on empty expression");
  return node_->kind;
}

double Expr::constant_value() const {
  if (kind() != ExprKind::Constant) throw std::logic_error("Expr: not a constant");
  return node_->value;
}

const BufferAccess& Expr::access() const {
  if (kind() != ExprKind::Load) throw std::logic_error("Expr: not a load");
  return node_->access;
}

const Expr& Expr::lhs() const {
  if (kind() == ExprKind::Constant || kind() == ExprKind::Load)
    throw std::logic_error("Expr: leaf has no lhs");
  return node_->lhs;
}

const Expr& Expr::rhs() const {
  if (kind() == ExprKind::Constant || kind() == ExprKind::Load)
    throw std::logic_error("Expr: leaf has no rhs");
  return node_->rhs;
}

std::vector<BufferAccess> Expr::loads() const {
  std::vector<BufferAccess> out;
  std::function<void(const Expr&)> walk = [&](const Expr& e) {
    switch (e.kind()) {
      case ExprKind::Constant:
        return;
      case ExprKind::Load:
        out.push_back(e.access());
        return;
      default:
        walk(e.lhs());
        walk(e.rhs());
    }
  };
  if (valid()) walk(*this);
  return out;
}

OpCounts Expr::op_counts() const {
  OpCounts oc;
  std::function<void(const Expr&)> walk = [&](const Expr& e) {
    switch (e.kind()) {
      case ExprKind::Constant:
      case ExprKind::Load:
        return;
      case ExprKind::Add:
      case ExprKind::Max:
      case ExprKind::Min:
        ++oc.adds;
        break;
      case ExprKind::Sub:
        ++oc.subs;
        break;
      case ExprKind::Mul:
        ++oc.muls;
        break;
      case ExprKind::Div:
        ++oc.divs;
        break;
    }
    walk(e.lhs());
    walk(e.rhs());
  };
  if (valid()) walk(*this);
  return oc;
}

Expr Expr::map_accesses(const std::function<AccessMatrix(const AccessMatrix&)>& fn) const {
  if (!valid()) return {};
  switch (kind()) {
    case ExprKind::Constant:
      return *this;
    case ExprKind::Load: {
      BufferAccess a = access();
      a.matrix = fn(a.matrix);
      return Expr::load(std::move(a));
    }
    default:
      return Expr::binary(kind(), lhs().map_accesses(fn), rhs().map_accesses(fn));
  }
}

std::string Expr::to_string(const std::vector<std::string>& buffer_names) const {
  if (!valid()) return "<empty>";
  std::ostringstream os;
  std::function<void(const Expr&)> walk = [&](const Expr& e) {
    switch (e.kind()) {
      case ExprKind::Constant:
        os << e.constant_value();
        return;
      case ExprKind::Load: {
        const auto& a = e.access();
        if (a.buffer_id >= 0 && a.buffer_id < static_cast<int>(buffer_names.size()))
          os << buffer_names[static_cast<std::size_t>(a.buffer_id)];
        else
          os << "buf" << a.buffer_id;
        os << '[';
        for (int r = 0; r < a.matrix.rank(); ++r) {
          if (r) os << ", ";
          bool first = true;
          for (int c = 0; c < a.matrix.depth(); ++c) {
            const auto coef = a.matrix.at(r, c);
            if (coef == 0) continue;
            if (!first) os << '+';
            if (coef != 1) os << coef << '*';
            os << 'i' << c;
            first = false;
          }
          const auto k = a.matrix.constant(r);
          if (k != 0 || first) {
            if (!first && k >= 0) os << '+';
            os << k;
          }
        }
        os << ']';
        return;
      }
      default: {
        const char* sym = "?";
        switch (e.kind()) {
          case ExprKind::Add: sym = " + "; break;
          case ExprKind::Sub: sym = " - "; break;
          case ExprKind::Mul: sym = " * "; break;
          case ExprKind::Div: sym = " / "; break;
          case ExprKind::Max: sym = " max "; break;
          case ExprKind::Min: sym = " min "; break;
          default: break;
        }
        os << '(';
        walk(e.lhs());
        os << sym;
        walk(e.rhs());
        os << ')';
      }
    }
  };
  walk(*this);
  return os.str();
}

}  // namespace tcm::ir
