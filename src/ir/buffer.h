// Buffers: dense rectangular arrays of doubles, identified by small integer
// ids. A TIRAMISU program reads input buffers and writes buffers produced by
// its computations.
#pragma once

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

namespace tcm::ir {

struct Buffer {
  int id = -1;
  std::string name;
  std::vector<std::int64_t> dims;  // extent of each dimension, outermost first
  bool is_input = false;           // true: external input, false: written by a computation

  int rank() const { return static_cast<int>(dims.size()); }

  std::int64_t num_elements() const {
    std::int64_t n = 1;
    for (auto d : dims) n *= d;
    return n;
  }
};

}  // namespace tcm::ir
