#include "ir/program.h"

#include <functional>
#include <sstream>
#include <stdexcept>

namespace tcm::ir {

const Buffer& Program::buffer(int id) const {
  if (id < 0 || id >= static_cast<int>(buffers.size()))
    throw std::out_of_range("Program::buffer");
  return buffers[static_cast<std::size_t>(id)];
}

const LoopNode& Program::loop(int id) const {
  if (id < 0 || id >= static_cast<int>(loops.size())) throw std::out_of_range("Program::loop");
  return loops[static_cast<std::size_t>(id)];
}

LoopNode& Program::loop(int id) {
  if (id < 0 || id >= static_cast<int>(loops.size())) throw std::out_of_range("Program::loop");
  return loops[static_cast<std::size_t>(id)];
}

const Computation& Program::comp(int id) const {
  if (id < 0 || id >= static_cast<int>(comps.size())) throw std::out_of_range("Program::comp");
  return comps[static_cast<std::size_t>(id)];
}

std::vector<int> Program::nest_of(int comp_id) const {
  std::vector<int> nest;
  for (int l = comp(comp_id).loop_id; l != -1; l = loop(l).parent) nest.push_back(l);
  std::reverse(nest.begin(), nest.end());
  return nest;
}

int Program::depth_of(int comp_id) const { return static_cast<int>(nest_of(comp_id).size()); }

std::vector<std::int64_t> Program::extents_of(int comp_id) const {
  std::vector<std::int64_t> out;
  for (int l : nest_of(comp_id)) out.push_back(loop(l).iter.extent);
  return out;
}

std::vector<int> Program::comps_in_order() const {
  std::vector<int> order;
  std::function<void(int)> walk = [&](int loop_id) {
    for (const BodyItem& item : loop(loop_id).body) {
      if (item.kind == BodyItem::Kind::Loop) walk(item.index);
      else order.push_back(item.index);
    }
  };
  for (int r : roots) walk(r);
  return order;
}

bool Program::is_reduction_level(int comp_id, int level) const {
  const Computation& c = comp(comp_id);
  if (level < 0 || level >= c.store.matrix.depth())
    throw std::out_of_range("Program::is_reduction_level");
  return c.store.matrix.invariant_to(level);
}

bool Program::is_wave_sum(const LoopNode& l) const {
  return l.skew_of != -1 && l.skew_is_sum && loop(l.skew_of).parent == l.id;
}

std::int64_t Program::skew_orig_inner_extent(const LoopNode& sum_loop) const {
  if (!is_wave_sum(sum_loop)) return sum_loop.iter.extent;
  const LoopNode& partner = loop(sum_loop.skew_of);
  return sum_loop.iter.extent - sum_loop.skew_factor * (partner.iter.extent - 1);
}

std::int64_t Program::iteration_count(int comp_id) const {
  // An (outer, inner) tile pair covers exactly the original extent of the
  // pre-tiling loop, so the inner loop contributes orig_extent and the
  // matching outer loop contributes 1. A wave-mode skew pair (t outer,
  // windowed i inner) executes N*M points, not E_t*N: the t-loop contributes
  // M = E_t - f*(N-1) and the partner its plain extent N. Offset-mode skew
  // pairs already store exact trip counts.
  const std::vector<int> nest = nest_of(comp_id);
  std::vector<bool> is_tile_outer(nest.size(), false);
  for (std::size_t i = 0; i < nest.size(); ++i) {
    const LoopNode& l = loop(nest[i]);
    if (l.tail_of == -1) continue;
    for (std::size_t j = 0; j < nest.size(); ++j)
      if (nest[j] == l.tail_of) is_tile_outer[j] = true;
  }
  std::int64_t total = 1;
  for (std::size_t i = 0; i < nest.size(); ++i) {
    const LoopNode& l = loop(nest[i]);
    if (is_tile_outer[i]) continue;
    if (is_wave_sum(l)) {
      total *= skew_orig_inner_extent(l);
      continue;
    }
    total *= (l.tail_of != -1) ? l.orig_extent : l.iter.extent;
  }
  return total;
}

std::vector<AccessMatrix::Range> Program::access_index_ranges(int comp_id,
                                                              const AccessMatrix& m) const {
  const std::vector<int> nest = nest_of(comp_id);
  const int depth = static_cast<int>(nest.size());
  if (m.depth() != depth) throw std::invalid_argument("access_index_ranges: depth mismatch");

  // Position of each tile-inner loop's outer partner within the nest, -1
  // otherwise.
  std::vector<int> outer_pos(nest.size(), -1);
  for (std::size_t i = 0; i < nest.size(); ++i) {
    const LoopNode& l = loop(nest[i]);
    if (l.tail_of == -1) continue;
    for (std::size_t j = 0; j < nest.size(); ++j)
      if (nest[j] == l.tail_of) outer_pos[i] = static_cast<int>(j);
  }

  std::vector<AccessMatrix::Range> ranges(static_cast<std::size_t>(m.rank()));
  for (int r = 0; r < m.rank(); ++r) {
    std::int64_t lo = m.constant(r);
    std::int64_t hi = m.constant(r);
    std::vector<bool> consumed(nest.size(), false);
    // Fold skewed pairs back to the pre-skew basis: with t = j + f*i the row
    // value c_p*i + c_s*t equals (c_p + f*c_s)*i + c_s*j over the rectangular
    // domain i in [0,N), j in [0,M). (Skewed loops are never tiled, so the
    // folds below cannot overlap.)
    for (int s = 0; s < depth; ++s) {
      const LoopNode& ls = loop(nest[static_cast<std::size_t>(s)]);
      if (ls.skew_of == -1 || !ls.skew_is_sum) continue;
      int pp = -1;
      for (int j = 0; j < depth; ++j)
        if (nest[static_cast<std::size_t>(j)] == ls.skew_of) pp = j;
      if (pp < 0) continue;
      const LoopNode& lp = loop(nest[static_cast<std::size_t>(pp)]);
      consumed[static_cast<std::size_t>(s)] = true;
      consumed[static_cast<std::size_t>(pp)] = true;
      const std::int64_t cj = m.at(r, s);
      const std::int64_t ci = m.at(r, pp) + ls.skew_factor * cj;
      const std::int64_t span_j = skew_orig_inner_extent(ls) - 1;
      const std::int64_t span_i = lp.iter.extent - 1;
      if (cj > 0) hi += cj * span_j;
      else lo += cj * span_j;
      if (ci > 0) hi += ci * span_i;
      else lo += ci * span_i;
    }
    // First fold (outer, inner) tile pairs with the (v*s, v) pattern.
    for (int i = 0; i < depth; ++i) {
      const int o = outer_pos[static_cast<std::size_t>(i)];
      if (o < 0) continue;
      const LoopNode& inner = loop(nest[static_cast<std::size_t>(i)]);
      const std::int64_t vi = m.at(r, i);
      const std::int64_t vo = m.at(r, o);
      if (vo != vi * inner.iter.extent) continue;  // not the canonical pattern
      consumed[static_cast<std::size_t>(i)] = true;
      consumed[static_cast<std::size_t>(o)] = true;
      if (vi == 0) continue;
      const std::int64_t span = inner.orig_extent - 1;
      if (vi > 0) hi += vi * span;
      else lo += vi * span;
    }
    // Remaining columns: plain interval arithmetic over [0, extent).
    for (int c = 0; c < depth; ++c) {
      if (consumed[static_cast<std::size_t>(c)]) continue;
      const std::int64_t coef = m.at(r, c);
      if (coef == 0) continue;
      const std::int64_t span = loop(nest[static_cast<std::size_t>(c)]).iter.extent - 1;
      if (coef > 0) hi += coef * span;
      else lo += coef * span;
    }
    ranges[static_cast<std::size_t>(r)] = AccessMatrix::Range{lo, hi};
  }
  return ranges;
}

int Program::add_buffer(Buffer b) {
  b.id = static_cast<int>(buffers.size());
  buffers.push_back(std::move(b));
  return buffers.back().id;
}

int Program::add_loop(LoopNode l) {
  l.id = static_cast<int>(loops.size());
  loops.push_back(std::move(l));
  return loops.back().id;
}

int Program::add_computation(Computation c) {
  c.id = static_cast<int>(comps.size());
  comps.push_back(std::move(c));
  return comps.back().id;
}

std::optional<std::string> Program::validate() const {
  auto fail = [](const std::string& why) { return std::optional<std::string>(why); };

  // ids are positional
  for (std::size_t i = 0; i < loops.size(); ++i)
    if (loops[i].id != static_cast<int>(i)) return fail("loop id mismatch at " + std::to_string(i));
  for (std::size_t i = 0; i < comps.size(); ++i)
    if (comps[i].id != static_cast<int>(i)) return fail("comp id mismatch at " + std::to_string(i));
  for (std::size_t i = 0; i < buffers.size(); ++i)
    if (buffers[i].id != static_cast<int>(i))
      return fail("buffer id mismatch at " + std::to_string(i));

  // tree well-formedness: every loop reachable exactly once, parent pointers
  // consistent with body membership
  std::vector<int> seen_loop(loops.size(), 0);
  std::vector<int> seen_comp(comps.size(), 0);
  std::function<std::optional<std::string>(int, int)> walk =
      [&](int loop_id, int parent) -> std::optional<std::string> {
    if (loop_id < 0 || loop_id >= static_cast<int>(loops.size()))
      return fail("dangling loop id " + std::to_string(loop_id));
    const LoopNode& l = loops[static_cast<std::size_t>(loop_id)];
    if (++seen_loop[static_cast<std::size_t>(loop_id)] > 1)
      return fail("loop " + l.iter.name + " reachable twice");
    if (l.parent != parent) return fail("loop " + l.iter.name + " has wrong parent pointer");
    if (l.iter.extent <= 0) return fail("loop " + l.iter.name + " has non-positive extent");
    if (l.body.empty()) return fail("loop " + l.iter.name + " has empty body");
    if (l.skew_of != -1) {
      if (l.skew_of < 0 || l.skew_of >= static_cast<int>(loops.size()))
        return fail("loop " + l.iter.name + " has dangling skew partner");
      const LoopNode& partner = loops[static_cast<std::size_t>(l.skew_of)];
      if (partner.skew_of != l.id || partner.skew_is_sum == l.skew_is_sum)
        return fail("loop " + l.iter.name + " has inconsistent skew pair");
      if (l.skew_factor < 1 || l.skew_factor != partner.skew_factor)
        return fail("loop " + l.iter.name + " has invalid skew factor");
      if (partner.parent != l.id && l.parent != partner.id)
        return fail("skew pair " + l.iter.name + "/" + partner.iter.name +
                    " is not parent-child");
      const LoopNode& sum = l.skew_is_sum ? l : partner;
      if (skew_orig_inner_extent(sum) <= 0)
        return fail("skew pair of " + l.iter.name + " has non-positive inner extent");
    }
    for (const BodyItem& item : l.body) {
      if (item.kind == BodyItem::Kind::Loop) {
        if (auto err = walk(item.index, loop_id)) return err;
      } else {
        if (item.index < 0 || item.index >= static_cast<int>(comps.size()))
          return fail("dangling computation id");
        if (++seen_comp[static_cast<std::size_t>(item.index)] > 1)
          return fail("computation reachable twice");
        if (comps[static_cast<std::size_t>(item.index)].loop_id != loop_id)
          return fail("computation loop_id inconsistent");
      }
    }
    return std::nullopt;
  };
  for (int r : roots)
    if (auto err = walk(r, -1)) return err;
  for (std::size_t i = 0; i < loops.size(); ++i)
    if (!seen_loop[i]) return fail("orphan loop " + loops[i].iter.name);
  for (std::size_t i = 0; i < comps.size(); ++i)
    if (!seen_comp[i]) return fail("orphan computation " + comps[i].name);

  // accesses: depth matches nest, buffer exists, indices in bounds
  for (const Computation& c : comps) {
    const std::vector<std::int64_t> ext = extents_of(c.id);
    const int depth = static_cast<int>(ext.size());
    auto check_access = [&](const BufferAccess& a, const char* what) -> std::optional<std::string> {
      if (a.buffer_id < 0 || a.buffer_id >= static_cast<int>(buffers.size()))
        return fail(c.name + ": " + what + " references missing buffer");
      const Buffer& b = buffers[static_cast<std::size_t>(a.buffer_id)];
      if (a.matrix.depth() != depth)
        return fail(c.name + ": " + what + " depth " + std::to_string(a.matrix.depth()) +
                    " != nest depth " + std::to_string(depth));
      if (a.matrix.rank() != b.rank())
        return fail(c.name + ": " + what + " rank != buffer rank for " + b.name);
      const auto ranges = access_index_ranges(c.id, a.matrix);
      for (int r = 0; r < a.matrix.rank(); ++r) {
        if (ranges[static_cast<std::size_t>(r)].min < 0 ||
            ranges[static_cast<std::size_t>(r)].max >= b.dims[static_cast<std::size_t>(r)])
          return fail(c.name + ": " + what + " out of bounds in dim " + std::to_string(r) +
                      " of " + b.name);
      }
      return std::nullopt;
    };
    if (auto err = check_access(c.store, "store")) return err;
    if (buffers[static_cast<std::size_t>(c.store.buffer_id)].is_input)
      return fail(c.name + ": stores to an input buffer");
    for (const BufferAccess& a : c.rhs.loads())
      if (auto err = check_access(a, "load")) return err;
    if (!c.rhs.valid()) return fail(c.name + ": empty rhs");
  }
  return std::nullopt;
}

std::string Program::to_string() const {
  std::ostringstream os;
  const std::vector<std::string> names = buffer_names();
  std::function<void(int, int)> walk_loop = [&](int loop_id, int indent) {
    const LoopNode& l = loop(loop_id);
    os << std::string(static_cast<std::size_t>(indent) * 2, ' ');
    if (l.parallel) os << "parallel ";
    os << "for " << l.iter.name << " in 0.." << l.iter.extent;
    if (l.tail_of != -1) os << " (tile-inner of " << loop(l.tail_of).iter.name << ")";
    if (l.skew_of != -1) {
      if (l.skew_is_sum)
        os << " (skew sum, f=" << l.skew_factor << (is_wave_sum(l) ? ", wave" : ", offset")
           << ")";
      else
        os << " (skew partner of " << loop(l.skew_of).iter.name << ")";
    }
    if (l.vector_width > 0) os << " vectorize(" << l.vector_width << ")";
    if (l.unroll > 0) os << " unroll(" << l.unroll << ")";
    os << ":\n";
    for (const BodyItem& item : l.body) {
      if (item.kind == BodyItem::Kind::Loop) {
        walk_loop(item.index, indent + 1);
      } else {
        const Computation& c = comp(item.index);
        os << std::string(static_cast<std::size_t>(indent + 1) * 2, ' ');
        os << names[static_cast<std::size_t>(c.store.buffer_id)] << "[...]"
           << (c.is_reduction ? " += " : " = ") << c.rhs.to_string(names) << ";  // " << c.name
           << "\n";
      }
    }
  };
  os << "program " << name << ":\n";
  for (int r : roots) walk_loop(r, 1);
  return os.str();
}

std::vector<std::string> Program::buffer_names() const {
  std::vector<std::string> names;
  names.reserve(buffers.size());
  for (const Buffer& b : buffers) names.push_back(b.name);
  return names;
}

}  // namespace tcm::ir
