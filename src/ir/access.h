// Polyhedral-style affine access matrices (Section 4.1 of the paper).
//
// An access to a rank-k buffer from inside a depth-n loop nest is a k x (n+1)
// integer matrix: row r gives buffer index r as a linear combination of the
// n loop iterators plus a constant (last column). Example from the paper:
// A[i0, i0+i1, i1-2] with n=2 is
//     [1 0  0]
//     [1 1  0]
//     [0 1 -2]
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace tcm::ir {

class AccessMatrix {
 public:
  AccessMatrix() = default;

  // Zero matrix with `rank` rows and `depth`+1 columns.
  AccessMatrix(int rank, int depth);

  // Identity-like access: buffer index r == iterator r. Requires rank <= depth.
  static AccessMatrix identity(int rank, int depth);

  int rank() const { return rank_; }
  int depth() const { return depth_; }

  // Coefficient of iterator `col` (or the constant term when col == depth())
  // in buffer dimension `row`.
  std::int64_t at(int row, int col) const;
  void set(int row, int col, std::int64_t v);

  std::int64_t constant(int row) const { return at(row, depth_); }

  // Evaluates the access for concrete iterator values (size == depth()).
  // Returns the buffer indices (size == rank()).
  std::vector<std::int64_t> evaluate(std::span<const std::int64_t> iters) const;

  // Computes the inclusive [min,max] range of each buffer index over the
  // rectangular iteration domain given by per-iterator extents (iterators
  // range over [0, extent)). Used to validate in-bounds accesses.
  struct Range {
    std::int64_t min = 0;
    std::int64_t max = 0;
  };
  std::vector<Range> index_ranges(std::span<const std::int64_t> extents) const;

  // True iff buffer dimension `row` depends on iterator `col`.
  bool depends_on(int row, int col) const { return at(row, col) != 0; }

  // True iff no row depends on iterator `col` (the access is invariant to it).
  bool invariant_to(int col) const;

  // --- transformations applied when the surrounding loop nest is rewritten ---

  // Swap the columns of iterators a and b (loop interchange).
  void interchange(int col_a, int col_b);

  // Rewrite for the skew t = i_b + factor*i_a (loop skewing): column a
  // becomes c_a - factor*c_b so row values are preserved when evaluated with
  // the skewed iterator t in column b's slot.
  void skew(int col_a, int col_b, std::int64_t factor);

  // Replace iterator `col` by (outer * tile + inner): the column is split in
  // two adjacent columns at position `col` (outer, coefficient c*tile) and
  // `col`+1 (inner, coefficient c). Depth grows by one.
  void split(int col, std::int64_t tile);

  // Insert a zero column for a new iterator at position `col` (used when a
  // computation is sunk into a deeper fused nest). Depth grows by one.
  void insert_zero_column(int col);

  bool operator==(const AccessMatrix& other) const = default;

  std::string to_string() const;

 private:
  int rank_ = 0;
  int depth_ = 0;
  std::vector<std::int64_t> coef_;  // row-major, rank_ x (depth_+1)
};

// A single memory access: which buffer and with what affine pattern.
struct BufferAccess {
  int buffer_id = -1;
  AccessMatrix matrix;

  bool operator==(const BufferAccess& other) const = default;
};

}  // namespace tcm::ir
