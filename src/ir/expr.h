// Right-hand-side expressions of computations: trees over buffer loads and
// constants combined with arithmetic operators. The featurizer only needs
// (a) the list of loads (access matrix + buffer id) and (b) the count of each
// arithmetic operation; the interpreter evaluates the tree exactly.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/access.h"

namespace tcm::ir {

enum class ExprKind { Constant, Load, Add, Sub, Mul, Div, Max, Min };

// Counts of arithmetic operations on the RHS, as used by the computation
// vector ("Operations count" row of Table 1).
struct OpCounts {
  int adds = 0;
  int subs = 0;
  int muls = 0;
  int divs = 0;

  int total() const { return adds + subs + muls + divs; }
  bool operator==(const OpCounts&) const = default;
};

// Immutable expression tree node, shared by value via shared_ptr.
class Expr {
 public:
  Expr() = default;  // empty expression; valid() == false

  static Expr constant(double v);
  static Expr load(BufferAccess access);
  static Expr binary(ExprKind op, Expr lhs, Expr rhs);

  static Expr add(Expr a, Expr b) { return binary(ExprKind::Add, std::move(a), std::move(b)); }
  static Expr sub(Expr a, Expr b) { return binary(ExprKind::Sub, std::move(a), std::move(b)); }
  static Expr mul(Expr a, Expr b) { return binary(ExprKind::Mul, std::move(a), std::move(b)); }
  static Expr div(Expr a, Expr b) { return binary(ExprKind::Div, std::move(a), std::move(b)); }

  bool valid() const { return node_ != nullptr; }
  ExprKind kind() const;
  double constant_value() const;         // requires kind()==Constant
  const BufferAccess& access() const;    // requires kind()==Load
  const Expr& lhs() const;               // requires a binary kind
  const Expr& rhs() const;

  // All loads in evaluation order (left to right).
  std::vector<BufferAccess> loads() const;

  // Number of each arithmetic op in the tree (Min/Max count as adds).
  OpCounts op_counts() const;

  // Rewrites every load access in the tree with fn (used by the
  // transformation engine when the loop nest is restructured).
  Expr map_accesses(const std::function<AccessMatrix(const AccessMatrix&)>& fn) const;

  std::string to_string(const std::vector<std::string>& buffer_names = {}) const;

 private:
  struct Node;
  explicit Expr(std::shared_ptr<const Node> node) : node_(std::move(node)) {}
  std::shared_ptr<const Node> node_;

  friend class Interpreter;
  friend struct ExprEval;
};

struct Expr::Node {
  ExprKind kind = ExprKind::Constant;
  double value = 0.0;
  BufferAccess access;
  Expr lhs, rhs;
};

}  // namespace tcm::ir
