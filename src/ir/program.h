// The program representation: an ordered tree of loops whose leaves are
// computations (Figure 1b of the paper).
//
// Conventions:
//  - Loops are canonicalized to iterate over [0, extent); non-zero lower
//    bounds are folded into the constant column of every access matrix by the
//    builder. (The computation vector still records a lower bound feature,
//    which is 0 after canonicalization.)
//  - Every computation stores to its own buffer through an affine access whose
//    depth equals the computation's loop-nest depth. Reductions accumulate
//    (+=) and their store access omits the reduction iterators.
//  - Schedule *annotations* (parallel / vectorize / unroll) live on LoopNode;
//    structural transformations (tile / interchange / fuse) rewrite the tree.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/access.h"
#include "ir/buffer.h"
#include "ir/expr.h"

namespace tcm::ir {

// A canonical loop iterator: ranges over [0, extent).
struct Iterator {
  std::string name;
  std::int64_t extent = 0;
};

// Leaf of the program tree: one assignment statement.
struct Computation {
  int id = -1;
  std::string name;
  BufferAccess store;        // left-hand side
  Expr rhs;                  // right-hand side
  bool is_reduction = false; // true: store += rhs, false: store = rhs

  // Loop id of the innermost loop containing this computation (set by the
  // Program when the tree is assembled).
  int loop_id = -1;
};

// Reference to a child of a loop body, in textual order.
struct BodyItem {
  enum class Kind { Loop, Computation };
  Kind kind = Kind::Loop;
  int index = -1;  // loop id or computation id

  static BodyItem loop(int id) { return {Kind::Loop, id}; }
  static BodyItem computation(int id) { return {Kind::Computation, id}; }
  bool operator==(const BodyItem&) const = default;
};

struct LoopNode {
  int id = -1;
  Iterator iter;
  int parent = -1;              // parent loop id, -1 at top level
  std::vector<BodyItem> body;   // ordered children

  // --- tiling bookkeeping -------------------------------------------------
  // When this loop is the *inner* loop produced by tiling, `tail_of` is the
  // id of the matching outer tile loop and `orig_extent` the extent of the
  // original (pre-tiling) loop. The effective trip count of the inner loop is
  //   min(iter.extent, orig_extent - outer_index * iter.extent)
  // which handles non-divisible tile sizes exactly.
  int tail_of = -1;
  std::int64_t orig_extent = 0;

  // --- skewing bookkeeping --------------------------------------------------
  // Skewing an adjacent pair (i, j) with factor f reindexes the inner
  // iterator to t = j + f*i. Both loops of a skewed pair record their partner
  // in `skew_of` and the factor in `skew_factor`; the t-loop additionally
  // sets `skew_is_sum`. Immediately after skewing ("offset mode", t inside
  // i), the t-loop keeps extent M (the original j extent) and its *value* at
  // counter k is k + f*value(i); execution order is unchanged. Interchanging
  // the pair ("wave mode") puts t outside with extent M + f*(N-1) iterating
  // plainly, while the inner i-loop is windowed to the non-empty band
  //   i in [max(0, ceil((t-M+1)/f)), min(N-1, floor(t/f))]
  // which executes exactly the original N*M points in wavefront order.
  int skew_of = -1;               // partner loop id of a skewed pair
  std::int64_t skew_factor = 0;   // f >= 1
  bool skew_is_sum = false;       // true on the t = j + f*i loop of the pair

  // --- schedule annotations -------------------------------------------------
  bool parallel = false;
  int vector_width = 0;   // 0: not vectorized
  int unroll = 0;         // 0: not unrolled

  // --- featurization tags (transformations seen by this loop) ---------------
  bool tag_interchanged = false;
  bool tag_tiled = false;
  std::int64_t tag_tile_factor = 0;
  bool tag_fused = false;
  bool tag_skewed = false;
  std::int64_t tag_skew_factor = 0;
  bool tag_unimodular = false;
};

class Program {
 public:
  std::string name;
  std::vector<Buffer> buffers;
  std::vector<LoopNode> loops;        // arena; LoopNode::id indexes here
  std::vector<Computation> comps;     // arena; Computation::id indexes here
  std::vector<int> roots;             // ordered top-level loop ids

  // --- queries --------------------------------------------------------------

  const Buffer& buffer(int id) const;
  const LoopNode& loop(int id) const;
  LoopNode& loop(int id);
  const Computation& comp(int id) const;

  // Loop ids surrounding a computation, outermost first.
  std::vector<int> nest_of(int comp_id) const;

  // Nest depth of a computation (== nest_of(comp).size()).
  int depth_of(int comp_id) const;

  // Extents of the loops around a computation, outermost first.
  std::vector<std::int64_t> extents_of(int comp_id) const;

  // Computation ids in textual (execution) order.
  std::vector<int> comps_in_order() const;

  // True iff iterator at position `level` of comp's nest is a reduction
  // iterator (the store access does not depend on it).
  bool is_reduction_level(int comp_id, int level) const;

  // True iff `l` is the t-loop of a skewed pair positioned *outside* its
  // partner (wavefront order, i.e. the pair has been interchanged).
  bool is_wave_sum(const LoopNode& l) const;

  // Original inner extent M of a skewed pair, given its t-loop: the stored
  // extent in offset mode, extent - f*(N-1) in wave mode.
  std::int64_t skew_orig_inner_extent(const LoopNode& sum_loop) const;

  // Total number of innermost iterations of a computation (product of
  // effective extents). Tiling keeps this invariant.
  std::int64_t iteration_count(int comp_id) const;

  // Inclusive [min,max] ranges of each buffer index of an access made by
  // `comp_id` through matrix `m`. Unlike AccessMatrix::index_ranges, this is
  // exact in the presence of tile-tail loops: an (outer, inner) tile pair
  // with coefficients (v*s, v) is treated as a single pre-tiling iterator of
  // the original extent.
  std::vector<AccessMatrix::Range> access_index_ranges(int comp_id,
                                                       const AccessMatrix& m) const;

  // --- structure edits (used by the builder & transform engine) -------------

  int add_buffer(Buffer b);
  int add_loop(LoopNode l);
  int add_computation(Computation c);

  // --- validation & printing -------------------------------------------------

  // Checks structural invariants: ids consistent, tree well-formed, access
  // depths match nest depths, all accesses within buffer bounds. Returns an
  // explanation of the first violation, or nullopt if valid.
  std::optional<std::string> validate() const;

  // Pseudo-code rendering (Figure 1a style), with schedule annotations.
  std::string to_string() const;

  std::vector<std::string> buffer_names() const;
};

}  // namespace tcm::ir
