#include "ir/access.h"

#include <sstream>
#include <stdexcept>

namespace tcm::ir {

AccessMatrix::AccessMatrix(int rank, int depth) : rank_(rank), depth_(depth) {
  if (rank < 0 || depth < 0) throw std::invalid_argument("AccessMatrix: negative shape");
  coef_.assign(static_cast<std::size_t>(rank) * (depth + 1), 0);
}

AccessMatrix AccessMatrix::identity(int rank, int depth) {
  if (rank > depth) throw std::invalid_argument("AccessMatrix::identity: rank > depth");
  AccessMatrix m(rank, depth);
  for (int r = 0; r < rank; ++r) m.set(r, r, 1);
  return m;
}

std::int64_t AccessMatrix::at(int row, int col) const {
  if (row < 0 || row >= rank_ || col < 0 || col > depth_)
    throw std::out_of_range("AccessMatrix::at");
  return coef_[static_cast<std::size_t>(row) * (depth_ + 1) + col];
}

void AccessMatrix::set(int row, int col, std::int64_t v) {
  if (row < 0 || row >= rank_ || col < 0 || col > depth_)
    throw std::out_of_range("AccessMatrix::set");
  coef_[static_cast<std::size_t>(row) * (depth_ + 1) + col] = v;
}

std::vector<std::int64_t> AccessMatrix::evaluate(std::span<const std::int64_t> iters) const {
  if (static_cast<int>(iters.size()) != depth_)
    throw std::invalid_argument("AccessMatrix::evaluate: iterator arity mismatch");
  std::vector<std::int64_t> idx(static_cast<std::size_t>(rank_));
  for (int r = 0; r < rank_; ++r) {
    std::int64_t v = constant(r);
    for (int c = 0; c < depth_; ++c) v += at(r, c) * iters[static_cast<std::size_t>(c)];
    idx[static_cast<std::size_t>(r)] = v;
  }
  return idx;
}

std::vector<AccessMatrix::Range> AccessMatrix::index_ranges(
    std::span<const std::int64_t> extents) const {
  if (static_cast<int>(extents.size()) != depth_)
    throw std::invalid_argument("AccessMatrix::index_ranges: extent arity mismatch");
  std::vector<Range> ranges(static_cast<std::size_t>(rank_));
  for (int r = 0; r < rank_; ++r) {
    std::int64_t lo = constant(r);
    std::int64_t hi = constant(r);
    for (int c = 0; c < depth_; ++c) {
      const std::int64_t coef = at(r, c);
      if (coef == 0 || extents[static_cast<std::size_t>(c)] <= 0) continue;
      const std::int64_t span = extents[static_cast<std::size_t>(c)] - 1;
      if (coef > 0) hi += coef * span;
      else lo += coef * span;
    }
    ranges[static_cast<std::size_t>(r)] = Range{lo, hi};
  }
  return ranges;
}

bool AccessMatrix::invariant_to(int col) const {
  for (int r = 0; r < rank_; ++r)
    if (depends_on(r, col)) return false;
  return true;
}

void AccessMatrix::interchange(int col_a, int col_b) {
  if (col_a < 0 || col_a >= depth_ || col_b < 0 || col_b >= depth_)
    throw std::out_of_range("AccessMatrix::interchange");
  for (int r = 0; r < rank_; ++r) {
    const std::int64_t a = at(r, col_a);
    const std::int64_t b = at(r, col_b);
    set(r, col_a, b);
    set(r, col_b, a);
  }
}

void AccessMatrix::skew(int col_a, int col_b, std::int64_t factor) {
  if (col_a < 0 || col_a >= depth_ || col_b < 0 || col_b >= depth_ || col_a == col_b)
    throw std::out_of_range("AccessMatrix::skew");
  // Reindexing t = i_b + factor*i_a keeps row values unchanged when the
  // coefficient of i_a absorbs -factor times the coefficient of i_b:
  //   c_a*i_a + c_b*i_b == (c_a - f*c_b)*i_a + c_b*(i_b + f*i_a).
  for (int r = 0; r < rank_; ++r) set(r, col_a, at(r, col_a) - factor * at(r, col_b));
}

void AccessMatrix::split(int col, std::int64_t tile) {
  if (col < 0 || col >= depth_) throw std::out_of_range("AccessMatrix::split");
  if (tile <= 0) throw std::invalid_argument("AccessMatrix::split: tile <= 0");
  AccessMatrix out(rank_, depth_ + 1);
  for (int r = 0; r < rank_; ++r) {
    for (int c = 0; c <= depth_; ++c) {
      const std::int64_t v = at(r, c);
      if (c < col) {
        out.set(r, c, v);
      } else if (c == col) {
        out.set(r, col, v * tile);    // outer iterator
        out.set(r, col + 1, v);       // inner iterator
      } else {
        // shift the remaining iterator columns (and constant) right by one
        out.set(r, c + 1, v);
      }
    }
  }
  *this = out;
}

void AccessMatrix::insert_zero_column(int col) {
  if (col < 0 || col > depth_) throw std::out_of_range("AccessMatrix::insert_zero_column");
  AccessMatrix out(rank_, depth_ + 1);
  for (int r = 0; r < rank_; ++r) {
    for (int c = 0; c <= depth_; ++c) {
      const int dst = (c < col) ? c : c + 1;
      out.set(r, dst, at(r, c));
    }
  }
  *this = out;
}

std::string AccessMatrix::to_string() const {
  std::ostringstream os;
  for (int r = 0; r < rank_; ++r) {
    os << '[';
    for (int c = 0; c <= depth_; ++c) os << (c ? " " : "") << at(r, c);
    os << "]";
    if (r + 1 < rank_) os << '\n';
  }
  return os.str();
}

}  // namespace tcm::ir
