// Dataset of (program characterization, measured speedup) samples and the
// structure-aware batching the paper uses (appendix A.1: batches group
// schedules of the same algorithm so every sample in a batch shares one tree
// structure and can be processed as [batch, features] tensors).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/featurize.h"
#include "nn/tensor.h"

namespace tcm::model {

struct DataPoint {
  int program_id = -1;
  FeaturizedProgram feats;
  double speedup = 1.0;  // measured (simulated) speedup: the regression target
};

struct Dataset {
  std::vector<DataPoint> points;

  std::size_t size() const { return points.size(); }

  // Binary serialization.
  bool save(const std::string& path) const;
  static Dataset load(const std::string& path);
};

// A 60/20/20-style split. Programs are assigned to one side wholesale (the
// paper splits by program so no algorithm appears in both train and test).
struct DatasetSplit {
  Dataset train, validation, test;
};

DatasetSplit split_by_program(const Dataset& ds, double train_frac, double val_frac,
                              std::uint64_t seed);

// A training batch: all samples share one tree structure.
struct Batch {
  const LoopTreeNode* tree = nullptr;          // shared structure
  std::vector<nn::Tensor> comp_inputs;         // per computation: [B, F]
  nn::Tensor targets;                          // [B, 1]
  std::vector<std::size_t> point_indices;      // provenance into the dataset

  int batch_size() const { return targets.rows(); }
  int num_comps() const { return static_cast<int>(comp_inputs.size()); }
};

// Groups points by program id (and verifies structural equality), then cuts
// each group into batches of at most `batch_size`.
std::vector<Batch> make_batches(const Dataset& ds, int batch_size);

// Builds an inference batch (zero targets, no provenance) from featurized
// rows that all share one tree structure. The batch's tree pointer aliases
// rows[0], which the caller must keep alive while the batch is used. The
// single place batch tensors are assembled outside training — the serving
// subsystem and the checkpoint round-trip tests both go through it.
Batch make_inference_batch(const std::vector<const FeaturizedProgram*>& rows);

}  // namespace tcm::model
