#include "model/cost_model.h"

#include <functional>
#include <stdexcept>

namespace tcm::model {
namespace {

std::vector<int> concat_sizes(int in, const std::vector<int>& hidden, int out) {
  std::vector<int> sizes;
  sizes.push_back(in);
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(out);
  return sizes;
}

}  // namespace

std::vector<int> comps_in_tree_order(const LoopTreeNode& root) {
  std::vector<int> order;
  std::function<void(const LoopTreeNode&)> walk = [&](const LoopTreeNode& n) {
    for (int c : n.comps) order.push_back(c);
    for (const LoopTreeNode& child : n.children) walk(child);
  };
  walk(root);
  return order;
}

// ---------------------------------------------------------------------------
// CostModel
// ---------------------------------------------------------------------------

CostModel::CostModel(const ModelConfig& config, Rng& rng) : config_(config) {
  const int f = config.features.computation_vector_size();
  const int e = config.embed_size;
  comp_embedding_ = std::make_unique<nn::MLP>(concat_sizes(f, config.embed_hidden, e),
                                              config.dropout, rng, "comp_embed");
  comps_lstm_ = std::make_unique<nn::LSTMCell>(e, e, rng, "comps_lstm");
  loops_lstm_ = std::make_unique<nn::LSTMCell>(e, e, rng, "loops_lstm");
  merge_ = std::make_unique<nn::MLP>(concat_sizes(2 * e, config.merge_hidden, e), config.dropout,
                                     rng, "merge");
  regression_ = std::make_unique<nn::MLP>(concat_sizes(e, config.regress_hidden, 1),
                                          config.dropout, rng, "regression",
                                          /*activate_last=*/false);
  register_submodule("comp_embed", comp_embedding_.get());
  register_submodule("comps_lstm", comps_lstm_.get());
  register_submodule("loops_lstm", loops_lstm_.get());
  register_submodule("merge", merge_.get());
  register_submodule("regression", regression_.get());
}

nn::Variable CostModel::embed_node(const LoopTreeNode& node,
                                   const std::vector<nn::Variable>& comp_embeds, int batch,
                                   bool training, Rng& rng) const {
  // First LSTM: computations nested directly at this level, in order.
  nn::LSTMCell::State comp_state = comps_lstm_->initial_state(batch);
  for (int ci : node.comps)
    comp_state = comps_lstm_->forward(comp_embeds[static_cast<std::size_t>(ci)], comp_state);

  // Second LSTM: child loop embeddings, in order.
  nn::LSTMCell::State loop_state = loops_lstm_->initial_state(batch);
  for (const LoopTreeNode& child : node.children)
    loop_state =
        loops_lstm_->forward(embed_node(child, comp_embeds, batch, training, rng), loop_state);

  return merge_->forward(nn::concat_cols(comp_state.h, loop_state.h), training, rng);
}

nn::Variable CostModel::forward_batch(const Batch& batch, bool training, Rng& rng) {
  if (!batch.tree) throw std::invalid_argument("CostModel: batch without tree");
  std::vector<nn::Variable> comp_embeds;
  comp_embeds.reserve(batch.comp_inputs.size());
  for (const nn::Tensor& x : batch.comp_inputs)
    comp_embeds.push_back(comp_embedding_->forward(nn::Variable(x), training, rng));
  const nn::Variable program_embedding =
      embed_node(*batch.tree, comp_embeds, batch.batch_size(), training, rng);
  return nn::exp_bounded(regression_->forward(program_embedding, training, rng),
                         config_.exp_head_limit);
}

// ---------------------------------------------------------------------------
// LstmOnlyModel
// ---------------------------------------------------------------------------

LstmOnlyModel::LstmOnlyModel(const ModelConfig& config, Rng& rng) : config_(config) {
  const int f = config.features.computation_vector_size();
  const int e = config.embed_size;
  comp_embedding_ = std::make_unique<nn::MLP>(concat_sizes(f, config.embed_hidden, e),
                                              config.dropout, rng, "comp_embed");
  lstm_ = std::make_unique<nn::LSTMCell>(e, e, rng, "lstm");
  regression_ = std::make_unique<nn::MLP>(concat_sizes(e, config.regress_hidden, 1),
                                          config.dropout, rng, "regression",
                                          /*activate_last=*/false);
  register_submodule("comp_embed", comp_embedding_.get());
  register_submodule("lstm", lstm_.get());
  register_submodule("regression", regression_.get());
}

nn::Variable LstmOnlyModel::forward_batch(const Batch& batch, bool training, Rng& rng) {
  if (!batch.tree) throw std::invalid_argument("LstmOnlyModel: batch without tree");
  nn::LSTMCell::State state = lstm_->initial_state(batch.batch_size());
  for (int ci : comps_in_tree_order(*batch.tree)) {
    const nn::Variable embed = comp_embedding_->forward(
        nn::Variable(batch.comp_inputs[static_cast<std::size_t>(ci)]), training, rng);
    state = lstm_->forward(embed, state);
  }
  return nn::exp_bounded(regression_->forward(state.h, training, rng), config_.exp_head_limit);
}

// ---------------------------------------------------------------------------
// FeedForwardModel
// ---------------------------------------------------------------------------

FeedForwardModel::FeedForwardModel(const ModelConfig& config, Rng& rng) : config_(config) {
  const int f = config.features.computation_vector_size();
  const int e = config.embed_size;
  comp_embedding_ = std::make_unique<nn::MLP>(concat_sizes(f, config.embed_hidden, e),
                                              config.dropout, rng, "comp_embed");
  regression_ = std::make_unique<nn::MLP>(
      concat_sizes(e * config.ff_max_comps, config.regress_hidden, 1), config.dropout, rng,
      "regression", /*activate_last=*/false);
  register_submodule("comp_embed", comp_embedding_.get());
  register_submodule("regression", regression_.get());
}

nn::Variable FeedForwardModel::forward_batch(const Batch& batch, bool training, Rng& rng) {
  if (!batch.tree) throw std::invalid_argument("FeedForwardModel: batch without tree");
  if (batch.num_comps() > config_.ff_max_comps)
    throw std::invalid_argument("FeedForwardModel: program has " +
                                std::to_string(batch.num_comps()) + " computations, supports <= " +
                                std::to_string(config_.ff_max_comps));
  nn::Variable concat;
  const std::vector<int> order = comps_in_tree_order(*batch.tree);
  for (int ci : order) {
    const nn::Variable embed = comp_embedding_->forward(
        nn::Variable(batch.comp_inputs[static_cast<std::size_t>(ci)]), training, rng);
    concat = concat.defined() ? nn::concat_cols(concat, embed) : embed;
  }
  // Zero-pad to the fixed capacity.
  const int missing = config_.ff_max_comps - static_cast<int>(order.size());
  if (missing > 0) {
    nn::Variable pad(nn::Tensor::zeros(batch.batch_size(), missing * config_.embed_size));
    concat = concat.defined() ? nn::concat_cols(concat, pad) : pad;
  }
  return nn::exp_bounded(regression_->forward(concat, training, rng), config_.exp_head_limit);
}

}  // namespace tcm::model
