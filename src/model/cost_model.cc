#include "model/cost_model.h"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace tcm::model {
namespace {

std::vector<int> concat_sizes(int in, const std::vector<int>& hidden, int out) {
  std::vector<int> sizes;
  sizes.push_back(in);
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(out);
  return sizes;
}

}  // namespace

std::vector<int> comps_in_tree_order(const LoopTreeNode& root) {
  std::vector<int> order;
  append_comps_in_tree_order(root, order);
  return order;
}

void append_comps_in_tree_order(const LoopTreeNode& root, std::vector<int>& order) {
  for (int c : root.comps) order.push_back(c);
  for (const LoopTreeNode& child : root.children) append_comps_in_tree_order(child, order);
}

// ---------------------------------------------------------------------------
// SpeedupPredictor: default tape-free fallback
// ---------------------------------------------------------------------------

const nn::Tensor& SpeedupPredictor::infer_batch(const Batch& batch, nn::InferenceArena& arena) {
  // Compatibility path for predictors without a fused implementation: run
  // the autograd forward (inference draws nothing from the Rng) and copy the
  // result into the arena so the lifetime contract matches the fast path.
  Rng rng(0);
  const nn::Variable pred = forward_batch(batch, /*training=*/false, rng);
  arena.reset();
  nn::Tensor& out = arena.alloc(pred.rows(), pred.cols());
  const nn::Tensor& value = pred.value();
  std::copy(value.data(), value.data() + value.size(), out.data());
  return out;
}

// ---------------------------------------------------------------------------
// CostModel
// ---------------------------------------------------------------------------

CostModel::CostModel(const ModelConfig& config, Rng& rng) : config_(config) {
  const int f = config.features.computation_vector_size();
  const int e = config.embed_size;
  comp_embedding_ = std::make_unique<nn::MLP>(concat_sizes(f, config.embed_hidden, e),
                                              config.dropout, rng, "comp_embed");
  comps_lstm_ = std::make_unique<nn::LSTMCell>(e, e, rng, "comps_lstm");
  loops_lstm_ = std::make_unique<nn::LSTMCell>(e, e, rng, "loops_lstm");
  merge_ = std::make_unique<nn::MLP>(concat_sizes(2 * e, config.merge_hidden, e), config.dropout,
                                     rng, "merge");
  regression_ = std::make_unique<nn::MLP>(concat_sizes(e, config.regress_hidden, 1),
                                          config.dropout, rng, "regression",
                                          /*activate_last=*/false);
  register_submodule("comp_embed", comp_embedding_.get());
  register_submodule("comps_lstm", comps_lstm_.get());
  register_submodule("loops_lstm", loops_lstm_.get());
  register_submodule("merge", merge_.get());
  register_submodule("regression", regression_.get());
}

nn::Variable CostModel::embed_node(const LoopTreeNode& node,
                                   const std::vector<nn::Variable>& comp_embeds, int batch,
                                   bool training, Rng& rng) const {
  // First LSTM: computations nested directly at this level, in order.
  nn::LSTMCell::State comp_state = comps_lstm_->initial_state(batch);
  for (int ci : node.comps)
    comp_state = comps_lstm_->forward(comp_embeds[static_cast<std::size_t>(ci)], comp_state);

  // Second LSTM: child loop embeddings, in order.
  nn::LSTMCell::State loop_state = loops_lstm_->initial_state(batch);
  for (const LoopTreeNode& child : node.children)
    loop_state =
        loops_lstm_->forward(embed_node(child, comp_embeds, batch, training, rng), loop_state);

  return merge_->forward(nn::concat_cols(comp_state.h, loop_state.h), training, rng);
}

nn::Variable CostModel::forward_batch(const Batch& batch, bool training, Rng& rng) {
  if (!batch.tree) throw std::invalid_argument("CostModel: batch without tree");
  std::vector<nn::Variable> comp_embeds;
  comp_embeds.reserve(batch.comp_inputs.size());
  for (const nn::Tensor& x : batch.comp_inputs)
    comp_embeds.push_back(comp_embedding_->forward(nn::Variable(x), training, rng));
  const nn::Variable program_embedding =
      embed_node(*batch.tree, comp_embeds, batch.batch_size(), training, rng);
  return nn::exp_bounded(regression_->forward(program_embedding, training, rng),
                         config_.exp_head_limit);
}

struct CostModel::Plan {
  nn::PackedMLP comp_embed, merge, regression;
  nn::PackedLSTMCell comps_lstm, loops_lstm;
};

const nn::Tensor& CostModel::infer_node(const LoopTreeNode& node,
                                        const std::vector<const nn::Tensor*>& comp_embeds,
                                        int batch, const Plan& plan,
                                        nn::InferenceArena& arena) const {
  const int e = config_.embed_size;
  // First LSTM: computations nested directly at this level, in order.
  nn::Tensor& comp_h = arena.alloc(batch, e);
  nn::Tensor& comp_c = arena.alloc(batch, e);
  comp_h.fill(0.0f);
  comp_c.fill(0.0f);
  for (int ci : node.comps)
    plan.comps_lstm.step(*comp_embeds[static_cast<std::size_t>(ci)], comp_h, comp_c, arena);

  // Second LSTM: child loop embeddings, in order.
  nn::Tensor& loop_h = arena.alloc(batch, e);
  nn::Tensor& loop_c = arena.alloc(batch, e);
  loop_h.fill(0.0f);
  loop_c.fill(0.0f);
  for (const LoopTreeNode& child : node.children) {
    const nn::Tensor& child_embed = infer_node(child, comp_embeds, batch, plan, arena);
    plan.loops_lstm.step(child_embed, loop_h, loop_c, arena);
  }

  nn::Tensor& merged_in = arena.alloc(batch, 2 * e);
  for (int r = 0; r < batch; ++r) {
    float* dst = merged_in.data() + static_cast<std::size_t>(r) * 2 * e;
    std::copy(comp_h.data() + static_cast<std::size_t>(r) * e,
              comp_h.data() + static_cast<std::size_t>(r + 1) * e, dst);
    std::copy(loop_h.data() + static_cast<std::size_t>(r) * e,
              loop_h.data() + static_cast<std::size_t>(r + 1) * e, dst + e);
  }
  return plan.merge.forward(merged_in, arena);
}

const nn::Tensor& CostModel::infer_batch(const Batch& batch, nn::InferenceArena& arena) {
  if (!batch.tree) throw std::invalid_argument("CostModel: batch without tree");
  const Plan& plan = plan_.get([this] {
    Plan p;
    p.comp_embed = nn::PackedMLP::pack(*comp_embedding_);
    p.merge = nn::PackedMLP::pack(*merge_);
    p.regression = nn::PackedMLP::pack(*regression_);
    p.comps_lstm = nn::PackedLSTMCell::pack(*comps_lstm_);
    p.loops_lstm = nn::PackedLSTMCell::pack(*loops_lstm_);
    return p;
  });
  arena.reset();
  std::vector<const nn::Tensor*>& comp_embeds = arena.ptr_scratch();
  for (const nn::Tensor& x : batch.comp_inputs)
    comp_embeds.push_back(&plan.comp_embed.forward(x, arena));
  const nn::Tensor& program_embedding =
      infer_node(*batch.tree, comp_embeds, batch.batch_size(), plan, arena);
  nn::Tensor& out = plan.regression.forward(program_embedding, arena);
  nn::exp_bounded_inplace(out, config_.exp_head_limit);
  return out;
}

// ---------------------------------------------------------------------------
// LstmOnlyModel
// ---------------------------------------------------------------------------

LstmOnlyModel::LstmOnlyModel(const ModelConfig& config, Rng& rng) : config_(config) {
  const int f = config.features.computation_vector_size();
  const int e = config.embed_size;
  comp_embedding_ = std::make_unique<nn::MLP>(concat_sizes(f, config.embed_hidden, e),
                                              config.dropout, rng, "comp_embed");
  lstm_ = std::make_unique<nn::LSTMCell>(e, e, rng, "lstm");
  regression_ = std::make_unique<nn::MLP>(concat_sizes(e, config.regress_hidden, 1),
                                          config.dropout, rng, "regression",
                                          /*activate_last=*/false);
  register_submodule("comp_embed", comp_embedding_.get());
  register_submodule("lstm", lstm_.get());
  register_submodule("regression", regression_.get());
}

nn::Variable LstmOnlyModel::forward_batch(const Batch& batch, bool training, Rng& rng) {
  if (!batch.tree) throw std::invalid_argument("LstmOnlyModel: batch without tree");
  nn::LSTMCell::State state = lstm_->initial_state(batch.batch_size());
  for (int ci : comps_in_tree_order(*batch.tree)) {
    const nn::Variable embed = comp_embedding_->forward(
        nn::Variable(batch.comp_inputs[static_cast<std::size_t>(ci)]), training, rng);
    state = lstm_->forward(embed, state);
  }
  return nn::exp_bounded(regression_->forward(state.h, training, rng), config_.exp_head_limit);
}

struct LstmOnlyModel::Plan {
  nn::PackedMLP comp_embed, regression;
  nn::PackedLSTMCell lstm;
};

const nn::Tensor& LstmOnlyModel::infer_batch(const Batch& batch, nn::InferenceArena& arena) {
  if (!batch.tree) throw std::invalid_argument("LstmOnlyModel: batch without tree");
  const Plan& plan = plan_.get([this] {
    Plan p;
    p.comp_embed = nn::PackedMLP::pack(*comp_embedding_);
    p.regression = nn::PackedMLP::pack(*regression_);
    p.lstm = nn::PackedLSTMCell::pack(*lstm_);
    return p;
  });
  arena.reset();
  const int b = batch.batch_size();
  const int e = config_.embed_size;
  std::vector<int>& order = arena.index_scratch();
  append_comps_in_tree_order(*batch.tree, order);
  nn::Tensor& h = arena.alloc(b, e);
  nn::Tensor& c = arena.alloc(b, e);
  h.fill(0.0f);
  c.fill(0.0f);
  for (int ci : order) {
    const nn::Tensor& embed =
        plan.comp_embed.forward(batch.comp_inputs[static_cast<std::size_t>(ci)], arena);
    plan.lstm.step(embed, h, c, arena);
  }
  nn::Tensor& out = plan.regression.forward(h, arena);
  nn::exp_bounded_inplace(out, config_.exp_head_limit);
  return out;
}

// ---------------------------------------------------------------------------
// FeedForwardModel
// ---------------------------------------------------------------------------

FeedForwardModel::FeedForwardModel(const ModelConfig& config, Rng& rng) : config_(config) {
  const int f = config.features.computation_vector_size();
  const int e = config.embed_size;
  comp_embedding_ = std::make_unique<nn::MLP>(concat_sizes(f, config.embed_hidden, e),
                                              config.dropout, rng, "comp_embed");
  regression_ = std::make_unique<nn::MLP>(
      concat_sizes(e * config.ff_max_comps, config.regress_hidden, 1), config.dropout, rng,
      "regression", /*activate_last=*/false);
  register_submodule("comp_embed", comp_embedding_.get());
  register_submodule("regression", regression_.get());
}

nn::Variable FeedForwardModel::forward_batch(const Batch& batch, bool training, Rng& rng) {
  if (!batch.tree) throw std::invalid_argument("FeedForwardModel: batch without tree");
  if (batch.num_comps() > config_.ff_max_comps)
    throw std::invalid_argument("FeedForwardModel: program has " +
                                std::to_string(batch.num_comps()) + " computations, supports <= " +
                                std::to_string(config_.ff_max_comps));
  nn::Variable concat;
  const std::vector<int> order = comps_in_tree_order(*batch.tree);
  for (int ci : order) {
    const nn::Variable embed = comp_embedding_->forward(
        nn::Variable(batch.comp_inputs[static_cast<std::size_t>(ci)]), training, rng);
    concat = concat.defined() ? nn::concat_cols(concat, embed) : embed;
  }
  // Zero-pad to the fixed capacity.
  const int missing = config_.ff_max_comps - static_cast<int>(order.size());
  if (missing > 0) {
    nn::Variable pad(nn::Tensor::zeros(batch.batch_size(), missing * config_.embed_size));
    concat = concat.defined() ? nn::concat_cols(concat, pad) : pad;
  }
  return nn::exp_bounded(regression_->forward(concat, training, rng), config_.exp_head_limit);
}

struct FeedForwardModel::Plan {
  nn::PackedMLP comp_embed, regression;
};

const nn::Tensor& FeedForwardModel::infer_batch(const Batch& batch, nn::InferenceArena& arena) {
  if (!batch.tree) throw std::invalid_argument("FeedForwardModel: batch without tree");
  if (batch.num_comps() > config_.ff_max_comps)
    throw std::invalid_argument("FeedForwardModel: program has " +
                                std::to_string(batch.num_comps()) + " computations, supports <= " +
                                std::to_string(config_.ff_max_comps));
  const Plan& plan = plan_.get([this] {
    Plan p;
    p.comp_embed = nn::PackedMLP::pack(*comp_embedding_);
    p.regression = nn::PackedMLP::pack(*regression_);
    return p;
  });
  arena.reset();
  const int b = batch.batch_size();
  const int e = config_.embed_size;
  std::vector<int>& order = arena.index_scratch();
  append_comps_in_tree_order(*batch.tree, order);
  // Concatenated comp embeddings, zero-padded to the fixed capacity.
  nn::Tensor& concat = arena.alloc(b, e * config_.ff_max_comps);
  concat.fill(0.0f);
  int col = 0;
  for (int ci : order) {
    const nn::Tensor& embed =
        plan.comp_embed.forward(batch.comp_inputs[static_cast<std::size_t>(ci)], arena);
    for (int r = 0; r < b; ++r)
      std::copy(embed.data() + static_cast<std::size_t>(r) * e,
                embed.data() + static_cast<std::size_t>(r + 1) * e,
                concat.data() + static_cast<std::size_t>(r) * concat.cols() + col);
    col += e;
  }
  nn::Tensor& out = plan.regression.forward(concat, arena);
  nn::exp_bounded_inplace(out, config_.exp_head_limit);
  return out;
}

}  // namespace tcm::model
