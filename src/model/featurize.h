// Program characterization (Section 4.1-4.2 of the paper).
//
// A (program, schedule) pair is characterized as an ordered tree of
// computation vectors:
//   - tree structure: the program's loop nest tree with *fusion applied*
//     (the paper applies structure-changing transformations to the structure
//     representation and encodes everything else as per-loop tags);
//   - one computation vector per computation, containing
//       * the loop nest vector: per loop level, its bounds plus boolean tags
//         and parameters of the transformations applied to that level
//         (reduction, fusion, interchange, tiling + factor, unrolling +
//         factor, parallelization, vectorization + width, skewing + factor,
//         unimodular membership),
//       * the assignment vector: the access matrix and buffer id of each
//         memory access (zero-padded to a fixed count), the store buffer's
//         rank and dimension sizes, the operation counts, and the flattened
//         3x3 unimodular coefficient matrix of the computation's transform
//         (identity when none; a 2x2 transform embeds top-left with
//         coeff[2][2] = 1).
// Non-boolean features are signed-log transformed: sign(x) * log1p(|x|).
//
// Schema v2 (LOOPer-class space): v1 vectors had 12 per-loop features and no
// unimodular coefficient block. FeatureConfig::schema_version feeds the
// registry's feature-config hash, so checkpoints trained on v1 features are
// rejected at load time instead of silently mis-predicting.
//
// Deviation from the paper, documented in DESIGN.md: we include
// parallelization/vectorization tags in the loop nest vector because our
// schedules vary them (the paper fixes them with heuristics outside the
// learned model).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/program.h"
#include "transforms/schedule.h"

namespace tcm::model {

struct FeatureConfig {
  int max_depth = 7;     // n: maximum loop nest length
  int max_accesses = 9;  // m: maximum number of RHS memory accesses
  int max_rank = 4;      // R: maximum buffer rank
  bool log_transform = true;
  bool include_par_vec_tags = true;

  // Feature-vector layout revision. Bumped to 2 when the LOOPer-class
  // schedule space (skewing / unimodular transforms) extended the per-loop
  // and per-computation features; mixed into registry::feature_config_hash
  // so pre-revision checkpoints are rejected at load.
  int schema_version = 2;

  // Features per loop level: extent, lower bound, reduction, fused,
  // interchanged, tiled, tile factor, unrolled, unroll factor, parallel,
  // vectorized, vector width, skewed, skew factor, unimodular.
  static constexpr int kPerLoop = 15;

  // Flattened 3x3 unimodular coefficient matrix per computation.
  static constexpr int kUnimodCoeffs = 9;

  // Features per access: present flag, buffer id, access matrix R x (n+1).
  int per_access() const { return 2 + max_rank * (max_depth + 1); }

  // Total size of one computation vector.
  int computation_vector_size() const {
    return kPerLoop * max_depth           // loop nest vector
           + 1 + max_rank                 // store rank + store dim sizes
           + max_accesses * per_access()  // assignment vector
           + 4                            // op counts
           + kUnimodCoeffs;               // unimodular coefficient matrix
  }

  // The paper's dimensions (n=7, m=21, buffers up to rank 5).
  static FeatureConfig paper() {
    FeatureConfig c;
    c.max_depth = 7;
    c.max_accesses = 21;
    c.max_rank = 5;
    return c;
  }

  // Smaller vectors for fast experimentation; still covers the whole
  // benchmark suite.
  static FeatureConfig fast() { return FeatureConfig{}; }
};

// The structure component: a loop tree whose leaves reference computations.
struct LoopTreeNode {
  std::vector<LoopTreeNode> children;
  std::vector<int> comps;  // computation vector indices nested directly here

  bool operator==(const LoopTreeNode&) const = default;
  // Number of loop nodes in this subtree (excluding the virtual root use).
  int node_count() const;
};

struct FeaturizedProgram {
  // One vector per computation, in execution order of the fused structure.
  std::vector<std::vector<float>> comp_vectors;
  // Virtual root: children are the program's top-level nests.
  LoopTreeNode root;

  bool same_structure(const FeaturizedProgram& o) const {
    return comp_vectors.size() == o.comp_vectors.size() && root == o.root;
  }
};

// Featurizes `schedule` applied to `program`. Returns nullopt (with `error`
// set) when the program exceeds the configured limits or the schedule's
// fusion part is illegal.
std::optional<FeaturizedProgram> featurize(const ir::Program& program,
                                           const transforms::Schedule& schedule,
                                           const FeatureConfig& config,
                                           std::string* error = nullptr);

}  // namespace tcm::model
