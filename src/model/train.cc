#include "model/train.h"

#include <numeric>
#include <stdexcept>

#include "nn/optim.h"
#include "support/log.h"
#include "support/stats.h"

namespace tcm::model {

TrainResult train_model(SpeedupPredictor& model, const Dataset& train, const Dataset* validation,
                        const TrainOptions& options) {
  if (train.points.empty()) throw std::invalid_argument("train_model: empty training set");
  std::vector<Batch> batches = make_batches(train, options.batch_size);
  Rng rng(options.seed);

  nn::AdamWOptions opt_options;
  opt_options.weight_decay = options.weight_decay;
  opt_options.max_grad_norm = options.max_grad_norm;
  nn::AdamW optimizer(model.module().parameters(), opt_options);
  const std::int64_t total_steps =
      static_cast<std::int64_t>(options.epochs) * static_cast<std::int64_t>(batches.size());
  nn::OneCycleLR schedule(&optimizer, options.max_lr, std::max<std::int64_t>(1, total_steps),
                          options.pct_start);

  TrainResult result;
  std::vector<std::size_t> order(batches.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.shuffle(order);
    double loss_sum = 0;
    for (std::size_t bi : order) {
      const Batch& batch = batches[bi];
      optimizer.zero_grad();
      nn::Variable pred = model.forward_batch(batch, /*training=*/true, rng);
      nn::Variable loss = options.loss == TrainLoss::kMape
                              ? nn::mape_loss(pred, batch.targets)
                              : nn::log_ratio_loss(pred, batch.targets);
      nn::backward(loss);
      optimizer.step();
      schedule.step();
      loss_sum += static_cast<double>(loss.value().item());
    }
    result.train_loss.push_back(loss_sum / static_cast<double>(batches.size()));
    if (validation) {
      const EvalMetrics m = evaluate(model, *validation);
      result.val_mape.push_back(m.mape);
    }
    if (options.verbose &&
        (epoch % options.log_every == 0 || epoch + 1 == options.epochs)) {
      auto line = log_info();
      line << model.name() << " epoch " << epoch << " train MAPE " << result.train_loss.back();
      if (validation) line << " val MAPE " << result.val_mape.back();
    }
  }
  return result;
}

std::vector<double> predict(SpeedupPredictor& model, const Dataset& ds, int batch_size) {
  std::vector<double> out(ds.points.size(), 0.0);
  if (ds.points.empty()) return out;
  // Tape-free fast path. Parameters may have changed since the last call
  // (this runs between training epochs for validation MAPE), so drop any
  // stale packed plan first — repacking is two small matrix copies, noise
  // against a full evaluation pass.
  model.invalidate_inference();
  nn::InferenceArena arena;
  for (const Batch& batch : make_batches(ds, batch_size)) {
    const nn::Tensor& pred = model.infer_batch(batch, arena);
    for (int r = 0; r < pred.rows(); ++r)
      out[batch.point_indices[static_cast<std::size_t>(r)]] =
          static_cast<double>(pred.at(r, 0));
  }
  return out;
}

EvalMetrics compute_metrics(const std::vector<double>& predictions, const Dataset& ds) {
  if (predictions.size() != ds.points.size())
    throw std::invalid_argument("compute_metrics: size mismatch");
  std::vector<double> y(ds.points.size());
  for (std::size_t i = 0; i < ds.points.size(); ++i) y[i] = ds.points[i].speedup;
  EvalMetrics m;
  m.n = ds.points.size();
  if (m.n == 0) return m;
  m.mape = mape(y, predictions);
  m.pearson = pearson(y, predictions);
  m.spearman = spearman(y, predictions);
  m.r2 = r_squared(y, predictions);
  m.mse = mse(y, predictions);
  return m;
}

EvalMetrics evaluate(SpeedupPredictor& model, const Dataset& ds) {
  return compute_metrics(predict(model, ds), ds);
}

}  // namespace tcm::model
