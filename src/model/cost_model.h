// The paper's cost model (Section 4.4, Figure 2) plus the two ablation
// architectures of the "Other Neural Network Models Explored" paragraph.
//
//   CostModel      : computation embedding MLP -> recursive loop embedding
//                    (two LSTMs + merge FF per loop node, applied along the
//                    program tree) -> regression MLP. Predicts the speedup
//                    of (program, schedule) relative to the untransformed
//                    program.
//   LstmOnlyModel  : same computation embeddings, but a flat LSTM over the
//                    sequence of computations (no loop hierarchy).
//   FeedForwardModel: concatenated computation embeddings (up to a fixed
//                    number of computations) into the regression MLP.
#pragma once

#include <memory>
#include <string>

#include "model/dataset.h"
#include "nn/inference.h"
#include "nn/modules.h"
#include "nn/ops.h"

namespace tcm::model {

struct ModelConfig {
  FeatureConfig features;
  std::vector<int> embed_hidden = {600, 350, 200};  // paper's appendix A.1
  int embed_size = 180;
  std::vector<int> merge_hidden = {200};
  std::vector<int> regress_hidden = {200, 180};
  float dropout = 0.225f;
  int ff_max_comps = 4;  // FeedForwardModel capacity (the paper used 4)
  // Speedups span several orders of magnitude (0.005..100 in the paper's
  // Figure 4); the regression layer therefore predicts log-speedup and the
  // head exponentiates (bounded), keeping predictions positive by design.
  float exp_head_limit = 16.0f;

  static ModelConfig paper() {
    ModelConfig c;
    c.features = FeatureConfig::paper();
    return c;
  }

  // Reduced widths for minutes-scale experiments; same architecture.
  // Dropout is disabled: the paper's 0.225 regularizes 700-epoch training on
  // 1.8M samples, while at this scale it just prevents the fit (measured in
  // the training-recipe sweep, see EXPERIMENTS.md).
  static ModelConfig fast() {
    ModelConfig c;
    c.features = FeatureConfig::fast();
    c.embed_hidden = {160, 96};
    c.embed_size = 64;
    c.merge_hidden = {80};
    c.regress_hidden = {80, 48};
    c.dropout = 0.0f;
    return c;
  }
};

// Common interface for everything that predicts a batch of speedups; lets
// the trainer, the evaluator, the search and the serving subsystem treat all
// three architectures (and the Halide baseline) uniformly.
class SpeedupPredictor {
 public:
  virtual ~SpeedupPredictor() = default;
  // Returns predictions [B, 1] for a structure-homogeneous batch.
  //
  // Thread-safety contract (relied on by serve::PredictionService): with
  // training=false the call must be safe to run concurrently from multiple
  // threads on one instance — it may only read module parameters and must
  // not draw from `rng` (dropout is inference-disabled, so implementations
  // built from nn:: modules satisfy this by construction). Callers still
  // pass a per-call Rng so a training=true path can never silently share a
  // stream across threads. Concurrent calls during training (parameter
  // updates in flight) are undefined.
  virtual nn::Variable forward_batch(const Batch& batch, bool training, Rng& rng) = 0;

  // Tape-free inference fast path: predictions [B, 1] without constructing
  // any autograd graph. The base implementation falls back to forward_batch
  // (correct but slow); the three architectures override it with fused,
  // allocation-free walks. The returned reference points into `arena` and is
  // valid until the arena's next alloc()/reset() — the call itself resets
  // the arena first, so back-to-back calls on one arena just reuse buffers.
  //
  // Thread-safety: same as forward_batch(training=false) provided every
  // thread passes its own arena. The first call may lazily build a
  // packed-weight plan; that build is internally synchronized. Numerically,
  // infer_batch computes each batch row independently (batch-composition
  // invariant) but is NOT bitwise-identical to the autograd path: the packed
  // LSTM sums gate pre-activations in a different order. Parity is within
  // 1e-5 relative error (asserted by inference_test).
  virtual const nn::Tensor& infer_batch(const Batch& batch, nn::InferenceArena& arena);

  // Drops any cached packed-weight plan. Call after mutating parameters
  // (an optimizer step, load_parameters) and before the next infer_batch;
  // must not run concurrently with infer_batch.
  virtual void invalidate_inference() {}

  virtual nn::Module& module() = 0;
  virtual std::string name() const = 0;
};

class CostModel final : public nn::Module, public SpeedupPredictor {
 public:
  CostModel(const ModelConfig& config, Rng& rng);

  nn::Variable forward_batch(const Batch& batch, bool training, Rng& rng) override;
  const nn::Tensor& infer_batch(const Batch& batch, nn::InferenceArena& arena) override;
  void invalidate_inference() override { plan_.invalidate(); }
  nn::Module& module() override { return *this; }
  std::string name() const override { return "recursive-lstm"; }

  const ModelConfig& config() const { return config_; }

 private:
  struct Plan;

  nn::Variable embed_node(const LoopTreeNode& node,
                          const std::vector<nn::Variable>& comp_embeds, int batch,
                          bool training, Rng& rng) const;
  const nn::Tensor& infer_node(const LoopTreeNode& node,
                               const std::vector<const nn::Tensor*>& comp_embeds, int batch,
                               const Plan& plan, nn::InferenceArena& arena) const;

  ModelConfig config_;
  std::unique_ptr<nn::MLP> comp_embedding_;
  std::unique_ptr<nn::LSTMCell> comps_lstm_;
  std::unique_ptr<nn::LSTMCell> loops_lstm_;
  std::unique_ptr<nn::MLP> merge_;
  std::unique_ptr<nn::MLP> regression_;
  nn::PlanCache<Plan> plan_;
};

class LstmOnlyModel final : public nn::Module, public SpeedupPredictor {
 public:
  LstmOnlyModel(const ModelConfig& config, Rng& rng);

  nn::Variable forward_batch(const Batch& batch, bool training, Rng& rng) override;
  const nn::Tensor& infer_batch(const Batch& batch, nn::InferenceArena& arena) override;
  void invalidate_inference() override { plan_.invalidate(); }
  nn::Module& module() override { return *this; }
  std::string name() const override { return "lstm-only"; }

 private:
  struct Plan;

  ModelConfig config_;
  std::unique_ptr<nn::MLP> comp_embedding_;
  std::unique_ptr<nn::LSTMCell> lstm_;
  std::unique_ptr<nn::MLP> regression_;
  nn::PlanCache<Plan> plan_;
};

class FeedForwardModel final : public nn::Module, public SpeedupPredictor {
 public:
  FeedForwardModel(const ModelConfig& config, Rng& rng);

  // Throws std::invalid_argument when the batch has more computations than
  // ff_max_comps (the architecture's documented limitation).
  nn::Variable forward_batch(const Batch& batch, bool training, Rng& rng) override;
  const nn::Tensor& infer_batch(const Batch& batch, nn::InferenceArena& arena) override;
  void invalidate_inference() override { plan_.invalidate(); }
  nn::Module& module() override { return *this; }
  std::string name() const override { return "feedforward-only"; }

 private:
  struct Plan;

  ModelConfig config_;
  std::unique_ptr<nn::MLP> comp_embedding_;
  std::unique_ptr<nn::MLP> regression_;
  nn::PlanCache<Plan> plan_;
};

// Execution order of computations: a pre-order walk of the tree.
std::vector<int> comps_in_tree_order(const LoopTreeNode& root);
// Allocation-friendly variant: appends into a caller-owned (reusable) vector.
void append_comps_in_tree_order(const LoopTreeNode& root, std::vector<int>& order);

}  // namespace tcm::model
