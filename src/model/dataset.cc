#include "model/dataset.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <stdexcept>

#include "support/rng.h"

namespace tcm::model {
namespace {

template <typename T>
void write_pod(std::ofstream& f, const T& v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& f) {
  T v{};
  f.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!f) throw std::runtime_error("Dataset::load: truncated file");
  return v;
}

void write_tree(std::ofstream& f, const LoopTreeNode& n) {
  write_pod(f, static_cast<std::uint32_t>(n.comps.size()));
  for (int c : n.comps) write_pod(f, static_cast<std::int32_t>(c));
  write_pod(f, static_cast<std::uint32_t>(n.children.size()));
  for (const LoopTreeNode& c : n.children) write_tree(f, c);
}

LoopTreeNode read_tree(std::ifstream& f) {
  LoopTreeNode n;
  const auto ncomps = read_pod<std::uint32_t>(f);
  n.comps.resize(ncomps);
  for (auto& c : n.comps) c = read_pod<std::int32_t>(f);
  const auto nchildren = read_pod<std::uint32_t>(f);
  n.children.reserve(nchildren);
  for (std::uint32_t i = 0; i < nchildren; ++i) n.children.push_back(read_tree(f));
  return n;
}

}  // namespace

DatasetSplit split_by_program(const Dataset& ds, double train_frac, double val_frac,
                              std::uint64_t seed) {
  const std::vector<DataPoint>& points = ds.points;
  std::vector<int> program_ids;
  for (const DataPoint& p : points)
    if (std::find(program_ids.begin(), program_ids.end(), p.program_id) == program_ids.end())
      program_ids.push_back(p.program_id);
  Rng rng(seed);
  rng.shuffle(program_ids);
  const std::size_t n_train = static_cast<std::size_t>(train_frac * program_ids.size());
  const std::size_t n_val = static_cast<std::size_t>(val_frac * program_ids.size());

  std::map<int, int> bucket;  // 0 train, 1 val, 2 test
  for (std::size_t i = 0; i < program_ids.size(); ++i)
    bucket[program_ids[i]] = i < n_train ? 0 : (i < n_train + n_val ? 1 : 2);

  DatasetSplit s;
  for (const DataPoint& p : points) {
    switch (bucket[p.program_id]) {
      case 0: s.train.points.push_back(p); break;
      case 1: s.validation.points.push_back(p); break;
      default: s.test.points.push_back(p); break;
    }
  }
  return s;
}

bool Dataset::save(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f.write("TCMD", 4);
  write_pod(f, static_cast<std::uint32_t>(1));
  write_pod(f, static_cast<std::uint64_t>(points.size()));
  for (const DataPoint& p : points) {
    write_pod(f, static_cast<std::int32_t>(p.program_id));
    write_pod(f, p.speedup);
    write_pod(f, static_cast<std::uint32_t>(p.feats.comp_vectors.size()));
    for (const auto& v : p.feats.comp_vectors) {
      write_pod(f, static_cast<std::uint32_t>(v.size()));
      f.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(float)));
    }
    write_tree(f, p.feats.root);
  }
  return static_cast<bool>(f);
}

Dataset Dataset::load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("Dataset::load: cannot open " + path);
  char magic[4];
  f.read(magic, 4);
  if (!f || std::string(magic, 4) != "TCMD") throw std::runtime_error("Dataset::load: bad magic");
  if (read_pod<std::uint32_t>(f) != 1) throw std::runtime_error("Dataset::load: bad version");
  const auto count = read_pod<std::uint64_t>(f);
  Dataset ds;
  ds.points.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    DataPoint p;
    p.program_id = read_pod<std::int32_t>(f);
    p.speedup = read_pod<double>(f);
    const auto ncomps = read_pod<std::uint32_t>(f);
    p.feats.comp_vectors.resize(ncomps);
    for (auto& v : p.feats.comp_vectors) {
      const auto len = read_pod<std::uint32_t>(f);
      v.resize(len);
      f.read(reinterpret_cast<char*>(v.data()),
             static_cast<std::streamsize>(len * sizeof(float)));
      if (!f) throw std::runtime_error("Dataset::load: truncated features");
    }
    p.feats.root = read_tree(f);
    ds.points.push_back(std::move(p));
  }
  return ds;
}

std::vector<Batch> make_batches(const Dataset& ds, int batch_size) {
  if (batch_size <= 0) throw std::invalid_argument("make_batches: batch_size must be positive");
  // Group point indices by program id *and* tree structure: schedules of one
  // program can differ in structure when their fusion decisions differ.
  std::map<int, std::vector<std::vector<std::size_t>>> by_program;
  for (std::size_t i = 0; i < ds.points.size(); ++i) {
    auto& buckets = by_program[ds.points[i].program_id];
    bool placed = false;
    for (auto& bucket : buckets) {
      if (ds.points[bucket.front()].feats.same_structure(ds.points[i].feats)) {
        bucket.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) buckets.push_back({i});
  }
  std::vector<std::vector<std::size_t>> groups;
  for (auto& [pid, buckets] : by_program)
    for (auto& bucket : buckets) groups.push_back(std::move(bucket));

  std::vector<Batch> batches;
  for (const auto& indices : groups) {
    for (std::size_t start = 0; start < indices.size(); start += batch_size) {
      const std::size_t end = std::min(indices.size(), start + batch_size);
      const DataPoint& first = ds.points[indices[start]];
      const int ncomps = static_cast<int>(first.feats.comp_vectors.size());
      const int feat_size =
          ncomps > 0 ? static_cast<int>(first.feats.comp_vectors.front().size()) : 0;
      Batch b;
      b.tree = &first.feats.root;
      b.targets = nn::Tensor(static_cast<int>(end - start), 1);
      for (int c = 0; c < ncomps; ++c)
        b.comp_inputs.emplace_back(static_cast<int>(end - start), feat_size);
      for (std::size_t k = start; k < end; ++k) {
        const DataPoint& p = ds.points[indices[k]];
        if (!p.feats.same_structure(first.feats))
          throw std::logic_error("make_batches: mixed structures within one program id");
        const int row = static_cast<int>(k - start);
        b.targets.at(row, 0) = static_cast<float>(p.speedup);
        for (int c = 0; c < ncomps; ++c) {
          const auto& v = p.feats.comp_vectors[static_cast<std::size_t>(c)];
          for (int j = 0; j < feat_size; ++j)
            b.comp_inputs[static_cast<std::size_t>(c)].at(row, j) =
                v[static_cast<std::size_t>(j)];
        }
        b.point_indices.push_back(indices[k]);
      }
      batches.push_back(std::move(b));
    }
  }
  return batches;
}

Batch make_inference_batch(const std::vector<const FeaturizedProgram*>& rows) {
  if (rows.empty() || rows.front() == nullptr)
    throw std::invalid_argument("make_inference_batch: need at least one row");
  const FeaturizedProgram& first = *rows.front();
  const int b = static_cast<int>(rows.size());
  const int ncomps = static_cast<int>(first.comp_vectors.size());

  Batch batch;
  batch.tree = &first.root;  // aliases rows[0]; caller keeps it alive
  batch.targets = nn::Tensor(b, 1);
  for (int c = 0; c < ncomps; ++c) {
    const int feat_size = static_cast<int>(first.comp_vectors[static_cast<std::size_t>(c)].size());
    nn::Tensor input(b, feat_size);
    for (int row = 0; row < b; ++row) {
      const auto& v = rows[static_cast<std::size_t>(row)]->comp_vectors[
          static_cast<std::size_t>(c)];
      for (int j = 0; j < feat_size; ++j) input.at(row, j) = v[static_cast<std::size_t>(j)];
    }
    batch.comp_inputs.push_back(std::move(input));
  }
  return batch;
}

}  // namespace tcm::model
