#include "model/featurize.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "transforms/apply.h"

namespace tcm::model {
namespace {

float xlog(bool log_transform, double v) {
  if (!log_transform) return static_cast<float>(v);
  const double s = v < 0 ? -1.0 : 1.0;
  return static_cast<float>(s * std::log1p(std::abs(v)));
}

// Per-computation transformation tags, gathered from the schedule in
// *original level coordinates* (fusion does not renumber levels and the
// canonical order guarantees interchange/tile levels refer to the same
// coordinates the featurizer sees).
struct CompTags {
  std::vector<bool> interchanged;
  std::vector<bool> tiled;
  std::vector<std::int64_t> tile_factor;
  std::vector<bool> parallel;
  std::vector<bool> skewed;
  std::vector<std::int64_t> skew_factor;
  std::vector<bool> unimodular;
  // Flattened 3x3 unimodular coefficient matrix; identity when the schedule
  // has no unimodular transform for this computation (a 2x2 transform embeds
  // top-left with [2][2] = 1).
  std::vector<std::int64_t> unimod_coeffs;
  bool unrolled = false;
  std::int64_t unroll_factor = 0;
  bool vectorized = false;
  int vector_width = 0;
};

CompTags gather_tags(int comp_id, int depth, const transforms::Schedule& s) {
  CompTags t;
  t.interchanged.assign(static_cast<std::size_t>(depth), false);
  t.tiled.assign(static_cast<std::size_t>(depth), false);
  t.tile_factor.assign(static_cast<std::size_t>(depth), 0);
  t.parallel.assign(static_cast<std::size_t>(depth), false);
  t.skewed.assign(static_cast<std::size_t>(depth), false);
  t.skew_factor.assign(static_cast<std::size_t>(depth), 0);
  t.unimodular.assign(static_cast<std::size_t>(depth), false);
  t.unimod_coeffs = {1, 0, 0, 0, 1, 0, 0, 0, 1};
  auto in_range = [&](int l) { return l >= 0 && l < depth; };
  for (const auto& i : s.interchanges) {
    if (i.comp != comp_id) continue;
    if (in_range(i.level_a)) t.interchanged[static_cast<std::size_t>(i.level_a)] = true;
    if (in_range(i.level_b)) t.interchanged[static_cast<std::size_t>(i.level_b)] = true;
  }
  for (const auto& sk : s.skews) {
    if (sk.comp != comp_id) continue;
    for (int l : {sk.level_a, sk.level_a + 1}) {
      if (!in_range(l)) continue;
      t.skewed[static_cast<std::size_t>(l)] = true;
      t.skew_factor[static_cast<std::size_t>(l)] = sk.factor;
    }
  }
  for (const auto& u : s.unimodulars) {
    if (u.comp != comp_id) continue;
    const int k = u.coeffs.size() == 9 ? 3 : 2;
    for (int l = u.level; l < u.level + k; ++l)
      if (in_range(l)) t.unimodular[static_cast<std::size_t>(l)] = true;
    t.unimod_coeffs = {1, 0, 0, 0, 1, 0, 0, 0, 1};
    for (int r = 0; r < k; ++r)
      for (int c = 0; c < k; ++c)
        t.unimod_coeffs[static_cast<std::size_t>(r * 3 + c)] =
            u.coeffs[static_cast<std::size_t>(r * k + c)];
  }
  for (const auto& ti : s.tiles) {
    if (ti.comp != comp_id) continue;
    for (std::size_t k = 0; k < ti.sizes.size(); ++k) {
      const int l = ti.level + static_cast<int>(k);
      if (!in_range(l)) continue;
      t.tiled[static_cast<std::size_t>(l)] = true;
      t.tile_factor[static_cast<std::size_t>(l)] = ti.sizes[k];
    }
  }
  for (const auto& u : s.unrolls) {
    if (u.comp != comp_id) continue;
    t.unrolled = true;
    t.unroll_factor = u.factor;
  }
  for (const auto& p : s.parallels) {
    if (p.comp != comp_id) continue;
    if (in_range(p.level)) t.parallel[static_cast<std::size_t>(p.level)] = true;
  }
  for (const auto& v : s.vectorizes) {
    if (v.comp != comp_id) continue;
    t.vectorized = true;
    t.vector_width = v.width;
  }
  return t;
}

}  // namespace

int LoopTreeNode::node_count() const {
  int n = 1;
  for (const LoopTreeNode& c : children) n += c.node_count();
  return n;
}

std::optional<FeaturizedProgram> featurize(const ir::Program& program,
                                           const transforms::Schedule& schedule,
                                           const FeatureConfig& config, std::string* error) {
  auto fail = [&](const std::string& why) -> std::optional<FeaturizedProgram> {
    if (error) *error = why;
    return std::nullopt;
  };

  // Apply only the fusion part: the tree structure the model sees is the
  // original structure with fusions performed (Section 4.1).
  transforms::Schedule fusion_only;
  fusion_only.fusions = schedule.fusions;
  transforms::ApplyResult fused = transforms::try_apply_schedule(program, fusion_only);
  if (!fused.ok) return fail("featurize: fusion not applicable: " + fused.error);
  const ir::Program& fp = fused.program;

  FeaturizedProgram out;
  out.comp_vectors.resize(fp.comps.size());

  // Tags per computation come from the schedule; access matrices and op
  // counts come from the fused program (identical to the original: fusion
  // does not rewrite accesses).
  for (const ir::Computation& c : fp.comps) {
    const std::vector<int> nest = fp.nest_of(c.id);
    const int depth = static_cast<int>(nest.size());
    if (depth > config.max_depth)
      return fail("featurize: " + c.name + " exceeds max_depth " +
                  std::to_string(config.max_depth));
    const auto loads = c.rhs.loads();
    if (static_cast<int>(loads.size()) > config.max_accesses)
      return fail("featurize: " + c.name + " exceeds max_accesses " +
                  std::to_string(config.max_accesses));
    const ir::Buffer& store_buf = fp.buffer(c.store.buffer_id);
    if (store_buf.rank() > config.max_rank)
      return fail("featurize: " + c.name + " store rank exceeds max_rank");
    for (const ir::BufferAccess& a : loads)
      if (a.matrix.rank() > config.max_rank)
        return fail("featurize: " + c.name + " access rank exceeds max_rank");

    const CompTags tags = gather_tags(c.id, depth, schedule);
    std::vector<float>& v = out.comp_vectors[static_cast<std::size_t>(c.id)];
    v.reserve(static_cast<std::size_t>(config.computation_vector_size()));
    const bool lt = config.log_transform;

    // --- loop nest vector ---------------------------------------------------
    for (int l = 0; l < config.max_depth; ++l) {
      if (l < depth) {
        const ir::LoopNode& loop = fp.loop(nest[static_cast<std::size_t>(l)]);
        const bool fused_tag = loop.tag_fused;
        v.push_back(xlog(lt, static_cast<double>(loop.iter.extent)));  // upper bound
        v.push_back(0.0f);                                             // lower bound (canonical)
        v.push_back(fp.is_reduction_level(c.id, l) ? 1.0f : 0.0f);
        v.push_back(fused_tag ? 1.0f : 0.0f);
        v.push_back(tags.interchanged[static_cast<std::size_t>(l)] ? 1.0f : 0.0f);
        v.push_back(tags.tiled[static_cast<std::size_t>(l)] ? 1.0f : 0.0f);
        v.push_back(xlog(lt, static_cast<double>(tags.tile_factor[static_cast<std::size_t>(l)])));
        const bool innermost = (l == depth - 1);
        v.push_back(innermost && tags.unrolled ? 1.0f : 0.0f);
        v.push_back(innermost ? xlog(lt, static_cast<double>(tags.unroll_factor)) : 0.0f);
        if (config.include_par_vec_tags) {
          v.push_back(tags.parallel[static_cast<std::size_t>(l)] ? 1.0f : 0.0f);
          v.push_back(innermost && tags.vectorized ? 1.0f : 0.0f);
          v.push_back(innermost ? xlog(lt, static_cast<double>(tags.vector_width)) : 0.0f);
        } else {
          v.push_back(0.0f);
          v.push_back(0.0f);
          v.push_back(0.0f);
        }
        v.push_back(tags.skewed[static_cast<std::size_t>(l)] ? 1.0f : 0.0f);
        v.push_back(xlog(lt, static_cast<double>(tags.skew_factor[static_cast<std::size_t>(l)])));
        v.push_back(tags.unimodular[static_cast<std::size_t>(l)] ? 1.0f : 0.0f);
      } else {
        for (int k = 0; k < FeatureConfig::kPerLoop; ++k) v.push_back(0.0f);
      }
    }

    // --- assignment vector: left-hand side -----------------------------------
    v.push_back(xlog(lt, static_cast<double>(store_buf.rank())));
    for (int r = 0; r < config.max_rank; ++r)
      v.push_back(r < store_buf.rank()
                      ? xlog(lt, static_cast<double>(store_buf.dims[static_cast<std::size_t>(r)]))
                      : 0.0f);

    // --- assignment vector: memory accesses ----------------------------------
    for (int a = 0; a < config.max_accesses; ++a) {
      if (a < static_cast<int>(loads.size())) {
        const ir::BufferAccess& acc = loads[static_cast<std::size_t>(a)];
        v.push_back(1.0f);  // present
        v.push_back(xlog(lt, static_cast<double>(acc.buffer_id)));
        for (int r = 0; r < config.max_rank; ++r) {
          for (int col = 0; col <= config.max_depth; ++col) {
            // The constant column sits at index `depth` of the real matrix
            // but at `max_depth` of the padded layout.
            float feat = 0.0f;
            if (r < acc.matrix.rank()) {
              if (col < depth) feat = xlog(lt, static_cast<double>(acc.matrix.at(r, col)));
              else if (col == config.max_depth)
                feat = xlog(lt, static_cast<double>(acc.matrix.constant(r)));
            }
            v.push_back(feat);
          }
        }
      } else {
        for (int k = 0; k < config.per_access(); ++k) v.push_back(0.0f);
      }
    }

    // --- operation counts -----------------------------------------------------
    const ir::OpCounts ops = c.rhs.op_counts();
    v.push_back(xlog(lt, ops.adds));
    v.push_back(xlog(lt, ops.muls));
    v.push_back(xlog(lt, ops.subs));
    v.push_back(xlog(lt, ops.divs));

    // --- unimodular coefficient matrix ---------------------------------------
    for (std::int64_t coeff : tags.unimod_coeffs)
      v.push_back(xlog(lt, static_cast<double>(coeff)));

    if (static_cast<int>(v.size()) != config.computation_vector_size())
      return fail("featurize: internal size mismatch");
  }

  // --- tree structure ---------------------------------------------------------
  std::function<LoopTreeNode(int)> build = [&](int loop_id) {
    LoopTreeNode node;
    for (const ir::BodyItem& item : fp.loop(loop_id).body) {
      if (item.kind == ir::BodyItem::Kind::Loop) node.children.push_back(build(item.index));
      else node.comps.push_back(item.index);
    }
    return node;
  };
  for (int r : fp.roots) out.root.children.push_back(build(r));
  return out;
}

}  // namespace tcm::model
