// Training and evaluation of speedup predictors, using the paper's recipe:
// MAPE loss, AdamW (weight decay 0.0075), One Cycle learning-rate schedule,
// structure-grouped batches of 32.
#pragma once

#include <cstdint>
#include <vector>

#include "model/cost_model.h"
#include "model/dataset.h"

namespace tcm::model {

enum class TrainLoss {
  kMape,      // the paper's loss; gradients scale as 1/y
  kLogRatio,  // |log(pred/y)|: equivalent near convergence, better conditioned
};

struct TrainOptions {
  int epochs = 60;
  int batch_size = 32;        // the paper's batch size
  double max_lr = 1e-3;       // the paper's One Cycle peak
  double weight_decay = 0.0075;
  double pct_start = 0.3;
  double max_grad_norm = 0.0;  // 0 disables clipping (clipping measurably slows
                               // convergence of this model; see EXPERIMENTS.md)
  TrainLoss loss = TrainLoss::kLogRatio;
  std::uint64_t seed = 1234;
  bool verbose = false;
  int log_every = 10;         // epochs between progress lines when verbose
};

struct EvalMetrics {
  double mape = 0;
  double pearson = 0;
  double spearman = 0;
  double r2 = 0;
  double mse = 0;
  std::size_t n = 0;
};

struct TrainResult {
  std::vector<double> train_loss;  // mean batch loss per epoch
  std::vector<double> val_mape;    // empty when no validation set given
};

// Trains in place. `validation` may be null.
TrainResult train_model(SpeedupPredictor& model, const Dataset& train, const Dataset* validation,
                        const TrainOptions& options);

// Model predictions for every point, in dataset order.
std::vector<double> predict(SpeedupPredictor& model, const Dataset& ds, int batch_size = 64);

// MAPE / Pearson / Spearman / R^2 / MSE of the model on a dataset.
EvalMetrics evaluate(SpeedupPredictor& model, const Dataset& ds);

// Metrics between externally computed predictions and the dataset targets.
EvalMetrics compute_metrics(const std::vector<double>& predictions, const Dataset& ds);

}  // namespace tcm::model
