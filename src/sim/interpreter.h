// Reference interpreter: actually executes a program on concrete buffers.
//
// This is the semantics ground truth of the project. It is used by tests to
// verify that applying any legal schedule leaves program results unchanged
// (the property Tiramisu's legality layer guarantees), and by small-scale
// validation of the machine model. It is intentionally simple and is not
// meant to be fast; benchmarks-scale programs go through the MachineModel.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/program.h"
#include "support/rng.h"

namespace tcm::sim {

// One dense row-major storage per buffer, indexed by buffer id.
using BufferData = std::vector<std::vector<double>>;

class Interpreter {
 public:
  // Allocates storage for every buffer: inputs are filled with deterministic
  // small integers (derived from `seed`), outputs are zero-initialized
  // (reductions accumulate from zero).
  static BufferData make_buffers(const ir::Program& p, std::uint64_t seed);

  // Executes the program, updating non-input buffers in `bufs`.
  // Loop annotations (parallel / vectorize / unroll) do not affect results.
  static void run(const ir::Program& p, BufferData& bufs);

  // Convenience: make_buffers + run, returning the final state.
  static BufferData execute(const ir::Program& p, std::uint64_t seed);

  // Maximum |a-b| / max(1, |a|, |b|) over all non-input buffer elements.
  // Used to compare the results of two semantically equal programs.
  static double max_rel_difference(const ir::Program& p, const BufferData& a,
                                   const BufferData& b);
};

}  // namespace tcm::sim
