#include "sim/machine_model.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>
#include <vector>

namespace tcm::sim {
namespace {

constexpr double kElemBytes = 8.0;

// Per-level context of a computation's nest.
struct NestInfo {
  std::vector<int> loop_ids;
  std::vector<double> eff_extent;   // effective (average) trip count per level
  int parallel_level = -1;          // outermost parallel level, -1 if none
  int vector_width = 0;             // innermost annotation
  int unroll = 0;                   // innermost annotation
};

NestInfo analyze_nest(const ir::Program& p, int comp_id) {
  NestInfo info;
  info.loop_ids = p.nest_of(comp_id);
  info.eff_extent.resize(info.loop_ids.size());
  // Position of each loop id within the nest for tail lookups.
  std::map<int, std::size_t> pos;
  for (std::size_t i = 0; i < info.loop_ids.size(); ++i) pos[info.loop_ids[i]] = i;
  for (std::size_t i = 0; i < info.loop_ids.size(); ++i) {
    const ir::LoopNode& l = p.loop(info.loop_ids[i]);
    double e = static_cast<double>(l.iter.extent);
    if (l.tail_of != -1 && pos.count(l.tail_of)) {
      // Average trip count of a tail-bounded inner tile loop.
      const double outer_trips = static_cast<double>(p.loop(l.tail_of).iter.extent);
      e = static_cast<double>(l.orig_extent) / std::max(1.0, outer_trips);
    } else if (l.skew_of != -1 && !l.skew_is_sum && l.parent == l.skew_of) {
      // Wave-mode inner partner: the window over the diagonal t averages
      // N*M / E_t iterations, keeping the nest's total at N*M.
      const ir::LoopNode& sum = p.loop(l.skew_of);
      const double n = static_cast<double>(l.iter.extent);
      const double m = static_cast<double>(p.skew_orig_inner_extent(sum));
      e = n * m / std::max(1.0, static_cast<double>(sum.iter.extent));
    }
    info.eff_extent[i] = std::max(1.0, e);
    if (l.parallel && info.parallel_level == -1) info.parallel_level = static_cast<int>(i);
  }
  if (!info.loop_ids.empty()) {
    const ir::LoopNode& inner = p.loop(info.loop_ids.back());
    info.vector_width = inner.vector_width;
    info.unroll = inner.unroll;
  }
  return info;
}

// Row-major byte strides of a buffer.
std::vector<double> buffer_strides(const ir::Buffer& b) {
  std::vector<double> s(b.dims.size(), kElemBytes);
  for (int i = static_cast<int>(b.dims.size()) - 2; i >= 0; --i)
    s[static_cast<std::size_t>(i)] = s[static_cast<std::size_t>(i + 1)] *
                                     static_cast<double>(b.dims[static_cast<std::size_t>(i + 1)]);
  return s;
}

// Byte stride of the access per step of loop column `col`.
double access_stride(const ir::AccessMatrix& m, const std::vector<double>& bstrides, int col) {
  double stride = 0;
  for (int r = 0; r < m.rank(); ++r)
    stride += static_cast<double>(m.at(r, col)) * bstrides[static_cast<std::size_t>(r)];
  return std::abs(stride);
}

// Bytes touched by the access during one execution of the sub-nest starting
// at `from_level` (product of per-dimension index spans).
double footprint_bytes(const ir::AccessMatrix& m, const NestInfo& nest, int from_level) {
  double bytes = kElemBytes;
  for (int r = 0; r < m.rank(); ++r) {
    double span = 1.0;
    for (int c = from_level; c < m.depth(); ++c) {
      const double coef = std::abs(static_cast<double>(m.at(r, c)));
      if (coef == 0.0) continue;
      span += coef * (nest.eff_extent[static_cast<std::size_t>(c)] - 1.0);
    }
    bytes *= span;
  }
  return bytes;
}

// True iff the access does not depend on loop column `col`.
bool invariant_to(const ir::AccessMatrix& m, int col) { return m.invariant_to(col); }

// Latency of the smallest cache level whose (80%-usable) capacity holds
// `bytes`; memory latency otherwise.
double fit_latency(const MachineSpec& spec, double bytes) {
  const double usable = 0.8;
  if (bytes <= usable * static_cast<double>(spec.l1.size_bytes)) return spec.l1.latency_cycles;
  if (bytes <= usable * static_cast<double>(spec.l2.size_bytes)) return spec.l2.latency_cycles;
  if (bytes <= usable * static_cast<double>(spec.l3.size_bytes)) return spec.l3.latency_cycles;
  return spec.mem_latency_cycles;
}

double prefetch_factor(const MachineSpec& spec, double stride_bytes) {
  if (stride_bytes <= static_cast<double>(spec.line_bytes)) return spec.prefetch_factor_seq;
  if (stride_bytes <= 4.0 * static_cast<double>(spec.line_bytes))
    return spec.prefetch_factor_strided;
  return 1.0;
}

struct AccessCost {
  double cycles_per_iter = 0;
  double stride_inner = 0;
};

// Key identifying a group-reuse class: same buffer, same linear part.
std::string linear_key(const ir::BufferAccess& a) {
  std::string key = std::to_string(a.buffer_id) + "|";
  for (int r = 0; r < a.matrix.rank(); ++r)
    for (int c = 0; c < a.matrix.depth(); ++c) key += std::to_string(a.matrix.at(r, c)) + ",";
  return key;
}

class CompCost {
 public:
  CompCost(const MachineSpec& spec, const ir::Program& p, int comp_id)
      : spec_(spec), p_(p), comp_(p.comp(comp_id)), nest_(analyze_nest(p, comp_id)) {
    iters_ = 1.0;
    for (double e : nest_.eff_extent) iters_ *= e;
  }

  double arith_cycles_per_iter() const {
    const ir::OpCounts ops = comp_.rhs.op_counts();
    double cycles = static_cast<double>(ops.adds + ops.subs + ops.muls) * spec_.cycles_per_flop +
                    static_cast<double>(ops.divs) * spec_.cycles_per_div;
    // A store counts as one op of bookkeeping.
    cycles += 0.5;

    const int depth = static_cast<int>(nest_.eff_extent.size());
    const bool reduction_inner =
        depth > 0 && comp_.store.matrix.invariant_to(depth - 1);

    if (nest_.vector_width > 1) {
      const int w = std::min(nest_.vector_width, spec_.max_vector_width);
      if (vector_friendly()) {
        double divisor = static_cast<double>(w) * spec_.vector_efficiency;
        if (reduction_inner) divisor *= 0.6;  // horizontal-reduction overhead
        cycles /= std::max(1.0, divisor);
      } else {
        cycles /= 1.3;  // gather/scatter codegen: marginal win
      }
    }
    if (nest_.unroll > 1) {
      const double u = static_cast<double>(nest_.unroll);
      // Unrolling breaks reduction dependence chains and improves ILP, with
      // diminishing returns and an instruction-cache penalty for huge bodies.
      const double ilp = reduction_inner ? 1.0 + 0.22 * std::log2(u) : 1.0 + 0.06 * std::log2(u);
      cycles /= ilp;
      const double body_ops = static_cast<double>(comp_.rhs.op_counts().total() + 1) * u;
      if (body_ops > 128.0) cycles *= 1.0 + std::min(0.6, (body_ops - 128.0) / 512.0);
    }
    return cycles;
  }

  bool vector_friendly() const {
    const int inner = static_cast<int>(nest_.eff_extent.size()) - 1;
    auto ok = [&](const ir::BufferAccess& a) {
      const auto bs = buffer_strides(p_.buffer(a.buffer_id));
      const double s = access_stride(a.matrix, bs, inner);
      return s <= kElemBytes + 0.5;
    };
    if (!ok(comp_.store)) return false;
    for (const ir::BufferAccess& a : comp_.rhs.loads())
      if (!ok(a)) return false;
    return true;
  }

  double mem_cycles_per_iter() const {
    double total = 0;
    std::map<std::string, int> group_seen;
    for (const ir::BufferAccess& a : comp_.rhs.loads()) {
      const bool follower = group_seen[linear_key(a)]++ > 0;
      total += access_cost(a, /*is_store=*/false, follower);
    }
    total += access_cost(comp_.store, /*is_store=*/true, /*follower=*/false);
    return total;
  }

  double overhead_cycles_total() const {
    // Per-level bookkeeping: every executed iteration of every loop pays the
    // loop overhead; unrolling amortizes the innermost one.
    double cycles = 0;
    double outer_iters = 1.0;
    for (std::size_t l = 0; l < nest_.eff_extent.size(); ++l) {
      double per_iter = spec_.loop_overhead_cycles;
      if (l + 1 == nest_.eff_extent.size()) {
        if (nest_.unroll > 1) per_iter /= static_cast<double>(nest_.unroll);
        if (nest_.vector_width > 1) per_iter /= static_cast<double>(nest_.vector_width);
      }
      outer_iters *= nest_.eff_extent[l];
      cycles += outer_iters * per_iter;
    }
    return cycles;
  }

  // Total cycles for this computation including parallel scaling.
  double total_cycles(double* arith_out = nullptr, double* mem_out = nullptr,
                      double* overhead_out = nullptr, double* spawn_out = nullptr) const {
    const double arith = arith_cycles_per_iter() * iters_;
    const double mem = mem_cycles_per_iter() * iters_;
    const double overhead = overhead_cycles_total();
    if (arith_out) *arith_out += arith;
    if (mem_out) *mem_out += mem;
    if (overhead_out) *overhead_out += overhead;

    if (nest_.parallel_level < 0) return arith + mem + overhead;

    const int lp = nest_.parallel_level;
    const double e_p = nest_.eff_extent[static_cast<std::size_t>(lp)];
    double outer = 1.0;
    for (int l = 0; l < lp; ++l) outer *= nest_.eff_extent[static_cast<std::size_t>(l)];
    const double spawn = outer * spec_.parallel_spawn_cycles;
    if (spawn_out) *spawn_out += spawn;

    // Ceil-based load balance across cores.
    const double batches = std::ceil(e_p / static_cast<double>(spec_.cores));
    const double speedup_cpu = std::max(1.0, e_p / batches * spec_.parallel_efficiency);
    const double speedup_mem =
        std::min(speedup_cpu, static_cast<double>(spec_.mem_parallel_cores));

    // Overhead above the parallel loop stays sequential; approximate its
    // share by the outer iteration count (small).
    const double seq_overhead = outer * spec_.loop_overhead_cycles;
    const double par_overhead = std::max(0.0, overhead - seq_overhead);
    return seq_overhead + spawn + (arith + par_overhead) / speedup_cpu + mem / speedup_mem;
  }

 private:
  double access_cost(const ir::BufferAccess& a, bool is_store, bool follower) const {
    const ir::Buffer& buf = p_.buffer(a.buffer_id);
    const auto bstrides = buffer_strides(buf);
    const int depth = static_cast<int>(nest_.eff_extent.size());
    const int inner = depth - 1;
    const double stride = depth > 0 ? access_stride(a.matrix, bstrides, inner) : 0.0;
    const double line = static_cast<double>(spec_.line_bytes);

    // Invariant to the innermost loop: held in a register across iterations;
    // refetches amortize over the innermost trip count.
    if (stride == 0.0) {
      const double fetch_lat = fit_latency(spec_, footprint_bytes(a.matrix, nest_, 0));
      const double e_inner = depth > 0 ? nest_.eff_extent[static_cast<std::size_t>(inner)] : 1.0;
      return std::max(0.25, fetch_lat / std::max(1.0, e_inner)) * (is_store ? 0.7 : 1.0);
    }

    const double line_refs_per_iter = std::min(1.0, stride / line);
    const double intra_frac = 1.0 - line_refs_per_iter;
    double intra_cost = 1.0;  // pipelined L1 element hits within a line
    if (nest_.vector_width > 1 && stride <= kElemBytes + 0.5)
      intra_cost /= static_cast<double>(std::min(nest_.vector_width, spec_.max_vector_width));

    if (follower) {
      // Group reuse (stencil neighbours): lines were brought in by the group
      // leader; pay L1.
      return (line_refs_per_iter * spec_.l1.latency_cycles + intra_frac * intra_cost) *
             (is_store ? 0.7 : 1.0);
    }

    // Temporal reuse: innermost loop the access is invariant to.
    double reuse_tile_bytes = -1.0;
    for (int c = depth - 1; c >= 0; --c) {
      if (nest_.eff_extent[static_cast<std::size_t>(c)] <= 1.0) continue;
      if (invariant_to(a.matrix, c)) {
        reuse_tile_bytes = footprint_bytes(a.matrix, nest_, c + 1);
        break;
      }
    }

    // Where do compulsory (first-touch) fetches come from?
    double home_lat = spec_.mem_latency_cycles;
    if (!buf.is_input) {
      // Produced earlier in this program: served from the smallest level
      // holding the data live between producer and consumer.
      home_lat = fit_latency(spec_, producer_consumer_bytes(a));
    }

    const double total_bytes = footprint_bytes(a.matrix, nest_, 0);
    const double distinct_lines =
        std::max(1.0, total_bytes / (stride <= line ? line : kElemBytes));
    const double total_line_refs = std::max(1.0, iters_ * line_refs_per_iter);
    const double reuse_frac =
        std::clamp(1.0 - distinct_lines / total_line_refs, 0.0, 1.0);

    double reuse_lat;
    if (reuse_tile_bytes >= 0.0) {
      reuse_lat = std::min(home_lat, fit_latency(spec_, reuse_tile_bytes));
    } else {
      // No temporal reuse within the nest: repeats (if any) stream again.
      reuse_lat = home_lat * prefetch_factor(spec_, stride);
    }
    const double stream_lat = home_lat * prefetch_factor(spec_, stride);
    const double line_cost = reuse_frac * reuse_lat + (1.0 - reuse_frac) * stream_lat;
    const double cost = line_refs_per_iter * line_cost + intra_frac * intra_cost;
    return cost * (is_store ? 0.7 : 1.0);
  }

  // Bytes of `a`'s buffer live between its producer and this consumer: the
  // footprint of the access below the deepest loop shared with the producer
  // (whole buffer when they share no loop).
  double producer_consumer_bytes(const ir::BufferAccess& a) const {
    const ir::Buffer& buf = p_.buffer(a.buffer_id);
    int best_shared = -1;
    for (const ir::Computation& other : p_.comps) {
      if (other.id == comp_.id || other.store.buffer_id != a.buffer_id) continue;
      const std::vector<int> other_nest = p_.nest_of(other.id);
      int shared = 0;
      while (shared < static_cast<int>(nest_.loop_ids.size()) &&
             shared < static_cast<int>(other_nest.size()) &&
             nest_.loop_ids[static_cast<std::size_t>(shared)] ==
                 other_nest[static_cast<std::size_t>(shared)])
        ++shared;
      best_shared = std::max(best_shared, shared);
    }
    if (best_shared <= 0) return static_cast<double>(buf.num_elements()) * kElemBytes;
    return footprint_bytes(a.matrix, nest_, best_shared);
  }

  const MachineSpec& spec_;
  const ir::Program& p_;
  const ir::Computation& comp_;
  NestInfo nest_;
  double iters_ = 1.0;
};

}  // namespace

MachineModel::MachineModel(MachineSpec spec) : spec_(spec) {}

double MachineModel::comp_cycles(const ir::Program& p, int comp_id) const {
  return CompCost(spec_, p, comp_id).total_cycles();
}

MachineModel::Breakdown MachineModel::cost_breakdown(const ir::Program& p) const {
  Breakdown b;
  for (const ir::Computation& c : p.comps) {
    CompCost cc(spec_, p, c.id);
    b.total_cycles +=
        cc.total_cycles(&b.arith_cycles, &b.mem_cycles, &b.overhead_cycles, &b.spawn_cycles);
  }
  return b;
}

double MachineModel::execution_time_seconds(const ir::Program& p) const {
  const Breakdown b = cost_breakdown(p);
  return b.total_cycles / (spec_.freq_ghz * 1e9);
}

}  // namespace tcm::sim
