// Trace-driven set-associative cache hierarchy simulator.
//
// Used to validate the analytical MachineModel on small programs: both must
// agree on qualitative questions such as "does tiling this matmul reduce
// misses" or "is stride-1 traversal friendlier than strided traversal".
// It can also serve as a slower, more precise executor backend for research.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/program.h"
#include "sim/machine_spec.h"

namespace tcm::sim {

struct CacheConfig {
  std::int64_t size_bytes = 32 * 1024;
  int associativity = 8;
  int line_bytes = 64;
};

// One set-associative LRU cache level.
class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  // Returns true on hit; on miss the line is installed (evicting LRU).
  bool access(std::uint64_t addr);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  const CacheConfig& config() const { return config_; }

 private:
  CacheConfig config_;
  int num_sets_ = 0;
  // tags_[set * assoc + way]; lru_[same] is a per-set logical clock.
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> lru_;
  std::vector<bool> valid_;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

// Inclusive three-level hierarchy.
class CacheHierarchy {
 public:
  // Derives L1/L2/L3 configs from a MachineSpec (8/8/16-way).
  explicit CacheHierarchy(const MachineSpec& spec);

  // Simulates a load/store of 8 bytes; returns the level that served it:
  // 0 = L1, 1 = L2, 2 = L3, 3 = memory.
  int access(std::uint64_t addr);

  const Cache& level(int i) const { return levels_.at(static_cast<std::size_t>(i)); }

  // Total simulated latency in cycles, using the spec's per-level latencies.
  double total_latency_cycles() const { return latency_cycles_; }
  std::uint64_t total_accesses() const { return accesses_; }

 private:
  std::vector<Cache> levels_;
  std::vector<double> latencies_;
  double latency_cycles_ = 0.0;
  std::uint64_t accesses_ = 0;
};

// Walks the (transformed) program like the interpreter, but instead of
// computing values it feeds every load/store address into the hierarchy.
// Buffers are laid out consecutively with 4 KiB alignment. Simulation stops
// after `max_accesses` addresses (0 = unlimited); returns the number of
// simulated accesses.
std::uint64_t simulate_trace(const ir::Program& p, CacheHierarchy& hierarchy,
                             std::uint64_t max_accesses = 0);

}  // namespace tcm::sim
