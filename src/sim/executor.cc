#include "sim/executor.h"

#include <algorithm>
#include <vector>

#include "support/stats.h"

namespace tcm::sim {

Executor::Executor(MachineModel model, ExecutorOptions options, std::uint64_t seed)
    : model_(std::move(model)), options_(options), rng_(seed) {}

double Executor::exact_seconds(const ir::Program& p) const {
  return model_.execution_time_seconds(p);
}

double Executor::measure_seconds(const ir::Program& p) {
  const double exact = exact_seconds(p);
  if (options_.noise_sigma <= 0.0 || options_.runs_per_measurement <= 1) return exact;
  std::vector<double> runs(static_cast<std::size_t>(options_.runs_per_measurement));
  for (double& r : runs) r = exact * rng_.lognormal(0.0, options_.noise_sigma);
  return median(runs);
}

double Executor::measure_speedup(const ir::Program& p, const transforms::Schedule& s) {
  const ir::Program transformed = transforms::apply_schedule(p, s);
  const double base = measure_seconds(p);
  const double opt = measure_seconds(transformed);
  return base / opt;
}

double Executor::evaluation_cost_seconds(double measured_seconds) const {
  return options_.compile_overhead_seconds +
         static_cast<double>(options_.runs_per_measurement) * measured_seconds;
}

}  // namespace tcm::sim
