// Analytical CPU execution-time model: the simulated hardware of this
// reproduction (see DESIGN.md, substitution table).
//
// The model estimates the cycles a transformed program takes on the
// MachineSpec CPU. It is deliberately *not* visible to the learned cost
// model: the DNN only sees (program characterization, schedule tags,
// measured speedup) triplets, exactly as the paper's model only saw
// measurements from the Xeon cluster.
//
// The estimate walks each computation's loop nest and combines:
//   - arithmetic cost (adds/subs/muls at 1 cycle, divs at 8), reduced by
//     vectorization on stride-1 bodies and by unrolling on reduction chains;
//   - memory cost per access, from an affine footprint/reuse analysis:
//       * spatial locality: per-iteration line-fetch rate from the byte
//         stride of the access with respect to the innermost loop, with a
//         hardware-prefetch discount for small constant strides;
//       * temporal reuse: the innermost loop the access is invariant to
//         defines a reuse tile; the smallest cache level that fits the tile
//         serves the reused portion (this is what makes tiling and
//         interchange matter);
//       * group reuse: accesses that differ only by constant offsets
//         (stencils) share lines, followers pay L1;
//       * producer-consumer locality: loads of buffers written earlier are
//         served by the smallest level that fits the data live between
//         producer and consumer; fusion shrinks that set (this is what makes
//         fusion matter);
//   - loop bookkeeping overhead per iteration, reduced by unrolling;
//   - parallelization: work below the parallel loop is divided across cores
//     with ceil-based load balancing; the memory-bound share saturates at a
//     bandwidth core count; each entry into the region pays a spawn cost
//     (parallelizing small or inner loops therefore *hurts*, producing the
//     sub-1 speedups the paper's Figure 4/5 rely on).
#pragma once

#include "ir/program.h"
#include "sim/machine_spec.h"

namespace tcm::sim {

class MachineModel {
 public:
  explicit MachineModel(MachineSpec spec = MachineSpec::xeon_e5_2680v3());

  const MachineSpec& spec() const { return spec_; }

  struct Breakdown {
    double arith_cycles = 0;
    double mem_cycles = 0;
    double overhead_cycles = 0;
    double spawn_cycles = 0;
    double total_cycles = 0;  // after parallel scaling; not the sum of parts
  };

  // Estimated wall-clock seconds of one execution of the program.
  double execution_time_seconds(const ir::Program& p) const;

  // Cycle breakdown (pre-parallel components plus the final total).
  Breakdown cost_breakdown(const ir::Program& p) const;

  // Estimated cycles for a single computation (with its schedule context).
  double comp_cycles(const ir::Program& p, int comp_id) const;

 private:
  MachineSpec spec_;
};

}  // namespace tcm::sim
