#include "sim/cache_sim.h"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace tcm::sim {

Cache::Cache(const CacheConfig& config) : config_(config) {
  if (config.size_bytes <= 0 || config.associativity <= 0 || config.line_bytes <= 0)
    throw std::invalid_argument("Cache: bad config");
  const std::int64_t lines = config.size_bytes / config.line_bytes;
  num_sets_ = static_cast<int>(lines / config.associativity);
  if (num_sets_ <= 0) num_sets_ = 1;
  const std::size_t slots =
      static_cast<std::size_t>(num_sets_) * static_cast<std::size_t>(config.associativity);
  tags_.assign(slots, 0);
  lru_.assign(slots, 0);
  valid_.assign(slots, false);
}

bool Cache::access(std::uint64_t addr) {
  const std::uint64_t line = addr / static_cast<std::uint64_t>(config_.line_bytes);
  const std::uint64_t set = line % static_cast<std::uint64_t>(num_sets_);
  const std::uint64_t tag = line / static_cast<std::uint64_t>(num_sets_);
  const std::size_t base = static_cast<std::size_t>(set) *
                           static_cast<std::size_t>(config_.associativity);
  ++clock_;
  std::size_t victim = base;
  std::uint64_t victim_age = UINT64_MAX;
  for (int w = 0; w < config_.associativity; ++w) {
    const std::size_t slot = base + static_cast<std::size_t>(w);
    if (valid_[slot] && tags_[slot] == tag) {
      lru_[slot] = clock_;
      ++hits_;
      return true;
    }
    const std::uint64_t age = valid_[slot] ? lru_[slot] : 0;
    if (age < victim_age) {
      victim_age = age;
      victim = slot;
    }
  }
  ++misses_;
  tags_[victim] = tag;
  lru_[victim] = clock_;
  valid_[victim] = true;
  return false;
}

CacheHierarchy::CacheHierarchy(const MachineSpec& spec) {
  levels_.emplace_back(CacheConfig{spec.l1.size_bytes, 8, spec.line_bytes});
  levels_.emplace_back(CacheConfig{spec.l2.size_bytes, 8, spec.line_bytes});
  levels_.emplace_back(CacheConfig{spec.l3.size_bytes, 16, spec.line_bytes});
  latencies_ = {spec.l1.latency_cycles, spec.l2.latency_cycles, spec.l3.latency_cycles,
                spec.mem_latency_cycles};
}

int CacheHierarchy::access(std::uint64_t addr) {
  ++accesses_;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i].access(addr)) {
      latency_cycles_ += latencies_[i];
      return static_cast<int>(i);
    }
  }
  latency_cycles_ += latencies_.back();
  return static_cast<int>(levels_.size());
}

namespace {

struct TraceContext {
  const ir::Program& p;
  CacheHierarchy& hierarchy;
  std::uint64_t max_accesses = 0;
  std::uint64_t count = 0;
  bool stopped = false;
  std::vector<std::int64_t> loop_value;
  std::vector<std::uint64_t> buffer_base;
  std::vector<std::vector<std::int64_t>> strides;
  std::vector<std::vector<int>> nests;
};

void touch(TraceContext& ctx, const ir::BufferAccess& a, std::span<const std::int64_t> iters) {
  if (ctx.stopped) return;
  const auto idx = a.matrix.evaluate(iters);
  const auto& strides = ctx.strides[static_cast<std::size_t>(a.buffer_id)];
  std::int64_t flat = 0;
  for (std::size_t r = 0; r < idx.size(); ++r) flat += idx[r] * strides[r];
  const std::uint64_t addr = ctx.buffer_base[static_cast<std::size_t>(a.buffer_id)] +
                             static_cast<std::uint64_t>(flat) * 8ULL;
  ctx.hierarchy.access(addr);
  ++ctx.count;
  if (ctx.max_accesses != 0 && ctx.count >= ctx.max_accesses) ctx.stopped = true;
}

void walk_expr(TraceContext& ctx, const ir::Expr& e, std::span<const std::int64_t> iters) {
  switch (e.kind()) {
    case ir::ExprKind::Constant:
      return;
    case ir::ExprKind::Load:
      touch(ctx, e.access(), iters);
      return;
    default:
      walk_expr(ctx, e.lhs(), iters);
      walk_expr(ctx, e.rhs(), iters);
  }
}

void trace_comp(TraceContext& ctx, int comp_id) {
  const ir::Computation& c = ctx.p.comp(comp_id);
  const auto& nest = ctx.nests[static_cast<std::size_t>(comp_id)];
  std::vector<std::int64_t> iters(nest.size());
  for (std::size_t i = 0; i < nest.size(); ++i)
    iters[i] = ctx.loop_value[static_cast<std::size_t>(nest[i])];
  walk_expr(ctx, c.rhs, iters);
  touch(ctx, c.store, iters);
}

std::int64_t ceil_div_signed(std::int64_t a, std::int64_t b) {  // b > 0
  return a >= 0 ? (a + b - 1) / b : -((-a) / b);
}

void trace_loop(TraceContext& ctx, int loop_id) {
  if (ctx.stopped) return;
  const ir::LoopNode& l = ctx.p.loop(loop_id);
  std::int64_t extent = l.iter.extent;
  if (l.tail_of != -1) {
    const std::int64_t outer_idx = ctx.loop_value[static_cast<std::size_t>(l.tail_of)];
    extent = std::min<std::int64_t>(extent, l.orig_extent - outer_idx * l.iter.extent);
  }
  std::int64_t first = 0;
  std::int64_t value_base = 0;  // loop *value* = value_base + counter (see interpreter)
  if (l.skew_of != -1) {
    const ir::LoopNode& partner = ctx.p.loop(l.skew_of);
    if (l.skew_is_sum) {
      if (partner.parent != l.id)
        value_base = l.skew_factor * ctx.loop_value[static_cast<std::size_t>(l.skew_of)];
    } else if (l.parent == l.skew_of) {
      const std::int64_t f = l.skew_factor;
      const std::int64_t t = ctx.loop_value[static_cast<std::size_t>(l.skew_of)];
      const std::int64_t m = ctx.p.skew_orig_inner_extent(partner);
      first = std::max<std::int64_t>(0, ceil_div_signed(t - m + 1, f));
      extent = std::min<std::int64_t>(extent, t / f + 1);
    }
  }
  for (std::int64_t v = first; v < extent && !ctx.stopped; ++v) {
    ctx.loop_value[static_cast<std::size_t>(loop_id)] = value_base + v;
    for (const ir::BodyItem& item : l.body) {
      if (item.kind == ir::BodyItem::Kind::Loop) trace_loop(ctx, item.index);
      else trace_comp(ctx, item.index);
      if (ctx.stopped) return;
    }
  }
}

}  // namespace

std::uint64_t simulate_trace(const ir::Program& p, CacheHierarchy& hierarchy,
                             std::uint64_t max_accesses) {
  TraceContext ctx{p, hierarchy, max_accesses, 0, false, {}, {}, {}, {}};
  ctx.loop_value.assign(p.loops.size(), 0);
  ctx.buffer_base.resize(p.buffers.size());
  ctx.strides.resize(p.buffers.size());
  std::uint64_t base = 1ULL << 20;  // arbitrary non-zero start
  for (const ir::Buffer& b : p.buffers) {
    ctx.buffer_base[static_cast<std::size_t>(b.id)] = base;
    const std::uint64_t bytes = static_cast<std::uint64_t>(b.num_elements()) * 8ULL;
    base += (bytes + 4095ULL) & ~4095ULL;  // 4 KiB alignment between buffers
    base += 4096;
    std::vector<std::int64_t> s(b.dims.size(), 1);
    for (int i = static_cast<int>(b.dims.size()) - 2; i >= 0; --i)
      s[static_cast<std::size_t>(i)] =
          s[static_cast<std::size_t>(i + 1)] * b.dims[static_cast<std::size_t>(i + 1)];
    ctx.strides[static_cast<std::size_t>(b.id)] = std::move(s);
  }
  ctx.nests.resize(p.comps.size());
  for (const ir::Computation& c : p.comps)
    ctx.nests[static_cast<std::size_t>(c.id)] = p.nest_of(c.id);
  for (int r : p.roots) trace_loop(ctx, r);
  return ctx.count;
}

}  // namespace tcm::sim
