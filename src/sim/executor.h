// Executor: the "run it on the machine" facade.
//
// Emulates the paper's measurement protocol: each program is "executed"
// `runs_per_measurement` times with multiplicative lognormal timing noise
// and the median is retained (Section 3: 30 runs, median). Speedup is the
// ratio between the execution time of the original unoptimized program and
// the transformed one.
#pragma once

#include <cstdint>

#include "ir/program.h"
#include "sim/machine_model.h"
#include "support/rng.h"
#include "transforms/apply.h"
#include "transforms/schedule.h"

namespace tcm::sim {

struct ExecutorOptions {
  int runs_per_measurement = 30;
  double noise_sigma = 0.03;  // lognormal sigma per run; 0 disables noise
  // Simulated seconds of toolchain overhead per measured candidate (compile
  // + process startup). Only used for search-time accounting (Table 2).
  double compile_overhead_seconds = 3.0;
};

class Executor {
 public:
  explicit Executor(MachineModel model = MachineModel(), ExecutorOptions options = {},
                    std::uint64_t seed = 42);

  const MachineModel& model() const { return model_; }
  const ExecutorOptions& options() const { return options_; }

  // Median-of-N measured execution time (simulated seconds) of a program.
  double measure_seconds(const ir::Program& p);

  // Noise-free model estimate.
  double exact_seconds(const ir::Program& p) const;

  // Measured speedup of applying `s` to `p`: time(p) / time(apply(p, s)).
  // Throws on illegal schedules.
  double measure_speedup(const ir::Program& p, const transforms::Schedule& s);

  // Total simulated wall-clock cost of evaluating one candidate by
  // execution, as a search method would pay it: compile overhead plus
  // runs_per_measurement actual runs.
  double evaluation_cost_seconds(double measured_seconds) const;

 private:
  MachineModel model_;
  ExecutorOptions options_;
  Rng rng_;
};

}  // namespace tcm::sim
