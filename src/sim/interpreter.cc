#include "sim/interpreter.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

namespace tcm::sim {
namespace {

// Row-major strides of a buffer.
std::vector<std::int64_t> strides_of(const ir::Buffer& b) {
  std::vector<std::int64_t> s(b.dims.size(), 1);
  for (int i = static_cast<int>(b.dims.size()) - 2; i >= 0; --i)
    s[static_cast<std::size_t>(i)] =
        s[static_cast<std::size_t>(i + 1)] * b.dims[static_cast<std::size_t>(i + 1)];
  return s;
}

struct ExecContext {
  const ir::Program& p;
  BufferData& bufs;
  std::vector<std::int64_t> loop_value;              // current value per loop id
  std::vector<std::vector<int>> nest_cache;          // comp id -> nest loop ids
  std::vector<std::vector<std::int64_t>> stride_cache;  // buffer id -> strides
};

double eval_expr(const ExecContext& ctx, const ir::Expr& e,
                 std::span<const std::int64_t> iters);

double eval_load(const ExecContext& ctx, const ir::BufferAccess& a,
                 std::span<const std::int64_t> iters) {
  const auto idx = a.matrix.evaluate(iters);
  const auto& strides = ctx.stride_cache[static_cast<std::size_t>(a.buffer_id)];
  std::int64_t flat = 0;
  for (std::size_t r = 0; r < idx.size(); ++r) flat += idx[r] * strides[r];
  return ctx.bufs[static_cast<std::size_t>(a.buffer_id)][static_cast<std::size_t>(flat)];
}

double eval_expr(const ExecContext& ctx, const ir::Expr& e,
                 std::span<const std::int64_t> iters) {
  switch (e.kind()) {
    case ir::ExprKind::Constant:
      return e.constant_value();
    case ir::ExprKind::Load:
      return eval_load(ctx, e.access(), iters);
    case ir::ExprKind::Add:
      return eval_expr(ctx, e.lhs(), iters) + eval_expr(ctx, e.rhs(), iters);
    case ir::ExprKind::Sub:
      return eval_expr(ctx, e.lhs(), iters) - eval_expr(ctx, e.rhs(), iters);
    case ir::ExprKind::Mul:
      return eval_expr(ctx, e.lhs(), iters) * eval_expr(ctx, e.rhs(), iters);
    case ir::ExprKind::Div: {
      const double denom = eval_expr(ctx, e.rhs(), iters);
      // Inputs are generated non-zero, but guard against pathological data.
      return eval_expr(ctx, e.lhs(), iters) / (denom == 0.0 ? 1.0 : denom);
    }
    case ir::ExprKind::Max:
      return std::max(eval_expr(ctx, e.lhs(), iters), eval_expr(ctx, e.rhs(), iters));
    case ir::ExprKind::Min:
      return std::min(eval_expr(ctx, e.lhs(), iters), eval_expr(ctx, e.rhs(), iters));
  }
  throw std::logic_error("eval_expr: unknown kind");
}

void exec_comp(ExecContext& ctx, int comp_id) {
  const ir::Computation& c = ctx.p.comp(comp_id);
  const auto& nest = ctx.nest_cache[static_cast<std::size_t>(comp_id)];
  std::vector<std::int64_t> iters(nest.size());
  for (std::size_t i = 0; i < nest.size(); ++i)
    iters[i] = ctx.loop_value[static_cast<std::size_t>(nest[i])];

  const double value = eval_expr(ctx, c.rhs, iters);
  const auto idx = c.store.matrix.evaluate(iters);
  const auto& strides = ctx.stride_cache[static_cast<std::size_t>(c.store.buffer_id)];
  std::int64_t flat = 0;
  for (std::size_t r = 0; r < idx.size(); ++r) flat += idx[r] * strides[r];
  auto& storage = ctx.bufs[static_cast<std::size_t>(c.store.buffer_id)];
  if (c.is_reduction) storage[static_cast<std::size_t>(flat)] += value;
  else storage[static_cast<std::size_t>(flat)] = value;
}

std::int64_t ceil_div_signed(std::int64_t a, std::int64_t b) {  // b > 0
  return a >= 0 ? (a + b - 1) / b : -((-a) / b);
}

void exec_loop(ExecContext& ctx, int loop_id) {
  const ir::LoopNode& l = ctx.p.loop(loop_id);
  std::int64_t extent = l.iter.extent;
  if (l.tail_of != -1) {
    // Inner tile loop: cover exactly the original extent.
    const std::int64_t outer_idx = ctx.loop_value[static_cast<std::size_t>(l.tail_of)];
    extent = std::min<std::int64_t>(extent, l.orig_extent - outer_idx * l.iter.extent);
  }
  std::int64_t first = 0;
  std::int64_t value_base = 0;  // loop *value* = value_base + counter
  if (l.skew_of != -1) {
    const ir::LoopNode& partner = ctx.p.loop(l.skew_of);
    if (l.skew_is_sum) {
      // Offset mode (t inside its partner i): value t = counter + f*i.
      // Wave mode (t outside): t iterates plainly over the wavefront extent.
      if (partner.parent != l.id)
        value_base = l.skew_factor * ctx.loop_value[static_cast<std::size_t>(l.skew_of)];
    } else if (l.parent == l.skew_of) {
      // Wave-mode inner partner: window i to the non-empty band of the
      // diagonal t, executing exactly the original N*M points overall.
      const std::int64_t f = l.skew_factor;
      const std::int64_t t = ctx.loop_value[static_cast<std::size_t>(l.skew_of)];
      const std::int64_t m = ctx.p.skew_orig_inner_extent(partner);
      first = std::max<std::int64_t>(0, ceil_div_signed(t - m + 1, f));
      extent = std::min<std::int64_t>(extent, t / f + 1);
    }
  }
  for (std::int64_t v = first; v < extent; ++v) {
    ctx.loop_value[static_cast<std::size_t>(loop_id)] = value_base + v;
    for (const ir::BodyItem& item : l.body) {
      if (item.kind == ir::BodyItem::Kind::Loop) exec_loop(ctx, item.index);
      else exec_comp(ctx, item.index);
    }
  }
}

}  // namespace

BufferData Interpreter::make_buffers(const ir::Program& p, std::uint64_t seed) {
  Rng rng(seed);
  BufferData bufs(p.buffers.size());
  for (const ir::Buffer& b : p.buffers) {
    auto& storage = bufs[static_cast<std::size_t>(b.id)];
    storage.assign(static_cast<std::size_t>(b.num_elements()), 0.0);
    if (b.is_input) {
      // Small non-zero integers: sums stay exact in double and divisions are
      // well conditioned.
      for (double& v : storage) v = static_cast<double>(rng.uniform_int(1, 9));
    }
  }
  return bufs;
}

void Interpreter::run(const ir::Program& p, BufferData& bufs) {
  if (bufs.size() != p.buffers.size())
    throw std::invalid_argument("Interpreter::run: buffer arity mismatch");
  ExecContext ctx{p, bufs, {}, {}, {}};
  ctx.loop_value.assign(p.loops.size(), 0);
  ctx.nest_cache.resize(p.comps.size());
  for (const ir::Computation& c : p.comps)
    ctx.nest_cache[static_cast<std::size_t>(c.id)] = p.nest_of(c.id);
  ctx.stride_cache.resize(p.buffers.size());
  for (const ir::Buffer& b : p.buffers)
    ctx.stride_cache[static_cast<std::size_t>(b.id)] = strides_of(b);
  for (int r : p.roots) exec_loop(ctx, r);
}

BufferData Interpreter::execute(const ir::Program& p, std::uint64_t seed) {
  BufferData bufs = make_buffers(p, seed);
  run(p, bufs);
  return bufs;
}

double Interpreter::max_rel_difference(const ir::Program& p, const BufferData& a,
                                       const BufferData& b) {
  double worst = 0.0;
  for (const ir::Buffer& buf : p.buffers) {
    if (buf.is_input) continue;
    const auto& va = a[static_cast<std::size_t>(buf.id)];
    const auto& vb = b[static_cast<std::size_t>(buf.id)];
    if (va.size() != vb.size()) return 1e30;
    for (std::size_t i = 0; i < va.size(); ++i) {
      const double scale = std::max({1.0, std::abs(va[i]), std::abs(vb[i])});
      worst = std::max(worst, std::abs(va[i] - vb[i]) / scale);
    }
  }
  return worst;
}

}  // namespace tcm::sim
