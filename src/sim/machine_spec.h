// Description of the simulated CPU.
//
// The paper measured real execution times on a dual-socket 12-core Intel
// Xeon E5-2680v3 (Haswell). We cannot measure that hardware here, so the
// MachineModel estimates execution cycles on a parameterized CPU whose
// defaults mirror that machine. The learned cost model only ever sees
// (program, schedule, speedup) samples, never these parameters — exactly as
// in the paper, where the hardware is implicit in the measurements
// (Section 4.3: the model is specific to one target machine).
#pragma once

#include <cstdint>

namespace tcm::sim {

struct CacheLevelSpec {
  std::int64_t size_bytes = 0;
  double latency_cycles = 0;  // load-to-use latency of a line hit
};

struct MachineSpec {
  int cores = 24;                  // 2 sockets x 12 cores
  double freq_ghz = 2.5;
  int max_vector_width = 8;        // vector lanes usable by vectorize()
  int line_bytes = 64;

  CacheLevelSpec l1{32 * 1024, 4.0};
  CacheLevelSpec l2{256 * 1024, 12.0};
  CacheLevelSpec l3{30LL * 1024 * 1024, 40.0};
  double mem_latency_cycles = 200.0;

  // Fraction of memory latency left visible when the hardware prefetcher
  // recognizes the stream (small constant strides).
  double prefetch_factor_seq = 0.35;     // stride <= line
  double prefetch_factor_strided = 0.65; // line < stride <= 4 lines

  // Cost of arithmetic, cycles per scalar operation.
  double cycles_per_flop = 1.0;
  double cycles_per_div = 8.0;

  // Per-iteration loop bookkeeping (increment + compare + branch).
  double loop_overhead_cycles = 2.0;

  // One-time cost of entering a parallel region (thread wake-up, barrier).
  double parallel_spawn_cycles = 25000.0;
  // Parallel efficiency on compute-bound work.
  double parallel_efficiency = 0.92;
  // Memory-bound work scales only up to this many cores (bandwidth wall).
  int mem_parallel_cores = 6;

  // Vectorization efficiency on stride-1 bodies.
  double vector_efficiency = 0.85;

  // The default simulated target (approximates the paper's Xeon E5-2680v3).
  static MachineSpec xeon_e5_2680v3() { return MachineSpec{}; }

  // A small machine useful in tests (tiny caches exercise boundaries).
  static MachineSpec tiny() {
    MachineSpec m;
    m.cores = 4;
    m.l1 = {4 * 1024, 4.0};
    m.l2 = {32 * 1024, 12.0};
    m.l3 = {256 * 1024, 40.0};
    return m;
  }
};

}  // namespace tcm::sim
