#include "api/status.h"

#include <stdexcept>

#include "serve/errors.h"

namespace tcm::api {

std::string_view status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "INTERNAL";
}

int http_status(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 200;
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kFailedPrecondition: return 409;
    case StatusCode::kResourceExhausted: return 429;
    case StatusCode::kUnimplemented: return 501;
    case StatusCode::kUnavailable: return 503;
    case StatusCode::kDeadlineExceeded: return 504;
    case StatusCode::kInternal: return 500;
  }
  return 500;
}

std::string Status::to_string() const {
  if (ok()) return "OK";
  std::string s(status_code_name(code_));
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

Status status_from_exception(const std::exception& e) {
  if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr)
    return Status::invalid_argument(e.what());
  if (dynamic_cast<const std::out_of_range*>(&e) != nullptr)
    return Status::invalid_argument(e.what());
  // The serving shed errors derive from runtime_error; match them before the
  // generic branch folds them into FAILED_PRECONDITION.
  if (dynamic_cast<const serve::DeadlineExceededError*>(&e) != nullptr)
    return Status(StatusCode::kDeadlineExceeded, e.what());
  if (dynamic_cast<const serve::AdmissionRejectedError*>(&e) != nullptr)
    return Status(StatusCode::kResourceExhausted, e.what());
  if (dynamic_cast<const std::runtime_error*>(&e) != nullptr)
    return Status::failed_precondition(e.what());
  return Status::internal(e.what());
}

}  // namespace tcm::api
