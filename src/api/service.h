// The stable tcm::api façade: one object that owns the whole serving stack.
//
// Below this line the system is five in-process subsystems with three error
// conventions (model/ and dataset throw, registry throws runtime_error,
// serve surfaces exceptions on futures). Service composes them —
//
//   ModelRegistry (durable versions)  ──load_active──►  PredictionService
//        ▲      ▲                                         │       ▲
//        │      └── ContinualTrainer ◄── drift ── ContinualScheduler
//        │                 ▲
//        └──────── FeedbackBuffer (persisted across restarts)
//
// — behind the versioned request/response structs of wire.h and a typed
// Status/Result error model: every throw reachable from serving is caught
// at this boundary and mapped to a StatusCode, so a corrupt checkpoint or a
// malformed request degrades to an error response instead of killing the
// process. The HTTP layer (http_server.h + rest.h) is a thin adapter over
// exactly this class; in-process embedders (outer search loops, tuners)
// call it directly and get identical semantics — the parity tests assert
// bitwise-equal predictions between the two paths.
//
// Thread-safety contract: all public methods are safe to call concurrently.
// predict() scales across callers (it rides PredictionService's worker
// pool); promote()/rollback()/quiesce()/shutdown() serialize on an internal
// admin mutex; stats()/healthy() are wait-free snapshots of counters. After
// shutdown() every serving/mutating entry point (predict, models, promote,
// rollback, quiesce) returns UNAVAILABLE and healthy() reports it; the
// read-only observers stats()/active_version() keep answering so a
// draining instance can still be scraped. raw_service() and
// raw_registry() expose the underlying subsystems for callers that
// knowingly want in-process semantics (futures, exceptions, manual
// batching); anything touched through them is outside the façade's
// no-exceptions guarantee — see README "Serving API" for guidance.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>

#include "api/status.h"
#include "api/wire.h"
#include "jobs/job_manager.h"
#include "obs/metrics.h"
#include "obs/watchdog.h"
#include "registry/continual_scheduler.h"
#include "registry/continual_trainer.h"
#include "registry/model_registry.h"
#include "serve/feedback_buffer.h"
#include "serve/prediction_service.h"

namespace tcm::api {

struct ServiceOptions {
  // Registry root directory; must contain an ACTIVE version whose
  // feature-config hash matches `serve.features` (open() checks both).
  std::string registry_root;

  serve::ServeOptions serve;

  // Measured-feedback sampling of served (program, schedule) pairs.
  bool enable_feedback = true;
  serve::FeedbackBufferOptions feedback;
  // The reservoir persists here on quiesce()/shutdown() and is restored (and
  // the file consumed) at open(), so sampled-but-untrained traffic survives
  // restarts without ever double-counting drained samples. Empty = default
  // "<registry_root>/feedback.json"; persist_feedback=false disables.
  bool persist_feedback = true;
  std::string feedback_path;

  // Drift-triggered continual-learning autopilot (off by default: it spends
  // training compute). `trainer.feedback` is wired to the service's buffer
  // automatically when feedback is enabled.
  bool enable_autopilot = false;
  registry::ContinualTrainerOptions trainer;
  registry::ContinualSchedulerOptions scheduler;

  // Async autoscheduling job service (POST /v1/search). The manager shares
  // the façade's metrics/watchdog and scores through the same
  // PredictionService as interactive predictions. `search.memory_path`
  // defaults to "<registry_root>/schedule_memory.json" when left empty and
  // search is enabled; set it to keep the schedule-reuse memory elsewhere.
  bool enable_search = true;
  jobs::SearchJobManagerOptions search;
};

class Service {
 public:
  // Builds the full stack. Fails (never throws) with:
  //   FAILED_PRECONDITION  registry unopenable, no ACTIVE version, feature
  //                        hash mismatch, corrupt ACTIVE checkpoint
  //   INTERNAL             anything else
  // A corrupt persisted feedback file is not fatal: it is discarded (the
  // buffer simply starts empty) — losing samples is benign, refusing to
  // serve is not.
  static Result<std::unique_ptr<Service>> open(ServiceOptions options);

  ~Service();  // shutdown() if the caller has not already

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // Scores every schedule in the request against the program. Blocking
  // (rides the worker pool; concurrent callers batch together). Items are
  // in request order; each is tagged with the model version that scored it
  // (a hot-swap mid-request may split a batch across versions).
  //   INVALID_ARGUMENT  invalid program/schedule, featurization failure
  //   UNAVAILABLE       after shutdown()
  //   INTERNAL          forward-pass failure
  Result<PredictResponse> predict(const PredictRequest& request);

  // Registry versions, ascending, with lifecycle roles.
  Result<std::vector<ModelInfo>> models() const;

  // Submits an async autoscheduling job and returns its snapshot (already
  // DONE with reused=true on a schedule-memory hit).
  //   INVALID_ARGUMENT     invalid program / options
  //   RESOURCE_EXHAUSTED   job queue over cap (HTTP 429 + Retry-After)
  //   UNIMPLEMENTED        search disabled (enable_search=false)
  //   UNAVAILABLE          after shutdown()
  Result<jobs::SearchJobInfo> submit_search(const SearchRequest& request);

  // Snapshot of one job (NOT_FOUND for unknown/evicted ids).
  Result<jobs::SearchJobInfo> search_job(const std::string& id) const;

  // All job snapshots, newest first.
  Result<std::vector<jobs::SearchJobInfo>> list_searches() const;

  // Requests cancellation and returns the post-cancel snapshot (a job that
  // already reached a terminal state keeps it — cancel is not un-done).
  Result<jobs::SearchJobInfo> cancel_search(const std::string& id);

  // The raw manager, for the event-stream endpoint (blocking reads must not
  // go through the snapshot API). Null when search is disabled.
  jobs::SearchJobManager* search_jobs() { return search_jobs_.get(); }

  // Validates that `version` exists (NOT_FOUND otherwise) and that its
  // checkpoint actually loads through the registry's integrity checks
  // (FAILED_PRECONDITION on a corrupt/tampered/mismatched checkpoint — the
  // incumbent keeps serving), then moves ACTIVE and hot-swaps live traffic
  // with zero downtime.
  Status promote(int version);

  // Re-promotes the previous version and hot-swaps to it. The loaded-before-
  // promoted order means a corrupt rollback target leaves ACTIVE untouched.
  Result<int> rollback();

  // Keeps answering after shutdown() (with the final counters): a drained
  // instance must still be scrapeable by /metrics until the process exits.
  StatsSnapshot stats() const;

  // One JSON snapshot of everything an operator asks first: registry
  // versions with the ACTIVE lineage (parent chain), serving/batcher/cache
  // state, the last drift report, the scheduler phase, feedback fill,
  // watchdog heartbeat ages and the event-log high-water mark. The
  // /debug/state payload; answers after shutdown() like stats().
  Json debug_state() const;

  // OK while serving; UNAVAILABLE after shutdown().
  Status healthy() const;

  // Non-fatal degradation detail for /healthz: empty while fully healthy,
  // e.g. "autopilot circuit breaker open" while the cycle breaker cools
  // down. Serving keeps answering (the endpoint stays 200, status
  // "degraded") — this is operator signal, not readiness.
  std::string degraded_reason() const;

  // Drains in-flight work and persists the feedback reservoir (when
  // configured). Serving continues afterwards.
  Status quiesce();

  // Stops the autopilot, quiesces, persists feedback, and flips the façade
  // to UNAVAILABLE. Idempotent; called by the destructor.
  void shutdown();

  int active_version() const;

  // The metrics registry shared by the whole stack (serving histograms plus
  // whatever the HTTP layer registers); /metrics renders it in one pass.
  const std::shared_ptr<obs::MetricsRegistry>& metrics() const { return metrics_; }

  // The watchdog every background thread of the stack registers with (batch
  // workers, autopilot poller; the HTTP layer adds its acceptor/workers via
  // HttpServerOptions::watchdog). /healthz folds its report into readiness.
  // Never null after open().
  const std::shared_ptr<obs::Watchdog>& watchdog() const { return watchdog_; }

  // Escape hatches (see class comment): the façade's Status guarantee does
  // not cover direct calls on these.
  serve::PredictionService& raw_service() { return *service_; }
  registry::ModelRegistry& raw_registry() { return *registry_; }
  // Null when feedback is disabled. Draining it is the continual trainer's
  // job; drained samples leave the reservoir and are never persisted again.
  const std::shared_ptr<serve::FeedbackBuffer>& feedback_buffer() const { return feedback_; }
  const ServiceOptions& options() const { return options_; }

 private:
  explicit Service(ServiceOptions options);

  std::string feedback_file() const;
  void restore_feedback();         // called once from open()
  Status persist_feedback_now();   // snapshot -> tmp -> rename

  ServiceOptions options_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  std::shared_ptr<obs::Watchdog> watchdog_;
  std::unique_ptr<registry::ModelRegistry> registry_;
  std::shared_ptr<serve::FeedbackBuffer> feedback_;
  std::unique_ptr<serve::PredictionService> service_;
  std::unique_ptr<jobs::SearchJobManager> search_jobs_;  // null when disabled
  std::unique_ptr<registry::ContinualTrainer> trainer_;
  std::unique_ptr<registry::ContinualScheduler> scheduler_;
  std::chrono::steady_clock::time_point started_;

  mutable std::mutex admin_mu_;  // promote/rollback/quiesce/shutdown
  std::atomic<bool> shut_down_{false};
};

}  // namespace tcm::api
