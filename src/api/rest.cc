#include "api/rest.h"

#include <chrono>
#include <limits>
#include <string>
#include <string_view>
#include <utility>

#include "api/metrics.h"
#include "api/wire.h"
#include "obs/event_log.h"
#include "obs/trace.h"
#include "obs/watchdog.h"

namespace tcm::api {

namespace {

HttpResponse error_response(const Status& status) {
  return HttpResponse::json(http_status(status.code()), error_body(status).dump());
}

Result<Json> parse_body(const HttpRequest& request) {
  if (request.body.empty())
    return Status::invalid_argument("request body required");
  return Json::parse(request.body);
}

// Strict integer parse (optional sign, digits only); the header variant of
// "reject, don't guess".
bool parse_int_strict(const std::string& s, long long* out) {
  if (s.empty()) return false;
  std::size_t i = s[0] == '-' || s[0] == '+' ? 1 : 0;
  if (i == s.size()) return false;
  long long v = 0;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
    if (v > (std::numeric_limits<long long>::max() - 9) / 10) return false;
    v = v * 10 + (s[i] - '0');
  }
  *out = s[0] == '-' ? -v : v;
  return true;
}

}  // namespace

void bind_routes(HttpServer& server, Service& service) {
  Service* svc = &service;
  HttpServer* srv = &server;

  // Readiness: "serving" only while the façade is up AND no registered
  // background thread has stalled. A stalled critical thread (batch worker,
  // HTTP acceptor) means requests will queue forever — report 503 so load
  // balancers route away; a stalled non-critical thread (autopilot poller)
  // degrades the status string but keeps the 200.
  server.route("GET", "/healthz", [svc](const HttpRequest&) {
    const Status health = svc->healthy();
    if (!health.ok()) return error_response(health);
    const obs::Watchdog::Report report = svc->watchdog()->report();
    Json j = Json::object();
    const char* status = "serving";
    if (report.health == obs::Watchdog::Health::kDegraded) status = "degraded";
    if (report.health == obs::Watchdog::Health::kUnhealthy) status = "unhealthy";
    // Service-level degradation (an open autopilot circuit breaker) demotes
    // a clean watchdog verdict but never beats "unhealthy".
    const std::string degraded = svc->degraded_reason();
    std::string reason = report.reason;
    if (!degraded.empty()) {
      if (report.health == obs::Watchdog::Health::kHealthy) status = "degraded";
      reason = reason.empty() ? degraded : reason + "; " + degraded;
    }
    j.set("status", Json(status));
    j.set("active_version", Json(static_cast<std::int64_t>(svc->active_version())));
    if (!reason.empty()) {
      j.set("reason", Json(reason));
      Json stalled = Json::array();
      for (const obs::Watchdog::ThreadReport& t : report.threads)
        if (t.stalled) stalled.push_back(Json(t.name));
      j.set("stalled_threads", std::move(stalled));
    }
    const int code = report.health == obs::Watchdog::Health::kUnhealthy ? 503 : 200;
    return HttpResponse::json(code, j.dump());
  });

  server.route("GET", "/metrics", [svc, srv](const HttpRequest&) {
    return HttpResponse::text(200, prometheus_text(svc->stats(), svc->metrics().get(), srv));
  });

  // Chrome trace_event JSON of the recent sampled spans; load the body into
  // chrome://tracing or ui.perfetto.dev. Empty traceEvents until something
  // is sampled (--trace-sample > 0 on tcm_serve).
  server.route("GET", "/debug/traces", [](const HttpRequest&) {
    return HttpResponse{200, "application/json",
                        obs::Tracer::instance().export_chrome_json(), {}, {}};
  });

  // Flight recorder: the recent structured events (drift triggers, cycle
  // lifecycle, promotes/rollbacks, hot swaps, slow requests, 5xx), oldest
  // first. Same JSON the SIGTERM/crash dump writes to disk.
  server.route("GET", "/debug/events", [](const HttpRequest&) {
    return HttpResponse{200, "application/json", obs::EventLog::instance().render_json(), {},
                        {}};
  });

  // One JSON snapshot of everything an operator asks first; see
  // Service::debug_state().
  server.route("GET", "/debug/state", [svc](const HttpRequest&) {
    return HttpResponse::json(200, svc->debug_state().dump());
  });

  server.route("GET", "/v1/stats", [svc](const HttpRequest&) {
    return HttpResponse::json(200, to_json(svc->stats()).dump());
  });

  server.route("GET", "/v1/models", [svc](const HttpRequest&) {
    Result<std::vector<ModelInfo>> models = svc->models();
    if (!models.ok()) return error_response(models.status());
    Json list = Json::array();
    int active = 0, previous = 0;
    for (const ModelInfo& info : *models) {
      if (info.active) active = info.manifest.version;
      if (info.previous) previous = info.manifest.version;
      list.push_back(to_json(info));
    }
    Json j = Json::object();
    j.set("api_version", Json(static_cast<std::int64_t>(kApiVersion)));
    j.set("active", Json(static_cast<std::int64_t>(active)));
    j.set("previous", Json(static_cast<std::int64_t>(previous)));
    j.set("models", std::move(list));
    return HttpResponse::json(200, j.dump());
  });

  server.route("POST", "/v1/models/promote", [svc](const HttpRequest& request) {
    Result<Json> body = parse_body(request);
    if (!body.ok()) return error_response(body.status());
    const Json* version = body->find("version");
    if (version == nullptr || !version->is_int())
      return error_response(Status::invalid_argument("'version' (integer) required"));
    const std::int64_t requested = version->as_int();
    if (requested < 1 || requested > std::numeric_limits<int>::max())
      return error_response(Status::invalid_argument("'version' out of range"));
    const Status promoted = svc->promote(static_cast<int>(requested));
    if (!promoted.ok()) return error_response(promoted);
    Json j = Json::object();
    j.set("active", Json(version->as_int()));
    return HttpResponse::json(200, j.dump());
  });

  server.route("POST", "/v1/models/rollback", [svc](const HttpRequest&) {
    Result<int> restored = svc->rollback();
    if (!restored.ok()) return error_response(restored.status());
    Json j = Json::object();
    j.set("active", Json(static_cast<std::int64_t>(*restored)));
    return HttpResponse::json(200, j.dump());
  });

  // Retry-After advertised on 429 responses, whole seconds rounded up from
  // the admission policy (at least 1: "0" would invite an immediate retry
  // into the same overload).
  const long long retry_after_ms = service.options().serve.admission.retry_after.count();
  const long long retry_after_s = retry_after_ms <= 0 ? 1 : (retry_after_ms + 999) / 1000;

  server.route("POST", "/v1/predict", [svc, retry_after_s](const HttpRequest& request) {
    Result<Json> body = parse_body(request);
    if (!body.ok()) return error_response(body.status());
    Result<PredictRequest> decoded = predict_request_from_json(*body);
    if (!decoded.ok()) return error_response(decoded.status());
    // X-Deadline-Ms: the client's remaining latency budget, relative because
    // clocks differ across hosts. Converted to an absolute serving-clock
    // deadline on arrival; a non-positive budget is already expired and
    // sheds at submit with 504.
    if (const std::string* budget = request.header("X-Deadline-Ms")) {
      long long ms = 0;
      if (!parse_int_strict(*budget, &ms))
        return error_response(
            Status::invalid_argument("X-Deadline-Ms: integer milliseconds required"));
      decoded->deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    }
    Result<PredictResponse> response = svc->predict(*decoded);
    if (!response.ok()) {
      HttpResponse http = error_response(response.status());
      if (response.status().code() == StatusCode::kResourceExhausted)
        http.headers.emplace_back("Retry-After", std::to_string(retry_after_s));
      return http;
    }
    return HttpResponse::json(200, to_json(*response).dump());
  });

  // --- async autoscheduling jobs -------------------------------------------

  server.route("POST", "/v1/search", [svc, retry_after_s](const HttpRequest& request) {
    Result<Json> body = parse_body(request);
    if (!body.ok()) return error_response(body.status());
    Result<SearchRequest> decoded = search_request_from_json(*body);
    if (!decoded.ok()) return error_response(decoded.status());
    // Same relative-budget header as /v1/predict; here it bounds the whole
    // job (queue wait + search), not one inference.
    if (const std::string* budget = request.header("X-Deadline-Ms")) {
      long long ms = 0;
      if (!parse_int_strict(*budget, &ms))
        return error_response(
            Status::invalid_argument("X-Deadline-Ms: integer milliseconds required"));
      decoded->deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    }
    Result<jobs::SearchJobInfo> submitted = svc->submit_search(*decoded);
    if (!submitted.ok()) {
      HttpResponse http = error_response(submitted.status());
      if (submitted.status().code() == StatusCode::kResourceExhausted)
        http.headers.emplace_back("Retry-After", std::to_string(retry_after_s));
      return http;
    }
    // A schedule-memory hit is complete on arrival (200, reused=true);
    // everything else was accepted for async processing (202 — poll
    // GET /v1/search/{id} or stream .../events).
    const int code = submitted->state == jobs::JobState::kDone ? 200 : 202;
    return HttpResponse::json(code, to_json(*submitted).dump());
  });

  server.route("GET", "/v1/search", [svc](const HttpRequest&) {
    Result<std::vector<jobs::SearchJobInfo>> list = svc->list_searches();
    if (!list.ok()) return error_response(list.status());
    Json arr = Json::array();
    for (const jobs::SearchJobInfo& info : *list) arr.push_back(to_json(info));
    Json j = Json::object();
    j.set("api_version", Json(static_cast<std::int64_t>(kApiVersion)));
    j.set("jobs", std::move(arr));
    return HttpResponse::json(200, j.dump());
  });

  // Poll one job, or stream its progress: /v1/search/{id}[/events].
  server.route_prefix("GET", "/v1/search/", [svc](const HttpRequest& request) {
    constexpr std::string_view kPrefix = "/v1/search/";
    std::string id = request.path.substr(kPrefix.size());
    constexpr std::string_view kEvents = "/events";
    const bool stream = id.size() > kEvents.size() &&
                        id.compare(id.size() - kEvents.size(), kEvents.size(), kEvents) == 0;
    if (stream) id.resize(id.size() - kEvents.size());
    if (id.empty() || id.find('/') != std::string::npos)
      return error_response(Status::not_found("no route " + request.path));
    Result<jobs::SearchJobInfo> info = svc->search_job(id);
    if (!info.ok()) return error_response(info.status());
    if (!stream) return HttpResponse::json(200, to_json(*info).dump());

    // ndjson over chunked transfer-encoding: one line per progress event,
    // ending once the job is terminal and its lines are drained. The
    // streamer runs on the connection worker; bounded waits inside
    // events_since keep each chunk write (and the worker's watchdog beat)
    // at most 250ms apart even when the search stalls.
    jobs::SearchJobManager* manager = svc->search_jobs();
    HttpResponse streaming;
    streaming.content_type = "application/x-ndjson";
    streaming.streamer = [manager, id](const ChunkWriter& write) {
      std::size_t cursor = 0;
      for (;;) {
        const jobs::SearchJobManager::EventBatch batch =
            manager->events_since(id, cursor, std::chrono::milliseconds(250));
        for (const std::string& line : batch.lines)
          if (!write(line + "\n")) return;  // client gone; stop producing
        cursor += batch.lines.size();
        if (batch.done && batch.lines.empty()) return;
      }
    };
    return streaming;
  });

  server.route_prefix("DELETE", "/v1/search/", [svc](const HttpRequest& request) {
    constexpr std::string_view kPrefix = "/v1/search/";
    const std::string id = request.path.substr(kPrefix.size());
    if (id.empty() || id.find('/') != std::string::npos)
      return error_response(Status::not_found("no route " + request.path));
    Result<jobs::SearchJobInfo> cancelled = svc->cancel_search(id);
    if (!cancelled.ok()) return error_response(cancelled.status());
    return HttpResponse::json(200, to_json(*cancelled).dump());
  });
}

}  // namespace tcm::api
