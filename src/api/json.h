// Dependency-free JSON value, parser and writer for the wire surface.
//
// Scope is exactly what the v1 HTTP API needs — no SAX, no allocators, no
// comments/trailing commas; RFC 8259 syntax with two hardening deviations:
//   - parse() enforces a nesting-depth limit and the caller's byte limit is
//     enforced upstream by the HTTP server's max_body_bytes, so adversarial
//     bodies cannot stack-overflow or balloon the process;
//   - numbers without '.', 'e' or 'E' that fit an int64 are kept exact as
//     integers (version ids, counters); everything else is a double.
//
// Doubles are written with std::to_chars shortest round-trip formatting, so
// a prediction serialized to JSON and parsed back compares bitwise equal to
// the in-process value — the HTTP parity tests rely on this.
//
// Object members preserve insertion order and are stored as a flat vector
// (the API's objects are small; linear lookup beats a map here).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "api/status.h"

namespace tcm::api {

class Json;
using JsonArray = std::vector<Json>;
using JsonMember = std::pair<std::string, Json>;
using JsonObject = std::vector<JsonMember>;

class Json {
 public:
  enum class Type { Null, Bool, Int, Double, String, Array, Object };

  Json() : type_(Type::Null) {}
  Json(bool b) : type_(Type::Bool), bool_(b) {}                    // NOLINT
  Json(int v) : type_(Type::Int), int_(v) {}                       // NOLINT
  Json(std::int64_t v) : type_(Type::Int), int_(v) {}              // NOLINT
  Json(std::uint64_t v) : type_(Type::Int),                        // NOLINT
                          int_(static_cast<std::int64_t>(v)) {}
  Json(double v) : type_(Type::Double), double_(v) {}              // NOLINT
  Json(const char* s) : type_(Type::String), string_(s) {}         // NOLINT
  Json(std::string s) : type_(Type::String), string_(std::move(s)) {}  // NOLINT
  Json(JsonArray a) : type_(Type::Array), array_(std::move(a)) {}  // NOLINT
  Json(JsonObject o) : type_(Type::Object), object_(std::move(o)) {}  // NOLINT

  static Json array() { return Json(JsonArray{}); }
  static Json object() { return Json(JsonObject{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_int() const { return type_ == Type::Int; }
  // Any JSON number (integer-typed or double-typed).
  bool is_number() const { return type_ == Type::Int || type_ == Type::Double; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  // Accessors assume the matching type (callers check first; the wire
  // decoders go through the checked require_* helpers in wire.cc).
  bool as_bool() const { return bool_; }
  std::int64_t as_int() const {
    return type_ == Type::Double ? static_cast<std::int64_t>(double_) : int_;
  }
  double as_double() const {
    return type_ == Type::Int ? static_cast<double>(int_) : double_;
  }
  const std::string& as_string() const { return string_; }
  const JsonArray& as_array() const { return array_; }
  JsonArray& as_array() { return array_; }
  const JsonObject& as_object() const { return object_; }
  JsonObject& as_object() { return object_; }

  // Object helpers: find returns nullptr when absent (or when not an
  // object); set appends / overwrites.
  const Json* find(std::string_view key) const;
  void set(std::string key, Json value);

  // Array helper.
  void push_back(Json value) { array_.push_back(std::move(value)); }

  // Compact serialization (no whitespace).
  std::string dump() const;

  // Parses one complete JSON document; trailing non-whitespace is an error.
  // `max_depth` bounds array/object nesting.
  static Result<Json> parse(std::string_view text, std::size_t max_depth = 64);

 private:
  void dump_to(std::string& out) const;

  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

}  // namespace tcm::api
