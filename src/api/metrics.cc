#include "api/metrics.h"

#include <charconv>
#include <cmath>

namespace tcm::api {

namespace {

void emit_value(double v, std::string& out) {
  if (std::isnan(v)) {
    out += "NaN";
    return;
  }
  if (std::isinf(v)) {
    out += v > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buf[32];
  auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, end);
}

class Exposition {
 public:
  // One sample with HELP/TYPE preamble (each metric name appears once).
  void metric(const char* name, const char* type, const char* help, double value,
              const char* labels = nullptr) {
    out_ += "# HELP ";
    out_ += name;
    out_ += ' ';
    out_ += help;
    out_ += "\n# TYPE ";
    out_ += name;
    out_ += ' ';
    out_ += type;
    out_ += '\n';
    sample(name, labels, value);
  }

  // Additional labeled sample of the most recent metric() family.
  void sample(const char* name, const char* labels, double value) {
    out_ += name;
    if (labels != nullptr) {
      out_ += '{';
      out_ += labels;
      out_ += '}';
    }
    out_ += ' ';
    emit_value(value, out_);
    out_ += '\n';
  }

  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

}  // namespace

std::string prometheus_text(const StatsSnapshot& stats, const obs::MetricsRegistry* registry,
                            const HttpServer* server) {
  const serve::ServeStats& s = stats.serve;
  Exposition e;

  // --- serving --------------------------------------------------------------
  e.metric("tcm_serve_requests_total", "counter", "Completed predictions",
           static_cast<double>(s.requests));
  e.metric("tcm_serve_failed_requests_total", "counter",
           "Requests that failed featurization or the forward pass",
           static_cast<double>(s.failed_requests));
  e.metric("tcm_serve_batches_total", "counter", "Incumbent forward_batch calls",
           static_cast<double>(s.batches));
  e.metric("tcm_serve_batch_occupancy", "gauge", "Mean requests per batch",
           s.mean_batch_occupancy);
  e.metric("tcm_serve_cache_hits_total", "counter", "Feature cache hits",
           static_cast<double>(s.cache_hits));
  e.metric("tcm_serve_cache_misses_total", "counter", "Feature cache misses",
           static_cast<double>(s.cache_misses));
  // The latency distribution itself lives in the histogram registry
  // (tcm_serve_latency_seconds, tcm_stage_duration_seconds), appended below.
  e.metric("tcm_serve_arena_heap_allocs_total", "counter",
           "Heap allocations by worker inference arenas (plateaus when warm)",
           static_cast<double>(s.arena_heap_allocs));

  // --- model lifecycle ------------------------------------------------------
  e.metric("tcm_model_active_version", "gauge", "Registry version currently receiving traffic",
           static_cast<double>(stats.active_version));
  e.metric("tcm_model_previous_version", "gauge", "Rollback target version (0 when none)",
           static_cast<double>(stats.previous_version));
  e.metric("tcm_model_swaps_total", "counter", "Completed zero-downtime hot swaps",
           static_cast<double>(s.model_swaps));
  e.metric("tcm_shadow_version", "gauge", "Shadow candidate version (0 when none installed)",
           static_cast<double>(s.shadow_version));
  e.metric("tcm_shadow_requests_total", "counter", "Requests also scored by a shadow model",
           static_cast<double>(s.shadow_requests));
  e.metric("tcm_shadow_failures_total", "counter",
           "Shadow forward errors (never client-visible)",
           static_cast<double>(s.shadow_failures));
  e.metric("tcm_shadow_mape", "gauge", "Shadow disagreement MAPE vs the incumbent",
           s.shadow_mape);
  e.metric("tcm_shadow_spearman", "gauge",
           "Shadow rank correlation vs the incumbent over the shared window", s.shadow_spearman);

  // --- autopilot (the former verbose-stdout signals) ------------------------
  e.metric("tcm_autopilot_enabled", "gauge", "1 when the continual-learning autopilot runs",
           stats.autopilot.enabled ? 1 : 0);
  e.metric("tcm_autopilot_polls_total", "counter", "Drift-monitor observations",
           static_cast<double>(stats.autopilot.polls));
  e.metric("tcm_autopilot_triggers_total", "counter",
           "Drift triggers (each starts a retraining cycle attempt)",
           static_cast<double>(stats.autopilot.triggers));
  e.metric("tcm_autopilot_cycles_total", "counter", "Successful retraining cycles",
           static_cast<double>(stats.autopilot.cycles));
  e.metric("tcm_autopilot_cycle_failures_total", "counter",
           "Retraining cycles that failed (swallowed, serving unaffected)",
           static_cast<double>(stats.autopilot.cycle_failures));
  const serve::DriftReport& d = stats.autopilot.last;
  e.metric("tcm_drift_signal", "gauge",
           "Latest drift-signal values (see matching tcm_drift_threshold)", d.psi.value,
           "signal=\"psi\"");
  e.sample("tcm_drift_signal", "signal=\"ks\"", d.ks.value);
  e.sample("tcm_drift_signal", "signal=\"failure_rate\"", d.failure_rate.value);
  e.sample("tcm_drift_signal", "signal=\"shadow_mape\"", d.shadow_mape.value);
  e.sample("tcm_drift_signal", "signal=\"shadow_spearman\"", d.shadow_spearman.value);
  e.metric("tcm_drift_threshold", "gauge", "Configured firing threshold per drift signal",
           d.psi.threshold, "signal=\"psi\"");
  e.sample("tcm_drift_threshold", "signal=\"ks\"", d.ks.threshold);
  e.sample("tcm_drift_threshold", "signal=\"failure_rate\"", d.failure_rate.threshold);
  e.sample("tcm_drift_threshold", "signal=\"shadow_mape\"", d.shadow_mape.threshold);
  e.sample("tcm_drift_threshold", "signal=\"shadow_spearman\"", d.shadow_spearman.threshold);
  e.metric("tcm_drift_reference_size", "gauge",
           "Frozen reference window size (0 until baselined)",
           static_cast<double>(d.reference_size));
  e.metric("tcm_drift_window_size", "gauge", "Current recent-prediction window size",
           static_cast<double>(d.window_size));
  e.metric("tcm_drift_drifted", "gauge", "1 when any drift signal is over threshold",
           d.drifted ? 1 : 0);

  // --- measured feedback ----------------------------------------------------
  e.metric("tcm_feedback_enabled", "gauge", "1 when the measured-feedback buffer is installed",
           stats.feedback.enabled ? 1 : 0);
  e.metric("tcm_feedback_offered_total", "counter", "Raw submissions offered to the buffer",
           static_cast<double>(stats.feedback.offered));
  e.metric("tcm_feedback_sampled_total", "counter", "Offers that passed the Bernoulli draw",
           static_cast<double>(stats.feedback.sampled));
  e.metric("tcm_feedback_buffered", "gauge", "Samples currently in the reservoir",
           static_cast<double>(stats.feedback.buffered));

  // --- process / wire -------------------------------------------------------
  e.metric("tcm_uptime_seconds", "gauge", "Seconds since the facade opened",
           stats.uptime_seconds);
  std::string out = e.take();
  // Per-route × status-class request counters. A family with no samples yet
  // (no traffic, or no HTTP front end) is legal exposition: HELP/TYPE only.
  out += "# HELP tcm_http_requests_total HTTP requests handled, by route and status class\n";
  out += "# TYPE tcm_http_requests_total counter\n";
  if (server != nullptr) {
    for (const RouteCount& rc : server->route_counters()) {
      out += "tcm_http_requests_total{route=\"" + rc.path + "\",method=\"" + rc.method +
             "\",code=\"" + rc.status_class + "\"} " + std::to_string(rc.count) + '\n';
    }
    out += "# HELP tcm_http_connections_total HTTP connections accepted\n";
    out += "# TYPE tcm_http_connections_total counter\n";
    out += "tcm_http_connections_total " + std::to_string(server->connections_accepted()) + '\n';
  }
  // Histogram families (end-to-end + per-stage latency, batch size, HTTP
  // handler time) render straight out of the shared registry.
  if (registry != nullptr) out += registry->render_prometheus();
  return out;
}

}  // namespace tcm::api
