#include "api/metrics.h"

#include <charconv>
#include <cmath>
#include <set>

namespace tcm::api {

namespace {

void emit_value(double v, std::string& out) {
  if (std::isnan(v)) {
    out += "NaN";
    return;
  }
  if (std::isinf(v)) {
    out += v > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buf[32];
  auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, end);
}

// Renders snapshot-derived samples while recording every family name into a
// shared `seen` set. The exposition is assembled from three sources (this
// snapshot, the wire-layer counters, the instrument registry); the set is
// what guarantees each family gets exactly one HELP/TYPE preamble across all
// of them — Prometheus rejects duplicates.
class Exposition {
 public:
  explicit Exposition(std::set<std::string>* seen) : seen_(seen) {}

  // One sample, with a HELP/TYPE preamble the first time the family is seen.
  void metric(const char* name, const char* type, const char* help, double value,
              const char* labels = nullptr) {
    if (seen_->insert(name).second) {
      out_ += "# HELP ";
      out_ += name;
      out_ += ' ';
      out_ += help;
      out_ += "\n# TYPE ";
      out_ += name;
      out_ += ' ';
      out_ += type;
      out_ += '\n';
    }
    sample(name, labels, value);
  }

  // Additional labeled sample of the most recent metric() family.
  void sample(const char* name, const char* labels, double value) {
    out_ += name;
    if (labels != nullptr) {
      out_ += '{';
      out_ += labels;
      out_ += '}';
    }
    out_ += ' ';
    emit_value(value, out_);
    out_ += '\n';
  }

  std::string take() { return std::move(out_); }

 private:
  std::set<std::string>* seen_;
  std::string out_;
};

}  // namespace

std::string prometheus_text(const StatsSnapshot& stats, const obs::MetricsRegistry* registry,
                            const HttpServer* server) {
  const serve::ServeStats& s = stats.serve;
  std::set<std::string> seen;
  Exposition e(&seen);

  // --- serving --------------------------------------------------------------
  e.metric("tcm_serve_requests_total", "counter", "Completed predictions",
           static_cast<double>(s.requests));
  e.metric("tcm_serve_failed_requests_total", "counter",
           "Requests that failed featurization or the forward pass",
           static_cast<double>(s.failed_requests));
  e.metric("tcm_serve_batches_total", "counter", "Incumbent forward_batch calls",
           static_cast<double>(s.batches));
  e.metric("tcm_serve_batch_occupancy", "gauge", "Mean requests per batch",
           s.mean_batch_occupancy);
  e.metric("tcm_serve_cache_hits_total", "counter", "Feature cache hits",
           static_cast<double>(s.cache_hits));
  e.metric("tcm_serve_cache_misses_total", "counter", "Feature cache misses",
           static_cast<double>(s.cache_misses));
  // The latency distribution itself lives in the histogram registry
  // (tcm_serve_latency_seconds, tcm_stage_duration_seconds), appended below.
  e.metric("tcm_serve_arena_heap_allocs_total", "counter",
           "Heap allocations by worker inference arenas (plateaus when warm)",
           static_cast<double>(s.arena_heap_allocs));

  // --- model lifecycle ------------------------------------------------------
  e.metric("tcm_model_active_version", "gauge", "Registry version currently receiving traffic",
           static_cast<double>(stats.active_version));
  e.metric("tcm_model_previous_version", "gauge", "Rollback target version (0 when none)",
           static_cast<double>(stats.previous_version));
  e.metric("tcm_model_swaps_total", "counter", "Completed zero-downtime hot swaps",
           static_cast<double>(s.model_swaps));
  e.metric("tcm_shadow_version", "gauge", "Shadow candidate version (0 when none installed)",
           static_cast<double>(s.shadow_version));
  e.metric("tcm_shadow_requests_total", "counter", "Requests also scored by a shadow model",
           static_cast<double>(s.shadow_requests));
  e.metric("tcm_shadow_failures_total", "counter",
           "Shadow forward errors (never client-visible)",
           static_cast<double>(s.shadow_failures));
  e.metric("tcm_shadow_mape", "gauge", "Shadow disagreement MAPE vs the incumbent",
           s.shadow_mape);
  e.metric("tcm_shadow_spearman", "gauge",
           "Shadow rank correlation vs the incumbent over the shared window", s.shadow_spearman);

  // The autopilot/drift families (tcm_autopilot_*, tcm_drift_*) and the
  // queue/cache/process gauges are registry-owned instruments now — the
  // scheduler and workers update them in place, and they render with the
  // registry below instead of being re-derived from this snapshot.

  // --- measured feedback ----------------------------------------------------
  e.metric("tcm_feedback_enabled", "gauge", "1 when the measured-feedback buffer is installed",
           stats.feedback.enabled ? 1 : 0);
  e.metric("tcm_feedback_offered_total", "counter", "Raw submissions offered to the buffer",
           static_cast<double>(stats.feedback.offered));
  e.metric("tcm_feedback_sampled_total", "counter", "Offers that passed the Bernoulli draw",
           static_cast<double>(stats.feedback.sampled));

  // --- process / wire -------------------------------------------------------
  e.metric("tcm_uptime_seconds", "gauge", "Seconds since the facade opened",
           stats.uptime_seconds);
  std::string out = e.take();
  // Per-route × status-class request counters. A family with no samples yet
  // (no traffic, or no HTTP front end) is legal exposition: HELP/TYPE only.
  if (seen.insert("tcm_http_requests_total").second) {
    out += "# HELP tcm_http_requests_total HTTP requests handled, by route and status class\n";
    out += "# TYPE tcm_http_requests_total counter\n";
  }
  if (server != nullptr) {
    for (const RouteCount& rc : server->route_counters()) {
      out += "tcm_http_requests_total{route=\"" + rc.path + "\",method=\"" + rc.method +
             "\",code=\"" + rc.status_class + "\"} " + std::to_string(rc.count) + '\n';
    }
    if (seen.insert("tcm_http_connections_total").second) {
      out += "# HELP tcm_http_connections_total HTTP connections accepted\n";
      out += "# TYPE tcm_http_connections_total counter\n";
    }
    out += "tcm_http_connections_total " + std::to_string(server->connections_accepted()) + '\n';
  }
  // Registry-owned instruments: latency/stage/batch histograms, the drift
  // and autopilot families, queue depth, cache hit ratio, process
  // self-metrics, build info. The shared `seen` set keeps any family that
  // appears in both sources down to one preamble.
  if (registry != nullptr) out += registry->render_prometheus(&seen);
  return out;
}

}  // namespace tcm::api
