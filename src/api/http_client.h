// Minimal blocking HTTP/1.1 client over a keep-alive connection.
//
// Exists for the consumers inside this repo: the wire-surface tests (which
// must drive the server through real sockets, not handler calls), the
// HTTP-overhead bench, and scripted smoke checks. It is intentionally not a
// general client — one connection, Content-Length bodies only, no TLS, no
// redirects.
#pragma once

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "api/http_server.h"
#include "api/status.h"

namespace tcm::api {

class HttpClient {
 public:
  // Connects on first request (or explicitly via connect()); reconnects
  // automatically when the server closed the previous exchange.
  HttpClient(std::string host, int port,
             std::chrono::milliseconds io_timeout = std::chrono::milliseconds(5000));
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  Status connect();
  void disconnect();
  bool connected() const { return fd_ >= 0; }

  // One request/response exchange. `body` is sent with Content-Length (and
  // Content-Type: application/json when non-empty).
  Result<HttpResponse> request(const std::string& method, const std::string& path,
                               const std::string& body = "",
                               const std::vector<std::pair<std::string, std::string>>&
                                   extra_headers = {});

  Result<HttpResponse> get(const std::string& path) { return request("GET", path); }
  Result<HttpResponse> post(const std::string& path, const std::string& body) {
    return request("POST", path, body);
  }

  // Sends raw bytes and reads one response; for tests that need to emit
  // deliberately malformed or truncated requests. `half_close` shuts down
  // the write side after sending (simulating a client that vanished
  // mid-body). The connection is always closed afterwards.
  Result<HttpResponse> raw_exchange(const std::string& bytes, bool half_close = false);

 private:
  Result<HttpResponse> read_response();
  Result<HttpResponse> read_body(const std::string& head, std::string rest,
                                 HttpResponse response);

  std::string host_;
  int port_;
  std::chrono::milliseconds io_timeout_;
  int fd_ = -1;
};

}  // namespace tcm::api
