// Prometheus text exposition (version 0.0.4) of one StatsSnapshot.
//
// This is the ROADMAP's "scheduler events on a metrics endpoint instead of
// stdout": everything the verbose logging path used to print — drift
// signal values and thresholds, trigger/cycle/failure counts, GC activity
// implied by cycle counters — is a scrapeable time series here, next to the
// serving counters (throughput, latency quantiles, cache hit rate, swaps,
// shadow disagreement) and the feedback-buffer gauges. Metric names are
// part of the stable surface: tcm_<subsystem>_<name>[_total|_seconds].
#pragma once

#include <string>

#include "api/wire.h"

namespace tcm::api {

// Renders the full exposition; `http_requests`/`http_connections` are the
// wire-layer counters (pass 0 when serving without the HTTP front end).
std::string prometheus_text(const StatsSnapshot& stats, std::uint64_t http_requests = 0,
                            std::uint64_t http_connections = 0);

}  // namespace tcm::api
