// Prometheus text exposition (version 0.0.4) of one StatsSnapshot.
//
// This is the ROADMAP's "scheduler events on a metrics endpoint instead of
// stdout": everything the verbose logging path used to print — drift
// signal values and thresholds, trigger/cycle/failure counts, GC activity
// implied by cycle counters — is a scrapeable time series here, next to the
// serving counters (throughput, latency quantiles, cache hit rate, swaps,
// shadow disagreement) and the feedback-buffer gauges. Metric names are
// part of the stable surface: tcm_<subsystem>_<name>[_total|_seconds].
#pragma once

#include <string>

#include "api/http_server.h"
#include "api/wire.h"
#include "obs/metrics.h"

namespace tcm::api {

// Renders the full exposition: the counter/gauge snapshot, the wire-layer
// per-route × status-class request counters (when `server` is non-null),
// and every instrument in `registry` (when non-null) — latency histograms,
// the registry-owned drift/autopilot families, queue depth, cache hit
// ratio, process self-metrics. Pass nulls when serving without the HTTP
// front end or without a metrics registry. Each family gets exactly one
// HELP/TYPE preamble even when samples come from more than one source.
std::string prometheus_text(const StatsSnapshot& stats,
                            const obs::MetricsRegistry* registry = nullptr,
                            const HttpServer* server = nullptr);

}  // namespace tcm::api
