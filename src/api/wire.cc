#include "api/wire.h"

#include <cstdio>
#include <limits>
#include <stdexcept>
#include <utility>

namespace tcm::api {

namespace {

// Decoders throw std::invalid_argument internally ("wire error"); the public
// entry points catch and convert, so callers only ever see a Status.
[[noreturn]] void fail(const std::string& what) { throw std::invalid_argument(what); }

const Json& get(const Json& obj, const char* key) {
  if (!obj.is_object()) fail(std::string("expected object holding '") + key + "'");
  const Json* v = obj.find(key);
  if (v == nullptr) fail(std::string("missing field '") + key + "'");
  return *v;
}

std::int64_t get_int(const Json& obj, const char* key) {
  const Json& v = get(obj, key);
  if (!v.is_int()) fail(std::string("field '") + key + "' must be an integer");
  return v.as_int();
}

std::int64_t get_int_or(const Json& obj, const char* key, std::int64_t fallback) {
  const Json* v = obj.is_object() ? obj.find(key) : nullptr;
  if (v == nullptr) return fallback;
  if (!v->is_int()) fail(std::string("field '") + key + "' must be an integer");
  return v->as_int();
}

int get_index(const Json& obj, const char* key) {
  const std::int64_t v = get_int(obj, key);
  if (v < std::numeric_limits<int>::min() || v > std::numeric_limits<int>::max())
    fail(std::string("field '") + key + "' out of range");
  return static_cast<int>(v);
}

bool get_bool_or(const Json& obj, const char* key, bool fallback) {
  const Json* v = obj.is_object() ? obj.find(key) : nullptr;
  if (v == nullptr) return fallback;
  if (!v->is_bool()) fail(std::string("field '") + key + "' must be a boolean");
  return v->as_bool();
}

std::string get_string_or(const Json& obj, const char* key, std::string fallback) {
  const Json* v = obj.is_object() ? obj.find(key) : nullptr;
  if (v == nullptr) return fallback;
  if (!v->is_string()) fail(std::string("field '") + key + "' must be a string");
  return v->as_string();
}

const JsonArray& get_array(const Json& obj, const char* key) {
  const Json& v = get(obj, key);
  if (!v.is_array()) fail(std::string("field '") + key + "' must be an array");
  return v.as_array();
}

// --- access matrices -------------------------------------------------------

Json access_to_json(const ir::BufferAccess& access) {
  Json rows = Json::array();
  for (int r = 0; r < access.matrix.rank(); ++r) {
    Json row = Json::array();
    for (int c = 0; c <= access.matrix.depth(); ++c) row.push_back(Json(access.matrix.at(r, c)));
    rows.push_back(std::move(row));
  }
  Json j = Json::object();
  j.set("buffer", Json(static_cast<std::int64_t>(access.buffer_id)));
  j.set("depth", Json(static_cast<std::int64_t>(access.matrix.depth())));
  j.set("rows", std::move(rows));
  return j;
}

ir::BufferAccess access_from_json(const Json& j) {
  ir::BufferAccess access;
  access.buffer_id = get_index(j, "buffer");
  const int depth = get_index(j, "depth");
  if (depth < 0 || depth > 64) fail("access 'depth' out of range");
  const JsonArray& rows = get_array(j, "rows");
  if (rows.size() > 64) fail("access rank too large");
  access.matrix = ir::AccessMatrix(static_cast<int>(rows.size()), depth);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (!rows[r].is_array()) fail("access row must be an array");
    const JsonArray& row = rows[r].as_array();
    if (row.size() != static_cast<std::size_t>(depth) + 1)
      fail("access row width must equal depth+1");
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (!row[c].is_int()) fail("access coefficients must be integers");
      access.matrix.set(static_cast<int>(r), static_cast<int>(c), row[c].as_int());
    }
  }
  return access;
}

// --- expressions -----------------------------------------------------------

Json expr_to_json(const ir::Expr& e) {
  Json j = Json::object();
  switch (e.kind()) {
    case ir::ExprKind::Constant: j.set("const", Json(e.constant_value())); return j;
    case ir::ExprKind::Load: j.set("load", access_to_json(e.access())); return j;
    case ir::ExprKind::Add: j.set("op", Json("add")); break;
    case ir::ExprKind::Sub: j.set("op", Json("sub")); break;
    case ir::ExprKind::Mul: j.set("op", Json("mul")); break;
    case ir::ExprKind::Div: j.set("op", Json("div")); break;
    case ir::ExprKind::Max: j.set("op", Json("max")); break;
    case ir::ExprKind::Min: j.set("op", Json("min")); break;
  }
  j.set("lhs", expr_to_json(e.lhs()));
  j.set("rhs", expr_to_json(e.rhs()));
  return j;
}

ir::Expr expr_from_json(const Json& j) {
  if (!j.is_object()) fail("expression must be an object");
  if (const Json* c = j.find("const")) {
    if (!c->is_number()) fail("'const' must be a number");
    return ir::Expr::constant(c->as_double());
  }
  if (const Json* l = j.find("load")) return ir::Expr::load(access_from_json(*l));
  const Json& op = get(j, "op");
  if (!op.is_string()) fail("'op' must be a string");
  const std::string& name = op.as_string();
  ir::ExprKind kind;
  if (name == "add")
    kind = ir::ExprKind::Add;
  else if (name == "sub")
    kind = ir::ExprKind::Sub;
  else if (name == "mul")
    kind = ir::ExprKind::Mul;
  else if (name == "div")
    kind = ir::ExprKind::Div;
  else if (name == "max")
    kind = ir::ExprKind::Max;
  else if (name == "min")
    kind = ir::ExprKind::Min;
  else
    fail("unknown expression op '" + name + "'");
  return ir::Expr::binary(kind, expr_from_json(get(j, "lhs")), expr_from_json(get(j, "rhs")));
}

ir::Program program_from_json_or_throw(const Json& j) {
  if (!j.is_object()) fail("program must be an object");
  ir::Program p;
  p.name = get_string_or(j, "name", "");

  for (const Json& bj : get_array(j, "buffers")) {
    ir::Buffer b;
    b.id = static_cast<int>(p.buffers.size());
    b.name = get_string_or(bj, "name", "b" + std::to_string(b.id));
    for (const Json& d : get_array(bj, "dims")) {
      if (!d.is_int() || d.as_int() <= 0) fail("buffer dims must be positive integers");
      b.dims.push_back(d.as_int());
    }
    b.is_input = get_bool_or(bj, "input", false);
    p.buffers.push_back(std::move(b));
  }

  for (const Json& lj : get_array(j, "loops")) {
    ir::LoopNode l;
    l.id = static_cast<int>(p.loops.size());
    l.iter.name = get_string_or(lj, "iter", "i" + std::to_string(l.id));
    l.iter.extent = get_int(lj, "extent");
    if (l.iter.extent <= 0) fail("loop extent must be positive");
    l.parent = static_cast<int>(get_int_or(lj, "parent", -1));
    for (const Json& item : get_array(lj, "body")) {
      if (!item.is_array() || item.as_array().size() != 2) fail("body item must be [kind, index]");
      const JsonArray& pair = item.as_array();
      if (!pair[0].is_string() || !pair[1].is_int()) fail("body item must be [string, int]");
      const std::string& kind = pair[0].as_string();
      const int index = static_cast<int>(pair[1].as_int());
      if (kind == "loop")
        l.body.push_back(ir::BodyItem::loop(index));
      else if (kind == "comp")
        l.body.push_back(ir::BodyItem::computation(index));
      else
        fail("body item kind must be 'loop' or 'comp'");
    }
    l.tail_of = static_cast<int>(get_int_or(lj, "tail_of", -1));
    l.orig_extent = get_int_or(lj, "orig_extent", 0);
    l.skew_of = static_cast<int>(get_int_or(lj, "skew_of", -1));
    l.skew_factor = get_int_or(lj, "skew_factor", 0);
    l.skew_is_sum = get_bool_or(lj, "skew_is_sum", false);
    l.parallel = get_bool_or(lj, "parallel", false);
    l.vector_width = static_cast<int>(get_int_or(lj, "vector_width", 0));
    l.unroll = static_cast<int>(get_int_or(lj, "unroll", 0));
    if (const Json* tags = lj.find("tags")) {
      l.tag_interchanged = get_bool_or(*tags, "interchanged", false);
      l.tag_tiled = get_bool_or(*tags, "tiled", false);
      l.tag_tile_factor = get_int_or(*tags, "tile_factor", 0);
      l.tag_fused = get_bool_or(*tags, "fused", false);
      l.tag_skewed = get_bool_or(*tags, "skewed", false);
      l.tag_skew_factor = get_int_or(*tags, "skew_factor", 0);
      l.tag_unimodular = get_bool_or(*tags, "unimodular", false);
    }
    p.loops.push_back(std::move(l));
  }

  for (const Json& cj : get_array(j, "comps")) {
    ir::Computation c;
    c.id = static_cast<int>(p.comps.size());
    c.name = get_string_or(cj, "name", "c" + std::to_string(c.id));
    c.store = access_from_json(get(cj, "store"));
    c.rhs = expr_from_json(get(cj, "rhs"));
    c.is_reduction = get_bool_or(cj, "reduction", false);
    p.comps.push_back(std::move(c));
  }

  for (const Json& r : get_array(j, "roots")) {
    if (!r.is_int()) fail("roots must be integers");
    p.roots.push_back(static_cast<int>(r.as_int()));
  }

  // loop_id is structural, not transmitted: derive it from the tree (and
  // bounds-check body references while at it, before validate() walks them).
  const int num_loops = static_cast<int>(p.loops.size());
  const int num_comps = static_cast<int>(p.comps.size());
  for (const ir::LoopNode& l : p.loops) {
    for (const ir::BodyItem& item : l.body) {
      if (item.kind == ir::BodyItem::Kind::Loop) {
        if (item.index < 0 || item.index >= num_loops) fail("body references unknown loop");
      } else {
        if (item.index < 0 || item.index >= num_comps) fail("body references unknown comp");
        p.comps[static_cast<std::size_t>(item.index)].loop_id = l.id;
      }
    }
  }
  for (int root : p.roots)
    if (root < 0 || root >= num_loops) fail("roots reference unknown loop");

  if (auto problem = p.validate()) fail("invalid program: " + *problem);
  return p;
}

transforms::Schedule schedule_from_json_or_throw(const Json& j) {
  if (!j.is_object()) fail("schedule must be an object");
  transforms::Schedule s;
  if (const Json* a = j.find("fuse")) {
    if (!a->is_array()) fail("'fuse' must be an array");
    for (const Json& f : a->as_array())
      s.fusions.push_back({get_index(f, "a"), get_index(f, "b"),
                           static_cast<int>(get_int_or(f, "depth", 1))});
  }
  if (const Json* a = j.find("skew")) {
    if (!a->is_array()) fail("'skew' must be an array");
    for (const Json& f : a->as_array())
      s.skews.push_back({get_index(f, "comp"), static_cast<int>(get_int_or(f, "level", 0)),
                         get_int(f, "factor")});
  }
  if (const Json* a = j.find("unimodular")) {
    if (!a->is_array()) fail("'unimodular' must be an array");
    for (const Json& f : a->as_array()) {
      transforms::UnimodularSpec u;
      u.comp = get_index(f, "comp");
      u.level = static_cast<int>(get_int_or(f, "level", 0));
      for (const Json& c : get_array(f, "coeffs")) {
        if (!c.is_int()) fail("unimodular coeffs must be integers");
        u.coeffs.push_back(c.as_int());
      }
      if (u.coeffs.size() != 4 && u.coeffs.size() != 9)
        fail("unimodular 'coeffs' must hold a row-major 2x2 or 3x3 matrix");
      s.unimodulars.push_back(std::move(u));
    }
  }
  if (const Json* a = j.find("interchange")) {
    if (!a->is_array()) fail("'interchange' must be an array");
    for (const Json& f : a->as_array())
      s.interchanges.push_back({get_index(f, "comp"), get_index(f, "a"), get_index(f, "b")});
  }
  if (const Json* a = j.find("tile")) {
    if (!a->is_array()) fail("'tile' must be an array");
    for (const Json& f : a->as_array()) {
      transforms::TileSpec t;
      t.comp = get_index(f, "comp");
      t.level = static_cast<int>(get_int_or(f, "level", 0));
      for (const Json& sz : get_array(f, "sizes")) {
        if (!sz.is_int() || sz.as_int() <= 0) fail("tile sizes must be positive integers");
        t.sizes.push_back(sz.as_int());
      }
      s.tiles.push_back(std::move(t));
    }
  }
  if (const Json* a = j.find("unroll")) {
    if (!a->is_array()) fail("'unroll' must be an array");
    for (const Json& f : a->as_array())
      s.unrolls.push_back({get_index(f, "comp"), static_cast<int>(get_int_or(f, "factor", 2))});
  }
  if (const Json* a = j.find("parallel")) {
    if (!a->is_array()) fail("'parallel' must be an array");
    for (const Json& f : a->as_array())
      s.parallels.push_back({get_index(f, "comp"), static_cast<int>(get_int_or(f, "level", 0))});
  }
  if (const Json* a = j.find("vectorize")) {
    if (!a->is_array()) fail("'vectorize' must be an array");
    for (const Json& f : a->as_array())
      s.vectorizes.push_back({get_index(f, "comp"), static_cast<int>(get_int_or(f, "width", 8))});
  }
  return s;
}

Json metrics_to_json(const model::EvalMetrics& m) {
  Json j = Json::object();
  j.set("mape", Json(m.mape));
  j.set("pearson", Json(m.pearson));
  j.set("spearman", Json(m.spearman));
  j.set("r2", Json(m.r2));
  j.set("mse", Json(m.mse));
  j.set("n", Json(static_cast<std::int64_t>(m.n)));
  return j;
}

Json drift_signal_to_json(const serve::DriftSignal& s) {
  Json j = Json::object();
  j.set("value", Json(s.value));
  j.set("threshold", Json(s.threshold));
  j.set("fired", Json(s.fired));
  j.set("samples", Json(s.samples));
  return j;
}

}  // namespace

// ---------------------------------------------------------------------------
// Program / Schedule.
// ---------------------------------------------------------------------------

Json to_json(const ir::Program& program) {
  Json j = Json::object();
  if (!program.name.empty()) j.set("name", Json(program.name));

  Json buffers = Json::array();
  for (const ir::Buffer& b : program.buffers) {
    Json bj = Json::object();
    bj.set("name", Json(b.name));
    Json dims = Json::array();
    for (std::int64_t d : b.dims) dims.push_back(Json(d));
    bj.set("dims", std::move(dims));
    if (b.is_input) bj.set("input", Json(true));
    buffers.push_back(std::move(bj));
  }
  j.set("buffers", std::move(buffers));

  Json loops = Json::array();
  for (const ir::LoopNode& l : program.loops) {
    Json lj = Json::object();
    lj.set("iter", Json(l.iter.name));
    lj.set("extent", Json(l.iter.extent));
    lj.set("parent", Json(static_cast<std::int64_t>(l.parent)));
    Json body = Json::array();
    for (const ir::BodyItem& item : l.body) {
      Json pair = Json::array();
      pair.push_back(Json(item.kind == ir::BodyItem::Kind::Loop ? "loop" : "comp"));
      pair.push_back(Json(static_cast<std::int64_t>(item.index)));
      body.push_back(std::move(pair));
    }
    lj.set("body", std::move(body));
    if (l.tail_of != -1) lj.set("tail_of", Json(static_cast<std::int64_t>(l.tail_of)));
    if (l.orig_extent != 0) lj.set("orig_extent", Json(l.orig_extent));
    if (l.skew_of != -1) lj.set("skew_of", Json(static_cast<std::int64_t>(l.skew_of)));
    if (l.skew_factor != 0) lj.set("skew_factor", Json(l.skew_factor));
    if (l.skew_is_sum) lj.set("skew_is_sum", Json(true));
    if (l.parallel) lj.set("parallel", Json(true));
    if (l.vector_width != 0) lj.set("vector_width", Json(static_cast<std::int64_t>(l.vector_width)));
    if (l.unroll != 0) lj.set("unroll", Json(static_cast<std::int64_t>(l.unroll)));
    if (l.tag_interchanged || l.tag_tiled || l.tag_fused || l.tag_tile_factor != 0 ||
        l.tag_skewed || l.tag_skew_factor != 0 || l.tag_unimodular) {
      Json tags = Json::object();
      if (l.tag_interchanged) tags.set("interchanged", Json(true));
      if (l.tag_tiled) tags.set("tiled", Json(true));
      if (l.tag_tile_factor != 0) tags.set("tile_factor", Json(l.tag_tile_factor));
      if (l.tag_fused) tags.set("fused", Json(true));
      if (l.tag_skewed) tags.set("skewed", Json(true));
      if (l.tag_skew_factor != 0) tags.set("skew_factor", Json(l.tag_skew_factor));
      if (l.tag_unimodular) tags.set("unimodular", Json(true));
      lj.set("tags", std::move(tags));
    }
    loops.push_back(std::move(lj));
  }
  j.set("loops", std::move(loops));

  Json comps = Json::array();
  for (const ir::Computation& c : program.comps) {
    Json cj = Json::object();
    cj.set("name", Json(c.name));
    cj.set("store", access_to_json(c.store));
    cj.set("rhs", expr_to_json(c.rhs));
    if (c.is_reduction) cj.set("reduction", Json(true));
    comps.push_back(std::move(cj));
  }
  j.set("comps", std::move(comps));

  Json roots = Json::array();
  for (int r : program.roots) roots.push_back(Json(static_cast<std::int64_t>(r)));
  j.set("roots", std::move(roots));
  return j;
}

Result<ir::Program> program_from_json(const Json& j) {
  try {
    return program_from_json_or_throw(j);
  } catch (const std::exception& e) {
    return Status::invalid_argument(e.what());
  }
}

Json to_json(const transforms::Schedule& schedule) {
  Json j = Json::object();
  if (!schedule.fusions.empty()) {
    Json a = Json::array();
    for (const transforms::FuseSpec& f : schedule.fusions) {
      Json o = Json::object();
      o.set("a", Json(static_cast<std::int64_t>(f.comp_a)));
      o.set("b", Json(static_cast<std::int64_t>(f.comp_b)));
      o.set("depth", Json(static_cast<std::int64_t>(f.depth)));
      a.push_back(std::move(o));
    }
    j.set("fuse", std::move(a));
  }
  if (!schedule.skews.empty()) {
    Json a = Json::array();
    for (const transforms::SkewSpec& f : schedule.skews) {
      Json o = Json::object();
      o.set("comp", Json(static_cast<std::int64_t>(f.comp)));
      o.set("level", Json(static_cast<std::int64_t>(f.level_a)));
      o.set("factor", Json(f.factor));
      a.push_back(std::move(o));
    }
    j.set("skew", std::move(a));
  }
  if (!schedule.unimodulars.empty()) {
    Json a = Json::array();
    for (const transforms::UnimodularSpec& f : schedule.unimodulars) {
      Json o = Json::object();
      o.set("comp", Json(static_cast<std::int64_t>(f.comp)));
      o.set("level", Json(static_cast<std::int64_t>(f.level)));
      Json coeffs = Json::array();
      for (std::int64_t c : f.coeffs) coeffs.push_back(Json(c));
      o.set("coeffs", std::move(coeffs));
      a.push_back(std::move(o));
    }
    j.set("unimodular", std::move(a));
  }
  if (!schedule.interchanges.empty()) {
    Json a = Json::array();
    for (const transforms::InterchangeSpec& f : schedule.interchanges) {
      Json o = Json::object();
      o.set("comp", Json(static_cast<std::int64_t>(f.comp)));
      o.set("a", Json(static_cast<std::int64_t>(f.level_a)));
      o.set("b", Json(static_cast<std::int64_t>(f.level_b)));
      a.push_back(std::move(o));
    }
    j.set("interchange", std::move(a));
  }
  if (!schedule.tiles.empty()) {
    Json a = Json::array();
    for (const transforms::TileSpec& f : schedule.tiles) {
      Json o = Json::object();
      o.set("comp", Json(static_cast<std::int64_t>(f.comp)));
      o.set("level", Json(static_cast<std::int64_t>(f.level)));
      Json sizes = Json::array();
      for (std::int64_t s : f.sizes) sizes.push_back(Json(s));
      o.set("sizes", std::move(sizes));
      a.push_back(std::move(o));
    }
    j.set("tile", std::move(a));
  }
  if (!schedule.unrolls.empty()) {
    Json a = Json::array();
    for (const transforms::UnrollSpec& f : schedule.unrolls) {
      Json o = Json::object();
      o.set("comp", Json(static_cast<std::int64_t>(f.comp)));
      o.set("factor", Json(static_cast<std::int64_t>(f.factor)));
      a.push_back(std::move(o));
    }
    j.set("unroll", std::move(a));
  }
  if (!schedule.parallels.empty()) {
    Json a = Json::array();
    for (const transforms::ParallelizeSpec& f : schedule.parallels) {
      Json o = Json::object();
      o.set("comp", Json(static_cast<std::int64_t>(f.comp)));
      o.set("level", Json(static_cast<std::int64_t>(f.level)));
      a.push_back(std::move(o));
    }
    j.set("parallel", std::move(a));
  }
  if (!schedule.vectorizes.empty()) {
    Json a = Json::array();
    for (const transforms::VectorizeSpec& f : schedule.vectorizes) {
      Json o = Json::object();
      o.set("comp", Json(static_cast<std::int64_t>(f.comp)));
      o.set("width", Json(static_cast<std::int64_t>(f.width)));
      a.push_back(std::move(o));
    }
    j.set("vectorize", std::move(a));
  }
  return j;
}

Result<transforms::Schedule> schedule_from_json(const Json& j) {
  try {
    return schedule_from_json_or_throw(j);
  } catch (const std::exception& e) {
    return Status::invalid_argument(e.what());
  }
}

// ---------------------------------------------------------------------------
// Requests / responses.
// ---------------------------------------------------------------------------

Result<PredictRequest> predict_request_from_json(const Json& j) {
  try {
    if (!j.is_object()) fail("request body must be a JSON object");
    const std::int64_t version = get_int_or(j, "api_version", kApiVersion);
    if (version != kApiVersion)
      fail("unsupported api_version " + std::to_string(version) + " (this server speaks " +
           std::to_string(kApiVersion) + ")");
    PredictRequest req;
    req.program = program_from_json_or_throw(get(j, "program"));
    const Json* single = j.find("schedule");
    const Json* many = j.find("schedules");
    if ((single == nullptr) == (many == nullptr))
      fail("provide exactly one of 'schedule' or 'schedules'");
    if (single != nullptr) {
      req.schedules.push_back(schedule_from_json_or_throw(*single));
    } else {
      if (!many->is_array()) fail("'schedules' must be an array");
      if (many->as_array().empty()) fail("'schedules' must not be empty");
      for (const Json& s : many->as_array())
        req.schedules.push_back(schedule_from_json_or_throw(s));
    }
    return req;
  } catch (const std::exception& e) {
    return Status::invalid_argument(e.what());
  }
}

Json to_json(const PredictResponse& response) {
  Json j = Json::object();
  j.set("api_version", Json(static_cast<std::int64_t>(kApiVersion)));
  Json preds = Json::array();
  for (const PredictResponse::Item& item : response.predictions) {
    Json o = Json::object();
    o.set("speedup", Json(item.speedup));
    o.set("model_version", Json(static_cast<std::int64_t>(item.model_version)));
    preds.push_back(std::move(o));
  }
  j.set("predictions", std::move(preds));
  return j;
}

Result<SearchRequest> search_request_from_json(const Json& j) {
  try {
    if (!j.is_object()) fail("request body must be a JSON object");
    const std::int64_t version = get_int_or(j, "api_version", kApiVersion);
    if (version != kApiVersion)
      fail("unsupported api_version " + std::to_string(version) + " (this server speaks " +
           std::to_string(kApiVersion) + ")");
    SearchRequest req;
    req.program = program_from_json_or_throw(get(j, "program"));
    const std::string method = get_string_or(j, "method", "beam");
    if (method == "beam") {
      req.method = jobs::SearchMethod::kBeam;
    } else if (method == "mcts") {
      req.method = jobs::SearchMethod::kMcts;
    } else {
      fail("'method' must be \"beam\" or \"mcts\", got \"" + method + "\"");
    }
    const std::int64_t width = get_int_or(j, "beam_width", req.beam_width);
    if (width < 1 || width > 64) fail("'beam_width' must be in [1, 64]");
    req.beam_width = static_cast<int>(width);
    const std::int64_t iters = get_int_or(j, "iterations", req.mcts_iterations);
    if (iters < 1 || iters > 100000) fail("'iterations' must be in [1, 100000]");
    req.mcts_iterations = static_cast<int>(iters);
    return req;
  } catch (const std::exception& e) {
    return Status::invalid_argument(e.what());
  }
}

Json to_json(const jobs::SearchJobInfo& info) {
  Json j = Json::object();
  j.set("api_version", Json(static_cast<std::int64_t>(kApiVersion)));
  j.set("job_id", Json(info.id));
  j.set("state", Json(std::string(jobs::to_string(info.state))));
  j.set("method", Json(std::string(info.method == jobs::SearchMethod::kMcts ? "mcts" : "beam")));
  j.set("reused", Json(info.reused));
  j.set("warm_started", Json(info.warm_started));
  j.set("progress", Json(info.progress));
  j.set("evaluations", Json(info.evaluations));
  j.set("best_speedup", Json(info.best_speedup));
  j.set("baseline_speedup", Json(info.baseline_speedup));
  j.set("wall_seconds", Json(info.wall_seconds));
  // u64 exceeds JSON's interoperable integer range; decimal string (the
  // schedule-memory file uses the same spelling).
  j.set("program_fingerprint", Json(std::to_string(info.program_fingerprint)));
  j.set("schedule", to_json(info.best_schedule));
  if (!info.error.empty()) j.set("error", Json(info.error));
  return j;
}

Json to_json(const ModelInfo& info) {
  const registry::ModelManifest& m = info.manifest;
  Json j = Json::object();
  j.set("version", Json(static_cast<std::int64_t>(m.version)));
  j.set("kind", Json(m.model_kind));
  j.set("parent_version", Json(static_cast<std::int64_t>(m.parent_version)));
  j.set("created_unix", Json(m.created_unix));
  j.set("provenance", Json(m.provenance));
  // uint64 does not fit JSON's interoperable integer range; hex string.
  char hash[19];
  std::snprintf(hash, sizeof hash, "%016llx", static_cast<unsigned long long>(m.feature_hash));
  j.set("feature_hash", Json(std::string(hash)));
  j.set("metrics", metrics_to_json(m.metrics));
  j.set("active", Json(info.active));
  j.set("previous", Json(info.previous));
  return j;
}

Json to_json(const StatsSnapshot& stats) {
  Json j = Json::object();
  j.set("api_version", Json(static_cast<std::int64_t>(kApiVersion)));
  j.set("active_version", Json(static_cast<std::int64_t>(stats.active_version)));
  j.set("previous_version", Json(static_cast<std::int64_t>(stats.previous_version)));
  j.set("uptime_seconds", Json(stats.uptime_seconds));

  const serve::ServeStats& s = stats.serve;
  Json serve = Json::object();
  serve.set("requests", Json(s.requests));
  serve.set("batches", Json(s.batches));
  serve.set("failed_requests", Json(s.failed_requests));
  serve.set("cache_hits", Json(s.cache_hits));
  serve.set("cache_misses", Json(s.cache_misses));
  serve.set("mean_batch_occupancy", Json(s.mean_batch_occupancy));
  serve.set("arena_heap_allocs", Json(s.arena_heap_allocs));
  serve.set("p50_latency_seconds", Json(s.p50_latency));
  serve.set("p99_latency_seconds", Json(s.p99_latency));
  serve.set("model_swaps", Json(s.model_swaps));
  serve.set("shadow_version", Json(static_cast<std::int64_t>(s.shadow_version)));
  serve.set("shadow_requests", Json(s.shadow_requests));
  serve.set("shadow_failures", Json(s.shadow_failures));
  serve.set("shadow_mape", Json(s.shadow_mape));
  serve.set("shadow_spearman", Json(s.shadow_spearman));
  j.set("serve", std::move(serve));

  Json autopilot = Json::object();
  autopilot.set("enabled", Json(stats.autopilot.enabled));
  if (stats.autopilot.enabled) {
    autopilot.set("polls", Json(stats.autopilot.polls));
    autopilot.set("cycles", Json(stats.autopilot.cycles));
    autopilot.set("triggers", Json(stats.autopilot.triggers));
    autopilot.set("cycle_failures", Json(stats.autopilot.cycle_failures));
    const serve::DriftReport& d = stats.autopilot.last;
    Json drift = Json::object();
    drift.set("psi", drift_signal_to_json(d.psi));
    drift.set("ks", drift_signal_to_json(d.ks));
    drift.set("failure_rate", drift_signal_to_json(d.failure_rate));
    drift.set("shadow_mape", drift_signal_to_json(d.shadow_mape));
    drift.set("shadow_spearman", drift_signal_to_json(d.shadow_spearman));
    drift.set("reference_size", Json(static_cast<std::int64_t>(d.reference_size)));
    drift.set("window_size", Json(static_cast<std::int64_t>(d.window_size)));
    drift.set("drifted", Json(d.drifted));
    drift.set("triggered", Json(d.triggered));
    if (!d.reason.empty()) drift.set("reason", Json(d.reason));
    autopilot.set("drift", std::move(drift));
  }
  j.set("autopilot", std::move(autopilot));

  Json feedback = Json::object();
  feedback.set("enabled", Json(stats.feedback.enabled));
  if (stats.feedback.enabled) {
    feedback.set("offered", Json(stats.feedback.offered));
    feedback.set("sampled", Json(stats.feedback.sampled));
    feedback.set("buffered", Json(static_cast<std::int64_t>(stats.feedback.buffered)));
  }
  j.set("feedback", std::move(feedback));

  Json search = Json::object();
  search.set("enabled", Json(stats.search.enabled));
  if (stats.search.enabled) {
    const jobs::SearchJobStats& sj = stats.search.jobs;
    search.set("submitted", Json(static_cast<std::int64_t>(sj.submitted)));
    search.set("done", Json(static_cast<std::int64_t>(sj.done)));
    search.set("failed", Json(static_cast<std::int64_t>(sj.failed)));
    search.set("cancelled", Json(static_cast<std::int64_t>(sj.cancelled)));
    search.set("reused", Json(static_cast<std::int64_t>(sj.reused)));
    search.set("running", Json(static_cast<std::int64_t>(sj.running)));
    search.set("queued", Json(static_cast<std::int64_t>(sj.queued)));
    Json memory = Json::object();
    memory.set("entries", Json(static_cast<std::int64_t>(sj.memory.entries)));
    memory.set("exact_hits", Json(static_cast<std::int64_t>(sj.memory.exact_hits)));
    memory.set("shape_hits", Json(static_cast<std::int64_t>(sj.memory.shape_hits)));
    memory.set("misses", Json(static_cast<std::int64_t>(sj.memory.misses)));
    memory.set("stores", Json(static_cast<std::int64_t>(sj.memory.stores)));
    search.set("memory", std::move(memory));
  }
  j.set("search", std::move(search));
  return j;
}

Json error_body(const Status& status) {
  Json err = Json::object();
  err.set("code", Json(std::string(status_code_name(status.code()))));
  err.set("http", Json(static_cast<std::int64_t>(http_status(status.code()))));
  err.set("message", Json(status.message()));
  Json j = Json::object();
  j.set("error", std::move(err));
  return j;
}

}  // namespace tcm::api
