#include "api/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace tcm::api {

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::Object) return nullptr;
  for (const JsonMember& m : object_)
    if (m.first == key) return &m.second;
  return nullptr;
}

void Json::set(std::string key, Json value) {
  for (JsonMember& m : object_)
    if (m.first == key) {
      m.second = std::move(value);
      return;
    }
  object_.emplace_back(std::move(key), std::move(value));
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void dump_double(double v, std::string& out) {
  // JSON has no Inf/NaN; a failed model could in principle produce one, and
  // emitting invalid JSON would poison the whole response. null is the
  // conventional lossy encoding.
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, end);
}

}  // namespace

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::Null: out += "null"; return;
    case Type::Bool: out += bool_ ? "true" : "false"; return;
    case Type::Int: {
      char buf[24];
      auto [end, ec] = std::to_chars(buf, buf + sizeof buf, int_);
      out.append(buf, end);
      return;
    }
    case Type::Double: dump_double(double_, out); return;
    case Type::String: dump_string(string_, out); return;
    case Type::Array: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out += ',';
        array_[i].dump_to(out);
      }
      out += ']';
      return;
    }
    case Type::Object: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) out += ',';
        dump_string(object_[i].first, out);
        out += ':';
        object_[i].second.dump_to(out);
      }
      out += '}';
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  out.reserve(64);
  dump_to(out);
  return out;
}

// ---------------------------------------------------------------------------
// Parser: recursive descent over a string_view cursor.
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  Result<Json> parse() {
    skip_ws();
    Json v;
    Status s = parse_value(v, 0);
    if (!s.ok()) return s;
    skip_ws();
    if (pos_ != text_.size())
      return error("trailing characters after JSON document");
    return v;
  }

 private:
  Status error(const std::string& what) const {
    return Status::invalid_argument("JSON parse error at byte " + std::to_string(pos_) + ": " +
                                    what);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  bool consume(char c) {
    if (eof() || peek() != c) return false;
    ++pos_;
    return true;
  }

  Status parse_value(Json& out, std::size_t depth) {
    if (depth > max_depth_) return error("nesting too deep");
    if (eof()) return error("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': return parse_string_value(out);
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          out = Json(true);
          return Status();
        }
        return error("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          out = Json(false);
          return Status();
        }
        return error("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          out = Json();
          return Status();
        }
        return error("invalid literal");
      default: return parse_number(out);
    }
  }

  Status parse_object(Json& out, std::size_t depth) {
    ++pos_;  // '{'
    JsonObject members;
    skip_ws();
    if (consume('}')) {
      out = Json(std::move(members));
      return Status();
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') return error("expected object key");
      std::string key;
      Status s = parse_string(key);
      if (!s.ok()) return s;
      skip_ws();
      if (!consume(':')) return error("expected ':' after object key");
      skip_ws();
      Json value;
      s = parse_value(value, depth + 1);
      if (!s.ok()) return s;
      members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) break;
      return error("expected ',' or '}' in object");
    }
    out = Json(std::move(members));
    return Status();
  }

  Status parse_array(Json& out, std::size_t depth) {
    ++pos_;  // '['
    JsonArray items;
    skip_ws();
    if (consume(']')) {
      out = Json(std::move(items));
      return Status();
    }
    while (true) {
      skip_ws();
      Json value;
      Status s = parse_value(value, depth + 1);
      if (!s.ok()) return s;
      items.push_back(std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) break;
      return error("expected ',' or ']' in array");
    }
    out = Json(std::move(items));
    return Status();
  }

  Status parse_string_value(Json& out) {
    std::string s;
    Status st = parse_string(s);
    if (!st.ok()) return st;
    out = Json(std::move(s));
    return Status();
  }

  void append_utf8(std::uint32_t cp, std::string& out) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<std::size_t>(i)];
      out <<= 4;
      if (c >= '0' && c <= '9')
        out |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      else
        return false;
    }
    pos_ += 4;
    return true;
  }

  Status parse_string(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (true) {
      if (eof()) return error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return Status();
      if (static_cast<unsigned char>(c) < 0x20) return error("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) return error("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(cp)) return error("invalid \\u escape");
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need the pair
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u')
              return error("lone high surrogate");
            pos_ += 2;
            std::uint32_t low = 0;
            if (!parse_hex4(low) || low < 0xDC00 || low > 0xDFFF)
              return error("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return error("lone low surrogate");
          }
          append_utf8(cp, out);
          break;
        }
        default: return error("invalid escape character");
      }
    }
  }

  Status parse_number(Json& out) {
    const std::size_t start = pos_;
    if (consume('-')) {
      // fallthrough to digits
    }
    if (eof() || peek() < '0' || peek() > '9') return error("invalid number");
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    bool integral = true;
    if (!eof() && peek() == '.') {
      integral = false;
      ++pos_;
      if (eof() || peek() < '0' || peek() > '9') return error("digits required after '.'");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || peek() < '0' || peek() > '9') return error("digits required in exponent");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (integral) {
      std::int64_t iv = 0;
      auto [p, ec] = std::from_chars(token.data(), token.data() + token.size(), iv);
      if (ec == std::errc() && p == token.data() + token.size()) {
        out = Json(iv);
        return Status();
      }
      // Out of int64 range: fall through to double.
    }
    double dv = 0;
    auto [p, ec] = std::from_chars(token.data(), token.data() + token.size(), dv);
    if (ec == std::errc::result_out_of_range) {
      // RFC 8259 permits unrepresentable magnitudes; saturate like strtod.
      out = Json(dv);
      return Status();
    }
    if (ec != std::errc() || p != token.data() + token.size()) return error("invalid number");
    out = Json(dv);
    return Status();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t max_depth_;
};

}  // namespace

Result<Json> Json::parse(std::string_view text, std::size_t max_depth) {
  return Parser(text, max_depth).parse();
}

}  // namespace tcm::api
