// Shared low-level helpers of the HTTP server and client. Internal to
// src/api/ — not part of the public surface.
#pragma once

#include <sys/socket.h>

#include <cctype>
#include <string_view>

namespace tcm::api::http_io {

inline bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  return true;
}

// send() with MSG_NOSIGNAL so a peer that closed mid-transfer surfaces as
// an error return instead of SIGPIPE terminating the process.
inline bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) return false;
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace tcm::api::http_io
