// Binds the v1 HTTP surface onto an api::Service.
//
// Route table (all bodies JSON unless noted; errors use wire.h's Status
// body and the http_status() mapping):
//
//   GET  /healthz                 {"status":"serving","active_version":N}
//   GET  /metrics                 Prometheus text exposition (metrics.h)
//   GET  /v1/stats                StatsSnapshot
//   GET  /v1/models               {"active","previous","models":[ModelInfo]}
//   POST /v1/models/promote       {"version":N} -> {"active":N}
//   POST /v1/models/rollback      {} -> {"active":M}
//   POST /v1/predict              PredictRequest -> PredictResponse
//   POST /v1/search               SearchRequest -> 202 + job snapshot
//                                 (200 when answered from the schedule
//                                 memory: "reused":true, already DONE)
//   GET  /v1/search               {"jobs":[snapshot,...]} newest first
//   GET  /v1/search/{id}          job snapshot (poll until terminal)
//   GET  /v1/search/{id}/events   ndjson progress stream (chunked; one
//                                 line per evaluation batch, ends at a
//                                 terminal state)
//   DELETE /v1/search/{id}        cancel -> post-cancel snapshot
//
// The handlers are thin: decode JSON -> call the façade -> encode. All
// state, locking and error mapping live in api::Service; anything the
// handlers themselves might throw is caught by HttpServer::dispatch and
// mapped to 500, so no exception can cross the wire layer either.
#pragma once

#include "api/http_server.h"
#include "api/service.h"

namespace tcm::api {

// Registers every v1 route plus /healthz and /metrics on `server`. The
// service must outlive the server. Call before HttpServer::start().
void bind_routes(HttpServer& server, Service& service);

}  // namespace tcm::api
