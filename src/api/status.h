// Typed error model of the stable tcm::api façade.
//
// The subsystems below the façade grew three inconsistent error
// conventions: model/ and dataset code throws, the registry throws
// std::runtime_error for I/O and integrity failures, and serve/ surfaces
// errors as exceptions on futures. A caller embedding the cost model in an
// outer search loop (LOOPer/MetaTune style) — or reaching it over HTTP —
// needs exactly one convention: every façade entry point returns a Status
// (or a Result<T> carrying one), and no exception ever crosses the api
// boundary. The HTTP layer maps StatusCode onto response codes via
// http_status(); the JSON error body uses status_code_name().
//
// Codes follow the canonical gRPC/absl palette (the subset this system
// needs), so the mapping to HTTP and to client expectations is boring and
// well-trodden:
//   kOk                 200  success
//   kInvalidArgument    400  malformed request/program/schedule/JSON
//   kNotFound           404  unknown route or model version
//   kFailedPrecondition 409  corrupt checkpoint, empty registry, no rollback
//   kResourceExhausted  429  load shed by admission control (Retry-After
//                            set; oversized request bodies are rejected
//                            with a transport-level 413 before parsing)
//   kUnimplemented      501  method not supported on this route
//   kUnavailable        503  service shutting down / not yet serving
//   kDeadlineExceeded   504  request deadline expired before inference
//   kInternal           500  everything that escaped classification
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace tcm::api {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kResourceExhausted,
  kUnimplemented,
  kUnavailable,
  kDeadlineExceeded,
  kInternal,
};

// Stable SCREAMING_SNAKE name ("INVALID_ARGUMENT", ...): the `code` field of
// the wire error body. Part of the v1 surface; never rename.
std::string_view status_code_name(StatusCode code);

// HTTP response status the code maps to (see table above).
int http_status(StatusCode code);

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status invalid_argument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status not_found(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status failed_precondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status resource_exhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status deadline_exceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: bad depth".
  std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Maps an exception caught at the façade boundary to a Status. The
// subsystems use std::invalid_argument for caller mistakes (shape/legality
// checks in model/, nn/, transforms/) and std::runtime_error for I/O and
// integrity failures (Dataset::load, registry manifests, checkpoint
// loading); everything else is internal.
Status status_from_exception(const std::exception& e);

// Value-or-Status. Deliberately tiny: the façade's needs are
// construct-from-value, construct-from-error, test ok(), read.
// Reading value() on an error (or status() semantics) is a programming
// error and terminates via the optional's checked access.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}        // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (status_.ok()) status_ = Status::internal("Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() { return value_.value(); }
  const T& value() const { return value_.value(); }
  T&& take() { return std::move(value_.value()); }

  T* operator->() { return &value_.value(); }
  const T* operator->() const { return &value_.value(); }
  T& operator*() { return value_.value(); }
  const T& operator*() const { return value_.value(); }

 private:
  Status status_;  // OK iff value_ holds
  std::optional<T> value_;
};

}  // namespace tcm::api
