// Dependency-free HTTP/1.1 server for the versioned serving surface.
//
// Scope: exactly what a model-serving endpoint on a trusted network needs —
// plain TCP (TLS terminates at the proxy, as with every in-cluster metrics/
// inference port), HTTP/1.1 with keep-alive and Expect: 100-continue,
// exact-path routing, Content-Length bodies. No chunked encoding, no
// pipelining beyond sequential keep-alive, no compression.
//
// Hardening over the raw socket (all enforced before a handler runs):
//   - header block capped at max_header_bytes  -> 431, connection closed
//   - declared body capped at max_body_bytes   -> 413 + Status body; the
//     oversized payload is never read into memory
//   - truncated bodies (peer closes or stalls past io_timeout mid-body)
//     -> 400 / connection dropped, never a blocked worker
//   - malformed request lines / headers        -> 400 + Status body
//   - unknown path -> 404, known path with wrong method -> 405 (both with
//     a JSON Status body)
//   - a handler that throws is caught and mapped to 500 + Status body: the
//     no-exceptions-escape guarantee of the api boundary holds on the wire
//     layer too.
//
// Threading: one acceptor thread plus a fixed pool of connection workers;
// an open connection occupies its worker until it closes or times out
// (requests on one connection are sequential by HTTP semantics). Handlers
// therefore run concurrently up to num_threads and must be thread-safe —
// the rest.h handlers delegate straight to api::Service, whose contract
// covers that.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "api/status.h"

namespace tcm::api {

struct HttpRequest {
  std::string method;   // uppercase, e.g. "GET"
  std::string path;     // target without the query string
  std::string query;    // raw query string ("" when absent)
  std::string body;
  std::vector<std::pair<std::string, std::string>> headers;  // as received

  // Case-insensitive header lookup; nullptr when absent.
  const std::string* header(std::string_view name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;

  static HttpResponse json(int status, std::string body) {
    return {status, "application/json", std::move(body)};
  }
  static HttpResponse text(int status, std::string body) {
    return {status, "text/plain; version=0.0.4; charset=utf-8", std::move(body)};
  }
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct HttpServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; read the bound port back via port()
  int num_threads = 8;
  std::size_t max_header_bytes = 16 * 1024;
  std::size_t max_body_bytes = 4 * 1024 * 1024;
  // Per-read deadline; also bounds how long an idle keep-alive connection
  // may hold a worker.
  std::chrono::milliseconds io_timeout{5000};
  int backlog = 128;
};

class HttpServer {
 public:
  explicit HttpServer(HttpServerOptions options = {});
  ~HttpServer();  // stop() if still running

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Registers an exact-match route. Call before start(); method is
  // uppercase. Re-registering the same (method, path) replaces the handler.
  void route(std::string method, std::string path, HttpHandler handler);

  // Binds, listens and spawns the acceptor + worker threads. Fails (never
  // throws) with UNAVAILABLE when the socket cannot be bound.
  Status start();

  // Stops accepting, closes the listener, drains the workers. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // Port actually bound (resolves port 0); valid after start().
  int port() const { return bound_port_; }
  const HttpServerOptions& options() const { return options_; }

  // Wire counters (for /metrics and tests).
  std::uint64_t connections_accepted() const {
    return connections_.load(std::memory_order_relaxed);
  }
  std::uint64_t requests_handled() const { return requests_.load(std::memory_order_relaxed); }

 private:
  struct RouteKey {
    std::string method, path;
    bool operator==(const RouteKey&) const = default;
  };

  void accept_loop();
  void worker_loop();
  void serve_connection(int fd);
  HttpResponse dispatch(const HttpRequest& request) const;

  HttpServerOptions options_;
  std::vector<std::pair<RouteKey, HttpHandler>> routes_;

  int listen_fd_ = -1;
  int bound_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::vector<std::thread> workers_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_fds_;
  // Connections currently owned by a worker; stop() shuts them down to
  // interrupt recv() immediately instead of waiting out io_timeout.
  std::vector<int> active_fds_;

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_{0};
};

}  // namespace tcm::api
