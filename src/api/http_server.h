// Dependency-free HTTP/1.1 server for the versioned serving surface.
//
// Scope: exactly what a model-serving endpoint on a trusted network needs —
// plain TCP (TLS terminates at the proxy, as with every in-cluster metrics/
// inference port), HTTP/1.1 with keep-alive and Expect: 100-continue,
// exact-path routing plus prefix routes for id-bearing paths
// (/v1/search/{id}), Content-Length bodies in, and either Content-Length or
// chunked transfer-encoding out (streaming responses for the search event
// stream). No chunked *request* bodies, no pipelining beyond sequential
// keep-alive, no compression.
//
// Hardening over the raw socket (all enforced before a handler runs):
//   - header block capped at max_header_bytes  -> 431, connection closed
//   - declared body capped at max_body_bytes   -> 413 + Status body; the
//     oversized payload is never read into memory
//   - truncated bodies (peer closes or stalls past io_timeout mid-body)
//     -> 400 / connection dropped, never a blocked worker
//   - malformed request lines / headers        -> 400 + Status body
//   - unknown path -> 404, known path with wrong method -> 405 (both with
//     a JSON Status body)
//   - a handler that throws is caught and mapped to 500 + Status body: the
//     no-exceptions-escape guarantee of the api boundary holds on the wire
//     layer too.
//
// Threading: one acceptor thread plus a fixed pool of connection workers;
// an open connection occupies its worker until it closes or times out
// (requests on one connection are sequential by HTTP semantics). Handlers
// therefore run concurrently up to num_threads and must be thread-safe —
// the rest.h handlers delegate straight to api::Service, whose contract
// covers that.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "api/status.h"
#include "obs/metrics.h"
#include "obs/watchdog.h"

namespace tcm::api {

struct HttpRequest {
  std::string method;   // uppercase, e.g. "GET"
  std::string path;     // target without the query string
  std::string query;    // raw query string ("" when absent)
  std::string body;
  std::vector<std::pair<std::string, std::string>> headers;  // as received

  // Case-insensitive header lookup; nullptr when absent.
  const std::string* header(std::string_view name) const;
};

// Writes one chunk of a streaming response; returns false once the client
// is gone (the streamer should stop producing).
using ChunkWriter = std::function<bool(std::string_view)>;

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  // Extra response headers, emitted verbatim after Content-Type/Length.
  // The server itself appends X-Request-Id here (see serve_connection); on
  // the client side HttpClient fills it with everything received.
  std::vector<std::pair<std::string, std::string>> headers;
  // When set, the response goes out with Transfer-Encoding: chunked: the
  // headers are sent, then the streamer runs on the connection worker and
  // every write() becomes one chunk (empty writes are skipped — an empty
  // chunk would terminate the stream). `body` is ignored. The worker's
  // watchdog heartbeat is beaten per chunk, so a long-lived stream does not
  // read as a stalled worker.
  std::function<void(const ChunkWriter&)> streamer;

  // Case-insensitive header lookup; nullptr when absent.
  const std::string* header(std::string_view name) const;

  static HttpResponse json(int status, std::string body) {
    return {status, "application/json", std::move(body), {}, {}};
  }
  static HttpResponse text(int status, std::string body) {
    return {status, "text/plain; version=0.0.4; charset=utf-8", std::move(body), {}, {}};
  }
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct HttpServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; read the bound port back via port()
  int num_threads = 8;
  std::size_t max_header_bytes = 16 * 1024;
  std::size_t max_body_bytes = 4 * 1024 * 1024;
  // Per-read deadline; also bounds how long an idle keep-alive connection
  // may hold a worker.
  std::chrono::milliseconds io_timeout{5000};
  int backlog = 128;
  // A request whose handler takes at least this long gets one structured
  // WARN line (method, path, status, ms, request id). 0 disables.
  std::chrono::milliseconds slow_request_threshold{1000};
  // When set, the server registers tcm_http_request_duration_seconds here
  // (handler wall time, all routes). Share the service's registry so
  // /metrics renders everything in one pass.
  std::shared_ptr<obs::MetricsRegistry> metrics;
  // When set, the acceptor and every connection worker register (critical)
  // heartbeats here. Share the service's watchdog so /healthz covers the
  // wire layer too. Workers are idle while parked on the queue or blocked
  // in keep-alive reads; only handler execution counts toward a stall.
  std::shared_ptr<obs::Watchdog> watchdog;
  std::chrono::milliseconds acceptor_stall_after{30000};
  std::chrono::milliseconds worker_stall_after{30000};
};

// One per-route-per-status-class request count (see
// HttpServer::route_counters). Transport-level rejects that never reach
// routing (431/400 before dispatch) are not attributed.
struct RouteCount {
  std::string method;
  std::string path;        // "other" for requests matching no route
  std::string status_class;  // "1xx".."5xx"
  std::uint64_t count = 0;
};

class HttpServer {
 public:
  explicit HttpServer(HttpServerOptions options = {});
  ~HttpServer();  // stop() if still running

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Registers an exact-match route. Call before start(); method is
  // uppercase. Re-registering the same (method, path) replaces the handler.
  void route(std::string method, std::string path, HttpHandler handler);

  // Registers a prefix-match route (e.g. "/v1/search/" matches
  // /v1/search/{anything}). Exact routes win; prefix routes are tried in
  // registration order. The prefix is the path label in the route counters.
  void route_prefix(std::string method, std::string prefix, HttpHandler handler);

  // Binds, listens and spawns the acceptor + worker threads. Fails (never
  // throws) with UNAVAILABLE when the socket cannot be bound.
  Status start();

  // Stops accepting, closes the listener, drains the workers. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // Port actually bound (resolves port 0); valid after start().
  int port() const { return bound_port_; }
  const HttpServerOptions& options() const { return options_; }

  // Wire counters (for /metrics and tests).
  std::uint64_t connections_accepted() const {
    return connections_.load(std::memory_order_relaxed);
  }
  std::uint64_t requests_handled() const { return requests_.load(std::memory_order_relaxed); }

  // Nonzero per-route × status-class counts (tcm_http_requests_total).
  // Valid after start(); counters reset on each start().
  std::vector<RouteCount> route_counters() const;

 private:
  struct RouteKey {
    std::string method, path;
    bool operator==(const RouteKey&) const = default;
  };
  // Status classes 1xx..5xx per route; fixed-size so counting is one
  // relaxed fetch_add with no lock on the request path.
  using StatusClassCounts = std::array<std::atomic<std::uint64_t>, 5>;

  void accept_loop();
  void worker_loop(int index);
  void serve_connection(int fd, obs::Watchdog::Handle heartbeat);
  // `route_index` gets the matched route's index, or routes_.size() when no
  // route matched (404/405).
  HttpResponse dispatch(const HttpRequest& request, std::size_t& route_index) const;

  HttpServerOptions options_;
  std::vector<std::pair<RouteKey, HttpHandler>> routes_;       // exact paths
  std::vector<std::pair<RouteKey, HttpHandler>> prefix_routes_;
  // One slot per exact route, then per prefix route, then the unmatched
  // slot; sized at start(), when the route table freezes.
  std::unique_ptr<StatusClassCounts[]> route_counts_;
  obs::Histogram* request_duration_ = nullptr;  // null without options_.metrics

  int listen_fd_ = -1;
  int bound_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::vector<std::thread> workers_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_fds_;
  // Connections currently owned by a worker; stop() shuts them down to
  // interrupt recv() immediately instead of waiting out io_timeout.
  std::vector<int> active_fds_;

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> next_request_id_{1};  // generated X-Request-Id suffix
};

}  // namespace tcm::api
