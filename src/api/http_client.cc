#include "api/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>

#include "api/http_io.h"

namespace tcm::api {

HttpClient::HttpClient(std::string host, int port, std::chrono::milliseconds io_timeout)
    : host_(std::move(host)), port_(port), io_timeout_(io_timeout) {}

HttpClient::~HttpClient() { disconnect(); }

Status HttpClient::connect() {
  if (fd_ >= 0) return Status();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Status::unavailable("socket(): " + std::string(strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port_));
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    disconnect();
    return Status::invalid_argument("invalid host '" + host_ + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = strerror(errno);
    disconnect();
    return Status::unavailable("connect(" + host_ + ":" + std::to_string(port_) + "): " + err);
  }
  timeval tv{};
  const auto usec = std::chrono::duration_cast<std::chrono::microseconds>(io_timeout_).count();
  tv.tv_sec = static_cast<time_t>(usec / 1000000);
  tv.tv_usec = static_cast<suseconds_t>(usec % 1000000);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Status();
}

void HttpClient::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

namespace {

using http_io::iequals;
using http_io::send_all;

// Distinguished message: zero response bytes arrived, which is the one
// close the retry logic in request() may safely repair on a reused
// connection.
constexpr const char kClosedBeforeResponse[] = "connection closed before response";

}  // namespace

Result<HttpResponse> HttpClient::request(
    const std::string& method, const std::string& path, const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    const bool reused = connected();
    Status s = connect();
    if (!s.ok()) return s;

    std::string req = method + " " + path + " HTTP/1.1\r\nHost: " + host_ + "\r\n";
    if (!body.empty()) req += "Content-Type: application/json\r\n";
    req += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    for (const auto& [k, v] : extra_headers) req += k + ": " + v + "\r\n";
    req += "\r\n";
    req += body;

    if (!send_all(fd_, req)) {
      // The server closed the reused keep-alive connection between
      // exchanges; nothing reached it, so retrying is safe.
      disconnect();
      if (reused && attempt == 0) continue;
      return Status::unavailable("send failed");
    }
    Result<HttpResponse> response = read_response();
    if (response.ok()) return response;
    disconnect();
    // Retry ONLY the stale-keep-alive race: connection was reused and the
    // server closed it before emitting a single response byte (RFC 9112
    // §9.6). A timeout or a mid-response close may mean the request
    // executed server-side — retrying would double non-idempotent calls.
    if (reused && attempt == 0 && response.status().code() == StatusCode::kUnavailable &&
        response.status().message() == kClosedBeforeResponse)
      continue;
    return response;
  }
  return Status::unavailable("connection closed by server");
}

Result<HttpResponse> HttpClient::raw_exchange(const std::string& bytes, bool half_close) {
  disconnect();  // raw exchanges always start clean
  Status s = connect();
  if (!s.ok()) return s;
  if (!send_all(fd_, bytes)) {
    disconnect();
    return Status::unavailable("send failed");
  }
  if (half_close) ::shutdown(fd_, SHUT_WR);
  Result<HttpResponse> response = read_response();
  disconnect();
  return response;
}

Result<HttpResponse> HttpClient::read_response() {
  std::string buf;
  std::size_t header_end;
  while ((header_end = buf.find("\r\n\r\n")) == std::string::npos) {
    char chunk[8192];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n == 0) return Status::unavailable(kClosedBeforeResponse);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return Status::deadline_exceeded("timed out waiting for response");
      return Status::unavailable("recv(): " + std::string(strerror(errno)));
    }
    buf.append(chunk, static_cast<std::size_t>(n));
  }

  HttpResponse response;
  const std::string head = buf.substr(0, header_end);
  std::string rest = buf.substr(header_end + 4);
  const std::size_t line_end = head.find("\r\n");
  const std::string status_line = head.substr(0, line_end);
  if (status_line.size() < 12 || status_line.compare(0, 7, "HTTP/1.") != 0)
    return Status::internal("malformed status line '" + status_line + "'");
  response.status = std::atoi(status_line.c_str() + 9);

  // Interim 1xx responses (100 Continue) precede the real one.
  if (response.status == 100) {
    // Anything already buffered past the interim headers is the start of
    // the final response; re-run the header reader primed with it.
    buf = std::move(rest);
    while ((header_end = buf.find("\r\n\r\n")) == std::string::npos) {
      char chunk[8192];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) return Status::unavailable("connection closed after 100 Continue");
      buf.append(chunk, static_cast<std::size_t>(n));
    }
    const std::string head2 = buf.substr(0, header_end);
    rest = buf.substr(header_end + 4);
    const std::string status_line2 = head2.substr(0, head2.find("\r\n"));
    response.status = std::atoi(status_line2.c_str() + 9);
    return read_body(head2, std::move(rest), response);
  }
  return read_body(head, std::move(rest), response);
}

Result<HttpResponse> HttpClient::read_body(const std::string& head, std::string rest,
                                           HttpResponse response) {
  std::size_t content_length = 0;
  bool server_closes = false;
  bool chunked = false;
  std::size_t pos = head.find("\r\n");
  pos = pos == std::string::npos ? head.size() : pos + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    const std::string key = line.substr(0, colon);
    std::string value = line.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.erase(value.begin());
    if (iequals(key, "Content-Length"))
      content_length = static_cast<std::size_t>(std::atoll(value.c_str()));
    if (iequals(key, "Transfer-Encoding") && iequals(value, "chunked")) chunked = true;
    if (iequals(key, "Content-Type")) response.content_type = value;
    if (iequals(key, "Connection") && iequals(value, "close")) server_closes = true;
    // Keep everything as received too, so callers can read response headers
    // such as X-Request-Id (HttpRequest::header provides the same lookup).
    response.headers.emplace_back(key, std::move(value));
  }
  if (chunked) {
    // Decode the chunked framing into one concatenated body (the caller
    // splits streamed ndjson on newlines). Blocks until the terminating
    // zero-size chunk — sufficient for the test/tooling consumers; live
    // streaming clients (curl) speak chunked natively.
    std::string body;
    std::size_t cursor = 0;
    auto fill = [&](std::size_t needed) -> bool {
      while (rest.size() - cursor < needed) {
        char chunk[16384];
        const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n <= 0) return false;
        rest.append(chunk, static_cast<std::size_t>(n));
      }
      return true;
    };
    for (;;) {
      std::size_t eol;
      while ((eol = rest.find("\r\n", cursor)) == std::string::npos) {
        if (!fill(rest.size() - cursor + 1))
          return Status::unavailable("connection closed mid-chunked-body");
      }
      const std::size_t size =
          static_cast<std::size_t>(std::strtoull(rest.c_str() + cursor, nullptr, 16));
      cursor = eol + 2;
      if (size == 0) break;  // terminator (no trailers expected)
      if (!fill(size + 2)) return Status::unavailable("connection closed mid-chunked-body");
      body.append(rest, cursor, size);
      cursor += size + 2;  // chunk + CRLF
    }
    response.body = std::move(body);
    if (server_closes) disconnect();
    return response;
  }
  while (rest.size() < content_length) {
    char chunk[16384];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) return Status::unavailable("connection closed mid-body");
    rest.append(chunk, static_cast<std::size_t>(n));
  }
  response.body = rest.substr(0, content_length);
  if (server_closes) disconnect();
  return response;
}

}  // namespace tcm::api
