#include "api/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstring>

#include "api/http_io.h"
#include "api/json.h"
#include "obs/event_log.h"
#include "obs/trace.h"
#include "support/failpoint.h"
#include "support/log.h"

namespace tcm::api {

namespace {

using http_io::iequals;
using http_io::send_all;

std::string_view reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 100: return "Continue";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Status";
  }
}

// Wire-layer error body, same shape as wire.h's error_body but independent
// of it: the transport reports its own failures (431, 405, ...) without
// pulling the model-facing codec layer into the server.
std::string wire_error(int http, std::string_view code, std::string message) {
  Json err = Json::object();
  err.set("code", Json(std::string(code)));
  err.set("http", Json(static_cast<std::int64_t>(http)));
  err.set("message", Json(std::move(message)));
  Json body = Json::object();
  body.set("error", std::move(err));
  return body.dump();
}

bool send_response(int fd, const HttpResponse& response, bool keep_alive) {
  // Chaos site: delay simulates a slow/cut client link; an error action
  // drops the connection (returns false) instead of failing the process.
  try {
    TCM_FAILPOINT("http.slow_write");
  } catch (...) {
    return false;
  }
  std::string head;
  head.reserve(128);
  head += "HTTP/1.1 ";
  head += std::to_string(response.status);
  head += ' ';
  head += reason_phrase(response.status);
  head += "\r\nContent-Type: ";
  head += response.content_type;
  head += "\r\nContent-Length: ";
  head += std::to_string(response.body.size());
  for (const auto& [name, value] : response.headers) {
    head += "\r\n";
    head += name;
    head += ": ";
    head += value;
  }
  head += keep_alive ? "\r\nConnection: keep-alive" : "\r\nConnection: close";
  head += "\r\n\r\n";
  return send_all(fd, head) && send_all(fd, response.body);
}

// Sends a Transfer-Encoding: chunked response: headers, then one chunk per
// streamer write, then the terminating zero chunk. `on_chunk` runs after
// every successful chunk write (watchdog beat). Returns false when the
// client vanished mid-stream.
bool send_streaming_response(int fd, HttpResponse& response, bool keep_alive,
                             const std::function<void()>& on_chunk) {
  std::string head;
  head.reserve(192);
  head += "HTTP/1.1 ";
  head += std::to_string(response.status);
  head += ' ';
  head += reason_phrase(response.status);
  head += "\r\nContent-Type: ";
  head += response.content_type;
  head += "\r\nTransfer-Encoding: chunked";
  for (const auto& [name, value] : response.headers) {
    head += "\r\n";
    head += name;
    head += ": ";
    head += value;
  }
  head += keep_alive ? "\r\nConnection: keep-alive" : "\r\nConnection: close";
  head += "\r\n\r\n";
  if (!send_all(fd, head)) return false;

  bool alive = true;
  const ChunkWriter writer = [&](std::string_view chunk) {
    if (!alive) return false;
    if (chunk.empty()) return true;  // an empty chunk would end the stream
    char size_line[24];
    const int n = std::snprintf(size_line, sizeof size_line, "%zx\r\n", chunk.size());
    std::string frame;
    frame.reserve(static_cast<std::size_t>(n) + chunk.size() + 2);
    frame.append(size_line, static_cast<std::size_t>(n));
    frame.append(chunk);
    frame += "\r\n";
    alive = send_all(fd, frame);
    if (alive && on_chunk) on_chunk();
    return alive;
  };
  response.streamer(writer);
  if (!alive) return false;
  return send_all(fd, "0\r\n\r\n");
}

// Outcome of reading one request off the connection.
enum class ReadResult {
  kOk,
  kIdleClose,  // peer closed (or idled past the deadline) between requests
  kFatal,      // an error response was already sent (or the peer vanished);
               // close the connection
};

}  // namespace

const std::string* HttpRequest::header(std::string_view name) const {
  for (const auto& [key, value] : headers)
    if (iequals(key, name)) return &value;
  return nullptr;
}

const std::string* HttpResponse::header(std::string_view name) const {
  for (const auto& [key, value] : headers)
    if (iequals(key, name)) return &value;
  return nullptr;
}

HttpServer::HttpServer(HttpServerOptions options) : options_(std::move(options)) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::route(std::string method, std::string path, HttpHandler handler) {
  RouteKey key{std::move(method), std::move(path)};
  for (auto& [existing, existing_handler] : routes_)
    if (existing == key) {
      existing_handler = std::move(handler);
      return;
    }
  routes_.emplace_back(std::move(key), std::move(handler));
}

void HttpServer::route_prefix(std::string method, std::string prefix, HttpHandler handler) {
  RouteKey key{std::move(method), std::move(prefix)};
  for (auto& [existing, existing_handler] : prefix_routes_)
    if (existing == key) {
      existing_handler = std::move(handler);
      return;
    }
  prefix_routes_.emplace_back(std::move(key), std::move(handler));
}

Status HttpServer::start() {
  if (running_.load(std::memory_order_acquire))
    return Status::failed_precondition("HttpServer already running");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::unavailable("socket(): " + std::string(strerror(errno)));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::invalid_argument("invalid listen host '" + options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::unavailable("bind(" + options_.host + ":" + std::to_string(options_.port) +
                               "): " + err);
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  bound_port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, options_.backlog) != 0) {
    const std::string err = strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::unavailable("listen(): " + err);
  }

  // The route table is frozen now; one counter row per route (exact, then
  // prefix) plus the unmatched slot (404/405).
  const std::size_t slots = routes_.size() + prefix_routes_.size() + 1;
  route_counts_ = std::make_unique<StatusClassCounts[]>(slots);
  for (std::size_t r = 0; r < slots; ++r)
    for (std::atomic<std::uint64_t>& c : route_counts_[r]) c.store(0, std::memory_order_relaxed);
  if (options_.metrics != nullptr) {
    request_duration_ = &options_.metrics->histogram(
        "tcm_http_request_duration_seconds",
        "HTTP request handling wall time (read to response sent) in seconds.", "",
        obs::exponential_buckets(1e-5, 2.0, 22));
  }

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { accept_loop(); });
  workers_.reserve(static_cast<std::size_t>(options_.num_threads));
  for (int i = 0; i < options_.num_threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
  return Status();
}

void HttpServer::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    // Kick workers parked in recv() on idle keep-alive connections: a
    // half-open shutdown makes the pending read return 0 right away.
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  // Connections still queued but never picked up.
  std::lock_guard<std::mutex> lock(queue_mu_);
  for (int fd : pending_fds_) ::close(fd);
  pending_fds_.clear();
  running_.store(false, std::memory_order_release);
}

void HttpServer::accept_loop() {
  obs::Watchdog::Handle heartbeat;
  if (options_.watchdog != nullptr) {
    heartbeat = options_.watchdog->register_thread("http_acceptor",
                                                   options_.acceptor_stall_after,
                                                   /*critical=*/true);
    // Permanently busy: the acceptor's job is the 100ms poll cadence itself,
    // so a missed beat (wedged poll loop) must count as a stall even though
    // no connection is in flight.
    options_.watchdog->set_busy(heartbeat, "accept");
  }
  while (!stopping_.load(std::memory_order_acquire)) {
    if (options_.watchdog != nullptr) options_.watchdog->beat(heartbeat);
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stopping_
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    // Per-read/write deadlines: a stalled or vanished peer can hold a
    // worker for at most io_timeout, not forever.
    timeval tv{};
    const auto usec =
        std::chrono::duration_cast<std::chrono::microseconds>(options_.io_timeout).count();
    tv.tv_sec = static_cast<time_t>(usec / 1000000);
    tv.tv_usec = static_cast<suseconds_t>(usec % 1000000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    connections_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      pending_fds_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
  if (options_.watchdog != nullptr) options_.watchdog->unregister(heartbeat);
}

void HttpServer::worker_loop(int index) {
  obs::Watchdog::Handle heartbeat;
  if (options_.watchdog != nullptr)
    heartbeat = options_.watchdog->register_thread("http_worker_" + std::to_string(index),
                                                   options_.worker_stall_after,
                                                   /*critical=*/true);
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !pending_fds_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (pending_fds_.empty()) break;  // stopping
      fd = pending_fds_.front();
      pending_fds_.pop_front();
      active_fds_.push_back(fd);
    }
    serve_connection(fd, heartbeat);
    if (options_.watchdog != nullptr) options_.watchdog->set_idle(heartbeat);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      std::erase(active_fds_, fd);
    }
    ::close(fd);
  }
  if (options_.watchdog != nullptr) options_.watchdog->unregister(heartbeat);
}

namespace {

// Reads and parses one request. On kFatal an error response (when one makes
// sense) has already been written.
ReadResult read_request(int fd, const HttpServerOptions& options, std::string& carry,
                        HttpRequest& out) {
  // --- header block --------------------------------------------------------
  std::size_t header_end;
  while ((header_end = carry.find("\r\n\r\n")) == std::string::npos) {
    if (carry.size() > options.max_header_bytes) {
      send_response(fd,
                    HttpResponse::json(431, wire_error(431, "RESOURCE_EXHAUSTED",
                                                       "header block exceeds " +
                                                           std::to_string(options.max_header_bytes) +
                                                           " bytes")),
                    false);
      return ReadResult::kFatal;
    }
    char buf[8192];
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n == 0) {
      if (carry.empty()) return ReadResult::kIdleClose;
      send_response(
          fd, HttpResponse::json(400, wire_error(400, "INVALID_ARGUMENT", "truncated request")),
          false);
      return ReadResult::kFatal;
    }
    if (n < 0) {
      if ((errno == EAGAIN || errno == EWOULDBLOCK) && carry.empty())
        return ReadResult::kIdleClose;  // keep-alive idle deadline
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        send_response(fd,
                      HttpResponse::json(
                          408, wire_error(408, "DEADLINE_EXCEEDED", "timed out reading request")),
                      false);
      return ReadResult::kFatal;
    }
    carry.append(buf, static_cast<std::size_t>(n));
  }

  if (header_end > options.max_header_bytes) {
    // The whole block may arrive in one read; the streaming check above
    // only catches blocks that straddle reads.
    send_response(fd,
                  HttpResponse::json(431, wire_error(431, "RESOURCE_EXHAUSTED",
                                                     "header block exceeds " +
                                                         std::to_string(options.max_header_bytes) +
                                                         " bytes")),
                  false);
    return ReadResult::kFatal;
  }
  const std::string head = carry.substr(0, header_end);
  std::string rest = carry.substr(header_end + 4);

  // --- request line --------------------------------------------------------
  const std::size_t line_end = head.find("\r\n");
  const std::string request_line = head.substr(0, line_end);
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1 ||
      request_line.compare(sp2 + 1, 7, "HTTP/1.") != 0) {
    send_response(
        fd,
        HttpResponse::json(400, wire_error(400, "INVALID_ARGUMENT",
                                           "malformed request line '" + request_line + "'")),
        false);
    return ReadResult::kFatal;
  }
  out.method = request_line.substr(0, sp1);
  std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t qmark = target.find('?');
  out.path = target.substr(0, qmark);
  out.query = qmark == std::string::npos ? "" : target.substr(qmark + 1);
  const bool http11 = request_line.compare(sp2 + 1, 8, "HTTP/1.1") == 0;

  // --- headers -------------------------------------------------------------
  out.headers.clear();
  std::size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string_view line(head.data() + pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      send_response(fd,
                    HttpResponse::json(
                        400, wire_error(400, "INVALID_ARGUMENT", "malformed header line")),
                    false);
      return ReadResult::kFatal;
    }
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t'))
      value.remove_prefix(1);
    while (!value.empty() && (value.back() == ' ' || value.back() == '\t'))
      value.remove_suffix(1);
    out.headers.emplace_back(std::string(line.substr(0, colon)), std::string(value));
  }

  // --- body ----------------------------------------------------------------
  if (const std::string* te = out.header("Transfer-Encoding");
      te != nullptr && !iequals(*te, "identity")) {
    send_response(fd,
                  HttpResponse::json(
                      501, wire_error(501, "UNIMPLEMENTED", "chunked bodies are not supported")),
                  false);
    return ReadResult::kFatal;
  }
  std::size_t content_length = 0;
  if (const std::string* cl = out.header("Content-Length")) {
    std::uint64_t parsed = 0;
    const auto [p, ec] = std::from_chars(cl->data(), cl->data() + cl->size(), parsed);
    if (ec != std::errc() || p != cl->data() + cl->size()) {
      send_response(fd,
                    HttpResponse::json(
                        400, wire_error(400, "INVALID_ARGUMENT", "invalid Content-Length")),
                    false);
      return ReadResult::kFatal;
    }
    content_length = static_cast<std::size_t>(parsed);
  }
  if (content_length > options.max_body_bytes) {
    // Refuse before reading: the oversized payload never enters memory.
    send_response(fd,
                  HttpResponse::json(413, wire_error(413, "RESOURCE_EXHAUSTED",
                                                     "request body of " +
                                                         std::to_string(content_length) +
                                                         " bytes exceeds the limit of " +
                                                         std::to_string(options.max_body_bytes))),
                  false);
    return ReadResult::kFatal;
  }
  if (const std::string* expect = out.header("Expect");
      expect != nullptr && iequals(*expect, "100-continue")) {
    if (!send_all(fd, "HTTP/1.1 100 Continue\r\n\r\n")) return ReadResult::kFatal;
  }
  while (rest.size() < content_length) {
    char buf[16384];
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) {
      send_response(fd,
                    HttpResponse::json(
                        400, wire_error(400, "INVALID_ARGUMENT",
                                        "request body truncated (" + std::to_string(rest.size()) +
                                            " of " + std::to_string(content_length) + " bytes)")),
                    false);
      return ReadResult::kFatal;
    }
    rest.append(buf, static_cast<std::size_t>(n));
  }
  out.body = rest.substr(0, content_length);
  carry = rest.substr(content_length);  // pipelined next request, if any

  // HTTP/1.0 defaults to close; 1.1 to keep-alive. Stash the decision in a
  // pseudo-header so serve_connection need not re-derive it.
  const std::string* connection = out.header("Connection");
  const bool keep_alive =
      connection != nullptr ? iequals(*connection, "keep-alive") : http11;
  out.headers.emplace_back(":keep-alive", keep_alive ? "1" : "0");
  return ReadResult::kOk;
}

}  // namespace

void HttpServer::serve_connection(int fd, obs::Watchdog::Handle heartbeat) {
  std::string carry;
  while (!stopping_.load(std::memory_order_acquire)) {
    HttpRequest request;
    // The worker is idle while blocked reading (an idle keep-alive
    // connection legitimately parks here for io_timeout at a time); only
    // handler execution below counts toward a stall.
    if (options_.watchdog != nullptr) options_.watchdog->set_idle(heartbeat);
    const ReadResult read = read_request(fd, options_, carry, request);
    if (read != ReadResult::kOk) return;
    if (options_.watchdog != nullptr) options_.watchdog->set_busy(heartbeat, "handler");
    requests_.fetch_add(1, std::memory_order_relaxed);
    const std::string* ka = request.header(":keep-alive");
    const bool keep_alive = ka != nullptr && *ka == "1";

    // The request id is the client's X-Request-Id when it sent one (so the
    // caller can correlate its own logs with ours), else generated; either
    // way it is echoed on the response and labels the request's trace.
    std::string request_id;
    if (const std::string* rid = request.header("X-Request-Id"); rid != nullptr && !rid->empty()) {
      request_id = *rid;
    } else {
      request_id = "req-" + std::to_string(next_request_id_.fetch_add(1, std::memory_order_relaxed));
    }
    const std::uint64_t trace_id = obs::Tracer::instance().sample_request();
    obs::TraceContext trace_ctx(trace_id);  // handlers inherit via thread-local
    if (trace_id != 0) obs::Tracer::instance().set_label(trace_id, request_id);

    const auto start = std::chrono::steady_clock::now();
    std::size_t route_index = routes_.size() + prefix_routes_.size();
    HttpResponse response;
    {
      obs::ScopedSpan span("http.request", trace_id);
      response = dispatch(request, route_index);
    }
    const double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                               .count();
    if (request_duration_ != nullptr) request_duration_->observe(elapsed);
    const int status_class = response.status / 100;
    if (status_class >= 1 && status_class <= 5)
      route_counts_[route_index][static_cast<std::size_t>(status_class - 1)].fetch_add(
          1, std::memory_order_relaxed);
    if (response.status >= 500) {
      obs::EventLog::instance().emit(
          "http_5xx", "error",
          request.method + " " + request.path + " status=" + std::to_string(response.status) +
              " request_id=" + request_id,
          trace_id);
    }
    if (options_.slow_request_threshold.count() > 0 &&
        elapsed >= std::chrono::duration<double>(options_.slow_request_threshold).count()) {
      log_warn() << "slow request" << kv("method", request.method) << kv("path", request.path)
                 << kv("status", response.status) << kv("ms", elapsed * 1e3)
                 << kv("request_id", request_id) << kv("trace_id", trace_id);
      obs::EventLog::instance().emit(
          "slow_request", "warn",
          request.method + " " + request.path + " ms=" + std::to_string(elapsed * 1e3) +
              " request_id=" + request_id,
          trace_id);
    }
    response.headers.emplace_back("X-Request-Id", std::move(request_id));
    if (response.streamer) {
      const std::function<void()> beat = options_.watchdog != nullptr
                                             ? std::function<void()>([this, heartbeat] {
                                                 options_.watchdog->beat(heartbeat);
                                               })
                                             : std::function<void()>();
      if (!send_streaming_response(fd, response, keep_alive, beat)) return;
    } else {
      if (!send_response(fd, response, keep_alive)) return;
    }
    if (!keep_alive) return;
  }
}

HttpResponse HttpServer::dispatch(const HttpRequest& request, std::size_t& route_index) const {
  bool path_known = false;
  route_index = routes_.size() + prefix_routes_.size();  // unmatched slot
  const auto run = [&](const HttpHandler& handler) {
    try {
      return handler(request);
    } catch (const std::exception& e) {
      log_warn() << "handler " << request.method << " " << request.path << " threw: " << e.what();
      return HttpResponse::json(500, wire_error(500, "INTERNAL", e.what()));
    } catch (...) {
      return HttpResponse::json(500, wire_error(500, "INTERNAL", "unknown handler exception"));
    }
  };
  for (std::size_t r = 0; r < routes_.size(); ++r) {
    const auto& [key, handler] = routes_[r];
    if (key.path != request.path) continue;
    path_known = true;
    if (key.method != request.method) continue;
    route_index = r;
    return run(handler);
  }
  for (std::size_t r = 0; r < prefix_routes_.size(); ++r) {
    const auto& [key, handler] = prefix_routes_[r];
    if (request.path.compare(0, key.path.size(), key.path) != 0) continue;
    path_known = true;
    if (key.method != request.method) continue;
    route_index = routes_.size() + r;
    return run(handler);
  }
  if (path_known)
    return HttpResponse::json(405, wire_error(405, "INVALID_ARGUMENT",
                                              "method " + request.method + " not allowed on " +
                                                  request.path));
  return HttpResponse::json(
      404, wire_error(404, "NOT_FOUND", "no route for " + request.method + " " + request.path));
}

std::vector<RouteCount> HttpServer::route_counters() const {
  std::vector<RouteCount> out;
  if (route_counts_ == nullptr) return out;
  static const char* kClasses[5] = {"1xx", "2xx", "3xx", "4xx", "5xx"};
  const std::size_t slots = routes_.size() + prefix_routes_.size() + 1;
  for (std::size_t r = 0; r < slots; ++r) {
    const bool unmatched = r == slots - 1;
    const RouteKey* key = nullptr;
    if (!unmatched)
      key = r < routes_.size() ? &routes_[r].first : &prefix_routes_[r - routes_.size()].first;
    for (std::size_t c = 0; c < 5; ++c) {
      const std::uint64_t n = route_counts_[r][c].load(std::memory_order_relaxed);
      if (n == 0) continue;
      out.push_back({unmatched ? "other" : key->method, unmatched ? "other" : key->path,
                     kClasses[c], n});
    }
  }
  return out;
}

}  // namespace tcm::api
