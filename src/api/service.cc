#include "api/service.h"

#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "support/log.h"

namespace tcm::api {

namespace {

// Persisted feedback snapshot format (a private durability file, not part of
// the wire surface, but built from the same v1 program/schedule codecs):
//   {"format":"tcm-feedback","version":1,"samples":[{"program":..,"schedule":..}]}
constexpr int kFeedbackFormatVersion = 1;

}  // namespace

Service::Service(ServiceOptions options)
    : options_(std::move(options)), started_(std::chrono::steady_clock::now()) {}

Service::~Service() { shutdown(); }

Result<std::unique_ptr<Service>> Service::open(ServiceOptions options) {
  try {
    // unique_ptr rather than make_unique: the constructor is private.
    std::unique_ptr<Service> svc(new Service(std::move(options)));
    const ServiceOptions& opt = svc->options_;
    if (opt.registry_root.empty())
      return Status::invalid_argument("ServiceOptions.registry_root must be set");

    svc->registry_ = std::make_unique<registry::ModelRegistry>(opt.registry_root);
    const int active = svc->registry_->active_version();
    if (active == 0)
      return Status::failed_precondition("registry at '" + opt.registry_root +
                                         "' has no ACTIVE version; register and promote a "
                                         "model before serving");
    const registry::ModelManifest manifest = svc->registry_->manifest(active);
    const std::uint64_t serving_hash = registry::feature_config_hash(opt.serve.features);
    if (manifest.feature_hash != serving_hash)
      return Status::failed_precondition(
          "feature-config hash mismatch: serving featurization does not match the ACTIVE "
          "version's manifest (v" +
          std::to_string(active) + ")");

    std::shared_ptr<model::SpeedupPredictor> predictor;
    try {
      predictor = svc->registry_->load(active);
    } catch (const std::exception& e) {
      return Status::failed_precondition("ACTIVE checkpoint v" + std::to_string(active) +
                                         " failed to load: " + e.what());
    }
    // One registry for the whole stack: the PredictionService registers its
    // histograms here and rest.cc's /metrics renders it alongside the
    // counter snapshot.
    svc->metrics_ = opt.serve.metrics ? opt.serve.metrics
                                      : std::make_shared<obs::MetricsRegistry>();
    serve::ServeOptions serve_opt = opt.serve;
    serve_opt.metrics = svc->metrics_;
    svc->service_ =
        std::make_unique<serve::PredictionService>(std::move(predictor), active, serve_opt);

    if (opt.enable_feedback) {
      svc->feedback_ = std::make_shared<serve::FeedbackBuffer>(opt.feedback);
      if (opt.persist_feedback) svc->restore_feedback();
      svc->service_->set_feedback(svc->feedback_);
    }

    if (opt.enable_autopilot) {
      registry::ContinualTrainerOptions topt = opt.trainer;
      topt.feedback = svc->feedback_;  // may be null: trainer treats as disabled
      svc->trainer_ = std::make_unique<registry::ContinualTrainer>(*svc->registry_,
                                                                   *svc->service_, topt);
      svc->scheduler_ = std::make_unique<registry::ContinualScheduler>(
          *svc->registry_, *svc->service_, *svc->trainer_, opt.scheduler);
      svc->scheduler_->start();
    }
    return svc;
  } catch (const std::exception& e) {
    return status_from_exception(e);
  } catch (...) {
    return Status::internal("Service::open: unknown exception");
  }
}

Result<PredictResponse> Service::predict(const PredictRequest& request) {
  if (shut_down_.load(std::memory_order_acquire))
    return Status::unavailable("service is shut down");
  TCM_TRACE_SPAN("api.predict");
  try {
    if (request.schedules.empty())
      return Status::invalid_argument("predict: at least one schedule required");
    if (auto problem = request.program.validate())
      return Status::invalid_argument("predict: invalid program: " + *problem);

    std::vector<std::future<serve::Prediction>> futures;
    futures.reserve(request.schedules.size());
    for (const transforms::Schedule& schedule : request.schedules)
      futures.push_back(service_->submit(request.program, schedule));
    service_->flush();  // no tail request waits out the batching deadline

    PredictResponse response;
    response.predictions.reserve(futures.size());
    Status first_error;
    for (std::future<serve::Prediction>& f : futures) {
      try {
        const serve::Prediction p = f.get();
        response.predictions.push_back({p.speedup, p.model_version});
      } catch (const std::exception& e) {
        // Keep draining the remaining futures (their batches are in flight
        // regardless); report the first failure for the whole request.
        if (first_error.ok()) {
          Status s = status_from_exception(e);
          // Serving-path runtime errors are not preconditions the client can
          // fix by retrying differently; surface them as INTERNAL.
          if (s.code() == StatusCode::kFailedPrecondition)
            s = Status::internal(s.message());
          first_error = s;
        }
      }
    }
    if (!first_error.ok()) return first_error;
    return response;
  } catch (const std::exception& e) {
    Status s = status_from_exception(e);
    if (s.code() == StatusCode::kFailedPrecondition) s = Status::internal(s.message());
    return s;
  } catch (...) {
    return Status::internal("predict: unknown exception");
  }
}

Result<std::vector<ModelInfo>> Service::models() const {
  if (shut_down_.load(std::memory_order_acquire))
    return Status::unavailable("service is shut down");
  try {
    const int active = registry_->active_version();
    const int previous = registry_->previous_version();
    std::vector<ModelInfo> out;
    for (registry::ModelManifest& m : registry_->list()) {
      ModelInfo info;
      info.active = m.version == active;
      info.previous = m.version == previous;
      info.manifest = std::move(m);
      out.push_back(std::move(info));
    }
    return out;
  } catch (const std::exception& e) {
    return status_from_exception(e);
  }
}

Status Service::promote(int version) {
  if (shut_down_.load(std::memory_order_acquire))
    return Status::unavailable("service is shut down");
  std::lock_guard<std::mutex> lock(admin_mu_);
  try {
    try {
      (void)registry_->manifest(version);
    } catch (const std::exception& e) {
      return Status::not_found("model version " + std::to_string(version) +
                               " not found: " + e.what());
    }
    // Load through the registry's integrity checks *before* touching the
    // ACTIVE pointer: a tampered or torn checkpoint must surface as a
    // status while the incumbent keeps serving.
    std::shared_ptr<model::SpeedupPredictor> next;
    try {
      next = registry_->load(version);
    } catch (const std::exception& e) {
      return Status::failed_precondition("checkpoint v" + std::to_string(version) +
                                         " rejected: " + e.what());
    }
    registry_->promote(version);
    service_->swap_model(std::move(next), version);
    // The drift window must not compare the new model's predictions against
    // the old model's.
    service_->clear_recent_predictions();
    return Status();
  } catch (const std::exception& e) {
    return status_from_exception(e);
  } catch (...) {
    return Status::internal("promote: unknown exception");
  }
}

Result<int> Service::rollback() {
  if (shut_down_.load(std::memory_order_acquire))
    return Status::unavailable("service is shut down");
  std::lock_guard<std::mutex> lock(admin_mu_);
  try {
    const int previous = registry_->previous_version();
    if (previous == 0) return Status::failed_precondition("no previous version to roll back to");
    std::shared_ptr<model::SpeedupPredictor> next;
    try {
      next = registry_->load(previous);
    } catch (const std::exception& e) {
      return Status::failed_precondition("rollback target v" + std::to_string(previous) +
                                         " rejected: " + e.what());
    }
    const int restored = registry_->rollback();
    service_->swap_model(std::move(next), restored);
    service_->clear_recent_predictions();
    return restored;
  } catch (const std::exception& e) {
    return status_from_exception(e);
  } catch (...) {
    return Status::internal("rollback: unknown exception");
  }
}

StatsSnapshot Service::stats() const {
  StatsSnapshot snap;
  snap.serve = service_->stats();
  snap.active_version = snap.serve.active_version;
  snap.previous_version = registry_->previous_version();
  snap.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started_).count();
  if (scheduler_) {
    snap.autopilot.enabled = true;
    snap.autopilot.polls = scheduler_->polls();
    snap.autopilot.cycles = scheduler_->cycles_run();
    snap.autopilot.last = scheduler_->last_report();
    const std::vector<registry::SchedulerEvent> events = scheduler_->history();
    snap.autopilot.triggers = events.size();
    for (const registry::SchedulerEvent& e : events)
      if (e.cycle_failed) ++snap.autopilot.cycle_failures;
  }
  if (feedback_) {
    snap.feedback.enabled = true;
    snap.feedback.offered = feedback_->offered();
    snap.feedback.sampled = feedback_->sampled();
    snap.feedback.buffered = feedback_->size();
  }
  return snap;
}

Status Service::healthy() const {
  if (shut_down_.load(std::memory_order_acquire))
    return Status::unavailable("service is shut down");
  return Status();
}

Status Service::quiesce() {
  if (shut_down_.load(std::memory_order_acquire))
    return Status::unavailable("service is shut down");
  std::lock_guard<std::mutex> lock(admin_mu_);
  try {
    service_->quiesce();
    return persist_feedback_now();
  } catch (const std::exception& e) {
    return status_from_exception(e);
  }
}

void Service::shutdown() {
  std::lock_guard<std::mutex> lock(admin_mu_);
  if (shut_down_.exchange(true, std::memory_order_acq_rel)) return;
  if (scheduler_) scheduler_->stop();
  try {
    if (service_) service_->quiesce();
    const Status persisted = persist_feedback_now();
    if (!persisted.ok())
      log_warn() << "shutdown: feedback persistence failed: " << persisted.to_string();
  } catch (const std::exception& e) {
    log_warn() << "shutdown: quiesce failed: " << e.what();
  }
}

int Service::active_version() const { return service_->active_version(); }

std::string Service::feedback_file() const {
  if (!options_.feedback_path.empty()) return options_.feedback_path;
  return options_.registry_root + "/feedback.json";
}

void Service::restore_feedback() {
  const std::string path = feedback_file();
  std::ifstream in(path, std::ios::binary);
  if (!in) return;  // nothing persisted
  std::ostringstream buf;
  buf << in.rdbuf();
  in.close();
  // Consume the file up front: whatever happens below, the samples can
  // never be restored a second time by a later restart.
  std::error_code ec;
  std::filesystem::remove(path, ec);

  Result<Json> doc = Json::parse(buf.str());
  std::vector<serve::ServedSample> samples;
  Status problem;
  if (!doc.ok()) {
    problem = doc.status();
  } else {
    const Json* version = doc->find("version");
    const Json* list = doc->find("samples");
    if (version == nullptr || !version->is_int() ||
        version->as_int() != kFeedbackFormatVersion || list == nullptr || !list->is_array()) {
      problem = Status::invalid_argument("unrecognized feedback snapshot layout");
    } else {
      for (const Json& item : list->as_array()) {
        const Json* pj = item.find("program");
        const Json* sj = item.find("schedule");
        if (pj == nullptr || sj == nullptr) continue;
        Result<ir::Program> program = program_from_json(*pj);
        Result<transforms::Schedule> schedule = schedule_from_json(*sj);
        if (!program.ok() || !schedule.ok()) continue;  // skip torn samples
        samples.push_back({program.take(), schedule.take()});
      }
    }
  }
  if (!problem.ok()) {
    // Losing the snapshot is benign (it is a sample of traffic); refusing
    // to serve over it would not be.
    log_warn() << "discarding corrupt feedback snapshot '" << path
               << "': " << problem.to_string();
    return;
  }
  feedback_->restore(std::move(samples));
}

Status Service::persist_feedback_now() {
  if (!feedback_ || !options_.persist_feedback) return Status();
  try {
    Json list = Json::array();
    for (const serve::ServedSample& s : feedback_->snapshot()) {
      Json item = Json::object();
      item.set("program", to_json(s.program));
      item.set("schedule", to_json(s.schedule));
      list.push_back(std::move(item));
    }
    Json doc = Json::object();
    doc.set("format", Json("tcm-feedback"));
    doc.set("version", Json(static_cast<std::int64_t>(kFeedbackFormatVersion)));
    doc.set("samples", std::move(list));

    const std::string path = feedback_file();
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) return Status::internal("cannot write feedback snapshot to " + tmp);
      out << doc.dump();
      if (!out.flush()) return Status::internal("short write persisting feedback to " + tmp);
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) return Status::internal("cannot publish feedback snapshot: " + ec.message());
    return Status();
  } catch (const std::exception& e) {
    return status_from_exception(e);
  }
}

}  // namespace tcm::api
