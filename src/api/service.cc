#include "api/service.h"

#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/event_log.h"
#include "obs/process.h"
#include "obs/trace.h"
#include "support/failpoint.h"
#include "support/log.h"

namespace tcm::api {

namespace {

// Persisted feedback snapshot format (a private durability file, not part of
// the wire surface, but built from the same v1 program/schedule codecs):
//   {"format":"tcm-feedback","version":1,"samples":[{"program":..,"schedule":..}]}
constexpr int kFeedbackFormatVersion = 1;

}  // namespace

Service::Service(ServiceOptions options)
    : options_(std::move(options)), started_(std::chrono::steady_clock::now()) {}

Service::~Service() { shutdown(); }

Result<std::unique_ptr<Service>> Service::open(ServiceOptions options) {
  try {
    // unique_ptr rather than make_unique: the constructor is private.
    std::unique_ptr<Service> svc(new Service(std::move(options)));
    const ServiceOptions& opt = svc->options_;
    if (opt.registry_root.empty())
      return Status::invalid_argument("ServiceOptions.registry_root must be set");

    svc->registry_ = std::make_unique<registry::ModelRegistry>(opt.registry_root);
    const int active = svc->registry_->active_version();
    if (active == 0)
      return Status::failed_precondition("registry at '" + opt.registry_root +
                                         "' has no ACTIVE version; register and promote a "
                                         "model before serving");
    const registry::ModelManifest manifest = svc->registry_->manifest(active);
    const std::uint64_t serving_hash = registry::feature_config_hash(opt.serve.features);
    if (manifest.feature_hash != serving_hash)
      return Status::failed_precondition(
          "feature-config hash mismatch: serving featurization does not match the ACTIVE "
          "version's manifest (v" +
          std::to_string(active) + ")");

    std::shared_ptr<model::SpeedupPredictor> predictor;
    try {
      predictor = svc->registry_->load(active);
    } catch (const std::exception& e) {
      return Status::failed_precondition("ACTIVE checkpoint v" + std::to_string(active) +
                                         " failed to load: " + e.what());
    }
    // One registry for the whole stack: the PredictionService registers its
    // histograms here and rest.cc's /metrics renders it alongside the
    // counter snapshot. Likewise one watchdog: every background thread of
    // the stack (and of the HTTP layer, which receives it via tcm_serve)
    // heartbeats into the same /healthz verdict.
    svc->metrics_ = opt.serve.metrics ? opt.serve.metrics
                                      : std::make_shared<obs::MetricsRegistry>();
    svc->watchdog_ = opt.serve.watchdog ? opt.serve.watchdog
                                        : std::make_shared<obs::Watchdog>();
    // Process self-metrics and the autopilot/drift families are registered
    // up front (zero-valued until their producers run) so the /metrics
    // surface is complete from the first scrape, autopilot or not.
    obs::register_process_metrics(*svc->metrics_);
    registry::register_autopilot_metrics(*svc->metrics_);
    svc->metrics_
        ->gauge("tcm_autopilot_enabled", "1 when the continual-learning autopilot runs")
        .set(opt.enable_autopilot ? 1.0 : 0.0);
    serve::ServeOptions serve_opt = opt.serve;
    serve_opt.metrics = svc->metrics_;
    serve_opt.watchdog = svc->watchdog_;
    svc->service_ =
        std::make_unique<serve::PredictionService>(std::move(predictor), active, serve_opt);

    if (opt.enable_feedback) {
      svc->feedback_ = std::make_shared<serve::FeedbackBuffer>(opt.feedback);
      if (opt.persist_feedback) svc->restore_feedback();
      svc->service_->set_feedback(svc->feedback_);
      // The callback owns a shared_ptr copy, so the gauge stays safe to
      // sample even if the facade is torn down before the registry.
      std::shared_ptr<serve::FeedbackBuffer> buffer = svc->feedback_;
      svc->metrics_->gauge_callback(
          "tcm_feedback_buffered", "Samples currently in the reservoir", "",
          [buffer] { return static_cast<double>(buffer->size()); });
    }

    if (opt.enable_search) {
      jobs::SearchJobManagerOptions sopt = opt.search;
      sopt.metrics = svc->metrics_;
      sopt.watchdog = svc->watchdog_;
      if (sopt.memory_path.empty())
        sopt.memory_path = opt.registry_root + "/schedule_memory.json";
      svc->search_jobs_ =
          std::make_unique<jobs::SearchJobManager>(*svc->service_, std::move(sopt));
    }

    if (opt.enable_autopilot) {
      registry::ContinualTrainerOptions topt = opt.trainer;
      topt.feedback = svc->feedback_;  // may be null: trainer treats as disabled
      svc->trainer_ = std::make_unique<registry::ContinualTrainer>(*svc->registry_,
                                                                   *svc->service_, topt);
      registry::ContinualSchedulerOptions sopt = opt.scheduler;
      sopt.metrics = svc->metrics_;
      sopt.watchdog = svc->watchdog_;
      svc->scheduler_ = std::make_unique<registry::ContinualScheduler>(
          *svc->registry_, *svc->service_, *svc->trainer_, sopt);
      svc->scheduler_->start();
    }
    return svc;
  } catch (const std::exception& e) {
    return status_from_exception(e);
  } catch (...) {
    return Status::internal("Service::open: unknown exception");
  }
}

Result<PredictResponse> Service::predict(const PredictRequest& request) {
  if (shut_down_.load(std::memory_order_acquire))
    return Status::unavailable("service is shut down");
  TCM_TRACE_SPAN("api.predict");
  try {
    if (request.schedules.empty())
      return Status::invalid_argument("predict: at least one schedule required");
    if (auto problem = request.program.validate())
      return Status::invalid_argument("predict: invalid program: " + *problem);

    std::vector<std::future<serve::Prediction>> futures;
    futures.reserve(request.schedules.size());
    for (const transforms::Schedule& schedule : request.schedules)
      futures.push_back(service_->submit(request.program, schedule, request.deadline));
    service_->flush();  // no tail request waits out the batching deadline

    PredictResponse response;
    response.predictions.reserve(futures.size());
    Status first_error;
    for (std::future<serve::Prediction>& f : futures) {
      try {
        const serve::Prediction p = f.get();
        response.predictions.push_back({p.speedup, p.model_version});
      } catch (const std::exception& e) {
        // Keep draining the remaining futures (their batches are in flight
        // regardless); report the first failure for the whole request.
        if (first_error.ok()) {
          Status s = status_from_exception(e);
          // Serving-path runtime errors are not preconditions the client can
          // fix by retrying differently; surface them as INTERNAL.
          if (s.code() == StatusCode::kFailedPrecondition)
            s = Status::internal(s.message());
          first_error = s;
        }
      }
    }
    if (!first_error.ok()) return first_error;
    return response;
  } catch (const std::exception& e) {
    Status s = status_from_exception(e);
    if (s.code() == StatusCode::kFailedPrecondition) s = Status::internal(s.message());
    return s;
  } catch (...) {
    return Status::internal("predict: unknown exception");
  }
}

Result<jobs::SearchJobInfo> Service::submit_search(const SearchRequest& request) {
  if (shut_down_.load(std::memory_order_acquire))
    return Status::unavailable("service is shut down");
  if (!search_jobs_)
    return Status::unimplemented("search service is disabled (enable_search=false)");
  TCM_TRACE_SPAN("api.search.submit");
  try {
    if (auto problem = request.program.validate())
      return Status::invalid_argument("search: invalid program: " + *problem);
    jobs::SearchJobRequest job;
    job.program = request.program;
    job.method = request.method;
    job.beam_width = request.beam_width;
    job.mcts_iterations = request.mcts_iterations;
    job.deadline = request.deadline;
    const std::string id = search_jobs_->submit(std::move(job));
    std::optional<jobs::SearchJobInfo> info = search_jobs_->info(id);
    if (!info) return Status::internal("search: job '" + id + "' vanished after submit");
    return *std::move(info);
  } catch (const std::exception& e) {
    return status_from_exception(e);
  } catch (...) {
    return Status::internal("submit_search: unknown exception");
  }
}

Result<jobs::SearchJobInfo> Service::search_job(const std::string& id) const {
  if (!search_jobs_)
    return Status::unimplemented("search service is disabled (enable_search=false)");
  std::optional<jobs::SearchJobInfo> info = search_jobs_->info(id);
  if (!info) return Status::not_found("no search job '" + id + "'");
  return *std::move(info);
}

Result<std::vector<jobs::SearchJobInfo>> Service::list_searches() const {
  if (!search_jobs_)
    return Status::unimplemented("search service is disabled (enable_search=false)");
  return search_jobs_->list();
}

Result<jobs::SearchJobInfo> Service::cancel_search(const std::string& id) {
  if (!search_jobs_)
    return Status::unimplemented("search service is disabled (enable_search=false)");
  if (!search_jobs_->cancel(id)) return Status::not_found("no search job '" + id + "'");
  std::optional<jobs::SearchJobInfo> info = search_jobs_->info(id);
  if (!info) return Status::not_found("no search job '" + id + "'");
  return *std::move(info);
}

Result<std::vector<ModelInfo>> Service::models() const {
  if (shut_down_.load(std::memory_order_acquire))
    return Status::unavailable("service is shut down");
  try {
    const int active = registry_->active_version();
    const int previous = registry_->previous_version();
    std::vector<ModelInfo> out;
    for (registry::ModelManifest& m : registry_->list()) {
      ModelInfo info;
      info.active = m.version == active;
      info.previous = m.version == previous;
      info.manifest = std::move(m);
      out.push_back(std::move(info));
    }
    return out;
  } catch (const std::exception& e) {
    return status_from_exception(e);
  }
}

Status Service::promote(int version) {
  if (shut_down_.load(std::memory_order_acquire))
    return Status::unavailable("service is shut down");
  std::lock_guard<std::mutex> lock(admin_mu_);
  try {
    try {
      (void)registry_->manifest(version);
    } catch (const std::exception& e) {
      return Status::not_found("model version " + std::to_string(version) +
                               " not found: " + e.what());
    }
    // Load through the registry's integrity checks *before* touching the
    // ACTIVE pointer: a tampered or torn checkpoint must surface as a
    // status while the incumbent keeps serving.
    std::shared_ptr<model::SpeedupPredictor> next;
    try {
      next = registry_->load(version);
    } catch (const std::exception& e) {
      return Status::failed_precondition("checkpoint v" + std::to_string(version) +
                                         " rejected: " + e.what());
    }
    const int from = registry_->active_version();
    registry_->promote(version);
    service_->swap_model(std::move(next), version);
    obs::EventLog::instance().emit(
        "promote", "info",
        "from=v" + std::to_string(from) + " to=v" + std::to_string(version) + " by=api",
        obs::current_trace_id());
    // The drift window must not compare the new model's predictions against
    // the old model's.
    service_->clear_recent_predictions();
    return Status();
  } catch (const std::exception& e) {
    return status_from_exception(e);
  } catch (...) {
    return Status::internal("promote: unknown exception");
  }
}

Result<int> Service::rollback() {
  if (shut_down_.load(std::memory_order_acquire))
    return Status::unavailable("service is shut down");
  std::lock_guard<std::mutex> lock(admin_mu_);
  try {
    const int previous = registry_->previous_version();
    if (previous == 0) return Status::failed_precondition("no previous version to roll back to");
    std::shared_ptr<model::SpeedupPredictor> next;
    try {
      next = registry_->load(previous);
    } catch (const std::exception& e) {
      return Status::failed_precondition("rollback target v" + std::to_string(previous) +
                                         " rejected: " + e.what());
    }
    const int from = registry_->active_version();
    const int restored = registry_->rollback();
    service_->swap_model(std::move(next), restored);
    obs::EventLog::instance().emit(
        "rollback", "warn",
        "from=v" + std::to_string(from) + " to=v" + std::to_string(restored) + " by=api",
        obs::current_trace_id());
    service_->clear_recent_predictions();
    return restored;
  } catch (const std::exception& e) {
    return status_from_exception(e);
  } catch (...) {
    return Status::internal("rollback: unknown exception");
  }
}

StatsSnapshot Service::stats() const {
  StatsSnapshot snap;
  snap.serve = service_->stats();
  snap.active_version = snap.serve.active_version;
  snap.previous_version = registry_->previous_version();
  snap.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started_).count();
  if (scheduler_) {
    snap.autopilot.enabled = true;
    snap.autopilot.polls = scheduler_->polls();
    snap.autopilot.cycles = scheduler_->cycles_run();
    snap.autopilot.last = scheduler_->last_report();
    const std::vector<registry::SchedulerEvent> events = scheduler_->history();
    snap.autopilot.triggers = events.size();
    for (const registry::SchedulerEvent& e : events)
      if (e.cycle_failed) ++snap.autopilot.cycle_failures;
  }
  if (feedback_) {
    snap.feedback.enabled = true;
    snap.feedback.offered = feedback_->offered();
    snap.feedback.sampled = feedback_->sampled();
    snap.feedback.buffered = feedback_->size();
  }
  if (search_jobs_) {
    snap.search.enabled = true;
    snap.search.jobs = search_jobs_->stats();
  }
  return snap;
}

namespace {

Json drift_signal_json(const serve::DriftSignal& s) {
  Json j = Json::object();
  j.set("value", Json(s.value));
  j.set("threshold", Json(s.threshold));
  j.set("fired", Json(s.fired));
  j.set("samples", Json(s.samples));
  return j;
}

}  // namespace

Json Service::debug_state() const {
  Json state = Json::object();
  state.set("shut_down", Json(shut_down_.load(std::memory_order_acquire)));
  state.set("uptime_seconds",
            Json(std::chrono::duration<double>(std::chrono::steady_clock::now() - started_)
                     .count()));

  // Registry: every version plus the ACTIVE fine-tune lineage. list() reads
  // disk and can throw (e.g. registry root deleted under us) — a debug
  // endpoint must report that, not take the server down.
  Json registry = Json::object();
  try {
    const int active = registry_->active_version();
    const int previous = registry_->previous_version();
    registry.set("active", Json(active));
    registry.set("previous", Json(previous));
    Json versions = Json::array();
    std::vector<registry::ModelManifest> manifests = registry_->list();
    for (const registry::ModelManifest& m : manifests) {
      Json v = Json::object();
      v.set("version", Json(m.version));
      v.set("parent_version", Json(m.parent_version));
      v.set("model_kind", Json(m.model_kind));
      v.set("created_unix", Json(m.created_unix));
      v.set("holdout_mape", Json(m.metrics.mape));
      v.set("provenance", Json(m.provenance));
      versions.push_back(std::move(v));
    }
    registry.set("versions", std::move(versions));
    // Walk the parent chain from ACTIVE (bounded by the version count so a
    // cyclic manifest cannot hang the endpoint).
    Json lineage = Json::array();
    int cursor = active;
    for (std::size_t hops = 0; cursor != 0 && hops <= manifests.size(); ++hops) {
      lineage.push_back(Json(cursor));
      int parent = 0;
      for (const registry::ModelManifest& m : manifests)
        if (m.version == cursor) parent = m.parent_version;
      cursor = parent;
    }
    registry.set("active_lineage", std::move(lineage));
  } catch (const std::exception& e) {
    registry.set("error", Json(std::string(e.what())));
  }
  state.set("registry", std::move(registry));

  // Serving: counters plus the live batcher/cache state the counters hide.
  const serve::ServeStats sstats = service_->stats();
  Json serving = Json::object();
  serving.set("active_version", Json(sstats.active_version));
  serving.set("requests", Json(sstats.requests));
  serving.set("batches", Json(sstats.batches));
  serving.set("failed_requests", Json(sstats.failed_requests));
  serving.set("queue_depth", Json(static_cast<std::uint64_t>(service_->pending())));
  serving.set("mean_batch_occupancy", Json(sstats.mean_batch_occupancy));
  serving.set("p50_latency_seconds", Json(sstats.p50_latency));
  serving.set("p99_latency_seconds", Json(sstats.p99_latency));
  serving.set("model_swaps", Json(sstats.model_swaps));
  serving.set("shadow_version", Json(sstats.shadow_version));
  serving.set("shed_requests", Json(sstats.shed_requests));
  serving.set("degradation_level", Json(sstats.degradation_level));
  Json cache = Json::object();
  cache.set("hits", Json(sstats.cache_hits));
  cache.set("misses", Json(sstats.cache_misses));
  const std::uint64_t lookups = sstats.cache_hits + sstats.cache_misses;
  cache.set("hit_ratio", Json(lookups == 0 ? 0.0
                                           : static_cast<double>(sstats.cache_hits) /
                                                 static_cast<double>(lookups)));
  serving.set("cache", std::move(cache));
  state.set("serving", std::move(serving));

  // Autopilot: phase + budget counters + the drift window as last observed.
  Json autopilot = Json::object();
  autopilot.set("enabled", Json(scheduler_ != nullptr));
  if (scheduler_) {
    autopilot.set("phase", Json(scheduler_->phase()));
    autopilot.set("polls", Json(scheduler_->polls()));
    autopilot.set("cycles", Json(scheduler_->cycles_run()));
    const std::vector<registry::SchedulerEvent> events = scheduler_->history();
    autopilot.set("triggers", Json(static_cast<std::uint64_t>(events.size())));
    std::uint64_t failures = 0;
    for (const registry::SchedulerEvent& e : events)
      if (e.cycle_failed) ++failures;
    autopilot.set("cycle_failures", Json(failures));
    Json breaker = Json::object();
    breaker.set("state", Json(std::string(scheduler_->breaker_state())));
    breaker.set("times_opened", Json(scheduler_->breaker_times_opened()));
    breaker.set("consecutive_failures", Json(scheduler_->breaker_consecutive_failures()));
    autopilot.set("breaker", std::move(breaker));
    const serve::DriftReport report = scheduler_->last_report();
    Json drift = Json::object();
    drift.set("psi", drift_signal_json(report.psi));
    drift.set("ks", drift_signal_json(report.ks));
    drift.set("failure_rate", drift_signal_json(report.failure_rate));
    drift.set("shadow_mape", drift_signal_json(report.shadow_mape));
    drift.set("shadow_spearman", drift_signal_json(report.shadow_spearman));
    drift.set("reference_size", Json(static_cast<std::uint64_t>(report.reference_size)));
    drift.set("window_size", Json(static_cast<std::uint64_t>(report.window_size)));
    drift.set("drifted", Json(report.drifted));
    drift.set("reason", Json(report.reason));
    autopilot.set("drift", std::move(drift));
  }
  state.set("autopilot", std::move(autopilot));

  Json feedback = Json::object();
  feedback.set("enabled", Json(feedback_ != nullptr));
  if (feedback_) {
    feedback.set("offered", Json(feedback_->offered()));
    feedback.set("sampled", Json(feedback_->sampled()));
    feedback.set("buffered", Json(static_cast<std::uint64_t>(feedback_->size())));
  }
  state.set("feedback", std::move(feedback));

  // Search jobs: queue pressure plus schedule-memory effectiveness, the two
  // numbers that explain why autoscheduling latency looks the way it does.
  Json search = Json::object();
  search.set("enabled", Json(search_jobs_ != nullptr));
  if (search_jobs_) {
    const jobs::SearchJobStats sjstats = search_jobs_->stats();
    search.set("submitted", Json(sjstats.submitted));
    search.set("done", Json(sjstats.done));
    search.set("failed", Json(sjstats.failed));
    search.set("cancelled", Json(sjstats.cancelled));
    search.set("reused", Json(sjstats.reused));
    search.set("running", Json(static_cast<std::uint64_t>(sjstats.running)));
    search.set("queued", Json(static_cast<std::uint64_t>(sjstats.queued)));
    Json memory = Json::object();
    memory.set("path", Json(search_jobs_->memory().path()));
    memory.set("entries", Json(static_cast<std::uint64_t>(sjstats.memory.entries)));
    memory.set("exact_hits", Json(sjstats.memory.exact_hits));
    memory.set("shape_hits", Json(sjstats.memory.shape_hits));
    memory.set("misses", Json(sjstats.memory.misses));
    memory.set("stores", Json(sjstats.memory.stores));
    search.set("memory", std::move(memory));
  }
  state.set("search", std::move(search));

  // Watchdog: per-thread heartbeat ages, so a wedged worker is visible here
  // with the same detail /healthz summarizes.
  const obs::Watchdog::Report wreport = watchdog_->report();
  Json watchdog = Json::object();
  watchdog.set("health", Json(obs::Watchdog::health_name(wreport.health)));
  if (!wreport.reason.empty()) watchdog.set("reason", Json(wreport.reason));
  Json threads = Json::array();
  for (const obs::Watchdog::ThreadReport& t : wreport.threads) {
    Json tj = Json::object();
    tj.set("name", Json(t.name));
    tj.set("critical", Json(t.critical));
    tj.set("idle", Json(t.idle));
    tj.set("activity", Json(t.activity));
    tj.set("age_seconds", Json(t.age_seconds));
    tj.set("stall_after_seconds", Json(t.stall_after_seconds));
    tj.set("stalled", Json(t.stalled));
    threads.push_back(std::move(tj));
  }
  watchdog.set("threads", std::move(threads));
  state.set("watchdog", std::move(watchdog));

  Json events = Json::object();
  events.set("emitted", Json(obs::EventLog::instance().total_emitted()));
  events.set("capacity",
             Json(static_cast<std::uint64_t>(obs::EventLog::instance().capacity())));
  state.set("events", std::move(events));

  // Chaos state: whether the fault-injection sites are compiled in and what
  // is currently armed — an operator reading a sick replica's debug dump
  // must be able to tell injected faults from real ones at a glance.
  Json failpoints = Json::object();
  failpoints.set("compiled", Json(support::failpoints_compiled()));
  Json armed = Json::array();
  for (const std::string& site : support::failpoint_armed()) armed.push_back(Json(site));
  failpoints.set("armed", std::move(armed));
  state.set("failpoints", std::move(failpoints));
  return state;
}

Status Service::healthy() const {
  if (shut_down_.load(std::memory_order_acquire))
    return Status::unavailable("service is shut down");
  return Status();
}

std::string Service::degraded_reason() const {
  if (scheduler_ && scheduler_->breaker_open()) return "autopilot circuit breaker open";
  return {};
}

Status Service::quiesce() {
  if (shut_down_.load(std::memory_order_acquire))
    return Status::unavailable("service is shut down");
  std::lock_guard<std::mutex> lock(admin_mu_);
  try {
    service_->quiesce();
    return persist_feedback_now();
  } catch (const std::exception& e) {
    return status_from_exception(e);
  }
}

void Service::shutdown() {
  std::lock_guard<std::mutex> lock(admin_mu_);
  if (shut_down_.exchange(true, std::memory_order_acq_rel)) return;
  if (scheduler_) scheduler_->stop();
  // Search workers score through service_; they must drain before it does.
  if (search_jobs_) search_jobs_->stop();
  try {
    if (service_) service_->quiesce();
    const Status persisted = persist_feedback_now();
    if (!persisted.ok())
      log_warn() << "shutdown: feedback persistence failed: " << persisted.to_string();
  } catch (const std::exception& e) {
    log_warn() << "shutdown: quiesce failed: " << e.what();
  }
}

int Service::active_version() const { return service_->active_version(); }

std::string Service::feedback_file() const {
  if (!options_.feedback_path.empty()) return options_.feedback_path;
  return options_.registry_root + "/feedback.json";
}

void Service::restore_feedback() {
  const std::string path = feedback_file();
  std::ifstream in(path, std::ios::binary);
  if (!in) return;  // nothing persisted
  std::ostringstream buf;
  buf << in.rdbuf();
  in.close();
  // Consume the file up front: whatever happens below, the samples can
  // never be restored a second time by a later restart.
  std::error_code ec;
  std::filesystem::remove(path, ec);

  Result<Json> doc = Json::parse(buf.str());
  std::vector<serve::ServedSample> samples;
  Status problem;
  if (!doc.ok()) {
    problem = doc.status();
  } else {
    const Json* version = doc->find("version");
    const Json* list = doc->find("samples");
    if (version == nullptr || !version->is_int() ||
        version->as_int() != kFeedbackFormatVersion || list == nullptr || !list->is_array()) {
      problem = Status::invalid_argument("unrecognized feedback snapshot layout");
    } else {
      for (const Json& item : list->as_array()) {
        const Json* pj = item.find("program");
        const Json* sj = item.find("schedule");
        if (pj == nullptr || sj == nullptr) continue;
        Result<ir::Program> program = program_from_json(*pj);
        Result<transforms::Schedule> schedule = schedule_from_json(*sj);
        if (!program.ok() || !schedule.ok()) continue;  // skip torn samples
        samples.push_back({program.take(), schedule.take()});
      }
    }
  }
  if (!problem.ok()) {
    // Losing the snapshot is benign (it is a sample of traffic); refusing
    // to serve over it would not be.
    log_warn() << "discarding corrupt feedback snapshot '" << path
               << "': " << problem.to_string();
    return;
  }
  feedback_->restore(std::move(samples));
}

Status Service::persist_feedback_now() {
  if (!feedback_ || !options_.persist_feedback) return Status();
  try {
    Json list = Json::array();
    for (const serve::ServedSample& s : feedback_->snapshot()) {
      Json item = Json::object();
      item.set("program", to_json(s.program));
      item.set("schedule", to_json(s.schedule));
      list.push_back(std::move(item));
    }
    Json doc = Json::object();
    doc.set("format", Json("tcm-feedback"));
    doc.set("version", Json(static_cast<std::int64_t>(kFeedbackFormatVersion)));
    doc.set("samples", std::move(list));

    const std::string path = feedback_file();
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) return Status::internal("cannot write feedback snapshot to " + tmp);
      out << doc.dump();
      if (!out.flush()) return Status::internal("short write persisting feedback to " + tmp);
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) return Status::internal("cannot publish feedback snapshot: " + ec.message());
    return Status();
  } catch (const std::exception& e) {
    return status_from_exception(e);
  }
}

}  // namespace tcm::api
