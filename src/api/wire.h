// Versioned request/response surface of tcm::api (wire format v1).
//
// These structs are the façade's vocabulary: in-process callers pass them to
// api::Service directly, HTTP callers exchange their JSON encodings. The
// JSON layout is part of the v1 contract — fields may be *added*, never
// renamed or re-typed; a breaking change mints /v2 alongside /v1 instead of
// mutating this file's meaning. A request carrying "api_version" other than
// kApiVersion is rejected with INVALID_ARGUMENT.
//
// Encodings (writers omit default-valued optional fields):
//
//   Program    {"name", "buffers":[{"name","dims","input"}],
//               "loops":[{"iter","extent","parent","body":[["loop",i]|["comp",i]],
//                         "parallel","vector_width","unroll",
//                         "tail_of","orig_extent",
//                         "skew_of","skew_factor","skew_is_sum","tags":{...}}],
//               "comps":[{"name","store":ACCESS,"rhs":EXPR,"reduction"}],
//               "roots":[...]}
//              Buffer/loop/comp ids are their array positions; Computation
//              loop_id is derived from the tree, not transmitted. Multi-root
//              programs list every top-level nest in "roots", in textual
//              order.
//   ACCESS     {"buffer":id,"depth":n,"rows":[[c..cn,const],...]}  (rank rows)
//   EXPR       {"const":v} | {"load":ACCESS}
//              | {"op":"add|sub|mul|div|max|min","lhs":EXPR,"rhs":EXPR}
//   Schedule   {"fuse":[{"a","b","depth"}],
//               "skew":[{"comp","level","factor"}],
//               "unimodular":[{"comp","level","coeffs":[...]}],  (4 or 9 coeffs,
//                 a row-major 2x2 or 3x3 matrix with |det| == 1)
//               "interchange":[{"comp","a","b"}],
//               "tile":[{"comp","level","sizes"}],"unroll":[{"comp","factor"}],
//               "parallel":[{"comp","level"}],"vectorize":[{"comp","width"}]}
//   Predict    request  {"program":PROGRAM, "schedule":SCHEDULE}
//                    or {"program":PROGRAM, "schedules":[SCHEDULE,...]}
//              response {"api_version":1,
//                        "predictions":[{"speedup":s,"model_version":v},...]}
//   Search     request  {"program":PROGRAM, "method":"beam"|"mcts",
//                        "beam_width":n, "iterations":n}  (deadline rides the
//                        X-Deadline-Ms header, like /v1/predict)
//              job      {"job_id","state","method","reused","warm_started",
//                        "progress","evaluations","best_speedup",
//                        "baseline_speedup","wall_seconds",
//                        "program_fingerprint" (decimal string; u64 exceeds
//                        JSON's interoperable int range),"schedule":SCHEDULE
//                        [,"error"]}
//   Error body {"error":{"code":"INVALID_ARGUMENT","http":400,"message":"..."}}
//
// Speedups are serialized with shortest-round-trip double formatting
// (api/json.h), so HTTP predictions are bitwise-identical to the in-process
// futures API.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/json.h"
#include "api/status.h"
#include "ir/program.h"
#include "jobs/job_manager.h"
#include "jobs/search_job.h"
#include "registry/model_registry.h"
#include "serve/drift_monitor.h"
#include "serve/prediction_service.h"
#include "transforms/schedule.h"

namespace tcm::api {

inline constexpr int kApiVersion = 1;

struct PredictRequest {
  ir::Program program;
  std::vector<transforms::Schedule> schedules;  // >= 1
  // Absolute deadline for the whole request; expired work is shed with
  // DEADLINE_EXCEEDED instead of served late. Not part of the JSON encoding:
  // HTTP callers send a *relative* X-Deadline-Ms header (an absolute
  // steady_clock point is meaningless across processes) which rest.cc
  // converts on arrival; in-process callers set this directly.
  serve::RequestDeadline deadline = serve::kNoDeadline;
};

struct PredictResponse {
  struct Item {
    double speedup = 0;
    int model_version = 0;
  };
  std::vector<Item> predictions;  // one per requested schedule, in order
};

// POST /v1/search body. Like PredictRequest, the deadline is not part of the
// JSON encoding: HTTP callers send a relative X-Deadline-Ms header which
// rest.cc converts to an absolute point on arrival.
struct SearchRequest {
  ir::Program program;
  jobs::SearchMethod method = jobs::SearchMethod::kBeam;
  int beam_width = 4;        // beam method only
  int mcts_iterations = 48;  // mcts method only ("iterations" on the wire)
  serve::RequestDeadline deadline = serve::kNoDeadline;
};

// One registry version plus its lifecycle role.
struct ModelInfo {
  registry::ModelManifest manifest;
  bool active = false;    // currently receiving traffic
  bool previous = false;  // the rollback target
};

struct AutopilotStats {
  bool enabled = false;
  std::uint64_t polls = 0;
  std::uint64_t cycles = 0;          // successful retraining cycles
  std::uint64_t triggers = 0;        // drift triggers (incl. failed cycles)
  std::uint64_t cycle_failures = 0;  // cycles that threw (swallowed + recorded)
  serve::DriftReport last;           // most recent observation
};

struct FeedbackStats {
  bool enabled = false;
  std::uint64_t offered = 0;
  std::uint64_t sampled = 0;
  std::size_t buffered = 0;  // samples currently in the reservoir
};

struct SearchStats {
  bool enabled = false;
  jobs::SearchJobStats jobs;
};

struct StatsSnapshot {
  serve::ServeStats serve;
  int active_version = 0;
  int previous_version = 0;
  double uptime_seconds = 0;
  AutopilotStats autopilot;
  FeedbackStats feedback;
  SearchStats search;
};

// --- codecs ----------------------------------------------------------------
// Decoders validate types/ranges and (for programs) run Program::validate();
// every failure is INVALID_ARGUMENT with a path-ish message. Encoders cannot
// fail.

Json to_json(const ir::Program& program);
Result<ir::Program> program_from_json(const Json& j);

Json to_json(const transforms::Schedule& schedule);
Result<transforms::Schedule> schedule_from_json(const Json& j);

Result<PredictRequest> predict_request_from_json(const Json& j);
Json to_json(const PredictResponse& response);

Result<SearchRequest> search_request_from_json(const Json& j);
Json to_json(const jobs::SearchJobInfo& info);

Json to_json(const ModelInfo& info);
Json to_json(const StatsSnapshot& stats);

// {"error":{...}} body for a non-OK status.
Json error_body(const Status& status);

}  // namespace tcm::api
