// Minimal leveled logging. Benches log progress at Info; the library itself
// stays quiet below Warn so tests are not noisy.
//
// Every emitted line carries an ISO-8601 UTC timestamp (millisecond
// resolution), the level tag and the OS thread id:
//
//   [2026-08-07T12:34:56.789Z] [WARN ] [tid 4242] slow request route=/v1/predict ms=512
//
// Structured suffixes use the kv() helper, which appends `key=value` pairs
// (values with spaces or quotes are quoted) so lines stay grep- and
// logfmt-parsable:
//
//   log_warn() << "slow request" << kv("route", path) << kv("ms", elapsed);
#pragma once

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace tcm {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

// "debug" / "info" / "warn" / "error" / "off", case-insensitive; nullopt on
// anything else.
std::optional<LogLevel> parse_log_level(std::string_view name);

// Applies the TCM_LOG_LEVEL environment variable (when set and parsable) to
// the global threshold. Binaries call this at startup; explicit flags win by
// calling set_log_level afterwards.
void init_log_level_from_env();

// OS thread id of the caller (cached per thread).
std::uint64_t os_thread_id();

// Emit a message at the given level (thread-safe, goes to stderr with the
// timestamp/level/tid prefix).
void log_message(LogLevel level, const std::string& msg);

// Token-bucket rate limit applied to Warn/Error lines only (Info/Debug are
// already gated by the level threshold; Warn/Error are the levels a wedged
// dependency can emit at serve rates). A line that passes while earlier
// lines were dropped carries a ` suppressed=N` trailer. `burst` caps how
// many lines may pass back-to-back; `lines_per_sec` is the refill rate.
// burst <= 0 disables limiting. Reconfiguring refills the bucket but keeps
// the pending suppressed count. Defaults: burst 256, 64 lines/sec.
void set_log_rate_limit(double lines_per_sec, double burst);

// Total Warn/Error lines dropped by the rate limiter since process start.
std::uint64_t log_suppressed_total();

// Test hook: when set, formatted lines go to the sink instead of stderr.
// Pass nullptr to restore stderr. Not for production use.
using LogSink = void (*)(LogLevel level, const std::string& formatted_line);
void set_log_sink(LogSink sink);

// The prefix+message formatting applied to every line (exposed so tests can
// assert the layout without capturing stderr).
std::string format_log_line(LogLevel level, const std::string& msg);

namespace detail {

// A `key=value` structured suffix; streams into a LogLine.
struct KeyValue {
  std::string_view key;
  std::string value;
};

// Quotes the value when it contains whitespace, '"' or '='; logfmt idiom.
std::string quote_log_value(std::string_view value);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }
  LogLine& operator<<(const KeyValue& kv) {
    os_ << ' ' << kv.key << '=' << quote_log_value(kv.value);
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::Debug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::Info); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::Warn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::Error); }

// Structured key=value suffix for a log line; accepts anything streamable.
template <typename T>
detail::KeyValue kv(std::string_view key, const T& value) {
  std::ostringstream os;
  os << value;
  return {key, os.str()};
}
inline detail::KeyValue kv(std::string_view key, std::string value) {
  return {key, std::move(value)};
}

}  // namespace tcm
