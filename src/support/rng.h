// Deterministic random number generation for the whole project.
//
// Every stochastic component (program generator, schedule generator, noise
// model, NN initialization, dropout, search) takes an explicit Rng so that
// datasets, trained models and experiments are reproducible from a seed.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace tcm {

// xoshiro256++ generator (Blackman & Vigna). Fast, high quality, and small
// enough to copy by value when a component needs an independent stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Raw 64 random bits.
  std::uint64_t next_u64();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform real in [lo, hi).
  double uniform_real(double lo = 0.0, double hi = 1.0);

  // True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  // Standard normal via Box-Muller.
  double normal(double mean = 0.0, double stddev = 1.0);

  // Lognormal: exp(normal(mu, sigma)). Used for measurement-noise emulation.
  double lognormal(double mu, double sigma);

  // Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& choice(const std::vector<T>& v) {
    if (v.empty()) throw std::invalid_argument("Rng::choice on empty vector");
    return v[static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(v.size()) - 1))];
  }

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Derive an independent child stream; deterministic in (state, salt).
  Rng split(std::uint64_t salt);

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace tcm
