#include "support/retry.h"

#include <algorithm>
#include <cmath>
#include <thread>

namespace tcm::support {

std::chrono::milliseconds retry_backoff(const RetryOptions& options, int retry) {
  double ms = static_cast<double>(options.initial_backoff.count()) *
              std::pow(std::max(options.multiplier, 1.0), retry);
  ms = std::min(ms, static_cast<double>(options.max_backoff.count()));
  return std::chrono::milliseconds(static_cast<std::int64_t>(ms));
}

namespace retry_detail {

void sleep_with_jitter(const RetryOptions& options, int retry, Rng& rng) {
  const std::chrono::milliseconds base = retry_backoff(options, retry);
  const double jitter = std::clamp(options.jitter, 0.0, 1.0);
  const double factor = jitter > 0 ? rng.uniform_real(1.0 - jitter, 1.0 + jitter) : 1.0;
  const auto delay = std::chrono::milliseconds(
      static_cast<std::int64_t>(static_cast<double>(base.count()) * factor));
  if (options.sleep_fn)
    options.sleep_fn(delay);
  else if (delay.count() > 0)
    std::this_thread::sleep_for(delay);
}

}  // namespace retry_detail

}  // namespace tcm::support
