// Closed / open / half-open circuit breaker.
//
// Guards a repeatedly-attempted operation (here: continual-learning cycles)
// against a persistently failing dependency. In the closed state every
// attempt is allowed; `failure_threshold` *consecutive* failures trip the
// breaker open, after which allow() refuses until `open_cooldown` elapses.
// Then the breaker goes half-open: exactly one probe attempt is admitted —
// success closes the breaker, failure re-opens it (restarting the
// cooldown). This converts a broken trainer/registry from a retry storm
// burning compute every poll into one cheap probe per cooldown, with the
// state visible on /debug/state and /healthz.
//
// Thread-safe. The clock is injectable so tests drive transitions without
// sleeping.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>

namespace tcm::support {

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Options {
    int failure_threshold = 3;  // consecutive failures that open the breaker
    std::chrono::milliseconds open_cooldown{60000};  // open -> half-open
    // Test hook; defaults to steady_clock.
    std::function<std::chrono::steady_clock::time_point()> now_fn;
  };

  explicit CircuitBreaker(Options options);

  // True when an attempt may proceed. In the open state this flips to
  // half-open once the cooldown has elapsed and admits exactly one probe;
  // further calls refuse until that probe reports back.
  bool allow();

  // Report the outcome of an allowed attempt.
  void record_success();
  void record_failure();

  State state() const;
  const char* state_name() const;  // "closed" / "open" / "half_open"

  int consecutive_failures() const;
  std::uint64_t times_opened() const;  // closed/half-open -> open transitions

 private:
  std::chrono::steady_clock::time_point now() const;
  // Requires mu_ held: open -> half-open promotion when the cooldown passed.
  // Const because the read-only observers (state()) also perform it — the
  // promotion is driven by the clock, not by an API call.
  void refresh_locked() const;

  const Options options_;
  mutable std::mutex mu_;
  mutable State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  std::uint64_t times_opened_ = 0;
  mutable bool probe_in_flight_ = false;  // half-open: one probe admitted
  std::chrono::steady_clock::time_point opened_at_{};
};

}  // namespace tcm::support
