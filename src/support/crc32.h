// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum gzip
// and zip use. Guards the weight-file tensor payload against silent
// bit-rot / truncated writes; see nn/serialize.cc.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tcm {

// Incremental: feed chunks by passing the previous return value as `seed`
// (start with 0). The init/final XOR is handled internally, so a one-shot
// call over the whole buffer gives the standard CRC-32.
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

}  // namespace tcm
