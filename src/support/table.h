// Console table rendering and CSV output for the benchmark harness.
//
// Every bench binary prints the rows the paper reports (Figure/Table series)
// via Table, and mirrors them to a CSV file for plotting.
#pragma once

#include <string>
#include <vector>

namespace tcm {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  // Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 3);

  // Renders an aligned ASCII table.
  std::string to_string() const;

  // Renders RFC-4180-ish CSV (values containing commas/quotes are quoted).
  std::string to_csv() const;

  // Writes CSV to a file; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tcm
