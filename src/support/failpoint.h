// Named fault-injection sites for chaos testing, in the style of production
// failpoint libraries (FreeBSD fail(9), pingcap/failpoint).
//
// A site is a named hook compiled into a hot path:
//
//   TCM_FAILPOINT("registry.fsync");
//
// In a default build (TCM_FAILPOINTS CMake option OFF) the macro expands to
// nothing — zero instructions, zero branches, so release serving binaries
// carry no chaos machinery at all. With -DTCM_FAILPOINTS=ON every site
// evaluates its armed action (if any):
//
//   error            throw std::runtime_error("failpoint <name>: injected error")
//   error(msg)       same, with a custom message
//   delay(ms)        sleep for ms milliseconds, then continue
//   crash            log to stderr and abort() — simulates a power cut /
//                    kill -9 at exactly this point
//
// Actions are armed from a spec string ("site=action" pairs separated by
// ';'; an action may be prefixed "N*" to trigger only the first N
// evaluations, after which the site falls through):
//
//   registry.fsync=2*error;batcher.stall=delay(50);registry.promote=crash
//
// Arming sources: the TCM_FAILPOINTS environment variable
// (failpoint_arm_from_env, called by tcm_serve), the --failpoints flag, or
// failpoint_arm()/failpoint_arm_spec() directly (tests). The site catalog is
// documented in README "Overload & resilience".
//
// The arming/introspection API below compiles unconditionally (it is a tiny
// table, not the hooks), so tests and /debug/state need no #ifdefs: when the
// sites are compiled out, arming still records the spec but nothing ever
// evaluates it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tcm::support {

#ifdef TCM_FAILPOINTS
#define TCM_FAILPOINT(name) ::tcm::support::failpoint_eval(name)
#else
#define TCM_FAILPOINT(name) ((void)0)
#endif

// True when the TCM_FAILPOINT sites are compiled in (-DTCM_FAILPOINTS=ON).
// Chaos tests skip themselves when this is false.
bool failpoints_compiled();

// Evaluates the site: no-op when nothing (or an exhausted "N*" action) is
// armed under this name. Fast path is one relaxed atomic load when no site
// at all is armed. May throw (error), sleep (delay) or abort (crash).
void failpoint_eval(const char* name);

// Arms `name` with `action` (see grammar above), replacing any previous
// arming. Returns false (and sets *error) on a malformed action.
bool failpoint_arm(const std::string& name, const std::string& action,
                   std::string* error = nullptr);

// Arms every "name=action" pair of a ';'-separated spec. Stops at the first
// malformed entry: returns false with *error set, earlier pairs stay armed.
bool failpoint_arm_spec(const std::string& spec, std::string* error = nullptr);

// Arms from the TCM_FAILPOINTS environment variable; returns the number of
// sites armed (0 when unset/empty). Malformed entries are reported on
// stderr and skipped.
int failpoint_arm_from_env();

void failpoint_disarm(const std::string& name);
void failpoint_disarm_all();

// Times failpoint_eval matched an armed action under `name` (across
// re-armings). 0 for never-armed names.
std::uint64_t failpoint_hits(const std::string& name);

// "name=action" for every currently armed site (unordered); the
// /debug/state failpoints listing.
std::vector<std::string> failpoint_armed();

}  // namespace tcm::support
