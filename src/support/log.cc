#include "support/log.h"

#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

#ifdef __linux__
#include <sys/syscall.h>
#endif

namespace tcm {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};
std::atomic<LogSink> g_sink{nullptr};
std::mutex g_mutex;

// Token bucket for Warn/Error; guarded by its own mutex so the (rare)
// limiter bookkeeping never serializes against the stderr write.
struct RateLimiter {
  std::mutex mu;
  double rate = 64.0;    // tokens per second
  double burst = 256.0;  // bucket capacity; <= 0 disables
  double tokens = 256.0;
  std::chrono::steady_clock::time_point last = std::chrono::steady_clock::now();
  std::uint64_t pending_suppressed = 0;  // dropped since the last passing line
};
RateLimiter g_rate;
std::atomic<std::uint64_t> g_suppressed_total{0};

// Returns false when the line must be dropped; on pass, *suppressed gets the
// number of drops this line should report (0 almost always).
bool rate_limit_admit(std::uint64_t* suppressed) {
  std::lock_guard<std::mutex> lock(g_rate.mu);
  if (g_rate.burst <= 0) {
    *suppressed = 0;
    return true;
  }
  const auto now = std::chrono::steady_clock::now();
  g_rate.tokens += std::chrono::duration<double>(now - g_rate.last).count() * g_rate.rate;
  if (g_rate.tokens > g_rate.burst) g_rate.tokens = g_rate.burst;
  g_rate.last = now;
  if (g_rate.tokens < 1.0) {
    ++g_rate.pending_suppressed;
    g_suppressed_total.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  g_rate.tokens -= 1.0;
  *suppressed = g_rate.pending_suppressed;
  g_rate.pending_suppressed = 0;
  return true;
}

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}

// [2026-08-07T12:34:56.789Z]
void append_timestamp(std::string& out) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[40];
  const int n = std::snprintf(buf, sizeof buf, "[%04d-%02d-%02dT%02d:%02d:%02d.%03dZ]",
                              tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min,
                              tm.tm_sec, static_cast<int>(ms));
  out.append(buf, static_cast<std::size_t>(n));
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

std::optional<LogLevel> parse_log_level(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off" || lower == "none") return LogLevel::Off;
  return std::nullopt;
}

void init_log_level_from_env() {
  const char* env = std::getenv("TCM_LOG_LEVEL");
  if (env == nullptr) return;
  if (auto level = parse_log_level(env)) set_log_level(*level);
}

std::uint64_t os_thread_id() {
#ifdef __linux__
  thread_local std::uint64_t id = static_cast<std::uint64_t>(::syscall(SYS_gettid));
#else
  thread_local std::uint64_t id = static_cast<std::uint64_t>(::getpid());
#endif
  return id;
}

std::string format_log_line(LogLevel level, const std::string& msg) {
  std::string line;
  line.reserve(48 + msg.size());
  append_timestamp(line);
  line += " [";
  line += level_name(level);
  line += "] [tid ";
  line += std::to_string(os_thread_id());
  line += "] ";
  line += msg;
  return line;
}

void set_log_sink(LogSink sink) { g_sink.store(sink); }

void set_log_rate_limit(double lines_per_sec, double burst) {
  std::lock_guard<std::mutex> lock(g_rate.mu);
  g_rate.rate = lines_per_sec;
  g_rate.burst = burst;
  g_rate.tokens = burst;
  g_rate.last = std::chrono::steady_clock::now();
}

std::uint64_t log_suppressed_total() {
  return g_suppressed_total.load(std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::string body = msg;
  if (level == LogLevel::Warn || level == LogLevel::Error) {
    std::uint64_t suppressed = 0;
    if (!rate_limit_admit(&suppressed)) return;
    if (suppressed > 0) body += " suppressed=" + std::to_string(suppressed);
  }
  const std::string line = format_log_line(level, body);
  if (LogSink sink = g_sink.load()) {
    sink(level, line);
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "%s\n", line.c_str());
}

namespace detail {

std::string quote_log_value(std::string_view value) {
  bool needs_quotes = value.empty();
  for (char c : value) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '"' || c == '=') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return std::string(value);
  std::string out;
  out.reserve(value.size() + 2);
  out += '"';
  for (char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace detail

}  // namespace tcm
