#include "support/circuit_breaker.h"

namespace tcm::support {

CircuitBreaker::CircuitBreaker(Options options) : options_(std::move(options)) {}

std::chrono::steady_clock::time_point CircuitBreaker::now() const {
  return options_.now_fn ? options_.now_fn() : std::chrono::steady_clock::now();
}

void CircuitBreaker::refresh_locked() const {
  if (state_ == State::kOpen && now() - opened_at_ >= options_.open_cooldown) {
    state_ = State::kHalfOpen;
    probe_in_flight_ = false;
  }
}

bool CircuitBreaker::allow() {
  std::lock_guard<std::mutex> lock(mu_);
  refresh_locked();
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      return false;
    case State::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return false;
}

void CircuitBreaker::record_success() {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
}

void CircuitBreaker::record_failure() {
  std::lock_guard<std::mutex> lock(mu_);
  ++consecutive_failures_;
  // A failed half-open probe re-opens immediately; in the closed state the
  // consecutive-failure threshold decides.
  if (state_ == State::kHalfOpen || consecutive_failures_ >= options_.failure_threshold) {
    if (state_ != State::kOpen) ++times_opened_;
    state_ = State::kOpen;
    opened_at_ = now();
    probe_in_flight_ = false;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  refresh_locked();
  return state_;
}

const char* CircuitBreaker::state_name() const {
  switch (state()) {
    case State::kClosed: return "closed";
    case State::kOpen: return "open";
    case State::kHalfOpen: return "half_open";
  }
  return "closed";
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return consecutive_failures_;
}

std::uint64_t CircuitBreaker::times_opened() const {
  std::lock_guard<std::mutex> lock(mu_);
  return times_opened_;
}

}  // namespace tcm::support
