#include "support/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace tcm {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  double lo = *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double variance(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::span<const double> xs, double p) {
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p must be in [0,100]");
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double pos = p / 100.0 * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= v.size()) return v.back();
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + frac * (v[lo + 1] - v[lo]);
}

double ape(double y, double yhat) {
  if (y == 0.0) throw std::invalid_argument("ape: measured value must be non-zero");
  return std::abs((y - yhat) / y);
}

double mape(std::span<const double> y, std::span<const double> yhat) {
  if (y.size() != yhat.size()) throw std::invalid_argument("mape: size mismatch");
  if (y.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) acc += ape(y[i], yhat[i]);
  return acc / static_cast<double>(y.size());
}

double mse(std::span<const double> y, std::span<const double> yhat) {
  if (y.size() != yhat.size()) throw std::invalid_argument("mse: size mismatch");
  if (y.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double d = y[i] - yhat[i];
    acc += d * d;
  }
  return acc / static_cast<double>(y.size());
}

double pearson(std::span<const double> y, std::span<const double> yhat) {
  if (y.size() != yhat.size()) throw std::invalid_argument("pearson: size mismatch");
  if (y.size() < 2) return 0.0;
  const double my = mean(y);
  const double mx = mean(yhat);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double dy = y[i] - my;
    const double dx = yhat[i] - mx;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ranks_average_ties(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average rank for the tie group [i, j], 1-based.
    const double avg = 0.5 * (static_cast<double>(i + 1) + static_cast<double>(j + 1));
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double spearman(std::span<const double> y, std::span<const double> yhat) {
  if (y.size() != yhat.size()) throw std::invalid_argument("spearman: size mismatch");
  const std::vector<double> ry = ranks_average_ties(y);
  const std::vector<double> rx = ranks_average_ties(yhat);
  return pearson(ry, rx);
}

double r_squared(std::span<const double> y, std::span<const double> yhat) {
  if (y.size() != yhat.size()) throw std::invalid_argument("r_squared: size mismatch");
  if (y.empty()) return 0.0;
  const double my = mean(y);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    ss_res += (y[i] - yhat[i]) * (y[i] - yhat[i]);
    ss_tot += (y[i] - my) * (y[i] - my);
  }
  if (ss_tot == 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

double Histogram::bin_width() const {
  return counts.empty() ? 0.0 : (hi - lo) / static_cast<double>(counts.size());
}

double Histogram::bin_left(std::size_t i) const { return lo + bin_width() * static_cast<double>(i); }

Histogram make_histogram(std::span<const double> xs, double lo, double hi, std::size_t bins) {
  if (bins == 0 || hi <= lo) throw std::invalid_argument("make_histogram: bad bins/range");
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0);
  const double w = (hi - lo) / static_cast<double>(bins);
  for (double x : xs) {
    auto idx = static_cast<std::ptrdiff_t>(std::floor((x - lo) / w));
    idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(bins) - 1);
    ++h.counts[static_cast<std::size_t>(idx)];
  }
  return h;
}

}  // namespace tcm
