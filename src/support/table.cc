#include "support/table.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tcm {
namespace {

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != headers_.size()) throw std::invalid_argument("Table: row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(width[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  auto emit_rule = [&] {
    os << "+";
    for (std::size_t c = 0; c < width.size(); ++c) os << std::string(width[c] + 2, '-') << "+";
    os << '\n';
  };
  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << (c ? "," : "") << csv_escape(headers_[c]);
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) os << (c ? "," : "") << csv_escape(row[c]);
    os << '\n';
  }
  return os.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_csv();
  return static_cast<bool>(f);
}

}  // namespace tcm
