// Statistics used throughout the evaluation: the paper reports MAPE, APE
// distributions, Pearson correlation, Spearman rank correlation and R^2.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tcm {

// Arithmetic mean. Returns 0 for an empty span.
double mean(std::span<const double> xs);

// Sample median (average of middle two for even sizes). Returns 0 when empty.
double median(std::span<const double> xs);

// Sample variance (denominator n). Returns 0 when empty.
double variance(std::span<const double> xs);

double stddev(std::span<const double> xs);

// p-th percentile (p in [0,100]) with linear interpolation between order
// statistics, matching numpy.percentile's default. Returns 0 when empty.
// Used by the serving subsystem for p50/p99 latency reporting.
double percentile(std::span<const double> xs, double p);

// Absolute percentage error |y - yhat| / |y| for a single pair.
// Requires y != 0 (the paper's speedups are positive by construction).
double ape(double y, double yhat);

// Mean absolute percentage error over paired samples: the paper's accuracy
// metric and training loss. Expressed as a fraction (0.16 == 16%).
double mape(std::span<const double> y, std::span<const double> yhat);

// Mean squared error (the loss used by the Halide baseline).
double mse(std::span<const double> y, std::span<const double> yhat);

// Pearson linear correlation coefficient. Returns 0 when either side has
// zero variance.
double pearson(std::span<const double> y, std::span<const double> yhat);

// Ranks with ties assigned the average rank (1-based, as in standard
// Spearman computation).
std::vector<double> ranks_average_ties(std::span<const double> xs);

// Spearman rank correlation: Pearson correlation of the rank vectors.
double spearman(std::span<const double> y, std::span<const double> yhat);

// Coefficient of determination R^2 = 1 - SS_res / SS_tot (the metric Halide's
// paper reports).
double r_squared(std::span<const double> y, std::span<const double> yhat);

// Fixed-width histogram over [lo, hi); values outside are clamped into the
// first/last bin. Used to reproduce Figure 5 (APE histogram).
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::size_t> counts;  // counts.size() == number of bins

  double bin_width() const;
  // Left edge of bin i.
  double bin_left(std::size_t i) const;
};

Histogram make_histogram(std::span<const double> xs, double lo, double hi, std::size_t bins);

}  // namespace tcm
