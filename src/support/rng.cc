#include "support/rng.h"

#include <cmath>

namespace tcm {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the four state words with splitmix64 so any seed (including 0)
  // yields a well-mixed non-zero state.
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % range);
}

double Rng::uniform_real(double lo, double hi) {
  // 53 random mantissa bits -> uniform double in [0,1).
  const double u = static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  return lo + u * (hi - lo);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_real() < p;
}

double Rng::normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1, u2;
  do {
    u1 = uniform_real();
  } while (u1 <= 1e-300);
  u2 = uniform_real();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

Rng Rng::split(std::uint64_t salt) {
  std::uint64_t mix = next_u64() ^ (salt * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL);
  return Rng(mix);
}

}  // namespace tcm
