// Bounded retries with jittered exponential backoff.
//
// The registry's storage ops (fsync, atomic rename publish, checkpoint
// reads) can fail transiently — a flaky disk, an interrupted syscall, a NFS
// hiccup — and a single such blip must not fail a promote or take down a
// continual cycle. with_retries() re-runs the operation under a hard
// attempt budget, sleeping backoff*multiplier^k ± jitter between attempts
// (full attempts budget, not wall clock: the registry mutex is held across
// these ops, so backoffs stay small and bounded by max_backoff).
//
// Retrying is only safe for idempotent operations. Every registry write
// this wraps is: staging + atomic rename either published or didn't, and
// re-running the stage from scratch converges to the same result.
//
// The sleep function and RNG seed are injectable so tests assert the exact
// backoff schedule without waiting it out.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "support/rng.h"

namespace tcm::support {

struct RetryOptions {
  int max_attempts = 3;  // total tries, including the first; <=1 = no retry
  std::chrono::milliseconds initial_backoff{10};
  double multiplier = 2.0;
  std::chrono::milliseconds max_backoff{1000};
  // Each backoff is scaled by a uniform factor in [1-jitter, 1+jitter], so
  // concurrent retriers (several serving hosts on shared storage) decorrelate
  // instead of thundering in lockstep.
  double jitter = 0.2;
  std::uint64_t jitter_seed = 0x7265747279ULL;  // deterministic by default
  // Test/observability hook: called instead of sleeping when set.
  std::function<void(std::chrono::milliseconds)> sleep_fn;
  // Called after a failed attempt that will be retried: (attempt# from 1,
  // exception message). Wire logging/metrics here.
  std::function<void(int, const std::string&)> on_retry;
};

// Backoff before retry number `retry` (0-based: the sleep after the first
// failure), pre-jitter. Exposed for tests.
std::chrono::milliseconds retry_backoff(const RetryOptions& options, int retry);

namespace retry_detail {
void sleep_with_jitter(const RetryOptions& options, int retry, Rng& rng);
}  // namespace retry_detail

// Runs fn(), retrying on any std::exception up to max_attempts total tries.
// The terminal failure rethrows the last exception unchanged, so callers'
// error taxonomy (runtime_error from the registry, etc.) is preserved.
template <typename F>
auto with_retries(const RetryOptions& options, F&& fn) -> decltype(fn()) {
  Rng rng(options.jitter_seed);
  const int attempts = options.max_attempts < 1 ? 1 : options.max_attempts;
  for (int attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const std::exception& e) {
      if (attempt >= attempts) throw;
      if (options.on_retry) options.on_retry(attempt, e.what());
      retry_detail::sleep_with_jitter(options, attempt - 1, rng);
    }
  }
}

}  // namespace tcm::support
