#include "support/failpoint.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace tcm::support {
namespace {

enum class Action { kError, kDelay, kCrash };

struct Armed {
  Action action = Action::kError;
  std::string message;        // error: what() of the injected exception
  std::chrono::milliseconds delay{0};
  std::int64_t remaining = -1;  // "N*" budget; -1 = unlimited
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Armed> armed;
  std::map<std::string, std::uint64_t> hits;  // survives disarm/re-arm
};

// Leaked singleton: failpoints are evaluated from worker threads that may
// outlive static destruction order in tests.
Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

// Fast-path gate: number of armed sites. failpoint_eval returns after one
// relaxed load when nothing is armed anywhere in the process.
std::atomic<std::size_t> g_armed_count{0};

// "2*error(boom)" -> Armed. Returns false on malformed input.
bool parse_action(const std::string& text, Armed* out, std::string* error) {
  std::string rest = text;
  out->remaining = -1;
  const std::size_t star = rest.find('*');
  if (star != std::string::npos) {
    const std::string count = rest.substr(0, star);
    if (count.empty() || count.find_first_not_of("0123456789") != std::string::npos) {
      if (error) *error = "bad trigger count '" + count + "'";
      return false;
    }
    out->remaining = std::atoll(count.c_str());
    rest = rest.substr(star + 1);
  }
  std::string kind = rest, arg;
  const std::size_t open = rest.find('(');
  if (open != std::string::npos) {
    if (rest.back() != ')') {
      if (error) *error = "unterminated argument in '" + text + "'";
      return false;
    }
    kind = rest.substr(0, open);
    arg = rest.substr(open + 1, rest.size() - open - 2);
  }
  if (kind == "error") {
    out->action = Action::kError;
    out->message = arg;
    return true;
  }
  if (kind == "delay") {
    if (arg.empty() || arg.find_first_not_of("0123456789") != std::string::npos) {
      if (error) *error = "delay needs a millisecond argument, got '" + arg + "'";
      return false;
    }
    out->action = Action::kDelay;
    out->delay = std::chrono::milliseconds(std::atoll(arg.c_str()));
    return true;
  }
  if (kind == "crash") {
    out->action = Action::kCrash;
    return true;
  }
  if (error) *error = "unknown action '" + kind + "' (want error/delay/crash)";
  return false;
}

}  // namespace

bool failpoints_compiled() {
#ifdef TCM_FAILPOINTS
  return true;
#else
  return false;
#endif
}

void failpoint_eval(const char* name) {
  if (g_armed_count.load(std::memory_order_relaxed) == 0) return;
  Armed hit;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    const auto it = r.armed.find(name);
    if (it == r.armed.end()) return;
    if (it->second.remaining == 0) return;  // "N*" budget spent
    if (it->second.remaining > 0) --it->second.remaining;
    ++r.hits[name];
    hit = it->second;
  }
  switch (hit.action) {
    case Action::kError:
      throw std::runtime_error(hit.message.empty()
                                   ? "failpoint " + std::string(name) + ": injected error"
                                   : hit.message);
    case Action::kDelay:
      std::this_thread::sleep_for(hit.delay);
      return;
    case Action::kCrash:
      // Deliberately ungraceful: the whole point is to model kill -9 / power
      // loss at this exact site. stderr is best-effort.
      std::fprintf(stderr, "failpoint %s: injected crash\n", name);
      std::fflush(stderr);
      std::abort();
  }
}

bool failpoint_arm(const std::string& name, const std::string& action, std::string* error) {
  if (name.empty()) {
    if (error) *error = "empty failpoint name";
    return false;
  }
  Armed armed;
  if (!parse_action(action, &armed, error)) return false;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.armed.emplace(name, armed).second)
    g_armed_count.fetch_add(1, std::memory_order_relaxed);
  else
    r.armed[name] = armed;
  return true;
}

bool failpoint_arm_spec(const std::string& spec, std::string* error) {
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t end = spec.find(';', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      if (error) *error = "expected name=action, got '" + entry + "'";
      return false;
    }
    std::string entry_error;
    if (!failpoint_arm(entry.substr(0, eq), entry.substr(eq + 1), &entry_error)) {
      if (error) *error = "'" + entry + "': " + entry_error;
      return false;
    }
  }
  return true;
}

int failpoint_arm_from_env() {
  const char* spec = std::getenv("TCM_FAILPOINTS");
  if (spec == nullptr || spec[0] == '\0') return 0;
  std::string error;
  if (!failpoint_arm_spec(spec, &error))
    std::fprintf(stderr, "TCM_FAILPOINTS: %s\n", error.c_str());
  return static_cast<int>(failpoint_armed().size());
}

void failpoint_disarm(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.armed.erase(name) > 0) g_armed_count.fetch_sub(1, std::memory_order_relaxed);
}

void failpoint_disarm_all() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  g_armed_count.fetch_sub(r.armed.size(), std::memory_order_relaxed);
  r.armed.clear();
}

std::uint64_t failpoint_hits(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.hits.find(name);
  return it == r.hits.end() ? 0 : it->second;
}

std::vector<std::string> failpoint_armed() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> out;
  out.reserve(r.armed.size());
  for (const auto& [name, armed] : r.armed) {
    std::string desc = name + '=';
    if (armed.remaining >= 0) desc += std::to_string(armed.remaining) + '*';
    switch (armed.action) {
      case Action::kError: desc += "error"; break;
      case Action::kDelay:
        desc += "delay(" + std::to_string(armed.delay.count()) + ')';
        break;
      case Action::kCrash: desc += "crash"; break;
    }
    out.push_back(std::move(desc));
  }
  return out;
}

}  // namespace tcm::support
