#include "search/candidates.h"

#include <algorithm>

#include "transforms/apply.h"

namespace tcm::search {
namespace {

// Representative computation of a top-level nest (first one found).
int comp_under(const ir::Program& p, int root) {
  int loop_id = root;
  while (true) {
    for (const ir::BodyItem& item : p.loop(loop_id).body)
      if (item.kind == ir::BodyItem::Kind::Computation) return item.index;
    bool descended = false;
    for (const ir::BodyItem& item : p.loop(loop_id).body) {
      if (item.kind == ir::BodyItem::Kind::Loop) {
        loop_id = item.index;
        descended = true;
        break;
      }
    }
    if (!descended) return -1;
  }
}

void push_if_legal(const ir::Program& p, std::vector<transforms::Schedule>& out,
                   transforms::Schedule candidate) {
  if (transforms::try_apply_schedule(p, candidate).ok) out.push_back(std::move(candidate));
}

// All computations whose nest hangs off `root`, in textual order. A
// shared-root nest lists several; each is a distinct fusion partner because
// its subloop path (and so its depth and extents) differs.
std::vector<int> comps_under(const ir::Program& p, int root) {
  std::vector<int> comps;
  for (const ir::Computation& c : p.comps)
    if (p.nest_of(c.id).front() == root) comps.push_back(c.id);
  return comps;
}

}  // namespace

std::vector<DecisionPoint> decision_points(const ir::Program& p,
                                           const SearchSpaceOptions& options) {
  (void)options;
  std::vector<DecisionPoint> points;
  for (std::size_t r = 0; r + 1 < p.roots.size(); ++r) {
    const int c = comp_under(p, p.roots[r]);
    if (c >= 0) points.push_back({DecisionPoint::Kind::Fusion, c});
  }
  for (const ir::Computation& c : p.comps)
    points.push_back({DecisionPoint::Kind::Skew, c.id});
  for (const ir::Computation& c : p.comps)
    points.push_back({DecisionPoint::Kind::Interchange, c.id});
  for (const ir::Computation& c : p.comps)
    points.push_back({DecisionPoint::Kind::Tile, c.id});
  for (const ir::Computation& c : p.comps)
    points.push_back({DecisionPoint::Kind::Unroll, c.id});
  return points;
}

std::vector<transforms::Schedule> expand_decision(const ir::Program& p,
                                                  const transforms::Schedule& prefix,
                                                  const DecisionPoint& decision,
                                                  const SearchSpaceOptions& options) {
  std::vector<transforms::Schedule> out;
  out.push_back(prefix);  // skip alternative

  switch (decision.kind) {
    case DecisionPoint::Kind::Fusion: {
      // Fuse this computation's nest with the next adjacent nest, at every
      // possible depth. Partner computations are discovered at expansion
      // time because earlier fusions may have merged roots — and the
      // neighbour may itself be a shared-root nest holding several
      // computations, each a distinct cross-root fusion target (their
      // subloop paths differ, so the legal depths and resulting loop
      // structures differ too).
      transforms::ApplyResult state = transforms::try_apply_schedule(p, prefix);
      if (!state.ok) return out;
      const ir::Program& sp = state.program;
      // Locate the root containing the comp and its right neighbour.
      const std::vector<int> snest = sp.nest_of(decision.comp);
      const auto it = std::find(sp.roots.begin(), sp.roots.end(), snest.front());
      if (it == sp.roots.end() || it + 1 == sp.roots.end()) return out;
      std::vector<int> partners = comps_under(sp, *(it + 1));
      if (static_cast<int>(partners.size()) > options.max_fusion_partners)
        partners.resize(static_cast<std::size_t>(options.max_fusion_partners));
      const std::size_t own_depth = sp.nest_of(decision.comp).size();
      for (int partner : partners) {
        const int max_depth =
            static_cast<int>(std::min(own_depth, sp.nest_of(partner).size()));
        for (int depth = 1; depth <= max_depth; ++depth) {
          transforms::Schedule s = prefix;
          s.fusions.push_back({decision.comp, partner, depth});
          push_if_legal(p, out, std::move(s));
        }
      }
      break;
    }
    case DecisionPoint::Kind::Skew: {
      // Skew an adjacent pair, optionally followed by the wavefront
      // interchange of that pair (which the dependence check may reject
      // independently of the skew itself).
      const int depth = p.depth_of(decision.comp);
      for (int la = 0; la + 1 < depth; ++la) {
        for (std::int64_t f : options.skew_factors) {
          transforms::Schedule s = prefix;
          s.skews.push_back({decision.comp, la, f});
          push_if_legal(p, out, s);
          s.interchanges.push_back({decision.comp, la, la + 1});
          push_if_legal(p, out, std::move(s));
        }
      }
      break;
    }
    case DecisionPoint::Kind::Interchange: {
      const int depth = p.depth_of(decision.comp);
      // Closest pairs first (adjacent interchanges are the most useful),
      // capped by max_interchange_pairs.
      std::vector<std::pair<int, int>> pairs;
      for (int dist = 1; dist < depth; ++dist)
        for (int la = 0; la + dist < depth; ++la) pairs.emplace_back(la, la + dist);
      if (static_cast<int>(pairs.size()) > options.max_interchange_pairs)
        pairs.resize(static_cast<std::size_t>(options.max_interchange_pairs));
      for (const auto& [la, lb] : pairs) {
        transforms::Schedule s = prefix;
        s.interchanges.push_back({decision.comp, la, lb});
        push_if_legal(p, out, std::move(s));
      }
      break;
    }
    case DecisionPoint::Kind::Tile: {
      const std::vector<std::int64_t> extents = p.extents_of(decision.comp);
      const int depth = static_cast<int>(extents.size());
      for (int level = 0; level + 2 <= depth; ++level) {
        for (std::int64_t s0 : options.tile_sizes) {
          if (s0 > extents[static_cast<std::size_t>(level)]) continue;
          for (std::int64_t s1 : options.tile_sizes) {
            if (s1 > extents[static_cast<std::size_t>(level + 1)]) continue;
            transforms::Schedule s = prefix;
            s.tiles.push_back({decision.comp, level, {s0, s1}});
            push_if_legal(p, out, std::move(s));
            if (options.allow_3d_tiling && level + 3 <= depth) {
              for (std::int64_t s2 : options.tile_sizes) {
                if (s2 > extents[static_cast<std::size_t>(level + 2)]) continue;
                transforms::Schedule s3 = prefix;
                s3.tiles.push_back({decision.comp, level, {s0, s1, s2}});
                push_if_legal(p, out, std::move(s3));
              }
            }
          }
        }
      }
      break;
    }
    case DecisionPoint::Kind::Unroll: {
      const std::vector<std::int64_t> extents = p.extents_of(decision.comp);
      for (int f : options.unroll_factors) {
        if (f > extents.back()) continue;
        transforms::Schedule s = prefix;
        s.unrolls.push_back({decision.comp, f});
        push_if_legal(p, out, std::move(s));
      }
      break;
    }
  }
  return out;
}

transforms::Schedule apply_parallel_vector_heuristics(const ir::Program& p,
                                                      const transforms::Schedule& schedule,
                                                      const SearchSpaceOptions& options) {
  transforms::Schedule result = schedule;
  // Parallelize the outermost legal level of each computation (levels are
  // pre-tiling coordinates; level 0 or 1). Skip tiny extents where spawning
  // threads cannot pay off.
  for (const ir::Computation& c : p.comps) {
    const std::vector<std::int64_t> extents = p.extents_of(c.id);
    for (int level = 0; level < std::min<int>(2, static_cast<int>(extents.size())); ++level) {
      if (extents[static_cast<std::size_t>(level)] < 4) continue;
      transforms::Schedule candidate = result;
      candidate.parallels.push_back({c.id, level});
      if (transforms::try_apply_schedule(p, candidate).ok) {
        result = std::move(candidate);
        break;
      }
    }
  }
  // Vectorize the innermost loop when the width fits.
  for (const ir::Computation& c : p.comps) {
    const std::vector<std::int64_t> extents = p.extents_of(c.id);
    if (extents.back() < options.vector_width) continue;
    transforms::Schedule candidate = result;
    candidate.vectorizes.push_back({c.id, options.vector_width});
    if (transforms::try_apply_schedule(p, candidate).ok) result = std::move(candidate);
  }
  return result;
}

}  // namespace tcm::search
