// Beam search over the transformation space (Section 5, Figure 3).
//
// At each decision point every beam state is expanded with all legal
// alternatives; candidates are scored by the evaluator (execution for BSE,
// the learned cost model for BSM) *after* the parallelization/vectorization
// heuristics are appended, and the best `beam_width` states survive.
#pragma once

#include <functional>

#include "search/candidates.h"
#include "search/evaluator.h"

namespace tcm::search {

// Best-so-far snapshot handed to the progress callback after every scored
// batch (one decision point's worth of candidate evaluations).
struct SearchProgress {
  int decision_index = 0;              // decisions completed so far
  int decision_count = 0;              // total decision points in the space
  std::int64_t evaluations = 0;        // candidate evaluations so far
  double best_score = 0;               // best speedup seen so far
  const transforms::Schedule* best_schedule = nullptr;  // owner: the search
};

struct BeamSearchOptions {
  int beam_width = 4;
  SearchSpaceOptions space;
  // Called after each scored batch; return false to stop the search early.
  // An early stop keeps the best-so-far schedule and sets
  // SearchResult::stopped_early — this is the cooperative-cancellation hook
  // for the job service (granularity: one evaluation batch).
  std::function<bool(const SearchProgress&)> on_progress;
  // Schedules seeded into the initial beam alongside the empty schedule
  // (schedule-memory warm starts). Illegal or duplicate entries are dropped.
  std::vector<transforms::Schedule> warm_start;
};

struct SearchResult {
  transforms::Schedule best_schedule;  // includes the par/vec heuristics
  double best_score = 0;               // evaluator's speedup for the winner
  std::int64_t evaluations = 0;        // candidate evaluations performed
  double accounted_seconds = 0;        // toolchain time a real system would pay
  double wall_seconds = 0;             // actual wall time of the search
  bool stopped_early = false;          // on_progress returned false
};

SearchResult beam_search(const ir::Program& p, CandidateEvaluator& evaluator,
                         const BeamSearchOptions& options = {});

}  // namespace tcm::search
