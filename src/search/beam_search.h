// Beam search over the transformation space (Section 5, Figure 3).
//
// At each decision point every beam state is expanded with all legal
// alternatives; candidates are scored by the evaluator (execution for BSE,
// the learned cost model for BSM) *after* the parallelization/vectorization
// heuristics are appended, and the best `beam_width` states survive.
#pragma once

#include "search/candidates.h"
#include "search/evaluator.h"

namespace tcm::search {

struct BeamSearchOptions {
  int beam_width = 4;
  SearchSpaceOptions space;
};

struct SearchResult {
  transforms::Schedule best_schedule;  // includes the par/vec heuristics
  double best_score = 0;               // evaluator's speedup for the winner
  std::int64_t evaluations = 0;        // candidate evaluations performed
  double accounted_seconds = 0;        // toolchain time a real system would pay
  double wall_seconds = 0;             // actual wall time of the search
};

SearchResult beam_search(const ir::Program& p, CandidateEvaluator& evaluator,
                         const BeamSearchOptions& options = {});

}  // namespace tcm::search
