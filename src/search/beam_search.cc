#include "search/beam_search.h"

#include <algorithm>
#include <chrono>
#include <set>

namespace tcm::search {

SearchResult beam_search(const ir::Program& p, CandidateEvaluator& evaluator,
                         const BeamSearchOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  const double accounted0 = evaluator.accounted_seconds();
  const std::int64_t evals0 = evaluator.evaluations();

  const std::vector<DecisionPoint> decisions = decision_points(p, options.space);
  std::vector<transforms::Schedule> beam = {transforms::Schedule{}};

  for (const DecisionPoint& decision : decisions) {
    // Expand all beam states; dedupe identical schedules.
    std::vector<transforms::Schedule> candidates;
    std::set<std::string> seen;
    for (const transforms::Schedule& state : beam) {
      for (transforms::Schedule& next : expand_decision(p, state, decision, options.space)) {
        if (seen.insert(next.to_string()).second) candidates.push_back(std::move(next));
      }
    }
    if (candidates.empty()) break;

    // Score candidates with the heuristics appended (what would actually be
    // compiled), then keep the top beam_width prefixes.
    std::vector<transforms::Schedule> scored;
    scored.reserve(candidates.size());
    for (const transforms::Schedule& c : candidates)
      scored.push_back(apply_parallel_vector_heuristics(p, c, options.space));
    const std::vector<double> scores = evaluator.evaluate(p, scored);

    std::vector<std::size_t> order(candidates.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });
    const std::size_t keep =
        std::min<std::size_t>(static_cast<std::size_t>(options.beam_width), order.size());
    std::vector<transforms::Schedule> next_beam;
    next_beam.reserve(keep);
    for (std::size_t i = 0; i < keep; ++i)
      next_beam.push_back(candidates[order[i]]);
    beam = std::move(next_beam);
  }

  // Final scoring of the surviving states (with heuristics).
  std::vector<transforms::Schedule> finals;
  finals.reserve(beam.size());
  for (const transforms::Schedule& state : beam)
    finals.push_back(apply_parallel_vector_heuristics(p, state, options.space));
  const std::vector<double> final_scores = evaluator.evaluate(p, finals);

  SearchResult result;
  std::size_t best = 0;
  for (std::size_t i = 1; i < finals.size(); ++i)
    if (final_scores[i] > final_scores[best]) best = i;
  result.best_schedule = finals[best];
  result.best_score = final_scores.empty() ? 1.0 : final_scores[best];
  result.evaluations = evaluator.evaluations() - evals0;
  result.accounted_seconds = evaluator.accounted_seconds() - accounted0;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

}  // namespace tcm::search
