#include "search/beam_search.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "transforms/apply.h"

namespace tcm::search {

SearchResult beam_search(const ir::Program& p, CandidateEvaluator& evaluator,
                         const BeamSearchOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  const double accounted0 = evaluator.accounted_seconds();
  const std::int64_t evals0 = evaluator.evaluations();

  const std::vector<DecisionPoint> decisions = decision_points(p, options.space);
  std::vector<transforms::Schedule> beam = {transforms::Schedule{}};
  {
    // Warm starts join the initial beam: a remembered schedule for a similar
    // program biases the search toward its region of the space while the
    // empty prefix keeps the full space reachable.
    std::set<std::string> seen = {beam.front().to_string()};
    for (const transforms::Schedule& w : options.warm_start) {
      if (!seen.insert(w.to_string()).second) continue;
      if (transforms::try_apply_schedule(p, w).ok) beam.push_back(w);
    }
  }

  SearchResult result;
  transforms::Schedule best_schedule;
  double best_score = 0;
  bool have_best = false;

  auto record_batch = [&](const std::vector<transforms::Schedule>& scored,
                          const std::vector<double>& scores) {
    for (std::size_t i = 0; i < scored.size(); ++i) {
      if (!have_best || scores[i] > best_score) {
        best_score = scores[i];
        best_schedule = scored[i];
        have_best = true;
      }
    }
  };

  auto report = [&](int decision_index) {
    if (!options.on_progress) return true;
    SearchProgress progress;
    progress.decision_index = decision_index;
    progress.decision_count = static_cast<int>(decisions.size());
    progress.evaluations = evaluator.evaluations() - evals0;
    progress.best_score = best_score;
    progress.best_schedule = have_best ? &best_schedule : nullptr;
    return options.on_progress(progress);
  };

  for (std::size_t d = 0; d < decisions.size(); ++d) {
    const DecisionPoint& decision = decisions[d];
    // Expand all beam states; dedupe identical schedules.
    std::vector<transforms::Schedule> candidates;
    std::set<std::string> seen;
    for (const transforms::Schedule& state : beam) {
      for (transforms::Schedule& next : expand_decision(p, state, decision, options.space)) {
        if (seen.insert(next.to_string()).second) candidates.push_back(std::move(next));
      }
    }
    if (candidates.empty()) break;

    // Score candidates with the heuristics appended (what would actually be
    // compiled), then keep the top beam_width prefixes.
    std::vector<transforms::Schedule> scored;
    scored.reserve(candidates.size());
    for (const transforms::Schedule& c : candidates)
      scored.push_back(apply_parallel_vector_heuristics(p, c, options.space));
    const std::vector<double> scores = evaluator.evaluate(p, scored);
    record_batch(scored, scores);

    std::vector<std::size_t> order(candidates.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });
    const std::size_t keep =
        std::min<std::size_t>(static_cast<std::size_t>(options.beam_width), order.size());
    std::vector<transforms::Schedule> next_beam;
    next_beam.reserve(keep);
    for (std::size_t i = 0; i < keep; ++i)
      next_beam.push_back(candidates[order[i]]);
    beam = std::move(next_beam);

    if (!report(static_cast<int>(d) + 1)) {
      result.stopped_early = true;
      break;
    }
  }

  if (!result.stopped_early) {
    // Final scoring of the surviving states (with heuristics).
    std::vector<transforms::Schedule> finals;
    finals.reserve(beam.size());
    for (const transforms::Schedule& state : beam)
      finals.push_back(apply_parallel_vector_heuristics(p, state, options.space));
    const std::vector<double> final_scores = evaluator.evaluate(p, finals);
    record_batch(finals, final_scores);
  }

  result.best_schedule = have_best ? best_schedule : transforms::Schedule{};
  result.best_score = have_best ? best_score : 1.0;
  result.evaluations = evaluator.evaluations() - evals0;
  result.accounted_seconds = evaluator.accounted_seconds() - accounted0;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

}  // namespace tcm::search
