// Candidate evaluators for search methods (Section 5).
//
// A search method needs the (estimated or measured) speedup of many
// candidate schedules. Two implementations:
//   - ExecutionEvaluator: "runs" each candidate on the simulated machine
//     (compile + 30 noisy runs, median), the way BSE does in the paper.
//     Accounted cost per candidate: compile overhead + 30 x execution time,
//     in simulated seconds.
//   - ModelEvaluator: runs candidates through a serve::PredictionService,
//     which featurizes them (with caching), groups them by tree structure
//     and batches them through a trained SpeedupPredictor on a worker pool —
//     by default via the tape-free infer_batch fast path with per-worker
//     inference arenas (see nn/inference.h); pass ServeOptions with
//     use_fused_inference=false to fall back to the autograd forward.
//     Accounted cost: measured inference wall time.
// The accounted costs feed Table 2 (search time improvement).
#pragma once

#include <memory>
#include <vector>

#include "ir/program.h"
#include "model/cost_model.h"
#include "serve/prediction_service.h"
#include "sim/executor.h"
#include "transforms/schedule.h"

namespace tcm::search {

class CandidateEvaluator {
 public:
  virtual ~CandidateEvaluator() = default;

  // Speedups (vs. the untransformed program) for each candidate schedule.
  // Candidates must already be legal.
  virtual std::vector<double> evaluate(const ir::Program& p,
                                       const std::vector<transforms::Schedule>& candidates) = 0;

  // Cumulative cost a real toolchain would have paid for all evaluations so
  // far, in seconds.
  virtual double accounted_seconds() const = 0;
  virtual std::int64_t evaluations() const = 0;
  virtual const char* kind() const = 0;
};

class ExecutionEvaluator final : public CandidateEvaluator {
 public:
  explicit ExecutionEvaluator(sim::Executor executor);

  std::vector<double> evaluate(const ir::Program& p,
                               const std::vector<transforms::Schedule>& candidates) override;
  double accounted_seconds() const override { return accounted_seconds_; }
  std::int64_t evaluations() const override { return evaluations_; }
  const char* kind() const override { return "execution"; }

  sim::Executor& executor() { return executor_; }

 private:
  sim::Executor executor_;
  double accounted_seconds_ = 0;
  std::int64_t evaluations_ = 0;
};

class ModelEvaluator final : public CandidateEvaluator {
 public:
  // Serves predictions with default ServeOptions (featurization from
  // `features`, worker count matched to the hardware).
  ModelEvaluator(model::SpeedupPredictor* predictor, model::FeatureConfig features);

  // Full control over batching/threading/caching.
  ModelEvaluator(model::SpeedupPredictor* predictor, const serve::ServeOptions& options);

  // Scores through an externally owned service (the serving tier's live
  // instance). The caller keeps the service alive for the evaluator's
  // lifetime; search traffic shares the batcher, cache, and admission
  // machinery with interactive predictions.
  explicit ModelEvaluator(serve::PredictionService& service);

  // Absolute deadline attached to every subsequent evaluate() burst, so a
  // wedged batcher sheds the evaluation (serve::DeadlineExceededError
  // propagates out of evaluate) instead of stranding the search forever.
  void set_deadline(serve::RequestDeadline deadline) { deadline_ = deadline; }

  std::vector<double> evaluate(const ir::Program& p,
                               const std::vector<transforms::Schedule>& candidates) override;
  double accounted_seconds() const override { return accounted_seconds_; }
  std::int64_t evaluations() const override { return evaluations_; }
  const char* kind() const override { return "model"; }

  serve::PredictionService& service() { return *service_; }

 private:
  std::unique_ptr<serve::PredictionService> owned_service_;
  serve::PredictionService* service_ = nullptr;  // owned_service_.get() or external
  serve::RequestDeadline deadline_ = serve::kNoDeadline;
  double accounted_seconds_ = 0;
  std::int64_t evaluations_ = 0;
};

}  // namespace tcm::search
