// The search space of Figure 3: an ordered sequence of decision points, each
// offering a small set of alternatives (apply a transformation or not, and
// with which parameters). States are schedule prefixes; both beam search and
// MCTS walk the same space.
//
// Decision order (canonical, Section 5 / Figure 3, extended with the
// LOOPer-class skewing space):
//   for each adjacent pair of top-level nests: fuse? at which depth?
//   for each computation: skew? which pair, factor, wavefront or not?
//   for each computation: interchange? which levels?
//   for each computation: tile? which level and sizes?
//   for each computation: unroll? which factor?
// Parallelization and vectorization are not part of the space: they are
// applied by the Halide-style heuristic (parallelize the outermost legal
// level, vectorize the innermost loop when it is stride-1 friendly), exactly
// as the paper does.
#pragma once

#include <vector>

#include "ir/program.h"
#include "transforms/schedule.h"

namespace tcm::search {

struct SearchSpaceOptions {
  std::vector<std::int64_t> tile_sizes = {16, 32, 64, 128};
  bool allow_3d_tiling = true;
  std::vector<int> unroll_factors = {2, 4, 8, 16};
  std::vector<std::int64_t> skew_factors = {1, 2};
  int vector_width = 8;
  // Limits the number of interchange pairs explored per computation (closest
  // pairs first) to keep the branching factor manageable.
  int max_interchange_pairs = 6;
  // Limits the fusion partners tried per cross-root fusion point. A
  // shared-root neighbour nest can hold several computations at different
  // depths; each is a distinct fusion target (textual order, capped here).
  int max_fusion_partners = 4;
};

// One decision point: alternatives extending a schedule prefix. The first
// alternative is always "do nothing" (the unmodified prefix).
struct DecisionPoint {
  enum class Kind { Fusion, Skew, Interchange, Tile, Unroll };
  Kind kind;
  int comp = -1;  // target computation (representative for fusions)
};

// The ordered decision points of a program's search space.
std::vector<DecisionPoint> decision_points(const ir::Program& p,
                                           const SearchSpaceOptions& options);

// All *legal* schedules obtained by extending `prefix` at the given decision
// point (including `prefix` itself as the "skip" alternative).
std::vector<transforms::Schedule> expand_decision(const ir::Program& p,
                                                  const transforms::Schedule& prefix,
                                                  const DecisionPoint& decision,
                                                  const SearchSpaceOptions& options);

// Halide-style final heuristics (Section 4): parallelize the outermost level
// that is legal and profitable (extent >= a small threshold), vectorize the
// innermost loop when legal and the extent allows the width. Returns the
// extended (still legal) schedule.
transforms::Schedule apply_parallel_vector_heuristics(const ir::Program& p,
                                                      const transforms::Schedule& schedule,
                                                      const SearchSpaceOptions& options);

}  // namespace tcm::search
