// Monte Carlo Tree Search over the transformation space (Section 5).
//
// The paper's MCTS copes with the cost model's imprecision by combining
// model-guided exploration with a final execution step: the tree is explored
// using model estimates as rewards (UCT selection), a set of the best
// model-evaluated schedules is retained, and at the end that set is actually
// executed; the best *measured* schedule wins.
#pragma once

#include "search/beam_search.h"
#include "search/candidates.h"
#include "search/evaluator.h"
#include "support/rng.h"

namespace tcm::search {

struct MctsOptions {
  int iterations = 200;      // selection/expansion/rollout cycles
  double exploration = 0.7;  // UCT exploration constant
  int top_k = 5;             // schedules executed at the end (the paper's set)
  SearchSpaceOptions space;
  std::uint64_t seed = 7;
  // Called after each rollout evaluation; return false to stop early (the
  // retained set is still executed so the result is a measured best-so-far).
  std::function<bool(const SearchProgress&)> on_progress;
};

struct MctsResult {
  transforms::Schedule best_schedule;
  double best_measured_speedup = 0;
  std::int64_t model_evaluations = 0;
  double accounted_seconds = 0;  // model inference + top-k executions
  double wall_seconds = 0;
  bool stopped_early = false;  // on_progress returned false
};

// `model_evaluator` scores rollouts; `execution_evaluator` measures the
// final top-k set.
MctsResult mcts_search(const ir::Program& p, CandidateEvaluator& model_evaluator,
                       CandidateEvaluator& execution_evaluator, const MctsOptions& options = {});

}  // namespace tcm::search
