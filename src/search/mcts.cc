#include "search/mcts.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>

namespace tcm::search {
namespace {

struct Node {
  transforms::Schedule state;
  int decision_index = 0;  // next decision to make
  Node* parent = nullptr;
  std::vector<std::unique_ptr<Node>> children;
  std::vector<transforms::Schedule> untried;  // alternatives not yet expanded
  bool expanded_init = false;
  int visits = 0;
  double total_reward = 0;

  double mean() const { return visits ? total_reward / visits : 0.0; }
};

// Squash a speedup into (0, 1) for UCT rewards; monotone in the speedup.
double reward_of(double speedup) { return speedup / (1.0 + speedup); }

}  // namespace

MctsResult mcts_search(const ir::Program& p, CandidateEvaluator& model_evaluator,
                       CandidateEvaluator& execution_evaluator, const MctsOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  const double accounted0 =
      model_evaluator.accounted_seconds() + execution_evaluator.accounted_seconds();
  const std::int64_t evals0 = model_evaluator.evaluations();

  const std::vector<DecisionPoint> decisions = decision_points(p, options.space);
  Rng rng(options.seed);

  auto root = std::make_unique<Node>();

  // Best model-evaluated schedules seen so far: score -> schedule (keep the
  // top_k highest scores, deduplicated by rendering).
  std::vector<std::pair<double, transforms::Schedule>> best_set;
  std::map<std::string, bool> in_best;
  auto offer_best = [&](double score, const transforms::Schedule& s) {
    const std::string key = s.to_string();
    if (in_best.count(key)) return;
    best_set.emplace_back(score, s);
    in_best[key] = true;
    std::sort(best_set.begin(), best_set.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    if (best_set.size() > static_cast<std::size_t>(options.top_k)) {
      in_best.erase(best_set.back().second.to_string());
      best_set.pop_back();
    }
  };

  bool stopped_early = false;
  for (int iter = 0; iter < options.iterations && !stopped_early; ++iter) {
    // --- selection -----------------------------------------------------------
    Node* node = root.get();
    while (true) {
      if (node->decision_index >= static_cast<int>(decisions.size())) break;
      if (!node->expanded_init) {
        node->untried = expand_decision(
            p, node->state, decisions[static_cast<std::size_t>(node->decision_index)],
            options.space);
        rng.shuffle(node->untried);
        node->expanded_init = true;
      }
      if (!node->untried.empty()) break;  // expandable here
      if (node->children.empty()) break;  // dead end
      Node* best_child = nullptr;
      double best_uct = -1;
      for (const auto& child : node->children) {
        const double uct =
            child->mean() + options.exploration * std::sqrt(std::log(node->visits + 1.0) /
                                                            (child->visits + 1e-9));
        if (uct > best_uct) {
          best_uct = uct;
          best_child = child.get();
        }
      }
      if (!best_child) break;
      node = best_child;
    }

    // --- expansion ------------------------------------------------------------
    if (node->decision_index < static_cast<int>(decisions.size()) && !node->untried.empty()) {
      auto child = std::make_unique<Node>();
      child->state = std::move(node->untried.back());
      node->untried.pop_back();
      child->decision_index = node->decision_index + 1;
      child->parent = node;
      node->children.push_back(std::move(child));
      node = node->children.back().get();
    }

    // --- rollout ---------------------------------------------------------------
    transforms::Schedule rollout = node->state;
    for (int d = node->decision_index; d < static_cast<int>(decisions.size()); ++d) {
      std::vector<transforms::Schedule> alts =
          expand_decision(p, rollout, decisions[static_cast<std::size_t>(d)], options.space);
      rollout = alts[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(alts.size()) - 1))];
    }
    const transforms::Schedule final_schedule =
        apply_parallel_vector_heuristics(p, rollout, options.space);
    const double predicted = model_evaluator.evaluate(p, {final_schedule}).front();
    offer_best(predicted, final_schedule);

    // --- backpropagation ----------------------------------------------------------
    const double reward = reward_of(predicted);
    for (Node* n = node; n != nullptr; n = n->parent) {
      ++n->visits;
      n->total_reward += reward;
    }

    if (options.on_progress) {
      SearchProgress progress;
      progress.decision_index = iter + 1;
      progress.decision_count = options.iterations;
      progress.evaluations = model_evaluator.evaluations() - evals0;
      if (!best_set.empty()) {
        progress.best_score = best_set.front().first;
        progress.best_schedule = &best_set.front().second;
      }
      if (!options.on_progress(progress)) stopped_early = true;
    }
  }

  // --- execute the retained set (the paper's correction step) -----------------
  MctsResult result;
  if (!best_set.empty()) {
    std::vector<transforms::Schedule> finals;
    finals.reserve(best_set.size());
    for (const auto& [score, s] : best_set) finals.push_back(s);
    const std::vector<double> measured = execution_evaluator.evaluate(p, finals);
    std::size_t best = 0;
    for (std::size_t i = 1; i < measured.size(); ++i)
      if (measured[i] > measured[best]) best = i;
    result.best_schedule = finals[best];
    result.best_measured_speedup = measured[best];
  }
  result.stopped_early = stopped_early;
  result.model_evaluations = model_evaluator.evaluations() - evals0;
  result.accounted_seconds = model_evaluator.accounted_seconds() +
                             execution_evaluator.accounted_seconds() - accounted0;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

}  // namespace tcm::search
