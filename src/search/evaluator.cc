#include "search/evaluator.h"

#include <chrono>
#include <stdexcept>

#include "model/train.h"
#include "transforms/apply.h"

namespace tcm::search {

ExecutionEvaluator::ExecutionEvaluator(sim::Executor executor) : executor_(std::move(executor)) {}

std::vector<double> ExecutionEvaluator::evaluate(
    const ir::Program& p, const std::vector<transforms::Schedule>& candidates) {
  std::vector<double> speedups;
  speedups.reserve(candidates.size());
  const double base = executor_.measure_seconds(p);
  for (const transforms::Schedule& s : candidates) {
    const ir::Program transformed = transforms::apply_schedule(p, s);
    const double t = executor_.measure_seconds(transformed);
    speedups.push_back(base / t);
    accounted_seconds_ += executor_.evaluation_cost_seconds(t);
    ++evaluations_;
  }
  return speedups;
}

ModelEvaluator::ModelEvaluator(model::SpeedupPredictor* predictor, model::FeatureConfig features)
    : predictor_(predictor), features_(features) {
  if (!predictor_) throw std::invalid_argument("ModelEvaluator: null predictor");
}

std::vector<double> ModelEvaluator::evaluate(const ir::Program& p,
                                             const std::vector<transforms::Schedule>& candidates) {
  const auto t0 = std::chrono::steady_clock::now();

  // Featurize everything, then reuse the dataset batching machinery: every
  // candidate becomes a data point of the same "program"; make_batches
  // sub-groups by structure automatically.
  model::Dataset ds;
  ds.points.reserve(candidates.size());
  for (const transforms::Schedule& s : candidates) {
    std::string error;
    auto feats = model::featurize(p, s, features_, &error);
    if (!feats)
      throw std::invalid_argument("ModelEvaluator: cannot featurize candidate: " + error);
    model::DataPoint point;
    point.program_id = 0;
    point.feats = std::move(*feats);
    point.speedup = 1.0;  // unused target
    ds.points.push_back(std::move(point));
  }
  const std::vector<double> predictions = model::predict(*predictor_, ds, /*batch_size=*/64);

  accounted_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  evaluations_ += static_cast<std::int64_t>(candidates.size());
  return predictions;
}

}  // namespace tcm::search
