#include "search/evaluator.h"

#include <chrono>
#include <stdexcept>
#include <thread>

#include "transforms/apply.h"

namespace tcm::search {

ExecutionEvaluator::ExecutionEvaluator(sim::Executor executor) : executor_(std::move(executor)) {}

std::vector<double> ExecutionEvaluator::evaluate(
    const ir::Program& p, const std::vector<transforms::Schedule>& candidates) {
  std::vector<double> speedups;
  speedups.reserve(candidates.size());
  const double base = executor_.measure_seconds(p);
  for (const transforms::Schedule& s : candidates) {
    const ir::Program transformed = transforms::apply_schedule(p, s);
    const double t = executor_.measure_seconds(transformed);
    speedups.push_back(base / t);
    accounted_seconds_ += executor_.evaluation_cost_seconds(t);
    ++evaluations_;
  }
  return speedups;
}

namespace {

serve::ServeOptions default_serve_options(model::FeatureConfig features) {
  serve::ServeOptions options;
  options.features = features;
  const unsigned hw = std::thread::hardware_concurrency();
  options.num_threads = static_cast<int>(std::min(4u, std::max(1u, hw)));
  return options;
}

}  // namespace

ModelEvaluator::ModelEvaluator(model::SpeedupPredictor* predictor, model::FeatureConfig features)
    : ModelEvaluator(predictor, default_serve_options(features)) {}

ModelEvaluator::ModelEvaluator(model::SpeedupPredictor* predictor,
                               const serve::ServeOptions& options) {
  if (!predictor) throw std::invalid_argument("ModelEvaluator: null predictor");
  owned_service_ = std::make_unique<serve::PredictionService>(*predictor, options);
  service_ = owned_service_.get();
}

ModelEvaluator::ModelEvaluator(serve::PredictionService& service) : service_(&service) {}

std::vector<double> ModelEvaluator::evaluate(const ir::Program& p,
                                             const std::vector<transforms::Schedule>& candidates) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<double> predictions;
  try {
    predictions = service_->predict_many(p, candidates, deadline_);
  } catch (const std::invalid_argument& e) {
    // Keep the historical error contract of the synchronous evaluator.
    throw std::invalid_argument(std::string("ModelEvaluator: ") + e.what());
  }
  accounted_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  evaluations_ += static_cast<std::int64_t>(candidates.size());
  return predictions;
}

}  // namespace tcm::search
