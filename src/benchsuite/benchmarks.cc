#include "benchsuite/benchmarks.h"

#include <algorithm>

#include "ir/builder.h"

namespace tcm::benchsuite {

using ir::ProgramBuilder;
using ir::SExpr;
using ir::Var;

ir::Program make_box_blur(std::int64_t channels, std::int64_t height, std::int64_t width) {
  ProgramBuilder b("box_blur");
  const int in = b.input("in", {channels, height, width});
  Var c = b.var("c", channels), y = b.var("y", height - 2), x = b.var("x", width - 2);
  SExpr sum;
  for (int dy = 0; dy < 3; ++dy) {
    for (int dx = 0; dx < 3; ++dx) {
      SExpr t = b.load(in, {c, y + dy, x + dx});
      sum = sum.valid() ? sum + t : t;
    }
  }
  b.computation("blur", {c, y, x}, {c, y, x}, sum / SExpr(9.0));
  return b.build();
}

ir::Program make_convolution(std::int64_t batch, std::int64_t in_features, std::int64_t height,
                             std::int64_t width, std::int64_t out_features,
                             std::int64_t kernel) {
  ProgramBuilder b("convolution");
  const int input = b.input("input", {batch, in_features, height, width});
  const int weights = b.input("weights", {out_features, in_features, kernel, kernel});
  Var n = b.var("n", batch), f = b.var("fout", out_features);
  Var y = b.var("y", height - kernel + 1), x = b.var("x", width - kernel + 1);
  Var c = b.var("fin", in_features), k0 = b.var("k0", kernel), k1 = b.var("k1", kernel);
  b.computation("conv", {n, f, y, x, c, k0, k1}, {n, f, y, x},
                b.load(weights, {f, c, k0, k1}) * b.load(input, {n, c, y + k0, x + k1}));
  return b.build();
}

ir::Program make_conv_relu(std::int64_t batch, std::int64_t in_features, std::int64_t height,
                           std::int64_t width, std::int64_t out_features, std::int64_t kernel) {
  ProgramBuilder b("conv_relu");
  const int input = b.input("input", {batch, in_features, height, width});
  const int weights = b.input("weights", {out_features, in_features, kernel, kernel});
  Var n = b.var("n", batch), f = b.var("fout", out_features);
  Var y = b.var("y", height - kernel + 1), x = b.var("x", width - kernel + 1);
  Var c = b.var("fin", in_features), k0 = b.var("k0", kernel), k1 = b.var("k1", kernel);
  const int conv =
      b.computation("conv", {n, f, y, x, c, k0, k1}, {n, f, y, x},
                    b.load(weights, {f, c, k0, k1}) * b.load(input, {n, c, y + k0, x + k1}));
  Var n2 = b.var("n2", batch), f2 = b.var("f2", out_features);
  Var y2 = b.var("y2", height - kernel + 1), x2 = b.var("x2", width - kernel + 1);
  b.computation("relu", {n2, f2, y2, x2}, {n2, f2, y2, x2},
                max(b.load(b.buffer_of(conv), {n2, f2, y2, x2}), SExpr(0.0)));
  return b.build();
}

ir::Program make_cvtcolor(std::int64_t height, std::int64_t width) {
  ProgramBuilder b("cvtcolor");
  const int rgb = b.input("rgb", {3, height, width});
  Var y = b.var("y", height), x = b.var("x", width);
  // Weighted RGB -> gray conversion; channel indices are affine constants.
  b.computation("gray", {y, x}, {y, x},
                b.load(rgb, {ir::IndexExpr(0), y, x}) * SExpr(0.299) +
                    b.load(rgb, {ir::IndexExpr(1), y, x}) * SExpr(0.587) +
                    b.load(rgb, {ir::IndexExpr(2), y, x}) * SExpr(0.114));
  return b.build();
}

ir::Program make_doitgen(std::int64_t nr, std::int64_t nq, std::int64_t np, std::int64_t ns) {
  ProgramBuilder b("doitgen");
  const int a = b.input("A", {nr, nq, ns});
  const int c4 = b.input("C4", {ns, np});
  Var r = b.var("r", nr), q = b.var("q", nq), p = b.var("p", np), s = b.var("s", ns);
  b.computation("sum", {r, q, p, s}, {r, q, p},
                b.load(a, {r, q, s}) * b.load(c4, {s, p}));
  return b.build();
}

ir::Program make_heat2d(std::int64_t height, std::int64_t width) {
  ProgramBuilder b("heat2d");
  const int in = b.input("in", {height, width});
  Var y = b.var("y", height - 2), x = b.var("x", width - 2);
  // 5-point heat kernel (canonicalized: reads at offsets 0..2, centre at +1).
  b.computation("heat", {y, x}, {y, x},
                b.load(in, {y + 1, x + 1}) * SExpr(0.5) +
                    (b.load(in, {y, x + 1}) + b.load(in, {y + 2, x + 1}) +
                     b.load(in, {y + 1, x}) + b.load(in, {y + 1, x + 2})) *
                        SExpr(0.125));
  return b.build();
}

ir::Program make_heat3d(std::int64_t depth, std::int64_t height, std::int64_t width) {
  ProgramBuilder b("heat3d");
  const int in = b.input("in", {depth, height, width});
  Var z = b.var("z", depth - 2), y = b.var("y", height - 2), x = b.var("x", width - 2);
  b.computation("heat", {z, y, x}, {z, y, x},
                b.load(in, {z + 1, y + 1, x + 1}) * SExpr(0.4) +
                    (b.load(in, {z, y + 1, x + 1}) + b.load(in, {z + 2, y + 1, x + 1}) +
                     b.load(in, {z + 1, y, x + 1}) + b.load(in, {z + 1, y + 2, x + 1}) +
                     b.load(in, {z + 1, y + 1, x}) + b.load(in, {z + 1, y + 1, x + 2})) *
                        SExpr(0.1));
  return b.build();
}

ir::Program make_jacobi2d(std::int64_t height, std::int64_t width) {
  ProgramBuilder b("jacobi2d");
  const int in = b.input("A", {height, width});
  Var y = b.var("y", height - 2), x = b.var("x", width - 2);
  b.computation("jacobi", {y, x}, {y, x},
                (b.load(in, {y + 1, x + 1}) + b.load(in, {y + 1, x}) +
                 b.load(in, {y + 1, x + 2}) + b.load(in, {y, x + 1}) +
                 b.load(in, {y + 2, x + 1})) *
                    SExpr(0.2));
  return b.build();
}

ir::Program make_mvt(std::int64_t n) {
  ProgramBuilder b("mvt");
  const int a = b.input("A", {n, n});
  const int y1 = b.input("y1", {n});
  const int y2 = b.input("y2", {n});
  Var i = b.var("i", n), j = b.var("j", n);
  b.computation("x1", {i, j}, {i}, b.load(a, {i, j}) * b.load(y1, {j}));
  // Second mvt with the transposed matrix.
  Var i2 = b.var("i2", n), j2 = b.var("j2", n);
  b.computation("x2", {i2, j2}, {i2}, b.load(a, {j2, i2}) * b.load(y2, {j2}));
  return b.build();
}

ir::Program make_seidel2d(std::int64_t height, std::int64_t width) {
  ProgramBuilder b("seidel2d");
  const int in = b.input("A", {height, width});
  Var y = b.var("y", height - 2), x = b.var("x", width - 2);
  SExpr sum;
  for (int dy = 0; dy < 3; ++dy) {
    for (int dx = 0; dx < 3; ++dx) {
      SExpr t = b.load(in, {y + dy, x + dx});
      sum = sum.valid() ? sum + t : t;
    }
  }
  b.computation("seidel", {y, x}, {y, x}, sum / SExpr(9.0));
  return b.build();
}

std::vector<BenchmarkInfo> paper_benchmarks(std::int64_t scale) {
  auto s = [&](std::int64_t v) { return std::max<std::int64_t>(8, v / scale); };
  std::vector<BenchmarkInfo> out;
  out.push_back({"box blur", make_box_blur(3, s(1024), s(1024))});
  out.push_back({"conv + relu", make_conv_relu(8, 3, s(1024), s(1024), 2, 3)});
  out.push_back({"convolution", make_convolution(8, 3, s(1024), s(1024), 2, 3)});
  out.push_back({"cvtcolor", make_cvtcolor(s(1024), s(1024))});
  out.push_back({"doitgen", make_doitgen(s(256), s(256), s(256), s(128))});
  out.push_back({"heat2d", make_heat2d(s(1024), s(1024))});
  out.push_back({"heat3d", make_heat3d(s(770), s(898), s(1024))});
  out.push_back({"jacobi2d", make_jacobi2d(s(130), s(1024))});
  out.push_back({"mvt", make_mvt(s(1024))});
  out.push_back({"seidel2d", make_seidel2d(s(256), s(256))});
  return out;
}

}  // namespace tcm::benchsuite
