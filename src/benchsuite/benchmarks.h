// The paper's real-world benchmark suite (Section 6, input sizes from
// Table 3): box blur, conv + relu, convolution, cvtcolor, doitgen, heat2d,
// heat3d, jacobi2d, mvt, seidel2d.
//
// Each builder returns a TIRAMISU-style program with Table 3 defaults;
// `scale` uniformly shrinks the data sizes (useful for fast tests).
// Substitution note (DESIGN.md): seidel2d is implemented as an out-of-place
// 9-point stencil. True Gauss-Seidel updates in place, which our IR forbids
// (computations never read their own output buffer); the loop structure,
// access pattern and footprint — what the cost model sees — are identical.
#pragma once

#include <string>
#include <vector>

#include "ir/program.h"

namespace tcm::benchsuite {

ir::Program make_box_blur(std::int64_t channels = 3, std::int64_t height = 1024,
                          std::int64_t width = 1024);
// Convolution: batch 8, input 1024x1024x3, kernel 3x3, 2 output features.
ir::Program make_convolution(std::int64_t batch = 8, std::int64_t in_features = 3,
                             std::int64_t height = 1024, std::int64_t width = 1024,
                             std::int64_t out_features = 2, std::int64_t kernel = 3);
// Conv + relu: the operator-fusion benchmark.
ir::Program make_conv_relu(std::int64_t batch = 8, std::int64_t in_features = 3,
                           std::int64_t height = 1024, std::int64_t width = 1024,
                           std::int64_t out_features = 2, std::int64_t kernel = 3);
ir::Program make_cvtcolor(std::int64_t height = 1024, std::int64_t width = 1024);
// doitgen (PolyBench): sum[r][q][p] = sum_s A[r][q][s] * C4[s][p].
ir::Program make_doitgen(std::int64_t nr = 256, std::int64_t nq = 256, std::int64_t np = 256,
                         std::int64_t ns = 128);
ir::Program make_heat2d(std::int64_t height = 1024, std::int64_t width = 1024);
ir::Program make_heat3d(std::int64_t depth = 770, std::int64_t height = 898,
                        std::int64_t width = 1024);
ir::Program make_jacobi2d(std::int64_t height = 130, std::int64_t width = 1024);
// mvt (PolyBench): x1 += A y1 and x2 += A^T y2.
ir::Program make_mvt(std::int64_t n = 1024);
ir::Program make_seidel2d(std::int64_t height = 256, std::int64_t width = 256);

struct BenchmarkInfo {
  std::string name;
  ir::Program program;
};

// All ten with Table 3 sizes, divided by `scale` (1 = paper sizes). Extents
// never drop below 8.
std::vector<BenchmarkInfo> paper_benchmarks(std::int64_t scale = 1);

}  // namespace tcm::benchsuite
