// Vocabulary types of the async autoscheduling job service.
//
// A search job is one autoschedule request: a program plus search options,
// run asynchronously on the manager's worker pool. The lifecycle is a small
// one-way state machine —
//
//   QUEUED ──► RUNNING ──► DONE        (search finished; best schedule held)
//     │           ├──────► FAILED      (evaluator error / deadline exceeded)
//     └───────────┴──────► CANCELLED   (client DELETE, observed within one
//                                       evaluation batch)
//
// — plus the short-circuit: a program whose fingerprint is already in the
// ScheduleMemory is born DONE with reused=true and never touches the pool.
// These structs carry no behavior so the wire layer can encode them without
// pulling in the manager.
#pragma once

#include <cstdint>
#include <string>

#include "ir/program.h"
#include "search/candidates.h"
#include "serve/prediction_service.h"
#include "transforms/schedule.h"

namespace tcm::jobs {

enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

// "QUEUED" / "RUNNING" / "DONE" / "FAILED" / "CANCELLED" — the wire spelling.
const char* to_string(JobState state);

enum class SearchMethod { kBeam, kMcts };

struct SearchJobRequest {
  ir::Program program;
  SearchMethod method = SearchMethod::kBeam;
  int beam_width = 4;
  int mcts_iterations = 48;
  search::SearchSpaceOptions space;
  // Absolute deadline for the whole job (search is shed mid-flight once it
  // passes; the job fails with DEADLINE_EXCEEDED). kNoDeadline = the
  // manager's default applies.
  serve::RequestDeadline deadline = serve::kNoDeadline;
};

// Point-in-time snapshot of one job; what GET /v1/search/{id} returns and
// what each line of the event stream carries.
struct SearchJobInfo {
  std::string id;
  JobState state = JobState::kQueued;
  SearchMethod method = SearchMethod::kBeam;
  bool reused = false;        // served straight from ScheduleMemory
  bool warm_started = false;  // beam seeded from a shape-fingerprint near miss
  double progress = 0;        // 0..1 fraction of decision points / iterations
  std::int64_t evaluations = 0;
  double best_speedup = 0;     // predicted speedup of best_schedule
  double baseline_speedup = 1;  // predicted speedup of the empty schedule
  transforms::Schedule best_schedule;  // best-so-far; final when terminal
  std::string error;           // FAILED detail ("DEADLINE_EXCEEDED: ...")
  double wall_seconds = 0;
  std::uint64_t program_fingerprint = 0;
};

}  // namespace tcm::jobs
