#include "jobs/job_manager.h"

#include <algorithm>
#include <cstdio>

#include "obs/event_log.h"
#include "search/beam_search.h"
#include "search/mcts.h"
#include "serve/errors.h"
#include "serve/fingerprint.h"
#include "sim/executor.h"
#include "support/log.h"

namespace tcm::jobs {

namespace {

// Wall-clock buckets for one autoschedule job: sub-second memory-warm runs
// through multi-minute cold searches.
std::vector<double> duration_bounds() {
  return {0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300};
}

const char* method_name(SearchMethod m) {
  return m == SearchMethod::kBeam ? "beam" : "mcts";
}

}  // namespace

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "QUEUED";
    case JobState::kRunning: return "RUNNING";
    case JobState::kDone: return "DONE";
    case JobState::kFailed: return "FAILED";
    case JobState::kCancelled: return "CANCELLED";
  }
  return "UNKNOWN";
}

SearchJobManager::SearchJobManager(serve::PredictionService& service,
                                   SearchJobManagerOptions options)
    : service_(service),
      options_(std::move(options)),
      memory_(options_.memory_path, options_.metrics.get()) {
  if (options_.metrics) {
    obs::MetricsRegistry& m = *options_.metrics;
    jobs_done_ = &m.counter("tcm_search_jobs_total", "Search jobs by terminal outcome",
                            "outcome=\"done\"");
    jobs_failed_ = &m.counter("tcm_search_jobs_total", "Search jobs by terminal outcome",
                              "outcome=\"failed\"");
    jobs_cancelled_ = &m.counter("tcm_search_jobs_total", "Search jobs by terminal outcome",
                                 "outcome=\"cancelled\"");
    jobs_reused_ = &m.counter("tcm_search_jobs_total", "Search jobs by terminal outcome",
                              "outcome=\"reused\"");
    gauge_running_ = &m.gauge("tcm_search_jobs_running", "Search jobs currently executing");
    gauge_queued_ = &m.gauge("tcm_search_jobs_queued", "Search jobs waiting for a worker");
    duration_ = &m.histogram("tcm_search_job_duration_seconds",
                             "Wall time from submit to terminal state", "", duration_bounds());
    admission_ = std::make_unique<serve::AdmissionController>(
        serve::AdmissionOptions{.queue_cap = options_.queue_cap}, m);
  } else if (options_.queue_cap > 0) {
    // Admission control needs a registry for its instruments; a manager
    // wired without one still gets the queue cap via a private registry.
    static obs::MetricsRegistry fallback_registry;
    admission_ = std::make_unique<serve::AdmissionController>(
        serve::AdmissionOptions{.queue_cap = options_.queue_cap}, fallback_registry);
  }
  const int workers = std::max(1, options_.workers);
  pool_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) pool_.emplace_back([this, i] { worker_loop(i); });
}

SearchJobManager::~SearchJobManager() { stop(); }

std::string SearchJobManager::submit(SearchJobRequest request) {
  if (request.beam_width < 1) throw std::invalid_argument("beam_width must be >= 1");
  if (request.mcts_iterations < 1) throw std::invalid_argument("iterations must be >= 1");
  if (request.program.comps.empty()) throw std::invalid_argument("program has no computations");

  const std::uint64_t fp = serve::fingerprint(request.program);
  auto job = std::make_shared<Job>();
  job->request = std::move(request);
  job->info.method = job->request.method;
  job->info.program_fingerprint = fp;
  job->deadline = job->request.deadline;
  if (job->deadline == serve::kNoDeadline && options_.default_deadline.count() > 0)
    job->deadline = std::chrono::steady_clock::now() + options_.default_deadline;
  job->enqueued_at = std::chrono::steady_clock::now();

  // Memory short-circuit: a program we already autoscheduled is answered
  // instantly — the job is born DONE and never touches the queue.
  std::optional<MemoryEntry> hit = memory_.lookup(fp);
  if (hit.has_value()) {
    job->info.state = JobState::kDone;
    job->info.reused = true;
    job->info.progress = 1.0;
    job->info.best_schedule = hit->schedule;
    job->info.best_speedup = hit->predicted_speedup;
    job->info.evaluations = 0;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) throw std::runtime_error("SearchJobManager is stopped");
    if (!hit.has_value() && admission_ && admission_->enabled()) {
      std::chrono::nanoseconds oldest_age{0};
      if (!queue_.empty())
        oldest_age = std::chrono::steady_clock::now() - queue_.front()->enqueued_at;
      const serve::AdmissionController::Decision d = admission_->admit(queue_.size(), oldest_age);
      if (!d.admit)
        throw serve::AdmissionRejectedError("search queue over capacity (" +
                                            std::to_string(queue_.size()) + " queued)");
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "sj-%06llu",
                  static_cast<unsigned long long>(next_id_++));
    job->info.id = buf;
    jobs_.emplace(job->info.id, job);
    order_.push_back(job->info.id);
    prune_finished_locked();
    if (!hit.has_value()) {
      queue_.push_back(job);
      if (gauge_queued_ != nullptr) gauge_queued_->set(static_cast<double>(queue_.size()));
      queue_cv_.notify_one();
    }
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (hit.has_value()) {
    reused_.fetch_add(1, std::memory_order_relaxed);
    if (jobs_reused_ != nullptr) jobs_reused_->inc();
    if (duration_ != nullptr) duration_->observe(0.0);
    obs::EventLog::instance().emit("search_job_reused", "info",
                                   "id=" + job->info.id +
                                       " fp=" + std::to_string(fp) +
                                       " speedup=" + std::to_string(hit->predicted_speedup));
  } else {
    obs::EventLog::instance().emit("search_job_submit", "info",
                                   "id=" + job->info.id + " method=" +
                                       method_name(job->info.method) +
                                       " fp=" + std::to_string(fp));
  }
  emit_event(*job);
  return job->info.id;
}

std::optional<SearchJobInfo> SearchJobManager::info(const std::string& id) const {
  std::shared_ptr<Job> job = find(id);
  if (!job) return std::nullopt;
  std::lock_guard<std::mutex> lock(job->mu);
  return job->info;
}

std::vector<SearchJobInfo> SearchJobManager::list() const {
  std::vector<std::shared_ptr<Job>> jobs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs.reserve(order_.size());
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
      auto f = jobs_.find(*it);
      if (f != jobs_.end()) jobs.push_back(f->second);
    }
  }
  std::vector<SearchJobInfo> out;
  out.reserve(jobs.size());
  for (const auto& job : jobs) {
    std::lock_guard<std::mutex> lock(job->mu);
    out.push_back(job->info);
  }
  return out;
}

bool SearchJobManager::cancel(const std::string& id) {
  std::shared_ptr<Job> job = find(id);
  if (!job) return false;
  job->cancel.store(true, std::memory_order_relaxed);
  // A job still in the queue is cancelled right here — no worker will run
  // it (the worker re-checks the flag before starting).
  bool was_queued = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::find(queue_.begin(), queue_.end(), job);
    if (it != queue_.end()) {
      queue_.erase(it);
      was_queued = true;
      if (gauge_queued_ != nullptr) gauge_queued_->set(static_cast<double>(queue_.size()));
    }
  }
  if (was_queued) finish(*job, JobState::kCancelled, "");
  return true;
}

SearchJobManager::EventBatch SearchJobManager::events_since(
    const std::string& id, std::size_t cursor, std::chrono::milliseconds wait) const {
  EventBatch batch;
  std::shared_ptr<Job> job = find(id);
  if (!job) {
    batch.done = true;
    return batch;
  }
  std::unique_lock<std::mutex> lock(job->mu);
  auto terminal = [&] {
    return job->info.state == JobState::kDone || job->info.state == JobState::kFailed ||
           job->info.state == JobState::kCancelled;
  };
  job->cv.wait_for(lock, wait, [&] { return job->events.size() > cursor || terminal(); });
  for (std::size_t i = cursor; i < job->events.size(); ++i) batch.lines.push_back(job->events[i]);
  batch.done = terminal() && cursor + batch.lines.size() >= job->events.size();
  return batch;
}

SearchJobStats SearchJobManager::stats() const {
  SearchJobStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.done = done_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.reused = reused_.load(std::memory_order_relaxed);
  s.running = running_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.queued = queue_.size();
  }
  s.memory = memory_.stats();
  return s;
}

void SearchJobManager::stop() {
  std::vector<std::shared_ptr<Job>> abandoned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    for (const auto& job : queue_) abandoned.push_back(job);
    queue_.clear();
    if (gauge_queued_ != nullptr) gauge_queued_->set(0);
    // Running jobs observe the flag at their next evaluation batch.
    for (const auto& [id, job] : jobs_) job->cancel.store(true, std::memory_order_relaxed);
    queue_cv_.notify_all();
  }
  for (const auto& job : abandoned) finish(*job, JobState::kCancelled, "");
  for (std::thread& t : pool_)
    if (t.joinable()) t.join();
  pool_.clear();
}

void SearchJobManager::worker_loop(int index) {
  obs::Watchdog::Handle heartbeat;
  if (options_.watchdog)
    heartbeat = options_.watchdog->register_thread(
        "search_worker_" + std::to_string(index),
        std::chrono::duration_cast<std::chrono::milliseconds>(options_.eval_budget) +
            std::chrono::milliseconds(30000),
        /*critical=*/false);
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) break;
      job = queue_.front();
      queue_.pop_front();
      if (gauge_queued_ != nullptr) gauge_queued_->set(static_cast<double>(queue_.size()));
    }
    if (options_.watchdog) options_.watchdog->set_busy(heartbeat, "search_job");
    running_.fetch_add(1, std::memory_order_relaxed);
    if (gauge_running_ != nullptr)
      gauge_running_->set(static_cast<double>(running_.load(std::memory_order_relaxed)));
    run_job(*job, heartbeat);
    running_.fetch_sub(1, std::memory_order_relaxed);
    if (gauge_running_ != nullptr)
      gauge_running_->set(static_cast<double>(running_.load(std::memory_order_relaxed)));
    if (options_.watchdog) options_.watchdog->set_idle(heartbeat);
  }
  if (options_.watchdog) options_.watchdog->unregister(heartbeat);
}

void SearchJobManager::run_job(Job& job, obs::Watchdog::Handle heartbeat) {
  if (job.cancel.load(std::memory_order_relaxed)) {
    finish(job, JobState::kCancelled, "");
    return;
  }
  if (std::chrono::steady_clock::now() >= job.deadline) {
    finish(job, JobState::kFailed, "DEADLINE_EXCEEDED: job deadline expired while queued");
    return;
  }
  {
    std::lock_guard<std::mutex> lock(job.mu);
    job.info.state = JobState::kRunning;
  }
  emit_event(job);

  const ir::Program& p = job.request.program;
  const std::uint64_t fp = job.info.program_fingerprint;
  const std::uint64_t shape_fp = serve::shape_fingerprint(p);

  search::ModelEvaluator evaluator(service_);
  // Every scoring burst carries min(job deadline, now + eval budget): a
  // wedged batcher sheds the burst with DeadlineExceededError instead of
  // stranding this worker, and an expired job deadline fails the job.
  auto arm_eval_deadline = [&] {
    serve::RequestDeadline d = job.deadline;
    if (options_.eval_budget.count() > 0) {
      const serve::RequestDeadline slice =
          std::chrono::steady_clock::now() + options_.eval_budget;
      if (slice < d) d = slice;
    }
    evaluator.set_deadline(d);
  };

  auto on_progress = [&](const search::SearchProgress& progress) {
    if (options_.watchdog) options_.watchdog->beat(heartbeat);
    {
      std::lock_guard<std::mutex> lock(job.mu);
      job.info.progress = progress.decision_count > 0
                              ? static_cast<double>(progress.decision_index) /
                                    static_cast<double>(progress.decision_count)
                              : 0.0;
      job.info.evaluations = progress.evaluations;
      if (progress.best_schedule != nullptr && progress.best_score > job.info.best_speedup) {
        job.info.best_speedup = progress.best_score;
        job.info.best_schedule = *progress.best_schedule;
      }
      job.info.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                            job.enqueued_at)
                                  .count();
    }
    emit_event(job);
    if (job.cancel.load(std::memory_order_relaxed)) return false;
    if (std::chrono::steady_clock::now() >= job.deadline)
      throw serve::DeadlineExceededError("search job deadline exceeded mid-search");
    arm_eval_deadline();
    return true;
  };

  try {
    arm_eval_deadline();
    // The acceptance floor: the returned schedule must never score below
    // the untransformed program. Evaluate the default schedule explicitly
    // and fall back to it if search does worse.
    const double baseline = evaluator.evaluate(p, {transforms::Schedule{}}).front();
    {
      std::lock_guard<std::mutex> lock(job.mu);
      job.info.baseline_speedup = baseline;
    }

    transforms::Schedule best;
    double best_score = 0;
    std::int64_t evaluations = 0;
    bool stopped_early = false;

    if (job.request.method == SearchMethod::kBeam) {
      search::BeamSearchOptions bo;
      bo.beam_width = job.request.beam_width;
      bo.space = job.request.space;
      bo.on_progress = on_progress;
      // Warm start: schedules remembered for same-shaped programs (the
      // par/vec heuristics are re-applied by the search, so remembered
      // parallel/vectorize marks are stripped from the seeds).
      for (transforms::Schedule w : memory_.warm_starts(shape_fp, fp)) {
        w.parallels.clear();
        w.vectorizes.clear();
        bo.warm_start.push_back(std::move(w));
      }
      if (!bo.warm_start.empty()) {
        std::lock_guard<std::mutex> lock(job.mu);
        job.info.warm_started = true;
      }
      search::SearchResult result = search::beam_search(p, evaluator, bo);
      best = std::move(result.best_schedule);
      best_score = result.best_score;
      evaluations = result.evaluations;
      stopped_early = result.stopped_early;
    } else {
      search::MctsOptions mo;
      mo.iterations = job.request.mcts_iterations;
      mo.space = job.request.space;
      mo.seed = fp;  // deterministic per program
      mo.on_progress = on_progress;
      search::ExecutionEvaluator exec{sim::Executor(sim::MachineModel(), {}, /*seed=*/17)};
      search::MctsResult result = search::mcts_search(p, evaluator, exec, mo);
      best = std::move(result.best_schedule);
      best_score = result.best_measured_speedup;
      evaluations = result.model_evaluations;
      stopped_early = result.stopped_early;
    }

    if (stopped_early || job.cancel.load(std::memory_order_relaxed)) {
      finish(job, JobState::kCancelled, "");
      return;
    }
    if (best_score < baseline) {
      best = transforms::Schedule{};
      best_score = baseline;
    }
    {
      std::lock_guard<std::mutex> lock(job.mu);
      job.info.best_schedule = best;
      job.info.best_speedup = best_score;
      job.info.evaluations = evaluations;
      job.info.progress = 1.0;
    }
    MemoryEntry entry;
    entry.program_fp = fp;
    entry.shape_fp = shape_fp;
    entry.schedule = std::move(best);
    entry.predicted_speedup = best_score;
    entry.evaluations = evaluations;
    entry.method = method_name(job.request.method);
    memory_.store(std::move(entry));
    finish(job, JobState::kDone, "");
  } catch (const serve::DeadlineExceededError& e) {
    finish(job, JobState::kFailed, std::string("DEADLINE_EXCEEDED: ") + e.what());
  } catch (const serve::AdmissionRejectedError& e) {
    finish(job, JobState::kFailed, std::string("RESOURCE_EXHAUSTED: ") + e.what());
  } catch (const std::exception& e) {
    finish(job, JobState::kFailed, e.what());
  }
}

void SearchJobManager::finish(Job& job, JobState state, const std::string& error) {
  double wall = 0;
  {
    std::lock_guard<std::mutex> lock(job.mu);
    // finish() can race between stop() and a worker; first writer wins.
    if (job.info.state == JobState::kDone || job.info.state == JobState::kFailed ||
        job.info.state == JobState::kCancelled)
      return;
    job.info.state = state;
    job.info.error = error;
    wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - job.enqueued_at)
               .count();
    job.info.wall_seconds = wall;
  }
  switch (state) {
    case JobState::kDone:
      done_.fetch_add(1, std::memory_order_relaxed);
      if (jobs_done_ != nullptr) jobs_done_->inc();
      obs::EventLog::instance().emit("search_job_done", "info",
                                     "id=" + job.info.id +
                                         " speedup=" + std::to_string(job.info.best_speedup));
      break;
    case JobState::kFailed:
      failed_.fetch_add(1, std::memory_order_relaxed);
      if (jobs_failed_ != nullptr) jobs_failed_->inc();
      obs::EventLog::instance().emit("search_job_failed", "warn",
                                     "id=" + job.info.id + " error=" + error);
      break;
    case JobState::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      if (jobs_cancelled_ != nullptr) jobs_cancelled_->inc();
      obs::EventLog::instance().emit("search_job_cancelled", "info", "id=" + job.info.id);
      break;
    default:
      break;
  }
  if (duration_ != nullptr) duration_->observe(wall);
  emit_event(job);
}

void SearchJobManager::emit_event(Job& job) const {
  std::lock_guard<std::mutex> lock(job.mu);
  job.events.push_back(event_line(job.info));
  job.cv.notify_all();
}

std::string SearchJobManager::event_line(const SearchJobInfo& info) {
  // Hand-assembled (the wire layer owns the full JSON encodings; the event
  // stream only carries the scalar progress fields).
  std::string line = "{\"job_id\":\"" + info.id + "\",\"state\":\"" + to_string(info.state) +
                     "\",\"progress\":" + std::to_string(info.progress) +
                     ",\"evaluations\":" + std::to_string(info.evaluations) +
                     ",\"best_speedup\":" + std::to_string(info.best_speedup);
  if (info.reused) line += ",\"reused\":true";
  if (!info.error.empty()) {
    line += ",\"error\":\"";
    for (char c : info.error) {
      if (c == '"' || c == '\\') line += '\\';
      if (static_cast<unsigned char>(c) < 0x20) continue;
      line += c;
    }
    line += '"';
  }
  line += "}";
  return line;
}

std::shared_ptr<SearchJobManager::Job> SearchJobManager::find(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

void SearchJobManager::prune_finished_locked() {
  // Keep the newest max_finished_jobs records; terminal jobs beyond that are
  // forgotten oldest-first (queued/running jobs are never pruned).
  if (jobs_.size() <= options_.max_finished_jobs) return;
  for (auto it = order_.begin();
       it != order_.end() && jobs_.size() > options_.max_finished_jobs;) {
    auto f = jobs_.find(*it);
    if (f == jobs_.end()) {
      it = order_.erase(it);
      continue;
    }
    JobState state;
    {
      std::lock_guard<std::mutex> lock(f->second->mu);
      state = f->second->info.state;
    }
    if (state == JobState::kDone || state == JobState::kFailed ||
        state == JobState::kCancelled) {
      jobs_.erase(f);
      it = order_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace tcm::jobs
