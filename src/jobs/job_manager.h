// SearchJobManager: async autoscheduling on a bounded worker pool.
//
// submit() either answers from the ScheduleMemory (job born DONE,
// reused=true) or enqueues the job behind the admission controller (PR 8's
// machinery: a full queue rejects with AdmissionRejectedError → HTTP 429 +
// Retry-After, never unbounded latency). Workers pop jobs FIFO and run
// beam/MCTS with a ModelEvaluator that *shares* the serving tier's
// PredictionService — search traffic batches with interactive predictions
// and inherits its cache and instrumentation.
//
// Cooperative control rides the search progress callback, which fires after
// every scored evaluation batch:
//   - cancellation: DELETE flips an atomic flag; the callback observes it
//     and stops the search (CANCELLED within one evaluation batch).
//   - deadlines: each batch carries min(job deadline, now + eval_budget) so
//     a wedged batcher sheds the evaluation (DeadlineExceededError) instead
//     of stranding the job; an expired job deadline fails the job with
//     DEADLINE_EXCEEDED.
//   - progress: the job record and its event stream (ndjson lines consumed
//     by GET /v1/search/{id}/events) update under the record's own mutex;
//     pollers never block a worker.
//
// Completed jobs write the best schedule back into the ScheduleMemory, so
// the next identical program skips search entirely and the next
// same-shaped program warm-starts its beam.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "jobs/schedule_memory.h"
#include "jobs/search_job.h"
#include "obs/metrics.h"
#include "obs/watchdog.h"
#include "serve/admission.h"
#include "serve/prediction_service.h"

namespace tcm::jobs {

struct SearchJobManagerOptions {
  int workers = 2;
  // Hard cap on queued (not yet running) jobs; 0 disables admission control.
  std::size_t queue_cap = 16;
  // Default whole-job deadline applied when a request carries none;
  // zero = unlimited.
  std::chrono::milliseconds default_deadline{0};
  // Per-evaluation-batch deadline slice (tightened by the job deadline): the
  // longest one scoring burst may take before it is shed.
  std::chrono::milliseconds eval_budget{10000};
  // Schedule-memory file; empty = in-memory only.
  std::string memory_path;
  // Completed job records retained for polling (oldest evicted first).
  std::size_t max_finished_jobs = 256;
  // Never null in practice (the Service wires its shared registry); a null
  // registry skips instrument registration.
  std::shared_ptr<obs::MetricsRegistry> metrics;
  std::shared_ptr<obs::Watchdog> watchdog;
};

struct SearchJobStats {
  std::uint64_t submitted = 0;
  std::uint64_t done = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t reused = 0;  // answered from memory without searching
  std::size_t running = 0;
  std::size_t queued = 0;
  ScheduleMemoryStats memory;
};

class SearchJobManager {
 public:
  // `service` must outlive the manager; it is the shared scoring backend.
  SearchJobManager(serve::PredictionService& service, SearchJobManagerOptions options);
  ~SearchJobManager();  // stop()

  SearchJobManager(const SearchJobManager&) = delete;
  SearchJobManager& operator=(const SearchJobManager&) = delete;

  // Returns the job id. Throws serve::AdmissionRejectedError when the queue
  // is over cap and std::invalid_argument on a bad request. A memory hit
  // returns a job that is already DONE.
  std::string submit(SearchJobRequest request);

  // Snapshot of one job; nullopt for unknown ids.
  std::optional<SearchJobInfo> info(const std::string& id) const;

  // All job snapshots, newest first.
  std::vector<SearchJobInfo> list() const;

  // Requests cancellation. False for unknown ids; true otherwise (a job
  // already terminal stays in its state — cancel is not un-done).
  bool cancel(const std::string& id);

  // Event-stream support: blocks up to `wait` for lines beyond `cursor`.
  // Returns the new ndjson lines and whether the job has reached a terminal
  // state (the stream ends once the caller has drained all lines of a
  // terminal job). Unknown ids return done=true with no lines.
  struct EventBatch {
    std::vector<std::string> lines;
    bool done = false;
  };
  EventBatch events_since(const std::string& id, std::size_t cursor,
                          std::chrono::milliseconds wait) const;

  SearchJobStats stats() const;
  ScheduleMemory& memory() { return memory_; }

  // Cancels queued and running jobs and joins the pool. Idempotent.
  void stop();

 private:
  struct Job {
    mutable std::mutex mu;
    mutable std::condition_variable cv;  // signalled on every event append
    SearchJobInfo info;
    std::vector<std::string> events;  // serialized ndjson snapshots
    std::atomic<bool> cancel{false};
    serve::RequestDeadline deadline = serve::kNoDeadline;
    SearchJobRequest request;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  void worker_loop(int index);
  void run_job(Job& job, obs::Watchdog::Handle heartbeat);
  void finish(Job& job, JobState state, const std::string& error);
  // Appends one snapshot line (caller must NOT hold job.mu).
  void emit_event(Job& job) const;
  static std::string event_line(const SearchJobInfo& info);
  std::shared_ptr<Job> find(const std::string& id) const;
  void prune_finished_locked();

  serve::PredictionService& service_;
  const SearchJobManagerOptions options_;
  ScheduleMemory memory_;
  std::unique_ptr<serve::AdmissionController> admission_;

  mutable std::mutex mu_;  // jobs_ / queue_ / order_
  std::condition_variable queue_cv_;
  std::unordered_map<std::string, std::shared_ptr<Job>> jobs_;
  std::vector<std::string> order_;  // submission order, for list()/pruning
  std::deque<std::shared_ptr<Job>> queue_;
  std::vector<std::thread> pool_;
  bool stopping_ = false;
  std::uint64_t next_id_ = 1;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> done_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> reused_{0};
  std::atomic<std::size_t> running_{0};

  obs::Counter* jobs_done_ = nullptr;  // tcm_search_jobs_total{outcome=...}
  obs::Counter* jobs_failed_ = nullptr;
  obs::Counter* jobs_cancelled_ = nullptr;
  obs::Counter* jobs_reused_ = nullptr;
  obs::Gauge* gauge_running_ = nullptr;
  obs::Gauge* gauge_queued_ = nullptr;
  obs::Histogram* duration_ = nullptr;  // tcm_search_job_duration_seconds
};

}  // namespace tcm::jobs
