#include "jobs/schedule_memory.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "api/json.h"
#include "api/wire.h"
#include "support/log.h"
#include "support/retry.h"

namespace fs = std::filesystem;

namespace tcm::jobs {
namespace {

constexpr const char* kFormat = "tcm-schedule-memory";
constexpr int kFormatVersion = 1;

support::RetryOptions io_retry_options(const char* op) {
  support::RetryOptions options;
  options.max_attempts = 3;
  options.initial_backoff = std::chrono::milliseconds(5);
  options.max_backoff = std::chrono::milliseconds(100);
  options.on_retry = [op](int attempt, const std::string& why) {
    log_warn() << "ScheduleMemory: retrying " << op << " after attempt " << attempt << ": "
               << why;
  };
  return options;
}

void fsync_path(const fs::path& path, bool directory) {
  const int fd = ::open(path.c_str(), directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY);
  if (fd < 0) throw std::runtime_error("ScheduleMemory: cannot open for fsync: " + path.string());
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw std::runtime_error("ScheduleMemory: fsync failed on " + path.string());
}

// Same crash-safety discipline as the registry: stage, fsync, rename, fsync
// the directory. After a power cut the path holds the old or the new
// content, never a torn file.
void atomic_write_file(const fs::path& path, const std::string& content) {
  support::with_retries(io_retry_options("atomic write"), [&] {
    const fs::path tmp = path.string() + ".tmp";
    {
      std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
      if (!f) throw std::runtime_error("ScheduleMemory: cannot write " + tmp.string());
      f.write(content.data(), static_cast<std::streamsize>(content.size()));
      f.flush();
      if (!f) throw std::runtime_error("ScheduleMemory: short write to " + tmp.string());
    }
    fsync_path(tmp, /*directory=*/false);
    fs::rename(tmp, path);
    fsync_path(path.parent_path().empty() ? fs::path(".") : path.parent_path(),
               /*directory=*/true);
  });
}

// u64 fingerprints ride as decimal strings: api::Json keeps integers as
// int64, and the top bit of a fingerprint is meaningful.
std::string u64_str(std::uint64_t v) { return std::to_string(v); }

bool parse_u64(const api::Json* j, std::uint64_t& out) {
  if (j == nullptr || !j->is_string()) return false;
  const std::string& s = j->as_string();
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

}  // namespace

ScheduleMemory::ScheduleMemory(std::string path, obs::MetricsRegistry* metrics)
    : path_(std::move(path)) {
  if (metrics != nullptr) {
    hit_exact_ = &metrics->counter("tcm_schedule_memory_hits_total",
                                   "Schedule-memory lookups served", "kind=\"exact\"");
    hit_shape_ = &metrics->counter("tcm_schedule_memory_hits_total",
                                   "Schedule-memory lookups served", "kind=\"shape\"");
    miss_ = &metrics->counter("tcm_schedule_memory_misses_total",
                              "Schedule-memory lookups that ran a full search");
    size_gauge_ = &metrics->gauge("tcm_schedule_memory_entries",
                                  "Entries resident in the schedule memory");
  }
  load();
}

std::optional<MemoryEntry> ScheduleMemory::lookup(std::uint64_t program_fp) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(program_fp);
  if (it == entries_.end()) {
    ++misses_;
    if (miss_ != nullptr) miss_->inc();
    return std::nullopt;
  }
  ++it->second.hits;
  ++exact_hits_;
  if (hit_exact_ != nullptr) hit_exact_->inc();
  return it->second;
}

std::vector<transforms::Schedule> ScheduleMemory::warm_starts(std::uint64_t shape_fp,
                                                              std::uint64_t exclude_program_fp,
                                                              std::size_t max) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_shape_.find(shape_fp);
  if (it == by_shape_.end()) return {};
  std::vector<const MemoryEntry*> matches;
  for (std::uint64_t fp : it->second) {
    if (fp == exclude_program_fp) continue;
    auto e = entries_.find(fp);
    if (e != entries_.end()) matches.push_back(&e->second);
  }
  std::sort(matches.begin(), matches.end(), [](const MemoryEntry* a, const MemoryEntry* b) {
    return a->predicted_speedup > b->predicted_speedup;
  });
  if (matches.size() > max) matches.resize(max);
  std::vector<transforms::Schedule> out;
  out.reserve(matches.size());
  for (const MemoryEntry* m : matches) out.push_back(m->schedule);
  if (!out.empty()) {
    ++shape_hits_;
    if (hit_shape_ != nullptr) hit_shape_->inc();
  }
  return out;
}

void ScheduleMemory::store(MemoryEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(entry.program_fp);
  if (it != entries_.end()) {
    // Keep the better schedule; always keep the accumulated hit count.
    if (entry.predicted_speedup <= it->second.predicted_speedup) return;
    entry.hits = it->second.hits;
    it->second = std::move(entry);
  } else {
    by_shape_[entry.shape_fp].push_back(entry.program_fp);
    entries_.emplace(entry.program_fp, std::move(entry));
  }
  ++stores_;
  if (size_gauge_ != nullptr) size_gauge_->set(static_cast<double>(entries_.size()));
  persist_locked();
}

std::size_t ScheduleMemory::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

ScheduleMemoryStats ScheduleMemory::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ScheduleMemoryStats s;
  s.entries = entries_.size();
  s.exact_hits = exact_hits_;
  s.shape_hits = shape_hits_;
  s.misses = misses_;
  s.stores = stores_;
  return s;
}

void ScheduleMemory::load() {
  if (path_.empty() || !fs::exists(path_)) return;
  std::string text;
  try {
    text = support::with_retries(io_retry_options("read"), [&] {
      std::ifstream f(path_, std::ios::binary);
      if (!f) throw std::runtime_error("ScheduleMemory: cannot read " + path_);
      std::ostringstream out;
      out << f.rdbuf();
      return out.str();
    });
  } catch (const std::exception& e) {
    log_warn() << "ScheduleMemory: discarding unreadable file " << path_ << ": " << e.what();
    return;
  }
  api::Result<api::Json> parsed = api::Json::parse(text);
  if (!parsed.ok()) {
    log_warn() << "ScheduleMemory: discarding corrupt file " << path_ << ": "
               << parsed.status().message();
    return;
  }
  const api::Json& j = *parsed;
  const api::Json* format = j.find("format");
  const api::Json* version = j.find("version");
  const api::Json* entries = j.find("entries");
  if (format == nullptr || !format->is_string() || format->as_string() != kFormat ||
      version == nullptr || !version->is_int() || version->as_int() != kFormatVersion ||
      entries == nullptr || !entries->is_array()) {
    log_warn() << "ScheduleMemory: discarding file with unexpected header: " << path_;
    return;
  }
  std::size_t dropped = 0;
  for (const api::Json& je : entries->as_array()) {
    MemoryEntry e;
    const api::Json* schedule = je.find("schedule");
    const api::Json* speedup = je.find("speedup");
    if (!parse_u64(je.find("program_fp"), e.program_fp) ||
        !parse_u64(je.find("shape_fp"), e.shape_fp) || schedule == nullptr ||
        speedup == nullptr || !speedup->is_number()) {
      ++dropped;
      continue;
    }
    api::Result<transforms::Schedule> s = api::schedule_from_json(*schedule);
    if (!s.ok()) {
      ++dropped;
      continue;
    }
    e.schedule = std::move(*s);
    e.predicted_speedup = speedup->as_double();
    if (const api::Json* ev = je.find("evaluations"); ev != nullptr && ev->is_int())
      e.evaluations = ev->as_int();
    if (const api::Json* m = je.find("method"); m != nullptr && m->is_string())
      e.method = m->as_string();
    std::uint64_t hits = 0;
    if (parse_u64(je.find("hits"), hits)) e.hits = hits;
    by_shape_[e.shape_fp].push_back(e.program_fp);
    entries_.emplace(e.program_fp, std::move(e));
  }
  if (dropped > 0)
    log_warn() << "ScheduleMemory: dropped " << dropped << " malformed entries from " << path_;
  if (size_gauge_ != nullptr) size_gauge_->set(static_cast<double>(entries_.size()));
  log_info() << "ScheduleMemory: restored " << entries_.size() << " entries from " << path_;
}

void ScheduleMemory::persist_locked() {
  if (path_.empty()) return;
  api::Json doc = api::Json::object();
  doc.set("format", kFormat);
  doc.set("version", kFormatVersion);
  api::Json arr = api::Json::array();
  for (const auto& [fp, e] : entries_) {
    api::Json je = api::Json::object();
    je.set("program_fp", u64_str(e.program_fp));
    je.set("shape_fp", u64_str(e.shape_fp));
    je.set("speedup", e.predicted_speedup);
    je.set("evaluations", e.evaluations);
    je.set("method", e.method);
    je.set("hits", u64_str(e.hits));
    je.set("schedule", api::to_json(e.schedule));
    arr.push_back(std::move(je));
  }
  doc.set("entries", std::move(arr));
  try {
    atomic_write_file(path_, doc.dump());
  } catch (const std::exception& e) {
    // Losing persistence degrades the cache to in-memory; never fail a job
    // completion over it.
    log_warn() << "ScheduleMemory: persist failed for " << path_ << ": " << e.what();
  }
}

}  // namespace tcm::jobs
