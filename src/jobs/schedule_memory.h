// Persistent schedule-reuse memory (Meliora-style, arXiv 2006.09473).
//
// Autoscheduling is expensive (hundreds of model evaluations per program)
// and production workloads are repetitive: the same kernels come back
// compile after compile. The memory is a fingerprint-keyed map from program
// to the best schedule search ever found for it —
//
//   exact hit   fingerprint(program) matches: the remembered schedule is
//               returned instantly (job born DONE, reused=true); no search.
//   shape hit   shape_fingerprint(program) matches a different program:
//               same loop structure, different arithmetic. The remembered
//               schedule is legal for this program too, so it seeds the
//               beam (warm start) — search still runs but starts near a
//               known-good region.
//   miss        full search.
//
// Durability follows the registry's fsync+rename discipline: every store
// rewrites the whole file (entries stay small and store rate is one per
// completed job) via stage → fsync → rename → fsync(dir) under bounded
// retries. A corrupt file is discarded with a WARN at load — losing the
// cache is benign, refusing to serve is not. Fingerprints are serialized as
// decimal strings because the JSON layer keeps integers in int64.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "transforms/schedule.h"

namespace tcm::jobs {

struct MemoryEntry {
  std::uint64_t program_fp = 0;
  std::uint64_t shape_fp = 0;
  transforms::Schedule schedule;
  double predicted_speedup = 0;
  std::int64_t evaluations = 0;  // evaluations the original search spent
  std::string method;            // "beam" | "mcts"
  std::uint64_t hits = 0;        // times served as an exact hit
};

struct ScheduleMemoryStats {
  std::size_t entries = 0;
  std::uint64_t exact_hits = 0;
  std::uint64_t shape_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
};

class ScheduleMemory {
 public:
  // Empty path = in-memory only (no persistence). `metrics` may be null;
  // otherwise hit/miss/size instruments are registered get-or-create.
  explicit ScheduleMemory(std::string path, obs::MetricsRegistry* metrics = nullptr);

  // Exact-fingerprint lookup; bumps the entry's hit count on success.
  std::optional<MemoryEntry> lookup(std::uint64_t program_fp);

  // Remembered schedules of *other* programs with this loop shape, best
  // first, capped at `max` — the beam warm-start set.
  std::vector<transforms::Schedule> warm_starts(std::uint64_t shape_fp,
                                                std::uint64_t exclude_program_fp,
                                                std::size_t max = 4);

  // Upsert: replaces an existing entry only when the new speedup is better.
  // Persists (when configured) before returning.
  void store(MemoryEntry entry);

  std::size_t size() const;
  ScheduleMemoryStats stats() const;
  const std::string& path() const { return path_; }

 private:
  void load();            // once, from the constructor
  void persist_locked();  // requires mu_ held

  const std::string path_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, MemoryEntry> entries_;  // by program_fp
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> by_shape_;
  std::uint64_t exact_hits_ = 0;
  std::uint64_t shape_hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t stores_ = 0;
  obs::Counter* hit_exact_ = nullptr;
  obs::Counter* hit_shape_ = nullptr;
  obs::Counter* miss_ = nullptr;
  obs::Gauge* size_gauge_ = nullptr;
};

}  // namespace tcm::jobs
