#include "serve/feature_cache.h"

namespace tcm::serve {

FeatureCache::FeatureCache(std::size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const model::FeaturizedProgram> FeatureCache::get(const PairKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // move to front
  return it->second->feats;
}

std::shared_ptr<const model::FeaturizedProgram> FeatureCache::put(
    const PairKey& key, std::shared_ptr<const model::FeaturizedProgram> feats) {
  if (capacity_ == 0) return feats;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->feats;
  }
  lru_.push_front(Entry{key, std::move(feats)});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  return lru_.front().feats;
}

std::size_t FeatureCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::uint64_t FeatureCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t FeatureCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

void FeatureCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

}  // namespace tcm::serve
