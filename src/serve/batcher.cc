#include "serve/batcher.h"

#include <stdexcept>

namespace tcm::serve {

StructureBatcher::StructureBatcher(int max_batch, std::chrono::microseconds max_latency)
    : max_batch_(max_batch), max_latency_(max_latency) {
  if (max_batch <= 0) throw std::invalid_argument("StructureBatcher: max_batch must be positive");
}

void StructureBatcher::enqueue(PendingRequest req) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) throw std::runtime_error("StructureBatcher: enqueue after close");
    req.sequence = next_sequence_++;
    // Linear scan over buckets: the number of distinct structures in flight
    // is small (one per program shape being searched), and same_structure is
    // a cheap size check in the common mismatch case.
    Bucket* bucket = nullptr;
    for (Bucket& b : buckets_) {
      if (!b.requests.empty() && b.requests.front().feats->same_structure(*req.feats)) {
        bucket = &b;
        break;
      }
    }
    if (!bucket) {
      // Reuse a drained bucket before growing the vector.
      for (Bucket& b : buckets_) {
        if (b.requests.empty()) {
          bucket = &b;
          break;
        }
      }
      if (!bucket) bucket = &buckets_.emplace_back();
    }
    bucket->requests.push_back(std::move(req));
    ++pending_;
  }
  cv_.notify_one();
}

void StructureBatcher::flush() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    flushed_up_to_ = next_sequence_ - 1;
  }
  cv_.notify_all();
}

bool StructureBatcher::bucket_ready(const Bucket& b,
                                    std::chrono::steady_clock::time_point now) const {
  if (b.requests.empty()) return false;
  if (closed_) return true;
  if (static_cast<int>(b.requests.size()) >= max_batch_) return true;
  const PendingRequest& oldest = b.requests.front();
  if (oldest.sequence <= flushed_up_to_) return true;
  return now - oldest.enqueued >= max_latency_;
}

int StructureBatcher::find_ready(std::chrono::steady_clock::time_point now) const {
  int best = -1;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (!bucket_ready(buckets_[i], now)) continue;
    if (best < 0 || buckets_[i].requests.front().sequence <
                        buckets_[static_cast<std::size_t>(best)].requests.front().sequence)
      best = static_cast<int>(i);
  }
  return best;
}

std::vector<PendingRequest> StructureBatcher::next_batch() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    const int ready = find_ready(now);
    if (ready >= 0) {
      Bucket& b = buckets_[static_cast<std::size_t>(ready)];
      const std::size_t take = std::min(b.requests.size(), static_cast<std::size_t>(max_batch_));
      std::vector<PendingRequest> batch;
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(b.requests.front()));
        b.requests.pop_front();
      }
      pending_ -= take;
      // If the bucket still holds a ready remainder another worker can start
      // on it immediately.
      if (!b.requests.empty()) cv_.notify_one();
      return batch;
    }
    if (closed_) return {};  // closed and drained
    // Sleep until the earliest partial-flush deadline, or a notify.
    auto deadline = std::chrono::steady_clock::time_point::max();
    for (const Bucket& b : buckets_)
      if (!b.requests.empty())
        deadline = std::min(deadline, b.requests.front().enqueued + max_latency_);
    if (deadline == std::chrono::steady_clock::time_point::max())
      cv_.wait(lock);
    else
      cv_.wait_until(lock, deadline);
  }
}

void StructureBatcher::batch_done(std::size_t batch_size) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    completed_ += batch_size;
  }
  drain_cv_.notify_all();
}

void StructureBatcher::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  // Snapshot the enqueue high-water mark: completion is monotone and newer
  // requests only push completed_ further, so the wait is bounded by the
  // traffic enqueued before the call even while clients keep submitting.
  const std::uint64_t target = next_sequence_ - 1;
  drain_cv_.wait(lock, [this, target] { return completed_ >= target; });
}

void StructureBatcher::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t StructureBatcher::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

std::chrono::nanoseconds StructureBatcher::oldest_age() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto oldest = std::chrono::steady_clock::time_point::max();
  for (const Bucket& b : buckets_)
    if (!b.requests.empty()) oldest = std::min(oldest, b.requests.front().enqueued);
  if (oldest == std::chrono::steady_clock::time_point::max())
    return std::chrono::nanoseconds::zero();
  return std::chrono::steady_clock::now() - oldest;
}

void StructureBatcher::set_max_latency(std::chrono::microseconds max_latency) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (max_latency_ == max_latency) return;
    max_latency_ = max_latency;
  }
  // A shrink can make a waiting bucket ready immediately.
  cv_.notify_all();
}

std::chrono::microseconds StructureBatcher::max_latency() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_latency_;
}

}  // namespace tcm::serve
