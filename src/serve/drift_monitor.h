// Drift detection over live serving signals: the sensor of the
// continual-learning autopilot.
//
// A learned cost model only stays accurate while the schedule distribution
// it serves looks like the one it was trained on (LOOPer, MetaTune). The
// DriftMonitor watches a PredictionService from the outside — it is fed
// periodic `ServeStats` snapshots plus the service's window of recent
// predicted speedups — and reduces them to one decision: has the serving
// distribution drifted enough to warrant a retraining cycle *now*?
//
// Signals, each with its own threshold and minimum sample count:
//   - PSI: population stability index between a frozen reference window of
//     predicted speedups (captured when the monitor baselines) and the
//     current recent window, over equal-frequency bins of the reference.
//     The classic "significant shift" bar is 0.25.
//   - KS: two-sample Kolmogorov-Smirnov statistic (sup CDF gap) over the
//     same two windows — catches shape changes PSI's binning can smear.
//   - failure rate: featurization/forward failures per request since the
//     baseline; a traffic mix the featurization cannot express is drift
//     even when predictions look stable.
//   - shadow MAPE / shadow Spearman: disagreement of a standing shadow
//     candidate, when one is installed (0 samples otherwise — the signals
//     simply stay quiet).
//
// Triggering is edge- not level-based: `observe()` reports `drifted`
// whenever any signal is over its threshold, but `triggered` fires at most
// once per cooldown window (counted in observations), so a sustained shift
// produces one retraining cycle, not one per poll. After the cycle swaps
// the model the caller re-baselines (`rebaseline()`): the next healthy
// window becomes the new reference.
//
// The monitor is deliberately pure state + arithmetic (no threads, no
// service reference): the ContinualScheduler owns the polling loop, and
// tests can drive observe() with synthetic distributions. Not thread-safe;
// callers serialize access (the scheduler does).
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "serve/prediction_service.h"

namespace tcm::serve {

struct DriftMonitorOptions {
  // Both the reference and the recent window must hold at least this many
  // predictions before the distribution signals are evaluated; short windows
  // (including the degenerate < 2 samples) never fire.
  std::size_t min_samples = 64;

  int psi_bins = 10;             // equal-frequency bins of the reference
  double psi_threshold = 0.25;   // fire when PSI exceeds this; <= 0 disables
  double ks_threshold = 0.35;    // fire when KS exceeds this; <= 0 disables

  double max_failure_rate = 0.02;          // failures / (requests + failures)
  std::uint64_t min_failure_volume = 64;   // request volume before it can fire
  // The failure rate is computed over a sliding window of the last N
  // observe() deltas, not cumulatively since the baseline: detection
  // latency after a long healthy run stays bounded by the window.
  std::size_t failure_window_observations = 50;

  // Standing-shadow disagreement gates; evaluated only when a shadow has
  // scored at least min_shadow_requests. <= 0 disables either bound.
  double max_shadow_mape = 0.0;
  double min_shadow_spearman = 0.0;
  std::uint64_t min_shadow_requests = 64;

  // observe() calls suppressed after a trigger: one trigger per cooldown.
  int cooldown_observations = 25;
};

struct DriftSignal {
  double value = 0.0;
  double threshold = 0.0;
  bool fired = false;
  std::uint64_t samples = 0;  // observations backing the value (0 = no data)
};

struct DriftReport {
  DriftSignal psi;
  DriftSignal ks;
  DriftSignal failure_rate;
  DriftSignal shadow_mape;
  DriftSignal shadow_spearman;  // fires when *below* its threshold (a floor)
  std::size_t reference_size = 0;  // 0 until the baseline is frozen
  std::size_t window_size = 0;
  bool drifted = false;    // any signal over threshold right now
  bool triggered = false;  // drifted and not inside the cooldown window
  std::string reason;      // human-readable list of fired signals
};

class DriftMonitor {
 public:
  explicit DriftMonitor(DriftMonitorOptions options = {});

  // Ingests one snapshot. `recent_predictions` is the service's current
  // window of predicted speedups (PredictionService::recent_predictions());
  // the first observation with >= min_samples of them freezes the
  // distribution reference, and that observation skips the PSI/KS signals
  // (the window *is* the reference). The failure-rate baseline is captured
  // on the very first observation regardless, so failure and shadow
  // monitoring work even with the prediction ring disabled. Counter fields
  // of `stats` must be monotone between observations (they are totals
  // since service construction).
  DriftReport observe(const ServeStats& stats, std::span<const double> recent_predictions);

  // Forgets the reference window, the failure baseline and any cooldown:
  // call after a model swap so the new model's traffic becomes the next
  // reference instead of being compared against the old model's.
  void rebaseline();

  bool baselined() const { return !reference_.empty(); }
  const DriftMonitorOptions& options() const { return options_; }

  // Exposed for tests and benches.
  static double psi(std::span<const double> reference, std::span<const double> current,
                    int bins);
  static double ks_statistic(std::span<const double> reference,
                             std::span<const double> current);

 private:
  DriftMonitorOptions options_;
  std::vector<double> reference_;      // frozen at baseline time
  std::uint64_t base_requests_ = 0;    // counter snapshot of the previous observe
  std::uint64_t base_failures_ = 0;
  bool have_failure_base_ = false;
  // Sliding window of per-observe (requests, failures) deltas.
  std::deque<std::pair<std::uint64_t, std::uint64_t>> failure_deltas_;
  std::uint64_t window_requests_ = 0;  // running sums over failure_deltas_
  std::uint64_t window_failures_ = 0;
  int cooldown_remaining_ = 0;
};

}  // namespace tcm::serve
