// Typed serving-path errors that must keep their identity across the future
// boundary. The serving stack surfaces failures as exceptions on futures;
// the api façade maps exceptions to Status codes. Generic runtime_errors
// from this path are (correctly) reported as INTERNAL — but a shed request
// is not an internal failure, it is flow control the client must see as
// such: DEADLINE_EXCEEDED (504, give up or raise the budget) vs
// RESOURCE_EXHAUSTED (429, back off and retry). These subclasses carry that
// distinction; status_from_exception() checks them before the generic
// runtime_error mapping.
#pragma once

#include <stdexcept>
#include <string>

namespace tcm::serve {

// The request's deadline expired before a worker produced a prediction; it
// was shed at a stage boundary without burning inference on it.
class DeadlineExceededError : public std::runtime_error {
 public:
  explicit DeadlineExceededError(const std::string& what) : std::runtime_error(what) {}
};

// Admission control refused the request (queue depth/age over the shed
// watermark). Retryable after backoff — the HTTP layer adds Retry-After.
class AdmissionRejectedError : public std::runtime_error {
 public:
  explicit AdmissionRejectedError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace tcm::serve
