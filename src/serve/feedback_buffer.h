// Measured-feedback buffer: a uniform sample of what the service actually
// served, kept as raw (program, schedule) pairs so a continual-learning
// cycle can re-execute them on the simulator and fine-tune on *measured*
// speedups instead of (only) fresh synthetic datagen draws — the data loop
// LOOPer and MetaTune close.
//
// The buffer sits on the PredictionService submit path (raw-pair entry
// point only; pre-featurized requests carry no program to re-execute).
// offer() first Bernoulli-samples the request stream — a lock-free
// atomic-ticket + hash draw, so rejected offers cost neither a mutex nor
// an IR copy on the serving hot path — then reservoir-samples the
// survivors into a bounded buffer: drain() therefore hands back a uniform
// sample of the sampled stream since the last drain, no matter how much
// traffic flowed. Thread-safe; the accept decision is deterministic in
// (seed, ticket index).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "ir/program.h"
#include "support/rng.h"
#include "transforms/schedule.h"

namespace tcm::serve {

struct ServedSample {
  ir::Program program;
  transforms::Schedule schedule;
};

struct FeedbackBufferOptions {
  std::size_t capacity = 1024;   // reservoir size handed to drain()
  double sample_fraction = 0.1;  // fraction of offered requests considered
  std::uint64_t seed = 7;
};

class FeedbackBuffer {
 public:
  explicit FeedbackBuffer(FeedbackBufferOptions options = {});

  // Called by the service for every raw-pair request. Cheap when the
  // Bernoulli draw rejects; otherwise copies the pair into the reservoir.
  void offer(const ir::Program& program, const transforms::Schedule& schedule);

  // Takes the reservoir (the stream restarts empty). Order is arbitrary.
  std::vector<ServedSample> drain();

  // Copies the current reservoir without consuming it: the persistence hook
  // (api::Service serializes the reservoir on quiesce/shutdown). Samples a
  // cycle already drained are gone from the reservoir, so a snapshot taken
  // afterwards can never persist — and a restart can never double-count —
  // them.
  std::vector<ServedSample> snapshot() const;

  // Seeds the reservoir with samples recovered from a previous process
  // (api::Service restores a persisted snapshot at startup). Restored
  // samples count as sampled stream entries so subsequent reservoir
  // replacement stays (approximately) uniform; excess beyond the capacity
  // is dropped. Call before serving starts.
  void restore(std::vector<ServedSample> samples);

  std::size_t size() const;
  std::uint64_t offered() const;  // total offer() calls
  std::uint64_t sampled() const;  // offers that passed the Bernoulli draw

 private:
  const FeedbackBufferOptions options_;
  std::atomic<std::uint64_t> offered_{0};  // also the lock-free ticket counter
  mutable std::mutex mu_;
  Rng rng_;
  std::vector<ServedSample> reservoir_;
  std::uint64_t sampled_ = 0;        // total since construction
  std::uint64_t stream_count_ = 0;   // sampled offers since the last drain()
};

}  // namespace tcm::serve
