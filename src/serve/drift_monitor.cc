#include "serve/drift_monitor.h"

#include <algorithm>
#include <cmath>

namespace tcm::serve {
namespace {

// Smoothing floor for PSI bin fractions: empty bins would make the log
// explode; the floor caps any single bin's contribution instead.
constexpr double kPsiEpsilon = 1e-4;

}  // namespace

DriftMonitor::DriftMonitor(DriftMonitorOptions options) : options_(options) {}

double DriftMonitor::psi(std::span<const double> reference, std::span<const double> current,
                         int bins) {
  if (reference.size() < 2 || current.empty() || bins < 2) return 0.0;
  // Equal-frequency bin edges from the reference: edge k is the k/bins
  // quantile. Ties can collapse edges; collapsed bins contribute ~0 on the
  // reference side and are handled by the epsilon floor.
  std::vector<double> sorted_ref(reference.begin(), reference.end());
  std::sort(sorted_ref.begin(), sorted_ref.end());
  std::vector<double> edges;
  edges.reserve(static_cast<std::size_t>(bins) - 1);
  for (int k = 1; k < bins; ++k) {
    const std::size_t idx =
        std::min(sorted_ref.size() - 1, sorted_ref.size() * static_cast<std::size_t>(k) /
                                            static_cast<std::size_t>(bins));
    edges.push_back(sorted_ref[idx]);
  }
  const auto bin_of = [&](double x) {
    return static_cast<std::size_t>(
        std::upper_bound(edges.begin(), edges.end(), x) - edges.begin());
  };
  std::vector<double> p(static_cast<std::size_t>(bins), 0.0);
  std::vector<double> q(static_cast<std::size_t>(bins), 0.0);
  for (double x : reference) p[bin_of(x)] += 1.0 / static_cast<double>(reference.size());
  for (double x : current) q[bin_of(x)] += 1.0 / static_cast<double>(current.size());
  double psi = 0.0;
  for (int b = 0; b < bins; ++b) {
    const double pb = std::max(p[static_cast<std::size_t>(b)], kPsiEpsilon);
    const double qb = std::max(q[static_cast<std::size_t>(b)], kPsiEpsilon);
    psi += (qb - pb) * std::log(qb / pb);
  }
  return psi;
}

double DriftMonitor::ks_statistic(std::span<const double> reference,
                                  std::span<const double> current) {
  if (reference.empty() || current.empty()) return 0.0;
  std::vector<double> a(reference.begin(), reference.end());
  std::vector<double> b(current.begin(), current.end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double ks = 0.0;
  std::size_t i = 0, j = 0;
  // Consume every element equal to the current value from *both* sides
  // before evaluating the CDF gap: evaluating mid-tie would inflate KS by
  // up to the tie fraction (identical windows full of repeated predictions
  // — a cache-hot workload — must measure 0, not the tie mass).
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] == x) ++i;
    while (j < b.size() && b[j] == x) ++j;
    const double fa = static_cast<double>(i) / static_cast<double>(a.size());
    const double fb = static_cast<double>(j) / static_cast<double>(b.size());
    ks = std::max(ks, std::abs(fa - fb));
  }
  return ks;
}

void DriftMonitor::rebaseline() {
  reference_.clear();
  have_failure_base_ = false;
  base_requests_ = 0;
  base_failures_ = 0;
  failure_deltas_.clear();
  window_requests_ = 0;
  window_failures_ = 0;
  cooldown_remaining_ = 0;
}

DriftReport DriftMonitor::observe(const ServeStats& stats,
                                  std::span<const double> recent_predictions) {
  DriftReport report;
  report.window_size = recent_predictions.size();

  // The failure-rate baseline is independent of the prediction window: a
  // service with the prediction ring disabled (or too small to ever freeze
  // a reference) must still be monitorable for failures and shadow
  // disagreement. Captured on the very first observation.
  if (!have_failure_base_) {
    base_requests_ = stats.requests;
    base_failures_ = stats.failed_requests;
    have_failure_base_ = true;
  }

  // Freeze the distribution reference on the first observation with enough
  // predictions; the freezing observation skips the distribution signals —
  // the window *is* the reference.
  bool froze_reference = false;
  if (reference_.empty() &&
      recent_predictions.size() >= std::max<std::size_t>(options_.min_samples, 2)) {
    reference_.assign(recent_predictions.begin(), recent_predictions.end());
    froze_reference = true;
  }
  report.reference_size = reference_.size();

  // --- distribution shift over predicted speedups ---------------------------
  if (!reference_.empty() && !froze_reference &&
      recent_predictions.size() >= std::max<std::size_t>(options_.min_samples, 2)) {
    report.psi.value = psi(reference_, recent_predictions, options_.psi_bins);
    report.psi.threshold = options_.psi_threshold;
    report.psi.samples = recent_predictions.size();
    report.psi.fired = options_.psi_threshold > 0 && report.psi.value > options_.psi_threshold;

    report.ks.value = ks_statistic(reference_, recent_predictions);
    report.ks.threshold = options_.ks_threshold;
    report.ks.samples = recent_predictions.size();
    report.ks.fired = options_.ks_threshold > 0 && report.ks.value > options_.ks_threshold;
  }

  // --- failure rate over the sliding delta window ---------------------------
  // Each observe() contributes the counter delta since the previous one;
  // the rate is computed over the last failure_window_observations deltas,
  // so a long healthy run never dilutes a fresh failure burst.
  {
    const std::uint64_t dreq =
        stats.requests >= base_requests_ ? stats.requests - base_requests_ : 0;
    const std::uint64_t dfail =
        stats.failed_requests >= base_failures_ ? stats.failed_requests - base_failures_ : 0;
    base_requests_ = stats.requests;
    base_failures_ = stats.failed_requests;
    failure_deltas_.emplace_back(dreq, dfail);
    window_requests_ += dreq;
    window_failures_ += dfail;
    while (failure_deltas_.size() > std::max<std::size_t>(options_.failure_window_observations, 1)) {
      window_requests_ -= failure_deltas_.front().first;
      window_failures_ -= failure_deltas_.front().second;
      failure_deltas_.pop_front();
    }
    const std::uint64_t volume = window_requests_ + window_failures_;
    report.failure_rate.samples = volume;
    report.failure_rate.threshold = options_.max_failure_rate;
    if (volume >= std::max<std::uint64_t>(options_.min_failure_volume, 1)) {
      report.failure_rate.value =
          static_cast<double>(window_failures_) / static_cast<double>(volume);
      report.failure_rate.fired = options_.max_failure_rate > 0 &&
                                  report.failure_rate.value > options_.max_failure_rate;
    }
  }

  // --- standing-shadow disagreement -----------------------------------------
  if (stats.shadow_requests >= std::max<std::uint64_t>(options_.min_shadow_requests, 2)) {
    report.shadow_mape.value = stats.shadow_mape;
    report.shadow_mape.threshold = options_.max_shadow_mape;
    report.shadow_mape.samples = stats.shadow_requests;
    report.shadow_mape.fired =
        options_.max_shadow_mape > 0 && stats.shadow_mape > options_.max_shadow_mape;

    report.shadow_spearman.value = stats.shadow_spearman;
    report.shadow_spearman.threshold = options_.min_shadow_spearman;
    report.shadow_spearman.samples = stats.shadow_requests;
    report.shadow_spearman.fired = options_.min_shadow_spearman > 0 &&
                                   stats.shadow_spearman < options_.min_shadow_spearman;
  }

  const auto note = [&report](const char* name, const DriftSignal& s) {
    if (!s.fired) return;
    if (!report.reason.empty()) report.reason += ", ";
    report.reason += name;
    report.reason += '=';
    report.reason += std::to_string(s.value);
  };
  note("psi", report.psi);
  note("ks", report.ks);
  note("failure_rate", report.failure_rate);
  note("shadow_mape", report.shadow_mape);
  note("shadow_spearman", report.shadow_spearman);
  report.drifted = !report.reason.empty();

  // Edge-trigger with cooldown: a trigger suppresses the next
  // cooldown_observations observe() calls, drifted or not.
  if (cooldown_remaining_ > 0) {
    --cooldown_remaining_;
  } else if (report.drifted) {
    report.triggered = true;
    cooldown_remaining_ = std::max(options_.cooldown_observations, 0);
  }
  return report;
}

}  // namespace tcm::serve
