// Structural fingerprints for programs and schedules.
//
// The serving subsystem caches featurizations keyed by the
// (program, schedule) pair; hauling full deep-equality keys through a hash
// map would be as expensive as featurizing, so both sides are folded into
// 64-bit fingerprints instead. The hash walks every semantically relevant
// field (buffer shapes, loop tree, access matrices, expression trees,
// annotations, transformation specs), so two keys collide only if the
// featurizations agree or with ~2^-64 probability per pair.
#pragma once

#include <cstdint>

#include "ir/program.h"
#include "transforms/schedule.h"

namespace tcm::serve {

// FNV-1a style streaming hasher over 64-bit words.
class Fingerprinter {
 public:
  void mix(std::uint64_t v);
  void mix_int(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  void mix_string(const std::string& s);
  std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = 0xcbf29ce484222325ULL;
};

// Fingerprint of a program's full semantic content (buffers, loop tree,
// computations, annotations). Program name is excluded: two structurally
// identical programs featurize identically regardless of their labels.
std::uint64_t fingerprint(const ir::Program& p);

// Fingerprint of a schedule's transformation commands.
std::uint64_t fingerprint(const transforms::Schedule& s);

// Coarse *shape* fingerprint: loop tree, extents, computation placement and
// reduction flags only — access matrices, expression contents and buffer
// dims are excluded. Two programs with equal shape fingerprints admit the
// same schedules (legality depends on the loop structure), so a schedule
// remembered for one is a sound warm start for the other even when the
// arithmetic differs.
std::uint64_t shape_fingerprint(const ir::Program& p);

// Combined cache key for a (program, schedule) pair.
struct PairKey {
  std::uint64_t program = 0;
  std::uint64_t schedule = 0;

  bool operator==(const PairKey&) const = default;
};

struct PairKeyHash {
  std::size_t operator()(const PairKey& k) const {
    // Mix the two halves (splitmix64 finalizer) so the pair hashes well even
    // when many schedules share one program.
    std::uint64_t x = k.program ^ (k.schedule * 0x9e3779b97f4a7c15ULL);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

}  // namespace tcm::serve
