// Bounded LRU cache of featurized (program, schedule) pairs.
//
// Featurization (transform application + computation-vector assembly) is the
// per-request cost the cost model was built to avoid paying repeatedly:
// search revisits schedules across beam levels and MCTS rollouts, and a
// serving deployment sees the same (program, schedule) pairs from many
// clients. Entries are shared_ptr-to-const so a hit can be handed to the
// batcher while an eviction races with it.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "model/featurize.h"
#include "serve/fingerprint.h"

namespace tcm::serve {

class FeatureCache {
 public:
  // `capacity` = max resident entries; 0 disables caching entirely.
  explicit FeatureCache(std::size_t capacity);

  // Returns the cached featurization or nullptr on miss.
  std::shared_ptr<const model::FeaturizedProgram> get(const PairKey& key);

  // Inserts (or refreshes) an entry, evicting the least recently used ones
  // beyond capacity. Returns the resident entry (inserted or pre-existing).
  std::shared_ptr<const model::FeaturizedProgram> put(
      const PairKey& key, std::shared_ptr<const model::FeaturizedProgram> feats);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const;
  std::uint64_t misses() const;

  void clear();

 private:
  struct Entry {
    PairKey key;
    std::shared_ptr<const model::FeaturizedProgram> feats;
  };

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<PairKey, std::list<Entry>::iterator, PairKeyHash> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace tcm::serve
