#include "serve/fingerprint.h"

namespace tcm::serve {
namespace {

void mix_access_matrix(Fingerprinter& h, const ir::AccessMatrix& m) {
  h.mix_int(m.rank());
  h.mix_int(m.depth());
  for (int r = 0; r < m.rank(); ++r)
    for (int c = 0; c <= m.depth(); ++c) h.mix_int(m.at(r, c));
}

void mix_buffer_access(Fingerprinter& h, const ir::BufferAccess& a) {
  h.mix_int(a.buffer_id);
  mix_access_matrix(h, a.matrix);
}

void mix_expr(Fingerprinter& h, const ir::Expr& e) {
  if (!e.valid()) {
    h.mix(0x6e756c6cULL);  // "null"
    return;
  }
  h.mix_int(static_cast<std::int64_t>(e.kind()));
  switch (e.kind()) {
    case ir::ExprKind::Constant: {
      // Bit pattern, so -0.0 vs 0.0 and NaN payloads stay distinct inputs.
      double v = e.constant_value();
      std::uint64_t bits;
      static_assert(sizeof(bits) == sizeof(v));
      __builtin_memcpy(&bits, &v, sizeof(bits));
      h.mix(bits);
      break;
    }
    case ir::ExprKind::Load:
      mix_buffer_access(h, e.access());
      break;
    default:
      mix_expr(h, e.lhs());
      mix_expr(h, e.rhs());
      break;
  }
}

}  // namespace

void Fingerprinter::mix(std::uint64_t v) {
  // FNV-1a over the 8 bytes, then an avalanche step: plain FNV of aligned
  // words leaves low-bit patterns that hurt unordered_map bucketing.
  for (int i = 0; i < 8; ++i) {
    state_ ^= (v >> (8 * i)) & 0xff;
    state_ *= 0x100000001b3ULL;
  }
}

void Fingerprinter::mix_string(const std::string& s) {
  mix(s.size());
  for (char c : s) {
    state_ ^= static_cast<unsigned char>(c);
    state_ *= 0x100000001b3ULL;
  }
}

std::uint64_t fingerprint(const ir::Program& p) {
  Fingerprinter h;
  h.mix(p.buffers.size());
  for (const ir::Buffer& b : p.buffers) {
    h.mix_int(b.id);
    h.mix(b.dims.size());
    for (std::int64_t d : b.dims) h.mix_int(d);
    h.mix(b.is_input ? 1 : 0);
  }
  h.mix(p.loops.size());
  for (const ir::LoopNode& l : p.loops) {
    h.mix_int(l.id);
    h.mix_int(l.iter.extent);
    h.mix_int(l.parent);
    h.mix(l.body.size());
    for (const ir::BodyItem& item : l.body) {
      h.mix_int(static_cast<std::int64_t>(item.kind));
      h.mix_int(item.index);
    }
    h.mix_int(l.tail_of);
    h.mix_int(l.orig_extent);
    h.mix_int(l.skew_of);
    h.mix_int(l.skew_factor);
    h.mix(l.skew_is_sum ? 1 : 0);
    h.mix(l.parallel ? 1 : 0);
    h.mix_int(l.vector_width);
    h.mix_int(l.unroll);
    h.mix(l.tag_interchanged ? 1 : 0);
    h.mix(l.tag_tiled ? 1 : 0);
    h.mix_int(l.tag_tile_factor);
    h.mix(l.tag_fused ? 1 : 0);
    h.mix(l.tag_skewed ? 1 : 0);
    h.mix_int(l.tag_skew_factor);
    h.mix(l.tag_unimodular ? 1 : 0);
  }
  h.mix(p.comps.size());
  for (const ir::Computation& c : p.comps) {
    h.mix_int(c.id);
    mix_buffer_access(h, c.store);
    mix_expr(h, c.rhs);
    h.mix(c.is_reduction ? 1 : 0);
    h.mix_int(c.loop_id);
  }
  h.mix(p.roots.size());
  for (int r : p.roots) h.mix_int(r);
  return h.digest();
}

std::uint64_t shape_fingerprint(const ir::Program& p) {
  Fingerprinter h;
  h.mix(p.loops.size());
  for (const ir::LoopNode& l : p.loops) {
    h.mix_int(l.id);
    h.mix_int(l.iter.extent);
    h.mix_int(l.parent);
    h.mix(l.body.size());
    for (const ir::BodyItem& item : l.body) {
      h.mix_int(static_cast<std::int64_t>(item.kind));
      h.mix_int(item.index);
    }
  }
  h.mix(p.comps.size());
  for (const ir::Computation& c : p.comps) {
    h.mix_int(c.id);
    h.mix_int(c.loop_id);
    h.mix(c.is_reduction ? 1 : 0);
  }
  h.mix(p.roots.size());
  for (int r : p.roots) h.mix_int(r);
  return h.digest();
}

std::uint64_t fingerprint(const transforms::Schedule& s) {
  Fingerprinter h;
  h.mix(s.fusions.size());
  for (const auto& f : s.fusions) {
    h.mix_int(f.comp_a);
    h.mix_int(f.comp_b);
    h.mix_int(f.depth);
  }
  h.mix(s.skews.size());
  for (const auto& sk : s.skews) {
    h.mix_int(sk.comp);
    h.mix_int(sk.level_a);
    h.mix_int(sk.factor);
  }
  h.mix(s.unimodulars.size());
  for (const auto& u : s.unimodulars) {
    h.mix_int(u.comp);
    h.mix_int(u.level);
    h.mix(u.coeffs.size());
    for (std::int64_t c : u.coeffs) h.mix_int(c);
  }
  h.mix(s.interchanges.size());
  for (const auto& i : s.interchanges) {
    h.mix_int(i.comp);
    h.mix_int(i.level_a);
    h.mix_int(i.level_b);
  }
  h.mix(s.tiles.size());
  for (const auto& t : s.tiles) {
    h.mix_int(t.comp);
    h.mix_int(t.level);
    h.mix(t.sizes.size());
    for (std::int64_t sz : t.sizes) h.mix_int(sz);
  }
  h.mix(s.unrolls.size());
  for (const auto& u : s.unrolls) {
    h.mix_int(u.comp);
    h.mix_int(u.factor);
  }
  h.mix(s.parallels.size());
  for (const auto& pl : s.parallels) {
    h.mix_int(pl.comp);
    h.mix_int(pl.level);
  }
  h.mix(s.vectorizes.size());
  for (const auto& v : s.vectorizes) {
    h.mix_int(v.comp);
    h.mix_int(v.width);
  }
  return h.digest();
}

}  // namespace tcm::serve
