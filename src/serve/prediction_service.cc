#include "serve/prediction_service.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/event_log.h"
#include "obs/trace.h"
#include "serve/errors.h"
#include "support/failpoint.h"
#include "support/stats.h"

namespace tcm::serve {
namespace {

// Nanoseconds-since-epoch of a steady_clock time_point, on the same clock
// Tracer::now_ns uses, so spans built from request timestamps line up with
// spans built from fresh clock reads.
std::uint64_t to_trace_ns(std::chrono::steady_clock::time_point tp) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(tp.time_since_epoch()).count());
}

// Wraps a caller-owned predictor in a non-owning shared_ptr (aliasing
// constructor with an empty control block target): swap/pin semantics work
// uniformly, lifetime stays with the caller.
std::shared_ptr<model::SpeedupPredictor> non_owning(model::SpeedupPredictor& predictor) {
  return std::shared_ptr<model::SpeedupPredictor>(std::shared_ptr<void>(), &predictor);
}

std::future<Prediction> failed_future(std::exception_ptr error) {
  std::promise<Prediction> failed;
  failed.set_exception(std::move(error));
  return failed.get_future();
}

}  // namespace

PredictionService::PredictionService(std::shared_ptr<model::SpeedupPredictor> predictor,
                                     int version, ServeOptions options)
    : options_(options),
      cache_(options.cache_capacity),
      batcher_(options.max_batch, options.max_queue_latency) {
  if (!predictor) throw std::invalid_argument("PredictionService: null predictor");
  if (options.num_threads < 1)
    throw std::invalid_argument("PredictionService: need at least one worker thread");
  model_ = std::make_shared<const ModelSnapshot>(ModelSnapshot{std::move(predictor), version});
  metrics_ = options.metrics ? options.metrics : std::make_shared<obs::MetricsRegistry>();
  // 1us..~16s log-spaced: covers cache-hit submits through pathological
  // stalls at ~2x resolution per decade step.
  const std::vector<double> latency_buckets = obs::exponential_buckets(1e-6, 2.0, 25);
  const auto stage = [&](const char* name) {
    return &metrics_->histogram("tcm_stage_duration_seconds",
                                "Per-stage serving latency in seconds.",
                                std::string("stage=\"") + name + '"', latency_buckets);
  };
  e2e_latency_ = &metrics_->histogram(
      "tcm_serve_latency_seconds",
      "End-to-end prediction latency (enqueue to fulfilled promise) in seconds.", "",
      latency_buckets);
  stage_queue_wait_ = stage("queue_wait");
  stage_featurize_ = stage("featurize");
  stage_batch_assemble_ = stage("batch_assemble");
  stage_infer_ = stage("infer");
  stage_shadow_ = stage("shadow");
  batch_size_ = &metrics_->histogram("tcm_serve_batch_size",
                                     "Requests fused per inference batch.", "",
                                     obs::exponential_buckets(1.0, 2.0, 9));
  queue_depth_ = &metrics_->gauge("tcm_serve_queue_depth",
                                  "Requests waiting in the batching queue.");
  cache_hit_ratio_ = &metrics_->gauge(
      "tcm_serve_cache_hit_ratio", "Feature-cache hit ratio since start (0 before any lookup).");
  AdmissionOptions admission = options.admission;
  admission.queue_cap = options.admission_queue_cap;
  admission_ = std::make_unique<AdmissionController>(admission, *metrics_);
  worker_states_.reserve(static_cast<std::size_t>(options.num_threads));
  for (int i = 0; i < options.num_threads; ++i)
    worker_states_.push_back(std::make_unique<WorkerState>());
  workers_.reserve(static_cast<std::size_t>(options.num_threads));
  for (int i = 0; i < options.num_threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

PredictionService::PredictionService(model::SpeedupPredictor& predictor, ServeOptions options)
    : PredictionService(non_owning(predictor), /*version=*/0, options) {}

PredictionService::~PredictionService() {
  batcher_.close();
  for (std::thread& t : workers_) t.join();
}

void PredictionService::swap_model(std::shared_ptr<model::SpeedupPredictor> next, int version) {
  if (!next) throw std::invalid_argument("PredictionService: cannot swap in a null predictor");
  auto snapshot = std::make_shared<const ModelSnapshot>(ModelSnapshot{std::move(next), version});
  int previous;
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    previous = model_->version;
    model_ = std::move(snapshot);  // old snapshot lives on in in-flight batches
  }
  obs::EventLog::instance().emit(
      "hot_swap", "info", "from=v" + std::to_string(previous) + " to=v" + std::to_string(version),
      obs::current_trace_id());
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++model_swaps_;
}

int PredictionService::active_version() const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return model_->version;
}

void PredictionService::set_shadow(std::shared_ptr<model::SpeedupPredictor> candidate,
                                   int version, double sample_fraction) {
  if (!candidate) throw std::invalid_argument("PredictionService: null shadow candidate");
  auto state = std::make_shared<const ShadowState>(ShadowState{
      std::move(candidate), version, std::clamp(sample_fraction, 0.0, 1.0)});
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    shadow_ = std::move(state);
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  shadow_requests_ = 0;
  shadow_failures_ = 0;
  shadow_ape_sum_ = 0;
  shadow_pairs_.clear();
  shadow_pair_next_ = 0;
}

void PredictionService::clear_shadow() {
  std::lock_guard<std::mutex> lock(model_mu_);
  shadow_ = nullptr;
}

void PredictionService::set_feedback(std::shared_ptr<FeedbackBuffer> feedback) {
  std::lock_guard<std::mutex> lock(feedback_mu_);
  feedback_ = std::move(feedback);
  has_feedback_.store(feedback_ != nullptr, std::memory_order_release);
}

std::vector<double> PredictionService::recent_predictions() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return recent_preds_;
}

void PredictionService::clear_recent_predictions() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  recent_preds_.clear();
  recent_pred_next_ = 0;
}

std::future<Prediction> PredictionService::submit(const ir::Program& program,
                                                  const transforms::Schedule& schedule,
                                                  RequestDeadline deadline) {
  return submit_with_key({fingerprint(program), fingerprint(schedule)}, program, schedule,
                         deadline);
}

std::optional<std::future<Prediction>> PredictionService::preflight(RequestDeadline& deadline) {
  const bool has_default = options_.default_deadline.count() > 0;
  // Fast path: nothing configured — no clock read, no lock.
  if (!has_default && deadline == kNoDeadline && !admission_->enabled()) return std::nullopt;
  const auto now = std::chrono::steady_clock::now();
  if (has_default) deadline = std::min(deadline, now + options_.default_deadline);
  if (deadline != kNoDeadline && now >= deadline) {
    admission_->count_shed(ShedReason::kDeadlineSubmit);
    return failed_future(std::make_exception_ptr(
        DeadlineExceededError("PredictionService: deadline expired before submit")));
  }
  if (admission_->enabled()) {
    const AdmissionController::Decision decision =
        admission_->admit(batcher_.pending(), batcher_.oldest_age());
    if (!decision.admit)
      return failed_future(std::make_exception_ptr(AdmissionRejectedError(
          decision.reason == ShedReason::kQueueAge
              ? "PredictionService: overloaded, head of queue is already stale"
              : "PredictionService: overloaded, serving queue is full")));
  }
  return std::nullopt;
}

std::future<Prediction> PredictionService::submit_with_key(const PairKey& key,
                                                           const ir::Program& program,
                                                           const transforms::Schedule& schedule,
                                                           RequestDeadline deadline) {
  // Shed before featurization: an expired or rejected request must not cost
  // an IR walk, let alone a worker.
  if (auto shed = preflight(deadline)) return std::move(*shed);

  // Offer the raw pair to the measured-feedback buffer before featurization:
  // the buffer samples what clients *asked for*, featurizable or not. The
  // disabled (default) path is one relaxed atomic load; when enabled, the
  // buffer pointer has its own mutex so this never touches model_mu_,
  // which batch pinning and hot-swap share.
  if (has_feedback_.load(std::memory_order_acquire)) {
    std::shared_ptr<FeedbackBuffer> feedback;
    {
      std::lock_guard<std::mutex> lock(feedback_mu_);
      feedback = feedback_;
    }
    if (feedback) feedback->offer(program, schedule);
  }

  std::shared_ptr<const model::FeaturizedProgram> feats = cache_.get(key);
  if (!feats) {
    const std::uint64_t trace_id = obs::current_trace_id();
    if (trace_id != 0)
      obs::Tracer::instance().record("serve.cache_miss", trace_id, obs::Tracer::now_ns(),
                                     obs::Tracer::now_ns());
    const auto featurize_start = std::chrono::steady_clock::now();
    std::string error;
    auto fresh = model::featurize(program, schedule, options_.features, &error);
    stage_featurize_->observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - featurize_start).count());
    if (trace_id != 0)
      obs::Tracer::instance().record("serve.featurize", trace_id, to_trace_ns(featurize_start),
                                     obs::Tracer::now_ns());
    if (!fresh) {
      std::promise<Prediction> failed;
      failed.set_exception(std::make_exception_ptr(
          std::invalid_argument("PredictionService: cannot featurize candidate: " + error)));
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++failed_requests_;
      return failed.get_future();
    }
    feats = cache_.put(key, std::make_shared<const model::FeaturizedProgram>(std::move(*fresh)));
  } else if (const std::uint64_t trace_id = obs::current_trace_id(); trace_id != 0) {
    const std::uint64_t now = obs::Tracer::now_ns();
    obs::Tracer::instance().record("serve.cache_hit", trace_id, now, now);
  }
  // preflight already ran (before featurization) — enqueue directly.
  return enqueue_request(std::move(feats), deadline);
}

std::future<Prediction> PredictionService::submit(
    std::shared_ptr<const model::FeaturizedProgram> feats, RequestDeadline deadline) {
  if (!feats) throw std::invalid_argument("PredictionService: null featurization");
  if (auto shed = preflight(deadline)) return std::move(*shed);
  return enqueue_request(std::move(feats), deadline);
}

std::future<Prediction> PredictionService::enqueue_request(
    std::shared_ptr<const model::FeaturizedProgram> feats, RequestDeadline deadline) {
  PendingRequest req;
  req.feats = std::move(feats);
  req.enqueued = std::chrono::steady_clock::now();
  req.deadline = deadline;
  // Carry the caller's trace context (0 when unsampled) across the thread
  // hop to the batch worker.
  req.trace_id = obs::current_trace_id();
  std::future<Prediction> result = req.result.get_future();
  batcher_.enqueue(std::move(req));
  return result;
}

std::vector<double> PredictionService::predict_many(
    const ir::Program& program, const std::vector<transforms::Schedule>& candidates,
    RequestDeadline deadline) {
  std::vector<std::future<Prediction>> futures;
  futures.reserve(candidates.size());
  // One program IR walk for the whole burst; only schedules vary per key.
  const std::uint64_t program_fp = fingerprint(program);
  for (const transforms::Schedule& s : candidates)
    futures.push_back(submit_with_key({program_fp, fingerprint(s)}, program, s, deadline));
  flush();
  std::vector<double> out;
  out.reserve(candidates.size());
  for (std::future<Prediction>& f : futures) out.push_back(f.get().speedup);
  return out;
}

void PredictionService::worker_loop(int worker_index) {
  WorkerState& ws = *worker_states_[static_cast<std::size_t>(worker_index)];
  obs::Watchdog::Handle heartbeat;
  if (options_.watchdog)
    heartbeat = options_.watchdog->register_thread(
        "batch_worker_" + std::to_string(worker_index), options_.worker_stall_after,
        /*critical=*/true);
  for (;;) {
    std::vector<PendingRequest> batch = batcher_.next_batch();  // idle while blocked
    if (batch.empty()) break;  // closed and drained
    if (options_.watchdog) options_.watchdog->set_busy(heartbeat, "run_batch");
    // Chaos site: a delay action wedges this worker with a batch popped, so
    // the queue backs up and admission control engages. Error actions are
    // swallowed — a stall site must never fail live traffic.
    try {
      TCM_FAILPOINT("batcher.stall");
    } catch (...) {
    }
    const std::size_t batch_size = batch.size();
    run_batch(std::move(batch), ws);
    batcher_.batch_done(batch_size);
    // Point-in-time serving gauges, refreshed once per batch (two relaxed
    // stores; far below the forward-pass cost).
    queue_depth_->set(static_cast<double>(batcher_.pending()));
    const std::uint64_t hits = cache_.hits(), misses = cache_.misses();
    if (hits + misses > 0)
      cache_hit_ratio_->set(static_cast<double>(hits) / static_cast<double>(hits + misses));
    // Step the degradation ladder back down as the queue drains: shed
    // arrivals never reach admit(), so recovery must be worker-driven.
    refresh_degradation();
    if (options_.watchdog) options_.watchdog->set_idle(heartbeat);
  }
  if (options_.watchdog) options_.watchdog->unregister(heartbeat);
}

void PredictionService::score_batch(model::SpeedupPredictor& predictor,
                                    const model::Batch& model_batch, std::uint64_t batch_index,
                                    WorkerState& ws) {
  const int b = model_batch.batch_size();
  ws.preds.clear();
  if (options_.use_fused_inference) {
    // Tape-free fast path: no autograd graph, scratch from the worker-local
    // arena (zero heap allocation once warm). infer_batch resets the arena.
    const nn::Tensor& pred = predictor.infer_batch(model_batch, ws.arena);
    if (pred.rows() != b)
      throw std::logic_error("PredictionService: predictor returned wrong batch size");
    for (int row = 0; row < b; ++row)
      ws.preds.push_back(static_cast<double>(pred.at(row, 0)));
  } else {
    // Per-call Rng: inference (training=false) draws nothing from it, but the
    // API requires one and sharing a stream across workers would race.
    Rng rng = Rng(options_.seed).split(batch_index);
    const nn::Variable pred = predictor.forward_batch(model_batch, /*training=*/false, rng);
    if (pred.rows() != b)
      throw std::logic_error("PredictionService: predictor returned wrong batch size");
    for (int row = 0; row < b; ++row)
      ws.preds.push_back(static_cast<double>(pred.value().at(row, 0)));
  }
}

void PredictionService::refresh_degradation() {
  if (!admission_->enabled()) return;
  const int level = admission_->update(batcher_.pending());
  if (level == applied_level_.load(std::memory_order_relaxed)) return;
  applied_level_.store(level, std::memory_order_relaxed);
  // Level >= 2: flush partial batches four times sooner — worse occupancy,
  // but queued requests stop waiting for company they will not get served
  // in time with. Restored when the ladder steps back below 2. (Workers
  // race benignly here; set_max_latency is an idempotent no-op on repeats.)
  batcher_.set_max_latency(level >= 2 ? options_.max_queue_latency / 4
                                      : options_.max_queue_latency);
}

void PredictionService::run_batch(std::vector<PendingRequest> batch, WorkerState& ws) {
  const auto batch_start = std::chrono::steady_clock::now();
  // Shed point: requests whose deadline expired while they queued are failed
  // here, before any assembly or inference is spent on them.
  bool has_deadline = false;
  for (const PendingRequest& req : batch)
    if (req.deadline != kNoDeadline) {
      has_deadline = true;
      break;
    }
  if (has_deadline) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].deadline <= batch_start) {
        admission_->count_shed(ShedReason::kDeadlineBatch);
        batch[i].result.set_exception(std::make_exception_ptr(
            DeadlineExceededError("PredictionService: deadline expired in queue")));
        continue;
      }
      if (kept != i) batch[kept] = std::move(batch[i]);
      ++kept;
    }
    batch.resize(kept);
    if (batch.empty()) return;
  }
  const int b = static_cast<int>(batch.size());
  // Batch-level spans are attributed to the first sampled request in the
  // batch (its trace shows the batch it rode in); per-request spans (queue
  // wait, e2e) use each request's own trace id.
  std::uint64_t batch_trace = 0;
  for (const PendingRequest& req : batch) {
    if (req.trace_id != 0) {
      batch_trace = req.trace_id;
      break;
    }
  }
  batch_size_->observe(static_cast<double>(b));
  for (const PendingRequest& req : batch) {
    stage_queue_wait_->observe(std::chrono::duration<double>(batch_start - req.enqueued).count());
    if (req.trace_id != 0)
      obs::Tracer::instance().record("serve.queue_wait", req.trace_id, to_trace_ns(req.enqueued),
                                     to_trace_ns(batch_start));
  }

  std::vector<const model::FeaturizedProgram*> rows;
  rows.reserve(batch.size());
  for (const PendingRequest& req : batch) rows.push_back(req.feats.get());
  // The batch tree aliases rows[0], kept alive by batch[0].feats.
  const model::Batch model_batch = [&] {
    obs::ScopedSpan span("serve.batch_assemble", batch_trace);
    const auto assemble_start = std::chrono::steady_clock::now();
    model::Batch mb = model::make_inference_batch(rows);
    stage_batch_assemble_->observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - assemble_start).count());
    return mb;
  }();

  // Shed point: if every remaining request expired during assembly, skip the
  // forward pass entirely. A partially expired batch still runs — rows
  // cannot be removed once the batch tensors are built.
  if (has_deadline) {
    const auto pre_infer = std::chrono::steady_clock::now();
    bool all_expired = true;
    for (const PendingRequest& req : batch)
      if (req.deadline > pre_infer) {
        all_expired = false;
        break;
      }
    if (all_expired) {
      const auto error = std::make_exception_ptr(
          DeadlineExceededError("PredictionService: deadline expired before inference"));
      for (PendingRequest& req : batch) {
        admission_->count_shed(ShedReason::kDeadlineInfer);
        req.result.set_exception(error);
      }
      return;
    }
  }

  std::uint64_t batch_index;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    batch_index = batches_++;
  }

  // Pin the model epoch for the whole batch: a concurrent swap_model()
  // cannot free it (refcount) and cannot make this batch mix models. The
  // shadow is pinned at the same point so the batch is scored against the
  // candidate that was installed when it ran, not one set later.
  std::shared_ptr<const ModelSnapshot> snapshot;
  std::shared_ptr<const ShadowState> shadow;
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    snapshot = model_;
    shadow = shadow_;
  }
  // Degradation level >= 1: pause canary evaluation, give the worker cycles
  // back to live traffic. The shadow stays installed and resumes when the
  // ladder steps back down.
  if (shadow && admission_->level() >= 1) shadow = nullptr;

  try {
    TCM_FAILPOINT("infer.throw");  // chaos site: fails exactly this batch's futures
    {
      obs::ScopedSpan span("serve.infer", batch_trace);
      const auto infer_start = std::chrono::steady_clock::now();
      score_batch(*snapshot->predictor, model_batch, batch_index, ws);
      stage_infer_->observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - infer_start).count());
    }
    // Account before fulfilling the promises: a client that sees its future
    // ready must also see the request counted in stats().
    const auto done = std::chrono::steady_clock::now();
    for (const PendingRequest& req : batch) {
      e2e_latency_->observe(std::chrono::duration<double>(done - req.enqueued).count());
      if (req.trace_id != 0)
        obs::Tracer::instance().record("serve.e2e", req.trace_id, to_trace_ns(req.enqueued),
                                       to_trace_ns(done));
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      requests_ += static_cast<std::uint64_t>(b);
      if (options_.prediction_window > 0) {
        for (double pred : ws.preds) {
          if (recent_preds_.size() < options_.prediction_window) {
            recent_preds_.push_back(pred);
          } else {
            recent_preds_[recent_pred_next_] = pred;
            recent_pred_next_ = (recent_pred_next_ + 1) % options_.prediction_window;
          }
        }
      }
    }
    for (int row = 0; row < b; ++row)
      batch[static_cast<std::size_t>(row)].result.set_value(
          {ws.preds[static_cast<std::size_t>(row)], snapshot->version});

    // Shadow scoring happens after the promises are fulfilled so a canary
    // never adds latency to live responses; quiesce() is the barrier for
    // readers that need the scoring of drained traffic to be complete.
    // ws.preds survives past set_value — the arena buffer does not (the
    // shadow forward reuses it), which is why predictions are staged in a
    // plain vector.
    if (shadow) {
      obs::ScopedSpan span("serve.shadow", batch_trace);
      const auto shadow_start = std::chrono::steady_clock::now();
      run_shadow(*shadow, model_batch, ws.preds, batch_index, ws);
      stage_shadow_->observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - shadow_start).count());
    }
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      failed_requests_ += static_cast<std::uint64_t>(b);
    }
    const std::exception_ptr error = std::current_exception();
    for (PendingRequest& req : batch) req.result.set_exception(error);
  }
}

void PredictionService::run_shadow(const ShadowState& shadow, const model::Batch& model_batch,
                                   const std::vector<double>& incumbent_preds,
                                   std::uint64_t batch_index, WorkerState& ws) {
  // Deterministic per-batch sampling from a stream independent of the
  // inference Rng, so shadow coverage is reproducible in (seed, traffic).
  Rng sample_rng = Rng(options_.seed ^ 0x8f1bbcdc2d9d3b4fULL).split(batch_index);
  if (!sample_rng.bernoulli(shadow.sample_fraction)) return;
  const int b = model_batch.batch_size();
  try {
    std::vector<double> shadow_preds;
    shadow_preds.reserve(static_cast<std::size_t>(b));
    if (options_.use_fused_inference) {
      const nn::Tensor& pred = shadow.predictor->infer_batch(model_batch, ws.arena);
      if (pred.rows() != b)
        throw std::logic_error("PredictionService: shadow returned wrong batch size");
      for (int row = 0; row < b; ++row)
        shadow_preds.push_back(static_cast<double>(pred.at(row, 0)));
    } else {
      Rng rng = Rng(options_.seed).split(batch_index ^ 0x517cc1b727220a95ULL);
      const nn::Variable pred = shadow.predictor->forward_batch(model_batch, /*training=*/false,
                                                                rng);
      if (pred.rows() != b)
        throw std::logic_error("PredictionService: shadow returned wrong batch size");
      for (int row = 0; row < b; ++row)
        shadow_preds.push_back(static_cast<double>(pred.value().at(row, 0)));
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    shadow_requests_ += static_cast<std::uint64_t>(b);
    for (int row = 0; row < b; ++row) {
      const double inc = incumbent_preds[static_cast<std::size_t>(row)];
      const double sh = shadow_preds[static_cast<std::size_t>(row)];
      shadow_ape_sum_ += std::abs(sh - inc) / std::max(std::abs(inc), 1e-12);
      if (shadow_pairs_.size() < options_.shadow_window) {
        shadow_pairs_.emplace_back(inc, sh);
      } else {
        shadow_pairs_[shadow_pair_next_] = {inc, sh};
        shadow_pair_next_ = (shadow_pair_next_ + 1) % options_.shadow_window;
      }
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++shadow_failures_;
  }
}

ServeStats PredictionService::stats() const {
  ServeStats s;
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  for (const auto& ws : worker_states_) s.arena_heap_allocs += ws->arena.heap_allocations();
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    s.active_version = model_->version;
    if (shadow_) s.shadow_version = shadow_->version;
  }
  std::vector<std::pair<double, double>> shadow_pairs;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s.requests = requests_;
    s.batches = batches_;
    s.failed_requests = failed_requests_;
    s.model_swaps = model_swaps_;
    s.shadow_requests = shadow_requests_;
    s.shadow_failures = shadow_failures_;
    s.mean_batch_occupancy =
        batches_ > 0 ? static_cast<double>(requests_) / static_cast<double>(batches_) : 0.0;
    if (shadow_requests_ > 0)
      s.shadow_mape = shadow_ape_sum_ / static_cast<double>(shadow_requests_);
    shadow_pairs = shadow_pairs_;
  }
  s.shed_requests = admission_->total_shed();
  s.degradation_level = admission_->level();
  // Interpolated out of the e2e histogram buckets — no ring to snapshot and
  // sort, and /metrics exports the full distribution these come from.
  s.p50_latency = e2e_latency_->quantile(0.50);
  s.p99_latency = e2e_latency_->quantile(0.99);
  if (shadow_pairs.size() >= 2) {
    std::vector<double> inc, sh;
    inc.reserve(shadow_pairs.size());
    sh.reserve(shadow_pairs.size());
    for (const auto& [i, v] : shadow_pairs) {
      inc.push_back(i);
      sh.push_back(v);
    }
    s.shadow_spearman = spearman(inc, sh);
  }
  return s;
}

}  // namespace tcm::serve
