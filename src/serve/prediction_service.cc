#include "serve/prediction_service.h"

#include <algorithm>
#include <stdexcept>

namespace tcm::serve {

PredictionService::PredictionService(model::SpeedupPredictor& predictor, ServeOptions options)
    : predictor_(predictor),
      options_(options),
      cache_(options.cache_capacity),
      batcher_(options.max_batch, options.max_queue_latency) {
  if (options.num_threads < 1)
    throw std::invalid_argument("PredictionService: need at least one worker thread");
  latencies_.reserve(kLatencyWindow);
  workers_.reserve(static_cast<std::size_t>(options.num_threads));
  for (int i = 0; i < options.num_threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

PredictionService::~PredictionService() {
  batcher_.close();
  for (std::thread& t : workers_) t.join();
}

std::future<double> PredictionService::submit(const ir::Program& program,
                                              const transforms::Schedule& schedule) {
  return submit_with_key({fingerprint(program), fingerprint(schedule)}, program, schedule);
}

std::future<double> PredictionService::submit_with_key(const PairKey& key,
                                                       const ir::Program& program,
                                                       const transforms::Schedule& schedule) {
  std::shared_ptr<const model::FeaturizedProgram> feats = cache_.get(key);
  if (!feats) {
    std::string error;
    auto fresh = model::featurize(program, schedule, options_.features, &error);
    if (!fresh) {
      std::promise<double> failed;
      failed.set_exception(std::make_exception_ptr(
          std::invalid_argument("PredictionService: cannot featurize candidate: " + error)));
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++failed_requests_;
      return failed.get_future();
    }
    feats = cache_.put(key, std::make_shared<const model::FeaturizedProgram>(std::move(*fresh)));
  }
  return submit(std::move(feats));
}

std::future<double> PredictionService::submit(
    std::shared_ptr<const model::FeaturizedProgram> feats) {
  if (!feats) throw std::invalid_argument("PredictionService: null featurization");
  PendingRequest req;
  req.feats = std::move(feats);
  req.enqueued = std::chrono::steady_clock::now();
  std::future<double> result = req.result.get_future();
  batcher_.enqueue(std::move(req));
  return result;
}

std::vector<double> PredictionService::predict_many(
    const ir::Program& program, const std::vector<transforms::Schedule>& candidates) {
  std::vector<std::future<double>> futures;
  futures.reserve(candidates.size());
  // One program IR walk for the whole burst; only schedules vary per key.
  const std::uint64_t program_fp = fingerprint(program);
  for (const transforms::Schedule& s : candidates)
    futures.push_back(submit_with_key({program_fp, fingerprint(s)}, program, s));
  flush();
  std::vector<double> out;
  out.reserve(candidates.size());
  for (std::future<double>& f : futures) out.push_back(f.get());
  return out;
}

void PredictionService::worker_loop(int worker_index) {
  (void)worker_index;
  for (;;) {
    std::vector<PendingRequest> batch = batcher_.next_batch();
    if (batch.empty()) return;  // closed and drained
    run_batch(std::move(batch));
  }
}

void PredictionService::run_batch(std::vector<PendingRequest> batch) {
  const int b = static_cast<int>(batch.size());
  const model::FeaturizedProgram& first = *batch.front().feats;
  const int ncomps = static_cast<int>(first.comp_vectors.size());

  model::Batch model_batch;
  model_batch.tree = &first.root;  // kept alive by batch[0].feats
  model_batch.targets = nn::Tensor(b, 1);
  for (int c = 0; c < ncomps; ++c) {
    const int feat_size = static_cast<int>(first.comp_vectors[static_cast<std::size_t>(c)].size());
    nn::Tensor input(b, feat_size);
    for (int row = 0; row < b; ++row) {
      const auto& v = batch[static_cast<std::size_t>(row)].feats->comp_vectors[
          static_cast<std::size_t>(c)];
      for (int j = 0; j < feat_size; ++j) input.at(row, j) = v[static_cast<std::size_t>(j)];
    }
    model_batch.comp_inputs.push_back(std::move(input));
  }

  std::uint64_t batch_index;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    batch_index = batches_++;
  }

  try {
    // Per-call Rng: inference (training=false) draws nothing from it, but the
    // API requires one and sharing a stream across workers would race.
    Rng rng = Rng(options_.seed).split(batch_index);
    const nn::Variable pred = predictor_.forward_batch(model_batch, /*training=*/false, rng);
    if (pred.rows() != b)
      throw std::logic_error("PredictionService: predictor returned wrong batch size");
    // Account before fulfilling the promises: a client that sees its future
    // ready must also see the request counted in stats().
    const auto done = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      requests_ += static_cast<std::uint64_t>(b);
      for (const PendingRequest& req : batch) {
        const double latency = std::chrono::duration<double>(done - req.enqueued).count();
        if (latencies_.size() < kLatencyWindow) {
          latencies_.push_back(latency);
        } else {
          latencies_[latency_next_] = latency;
          latency_next_ = (latency_next_ + 1) % kLatencyWindow;
        }
      }
    }
    for (int row = 0; row < b; ++row)
      batch[static_cast<std::size_t>(row)].result.set_value(
          static_cast<double>(pred.value().at(row, 0)));
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      failed_requests_ += static_cast<std::uint64_t>(b);
    }
    const std::exception_ptr error = std::current_exception();
    for (PendingRequest& req : batch) req.result.set_exception(error);
  }
}

ServeStats PredictionService::stats() const {
  ServeStats s;
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  std::vector<double> latencies;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s.requests = requests_;
    s.batches = batches_;
    s.failed_requests = failed_requests_;
    s.mean_batch_occupancy =
        batches_ > 0 ? static_cast<double>(requests_) / static_cast<double>(batches_) : 0.0;
    latencies = latencies_;  // snapshot; sort outside the workers' hot mutex
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    const auto at = [&](double p) {
      const double pos = p / 100.0 * static_cast<double>(latencies.size() - 1);
      const std::size_t lo = static_cast<std::size_t>(pos);
      if (lo + 1 >= latencies.size()) return latencies.back();
      return latencies[lo] + (pos - static_cast<double>(lo)) * (latencies[lo + 1] - latencies[lo]);
    };
    s.p50_latency = at(50.0);
    s.p99_latency = at(99.0);
  }
  return s;
}

}  // namespace tcm::serve
