#include "serve/feedback_buffer.h"

namespace tcm::serve {
namespace {

// splitmix64 finalizer: hashes the (seed, ticket) pair into the Bernoulli
// draw so the accept/reject decision is lock-free and deterministic per
// ticket, independent of thread interleaving.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

FeedbackBuffer::FeedbackBuffer(FeedbackBufferOptions options)
    : options_(options), rng_(options.seed) {
  reservoir_.reserve(options_.capacity);
}

void FeedbackBuffer::offer(const ir::Program& program, const transforms::Schedule& schedule) {
  // Fast path: rejected offers touch one atomic and a hash — no lock, no
  // copy. This sits on every client's submit path.
  const std::uint64_t ticket = offered_.fetch_add(1, std::memory_order_relaxed);
  if (options_.capacity == 0) return;
  const std::uint64_t h = mix(ticket + 0x9e3779b97f4a7c15ULL * (options_.seed | 1));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u >= options_.sample_fraction) return;

  std::lock_guard<std::mutex> lock(mu_);
  ++sampled_;
  ++stream_count_;
  // Algorithm R over the sampled stream: each sampled offer ends up in the
  // reservoir with probability capacity / stream_count.
  if (reservoir_.size() < options_.capacity) {
    reservoir_.push_back({program, schedule});
    return;
  }
  const std::uint64_t slot = static_cast<std::uint64_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(stream_count_) - 1));
  if (slot < options_.capacity)
    reservoir_[static_cast<std::size_t>(slot)] = {program, schedule};
}

std::vector<ServedSample> FeedbackBuffer::drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ServedSample> out;
  out.swap(reservoir_);
  reservoir_.reserve(options_.capacity);
  stream_count_ = 0;
  return out;
}

std::vector<ServedSample> FeedbackBuffer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reservoir_;
}

void FeedbackBuffer::restore(std::vector<ServedSample> samples) {
  std::lock_guard<std::mutex> lock(mu_);
  for (ServedSample& s : samples) {
    if (reservoir_.size() >= options_.capacity) break;
    reservoir_.push_back(std::move(s));
    // Count the restored sample as one offered-and-sampled request so the
    // counters stay consistent (sampled <= offered always holds) and later
    // reservoir replacement stays approximately uniform.
    offered_.fetch_add(1, std::memory_order_relaxed);
    ++sampled_;
    ++stream_count_;
  }
}

std::size_t FeedbackBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reservoir_.size();
}

std::uint64_t FeedbackBuffer::offered() const {
  return offered_.load(std::memory_order_relaxed);
}

std::uint64_t FeedbackBuffer::sampled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sampled_;
}

}  // namespace tcm::serve
