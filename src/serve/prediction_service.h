// Batched inference serving for speedup predictors.
//
// Search evaluates thousands of candidate schedules per program, and the
// production setting the ROADMAP targets serves prediction traffic from many
// concurrent clients. PredictionService turns a SpeedupPredictor into a
// thread-safe, high-throughput endpoint:
//
//   client threads --submit()--> FeatureCache --> StructureBatcher
//                                                      |
//                             worker pool: pop batch, one forward_batch per
//                             structure-homogeneous [batch, features] group,
//                             fulfill futures
//
// Inference is deterministic: forward_batch at training=false applies no
// dropout and every op computes each batch row independently, so a request's
// prediction is bitwise-identical however it is batched (asserted by the
// serve hammer test).
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "model/cost_model.h"
#include "serve/batcher.h"
#include "serve/feature_cache.h"

namespace tcm::serve {

struct ServeOptions {
  int num_threads = 1;   // inference worker threads
  int max_batch = 64;    // max requests fused into one forward_batch call
  // How long a partial batch may wait for company before it is flushed.
  std::chrono::microseconds max_queue_latency{2000};
  std::size_t cache_capacity = 4096;  // feature-cache entries; 0 disables
  model::FeatureConfig features;      // featurization of raw pairs
  std::uint64_t seed = 0;             // per-batch Rng seed (inference draws nothing)
};

// Counter snapshot; all values are totals since construction.
struct ServeStats {
  std::uint64_t requests = 0;        // completed predictions
  std::uint64_t batches = 0;         // forward_batch calls
  std::uint64_t failed_requests = 0; // featurization/forward errors
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double mean_batch_occupancy = 0;   // requests / batches
  // Queue+inference latency of the most recent requests (seconds).
  double p50_latency = 0;
  double p99_latency = 0;
};

class PredictionService {
 public:
  // The predictor must outlive the service. Its parameters are read
  // concurrently; do not train it while the service is running.
  PredictionService(model::SpeedupPredictor& predictor, ServeOptions options);
  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  // Featurizes (through the cache) and enqueues; the future resolves to the
  // predicted speedup. Featurization failure or a forward error surfaces as
  // an exception on the future.
  std::future<double> submit(const ir::Program& program, const transforms::Schedule& schedule);

  // Pre-featurized entry point (no cache involvement).
  std::future<double> submit(std::shared_ptr<const model::FeaturizedProgram> feats);

  // Blocking convenience: submits the whole burst, flushes the queue so no
  // tail request waits out the latency deadline, and gathers results in
  // order. Throws if any request failed.
  std::vector<double> predict_many(const ir::Program& program,
                                   const std::vector<transforms::Schedule>& candidates);

  // Makes everything enqueued so far immediately batchable.
  void flush() { batcher_.flush(); }

  ServeStats stats() const;
  const ServeOptions& options() const { return options_; }
  std::size_t pending() const { return batcher_.pending(); }

 private:
  std::future<double> submit_with_key(const PairKey& key, const ir::Program& program,
                                      const transforms::Schedule& schedule);
  void worker_loop(int worker_index);
  void run_batch(std::vector<PendingRequest> batch);

  model::SpeedupPredictor& predictor_;
  const ServeOptions options_;
  FeatureCache cache_;
  StructureBatcher batcher_;

  // Latency reservoir: the most recent kLatencyWindow request latencies.
  static constexpr std::size_t kLatencyWindow = 1 << 14;
  mutable std::mutex stats_mu_;
  std::vector<double> latencies_;
  std::size_t latency_next_ = 0;
  std::uint64_t requests_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t failed_requests_ = 0;

  std::vector<std::thread> workers_;
};

}  // namespace tcm::serve
