// Batched inference serving for speedup predictors.
//
// Search evaluates thousands of candidate schedules per program, and the
// production setting the ROADMAP targets serves prediction traffic from many
// concurrent clients. PredictionService turns a SpeedupPredictor into a
// thread-safe, high-throughput endpoint:
//
//   client threads --submit()--> FeatureCache --> StructureBatcher
//                                                      |
//                             worker pool: pop batch, one tape-free
//                             infer_batch per structure-homogeneous
//                             [batch, features] group (worker-local
//                             InferenceArena, zero steady-state heap
//                             allocation), fulfill futures
//
// Inference is deterministic: the tape-free fast path (and the legacy
// autograd path behind use_fused_inference=false) applies no dropout and
// computes each batch row independently, so a request's prediction is
// bitwise-identical however it is batched (asserted by the serve hammer
// test against direct infer_batch calls).
//
// Model ownership and hot-swap: the service holds a shared_ptr to an
// immutable predictor snapshot. A worker pins the snapshot once per batch
// (one pointer copy under a dedicated, practically uncontended mutex —
// nanoseconds against a milliseconds-scale forward pass, and verifiably
// race-free under TSan, unlike libstdc++'s atomic<shared_ptr>), so
// swap_model() flips traffic to a new model between batches without
// stopping the service — in-flight batches finish on the old snapshot
// (which the shared_ptr keeps alive), and no batch ever mixes models.
// Every Prediction is stamped with the version of the snapshot that
// produced it. Training never happens on a served snapshot: fine-tuning
// operates on a separate registry-loaded copy, which is then swapped in
// (see registry::ContinualTrainer).
//
// Shadow mode: set_shadow() installs a candidate model that additionally
// scores a sampled fraction of live batches. Shadow predictions are never
// returned to clients; the service records disagreement statistics against
// the incumbent (MAPE and Spearman rank correlation over the shared
// requests) into ServeStats, which is what a canary evaluation reads before
// deciding to promote.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "model/cost_model.h"
#include "obs/metrics.h"
#include "obs/watchdog.h"
#include "serve/admission.h"
#include "serve/batcher.h"
#include "serve/feature_cache.h"
#include "serve/feedback_buffer.h"

namespace tcm::serve {

// Absolute per-request deadline on the serving clock; max() = none.
using RequestDeadline = std::chrono::steady_clock::time_point;
inline constexpr RequestDeadline kNoDeadline = RequestDeadline::max();

struct ServeOptions {
  int num_threads = 1;   // inference worker threads
  int max_batch = 64;    // max requests fused into one forward_batch call
  // How long a partial batch may wait for company before it is flushed.
  std::chrono::microseconds max_queue_latency{2000};
  std::size_t cache_capacity = 4096;  // feature-cache entries; 0 disables
  model::FeatureConfig features;      // featurization of raw pairs
  std::uint64_t seed = 0;             // per-batch Rng seed (inference draws nothing)
  // Score batches through the tape-free SpeedupPredictor::infer_batch fast
  // path with one InferenceArena per worker (zero steady-state heap
  // allocation). Off = the legacy autograd forward_batch path; kept for A/B
  // measurement in bench_serve_throughput and as a hedge for predictors
  // whose fused path is unavailable.
  bool use_fused_inference = true;
  // Shadow disagreement window: recent (incumbent, shadow) prediction pairs
  // kept for the Spearman statistic.
  std::size_t shadow_window = 1 << 12;
  // Recent incumbent predictions kept for drift detection
  // (recent_predictions(); the DriftMonitor compares this window against a
  // frozen reference). 0 disables the ring.
  std::size_t prediction_window = 1 << 12;
  // Metrics registry the service registers its latency/batch histograms in.
  // Share one across the stack so /metrics renders everything in one pass;
  // when null the service creates a private registry (stats() still works).
  std::shared_ptr<obs::MetricsRegistry> metrics;
  // Watchdog the batch workers register heartbeats with (critical threads:
  // a wedged worker flips /healthz to 503). Null = no liveness tracking.
  std::shared_ptr<obs::Watchdog> watchdog;
  // How long one batch may run before its worker counts as stalled.
  std::chrono::milliseconds worker_stall_after{30000};
  // Server-side default deadline applied to every request that does not
  // carry a tighter one (0 = none). Expired requests are shed at the stage
  // boundaries (submit / batch assemble / infer) with DeadlineExceededError
  // instead of burning a worker.
  std::chrono::milliseconds default_deadline{0};
  // Hard bound on the batching queue; 0 = unbounded (admission control and
  // the degradation ladder disabled). When the queue is saturated new
  // arrivals fail fast with AdmissionRejectedError (HTTP 429).
  std::size_t admission_queue_cap = 0;
  // Pressure-ladder watermarks and queue-age policy; `queue_cap` inside is
  // overwritten from admission_queue_cap.
  AdmissionOptions admission;
};

// Counter snapshot; all values are totals since construction.
struct ServeStats {
  std::uint64_t requests = 0;        // completed predictions
  std::uint64_t batches = 0;         // forward_batch calls (incumbent only)
  std::uint64_t failed_requests = 0; // featurization/forward errors
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double mean_batch_occupancy = 0;   // requests / batches
  // Heap allocations performed by the workers' inference arenas (fused path
  // only). Plateaus once the arenas are warm: steady-state inference
  // allocates nothing.
  std::uint64_t arena_heap_allocs = 0;
  // Queue+inference latency summary, interpolated out of the
  // tcm_serve_latency_seconds histogram buckets (approximate, bounded by
  // bucket resolution).
  double p50_latency = 0;
  double p99_latency = 0;

  // Hot-swap and shadow-mode counters.
  int active_version = 0;            // version currently receiving traffic
  std::uint64_t model_swaps = 0;     // completed swap_model() calls
  int shadow_version = 0;            // 0 when no shadow is installed
  std::uint64_t shadow_requests = 0; // requests also scored by a shadow model
  std::uint64_t shadow_failures = 0; // shadow forward errors (never client-visible)
  double shadow_mape = 0;            // mean |shadow - incumbent| / incumbent
  double shadow_spearman = 0;        // rank corr over the recent shared window

  // Overload-resilience counters.
  std::uint64_t shed_requests = 0;   // rejected by admission control or deadline expiry
  int degradation_level = 0;         // pressure ladder: 0 normal .. 3 shedding
};

class PredictionService {
 public:
  // Owning form: the service shares ownership of the predictor snapshot.
  // `version` tags every prediction the snapshot produces (use the registry
  // version, or 0 for unversioned models).
  PredictionService(std::shared_ptr<model::SpeedupPredictor> predictor, int version,
                    ServeOptions options);

  // Non-owning convenience: the predictor must outlive the service (and any
  // snapshot still pinned by an in-flight batch after a swap). Its
  // parameters are read concurrently at inference; train only copies loaded
  // elsewhere, never the instance a running service serves.
  PredictionService(model::SpeedupPredictor& predictor, ServeOptions options);

  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  // Featurizes (through the cache) and enqueues; the future resolves to the
  // predicted speedup plus the version of the model that produced it.
  // Featurization failure or a forward error surfaces as an exception on
  // the future. A request whose `deadline` (tightened by
  // ServeOptions::default_deadline) has already passed — or that the
  // admission controller rejects — comes back as an *already-failed* future
  // holding DeadlineExceededError / AdmissionRejectedError: shedding never
  // touches the featurizer or a worker.
  std::future<Prediction> submit(const ir::Program& program,
                                 const transforms::Schedule& schedule,
                                 RequestDeadline deadline = kNoDeadline);

  // Pre-featurized entry point (no cache involvement).
  std::future<Prediction> submit(std::shared_ptr<const model::FeaturizedProgram> feats,
                                 RequestDeadline deadline = kNoDeadline);

  // Blocking convenience: submits the whole burst, flushes the queue so no
  // tail request waits out the latency deadline, and gathers results in
  // order. Throws if any request failed. The deadline applies to every
  // request in the burst, so a wedged batcher sheds the whole evaluation
  // with DeadlineExceededError instead of stranding the caller.
  std::vector<double> predict_many(const ir::Program& program,
                                   const std::vector<transforms::Schedule>& candidates,
                                   RequestDeadline deadline = kNoDeadline);

  // Atomically routes all subsequent batches to `next`. Batches already in
  // flight finish on the snapshot they pinned; nothing is dropped and no
  // request observes both models. Clients may keep calling submit()
  // throughout.
  void swap_model(std::shared_ptr<model::SpeedupPredictor> next, int version);
  int active_version() const;

  // Installs (or replaces) a shadow candidate scoring `sample_fraction` of
  // batches. Resets the shadow disagreement statistics.
  void set_shadow(std::shared_ptr<model::SpeedupPredictor> candidate, int version,
                  double sample_fraction = 1.0);
  void clear_shadow();

  // Installs (or, with nullptr, removes) a measured-feedback buffer: every
  // raw (program, schedule) submission is offered to it, so a continual
  // cycle can later re-execute a sample of served schedules on the
  // simulator. Pre-featurized submissions bypass the buffer (no program to
  // re-execute).
  void set_feedback(std::shared_ptr<FeedbackBuffer> feedback);

  // Snapshot of the recent incumbent predicted speedups (unordered ring of
  // the last ServeOptions::prediction_window predictions): the drift
  // monitor's distribution window. Empty until the first batch completes.
  std::vector<double> recent_predictions() const;

  // Empties the recent-prediction ring. Called after a model swap so the
  // next drift baseline reflects only the new model's predictions.
  void clear_recent_predictions();

  // Makes everything enqueued so far immediately batchable.
  void flush() { batcher_.flush(); }

  // Flushes, then blocks until every request submitted *before this call*
  // has fully completed — including shadow scoring, which runs after the
  // client promises are fulfilled. Call before reading stats() when exact
  // shadow counts matter (the canary gate does). Terminates even while
  // other clients keep submitting: the wait covers only prior traffic.
  void quiesce() {
    batcher_.flush();
    batcher_.drain();
  }

  ServeStats stats() const;
  const ServeOptions& options() const { return options_; }
  std::size_t pending() const { return batcher_.pending(); }

  // The registry holding this service's histograms (the one passed in
  // ServeOptions, or the private fallback). Never null.
  obs::MetricsRegistry& metrics_registry() const { return *metrics_; }

 private:
  // Immutable (model, version) pairing; swapped as a unit so a batch can
  // never pair one snapshot's predictions with another's version tag.
  struct ModelSnapshot {
    std::shared_ptr<model::SpeedupPredictor> predictor;
    int version = 0;
  };
  struct ShadowState {
    std::shared_ptr<model::SpeedupPredictor> predictor;
    int version = 0;
    double sample_fraction = 1.0;
  };
  // Per-worker scratch, touched only by its owning worker thread (the arena's
  // allocation counter is atomic so stats() may read it concurrently).
  struct WorkerState {
    nn::InferenceArena arena;
    std::vector<double> preds;         // incumbent predictions of the batch
  };

  std::future<Prediction> submit_with_key(const PairKey& key, const ir::Program& program,
                                          const transforms::Schedule& schedule,
                                          RequestDeadline deadline);
  // Applies the server default deadline to `deadline` and runs the
  // submit-side shed points (expired deadline, admission control). Returns
  // an already-failed future when the request is shed, nullopt to proceed.
  std::optional<std::future<Prediction>> preflight(RequestDeadline& deadline);
  // Builds and enqueues the PendingRequest (no shed checks — preflight ran).
  std::future<Prediction> enqueue_request(std::shared_ptr<const model::FeaturizedProgram> feats,
                                          RequestDeadline deadline);
  // Worker-side ladder refresh: recomputes the level from the queue depth
  // and applies the level-2 batch-window shrink when the level crosses it.
  void refresh_degradation();
  void worker_loop(int worker_index);
  void run_batch(std::vector<PendingRequest> batch, WorkerState& ws);
  // Fills ws.preds with one prediction per batch row using the configured
  // path (fused arena walk or autograd fallback).
  void score_batch(model::SpeedupPredictor& predictor, const model::Batch& model_batch,
                   std::uint64_t batch_index, WorkerState& ws);
  void run_shadow(const ShadowState& shadow, const model::Batch& model_batch,
                  const std::vector<double>& incumbent_preds, std::uint64_t batch_index,
                  WorkerState& ws);

  const ServeOptions options_;
  // Epoch-swapped model state: workers pin a snapshot once per batch and
  // hold it (refcounted) until the batch completes. model_mu_ guards only
  // these two pointers, never the forward pass.
  mutable std::mutex model_mu_;
  std::shared_ptr<const ModelSnapshot> model_;
  std::shared_ptr<const ShadowState> shadow_;  // null = disabled
  // Measured-feedback tap, behind its own mutex so the per-request pointer
  // copy on the submit path never contends with batch pinning or hot-swap;
  // the atomic flag keeps the (default) disabled path entirely lock-free.
  std::atomic<bool> has_feedback_{false};
  mutable std::mutex feedback_mu_;
  std::shared_ptr<FeedbackBuffer> feedback_;  // null = disabled
  FeatureCache cache_;
  StructureBatcher batcher_;
  // Admission control + degradation ladder (always constructed; inert when
  // admission_queue_cap == 0). Owns the shed/degradation instruments.
  std::unique_ptr<AdmissionController> admission_;
  // Last ladder level whose side effects (batch-window shrink) were applied;
  // workers race benignly to apply transitions.
  std::atomic<int> applied_level_{0};

  // Latency/batch-size histograms, registered at construction; observe() is
  // wait-free so these sit outside stats_mu_. References are stable for the
  // registry's lifetime, which metrics_ pins.
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  obs::Histogram* e2e_latency_ = nullptr;      // tcm_serve_latency_seconds
  obs::Histogram* stage_queue_wait_ = nullptr; // tcm_stage_duration_seconds{stage=...}
  obs::Histogram* stage_featurize_ = nullptr;
  obs::Histogram* stage_batch_assemble_ = nullptr;
  obs::Histogram* stage_infer_ = nullptr;
  obs::Histogram* stage_shadow_ = nullptr;
  obs::Histogram* batch_size_ = nullptr;       // tcm_serve_batch_size
  obs::Gauge* queue_depth_ = nullptr;          // tcm_serve_queue_depth
  obs::Gauge* cache_hit_ratio_ = nullptr;      // tcm_serve_cache_hit_ratio

  mutable std::mutex stats_mu_;
  // Ring of recent incumbent predictions for drift detection.
  std::vector<double> recent_preds_;
  std::size_t recent_pred_next_ = 0;
  std::uint64_t requests_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t failed_requests_ = 0;
  std::uint64_t model_swaps_ = 0;
  std::uint64_t shadow_requests_ = 0;
  std::uint64_t shadow_failures_ = 0;
  double shadow_ape_sum_ = 0;
  // Ring of recent (incumbent, shadow) pairs for the Spearman statistic.
  std::vector<std::pair<double, double>> shadow_pairs_;
  std::size_t shadow_pair_next_ = 0;

  // unique_ptr: WorkerState holds a non-movable arena; the vector is sized
  // before the threads start and never resized after.
  std::vector<std::unique_ptr<WorkerState>> worker_states_;
  std::vector<std::thread> workers_;
};

}  // namespace tcm::serve
