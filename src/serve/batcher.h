// Dynamic structure-aware batching queue.
//
// The cost model can only batch samples that share one loop-tree structure
// (a model::Batch holds one tree and [batch, features] tensors), so the
// queue keeps pending requests bucketed by structure. A worker blocks in
// next_batch() until some bucket is *ready*:
//   - it holds max_batch requests (full batch),
//   - its oldest request has waited max_latency (partial flush), or
//   - a flush()/close() covers it (drain now).
// Among ready buckets the one with the oldest head request wins, so no
// structure is starved by a hot one.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "model/featurize.h"

namespace tcm::serve {

// A served prediction, attributable to exactly one model version: the whole
// batch that produced it ran on one pinned model snapshot (see
// PredictionService for the hot-swap protocol).
struct Prediction {
  double speedup = 0;
  int model_version = 0;
};

struct PendingRequest {
  std::shared_ptr<const model::FeaturizedProgram> feats;
  std::promise<Prediction> result;
  std::chrono::steady_clock::time_point enqueued;
  // Absolute point after which the client no longer wants the answer; the
  // worker sheds expired requests at the stage boundaries instead of
  // spending a forward pass on them. max() = no deadline.
  std::chrono::steady_clock::time_point deadline = std::chrono::steady_clock::time_point::max();
  std::uint64_t sequence = 0;  // assigned by the batcher, monotonically
  // Nonzero when the originating request was trace-sampled: carries the
  // trace id across the batcher's thread hop so batch-worker spans
  // correlate with the HTTP span (see obs/trace.h).
  std::uint64_t trace_id = 0;
};

class StructureBatcher {
 public:
  StructureBatcher(int max_batch, std::chrono::microseconds max_latency);

  // Adds a request to the bucket with the same structure (or a new one) and
  // wakes a worker. Throws std::runtime_error after close().
  void enqueue(PendingRequest req);

  // Makes every request enqueued so far immediately ready, without waiting
  // for full batches or the latency deadline. Used by blocking clients that
  // have just submitted their whole burst.
  void flush();

  // Blocks until a bucket is ready, then pops up to max_batch requests of
  // one structure. Returns an empty vector only when the batcher is closed
  // and fully drained (the worker-exit signal). A non-empty pop counts as an
  // in-flight batch until the worker calls batch_done().
  std::vector<PendingRequest> next_batch();

  // Marks one popped batch of `batch_size` requests fully processed
  // (including side work such as shadow scoring). Pairs 1:1 with non-empty
  // next_batch() returns.
  void batch_done(std::size_t batch_size);

  // Blocks until every request enqueued *before this call* has been fully
  // processed (batch_done). Requests enqueued concurrently don't extend the
  // wait, so drain() terminates even under sustained live traffic — callers
  // should flush() first or the wait spans the latency deadline.
  void drain();

  // Wakes all workers; pending requests are still handed out, further
  // enqueues are rejected.
  void close();

  std::size_t pending() const;
  int max_batch() const { return max_batch_; }

  // Age of the oldest queued request (zero when the queue is empty). The
  // admission controller's queue-age signal.
  std::chrono::nanoseconds oldest_age() const;

  // Live adjustment of the partial-flush window: the degradation ladder
  // shrinks it under pressure (smaller batches, lower queueing delay) and
  // restores it when pressure subsides. Takes effect for the next readiness
  // evaluation; already-ready batches are unaffected.
  void set_max_latency(std::chrono::microseconds max_latency);
  std::chrono::microseconds max_latency() const;

 private:
  struct Bucket {
    std::deque<PendingRequest> requests;
  };

  // Requires mu_ held. Index of a ready bucket (oldest head first), or -1.
  int find_ready(std::chrono::steady_clock::time_point now) const;
  bool bucket_ready(const Bucket& b, std::chrono::steady_clock::time_point now) const;

  const int max_batch_;
  std::chrono::microseconds max_latency_;  // guarded by mu_ (set_max_latency)

  mutable std::mutex mu_;
  std::condition_variable cv_;        // wakes workers (next_batch)
  std::condition_variable drain_cv_;  // wakes drain() waiters only
  // deque: buckets hold move-only requests and must not relocate on growth.
  std::deque<Bucket> buckets_;
  std::uint64_t next_sequence_ = 1;
  std::uint64_t flushed_up_to_ = 0;  // sequences <= this are ready now
  std::uint64_t completed_ = 0;      // requests whose batch finished batch_done()
  std::size_t pending_ = 0;
  bool closed_ = false;
};

}  // namespace tcm::serve
