// Admission control + graceful-degradation ladder for the serving queue.
//
// Under overload an unbounded batching queue converts excess offered load
// into unbounded latency for everyone; the production answer is to do
// strictly less work per request as pressure rises and to reject what
// cannot be served in time. The controller watches the batcher's queue
// depth (as a fraction of `queue_cap`) and the age of the oldest queued
// request, and walks a pressure ladder:
//
//   level 0  normal
//   level 1  shadow scoring disabled (canary evaluation pauses; live
//            traffic gets the worker cycles back)
//   level 2  + batch-latency window shrunk (partial batches flush
//            immediately instead of waiting for company: worse occupancy,
//            better tail latency)
//   level 3  + new arrivals shed with RESOURCE_EXHAUSTED (HTTP 429 +
//            Retry-After)
//
// Each level has separate enter/exit watermarks (enter > exit), so the
// ladder is hysteretic: a queue oscillating around one watermark does not
// flap the level. Independent of the ladder, the queue depth is hard-capped
// at `queue_cap` and requests older than `max_queue_age` trigger shedding —
// a queue whose head is already stale will only serve deadline-exceeded
// responses anyway.
//
// Every level transition emits a flight-recorder event and updates the
// `tcm_degradation_level` gauge; every shed increments
// `tcm_shed_total{reason=...}`. Deadline-expiry sheds at the stage
// boundaries (see PredictionService) are counted through the same family so
// /metrics shows all load-shedding in one place.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>

#include "obs/metrics.h"

namespace tcm::serve {

struct AdmissionOptions {
  // Hard bound on queued requests. 0 disables admission control entirely
  // (unbounded queue, ladder never engages) — the historical behavior.
  std::size_t queue_cap = 0;
  // Ladder watermarks, as fractions of queue_cap. Level k engages when
  // fill >= enter_k and disengages when fill < exit_k.
  double shadow_off_enter = 0.50, shadow_off_exit = 0.30;
  double latency_shrink_enter = 0.75, latency_shrink_exit = 0.50;
  double shed_enter = 0.95, shed_exit = 0.70;
  // Shed new arrivals when the oldest queued request is older than this
  // (0 = no age-based shedding).
  std::chrono::milliseconds max_queue_age{0};
  // Advertised in the Retry-After header of 429 responses (whole seconds,
  // rounded up from this).
  std::chrono::milliseconds retry_after{1000};
};

// Why a request was shed; the label of tcm_shed_total{reason=...}.
enum class ShedReason {
  kQueueFull,       // depth at the hard cap or over the shed watermark
  kQueueAge,        // head-of-queue older than max_queue_age
  kDeadlineSubmit,  // deadline already expired at submit (before featurize)
  kDeadlineBatch,   // expired while queued (shed before batch assemble)
  kDeadlineInfer,   // whole batch expired (shed before the forward pass)
};

class AdmissionController {
 public:
  // Registers the shed/degradation instruments in `registry` (get-or-create,
  // so sharing a registry across controllers is safe). The registry must
  // outlive the controller.
  AdmissionController(AdmissionOptions options, obs::MetricsRegistry& registry);

  struct Decision {
    bool admit = true;
    ShedReason reason = ShedReason::kQueueFull;  // meaningful when !admit
  };

  // Admission check for one arriving request given the current queue state.
  // Updates the ladder, emits transition events, and (on shed) counts the
  // rejection. `oldest_age` is the age of the head-of-queue request (zero
  // when the queue is empty).
  Decision admit(std::size_t queue_depth, std::chrono::nanoseconds oldest_age);

  // Ladder refresh without an arriving request: workers call this as the
  // queue drains so the level steps back down even when no new traffic
  // arrives to trigger admit(). Returns the (possibly updated) level.
  int update(std::size_t queue_depth);

  // Current degradation level, 0..3. Wait-free.
  int level() const { return level_.load(std::memory_order_relaxed); }

  // Counts a shed that happened outside admit() — the deadline-expiry shed
  // points in the service/worker path.
  void count_shed(ShedReason reason);

  std::uint64_t total_shed() const { return total_shed_.load(std::memory_order_relaxed); }
  bool enabled() const { return options_.queue_cap > 0; }
  const AdmissionOptions& options() const { return options_; }

 private:
  // Requires mu_ held. Applies the hysteresis walk for `fill` in [0,inf).
  void update_level_locked(double fill);

  const AdmissionOptions options_;
  obs::Counter* shed_queue_full_ = nullptr;  // tcm_shed_total{reason=...}
  obs::Counter* shed_queue_age_ = nullptr;
  obs::Counter* shed_deadline_submit_ = nullptr;
  obs::Counter* shed_deadline_batch_ = nullptr;
  obs::Counter* shed_deadline_infer_ = nullptr;
  obs::Gauge* degradation_level_ = nullptr;  // tcm_degradation_level

  std::mutex mu_;            // serializes ladder updates
  std::atomic<int> level_{0};
  std::atomic<std::uint64_t> total_shed_{0};
};

// Registers the tcm_shed_total / tcm_degradation_level families zero-valued
// so the /metrics surface is complete from the first scrape even when
// admission control is disabled. AdmissionController's constructor uses the
// same names (get-or-create).
void register_admission_metrics(obs::MetricsRegistry& registry);

}  // namespace tcm::serve
