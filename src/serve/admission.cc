#include "serve/admission.h"

#include <string>

#include "obs/event_log.h"
#include "obs/trace.h"

namespace tcm::serve {

namespace {

constexpr const char* kShedHelp =
    "Requests shed by admission control or deadline expiry, by reason";
constexpr const char* kLevelHelp =
    "Pressure-ladder level: 0 normal, 1 shadow off, 2 latency window shrunk, 3 shedding";

}  // namespace

void register_admission_metrics(obs::MetricsRegistry& registry) {
  for (const char* reason : {"queue_full", "queue_age", "deadline_submit", "deadline_batch",
                             "deadline_infer"})
    registry.counter("tcm_shed_total", kShedHelp,
                     std::string("reason=\"") + reason + '"');
  registry.gauge("tcm_degradation_level", kLevelHelp);
}

AdmissionController::AdmissionController(AdmissionOptions options,
                                         obs::MetricsRegistry& registry)
    : options_(options) {
  const auto shed = [&](const char* reason) {
    return &registry.counter("tcm_shed_total", kShedHelp,
                             std::string("reason=\"") + reason + '"');
  };
  shed_queue_full_ = shed("queue_full");
  shed_queue_age_ = shed("queue_age");
  shed_deadline_submit_ = shed("deadline_submit");
  shed_deadline_batch_ = shed("deadline_batch");
  shed_deadline_infer_ = shed("deadline_infer");
  degradation_level_ = &registry.gauge("tcm_degradation_level", kLevelHelp);
}

void AdmissionController::update_level_locked(double fill) {
  const double enter[4] = {0.0, options_.shadow_off_enter, options_.latency_shrink_enter,
                           options_.shed_enter};
  const double exit[4] = {0.0, options_.shadow_off_exit, options_.latency_shrink_exit,
                          options_.shed_exit};
  int level = level_.load(std::memory_order_relaxed);
  while (level < 3 && fill >= enter[level + 1]) ++level;
  while (level > 0 && fill < exit[level]) --level;
  const int previous = level_.exchange(level, std::memory_order_relaxed);
  if (level != previous) {
    degradation_level_->set(static_cast<double>(level));
    obs::EventLog::instance().emit(
        "degradation", level > previous ? "warn" : "info",
        "level=" + std::to_string(level) + " from=" + std::to_string(previous) +
            " fill=" + std::to_string(fill),
        obs::current_trace_id());
  }
}

int AdmissionController::update(std::size_t queue_depth) {
  if (!enabled()) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  update_level_locked(static_cast<double>(queue_depth) /
                      static_cast<double>(options_.queue_cap));
  return level_.load(std::memory_order_relaxed);
}

AdmissionController::Decision AdmissionController::admit(std::size_t queue_depth,
                                                         std::chrono::nanoseconds oldest_age) {
  if (!enabled()) return {};
  int level;
  {
    std::lock_guard<std::mutex> lock(mu_);
    update_level_locked(static_cast<double>(queue_depth) /
                        static_cast<double>(options_.queue_cap));
    level = level_.load(std::memory_order_relaxed);
  }
  // The hard cap holds no matter what the ladder says: the queue can never
  // grow past queue_cap.
  if (queue_depth >= options_.queue_cap || level >= 3) {
    count_shed(ShedReason::kQueueFull);
    return {false, ShedReason::kQueueFull};
  }
  if (options_.max_queue_age.count() > 0 && oldest_age > options_.max_queue_age) {
    count_shed(ShedReason::kQueueAge);
    return {false, ShedReason::kQueueAge};
  }
  return {};
}

void AdmissionController::count_shed(ShedReason reason) {
  total_shed_.fetch_add(1, std::memory_order_relaxed);
  switch (reason) {
    case ShedReason::kQueueFull: shed_queue_full_->inc(); break;
    case ShedReason::kQueueAge: shed_queue_age_->inc(); break;
    case ShedReason::kDeadlineSubmit: shed_deadline_submit_->inc(); break;
    case ShedReason::kDeadlineBatch: shed_deadline_batch_->inc(); break;
    case ShedReason::kDeadlineInfer: shed_deadline_infer_->inc(); break;
  }
}

}  // namespace tcm::serve
