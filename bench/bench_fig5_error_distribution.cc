// Figure 5: distribution of the model's error over the test set.
// Top: histogram of APE. Bottom: APE as a function of measured speedup
// (the paper's observation: error is smallest near speedup 1 and grows in
// the tails, especially below 0.05).
#include "common.h"
#include "model/train.h"
#include "support/stats.h"

#include <cmath>
#include <cstdio>

using namespace tcm;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::BenchEnv::from_args(argc, argv);
  model::CostModel& m = env.cost_model();
  const model::Dataset& test = env.split().test;
  const auto preds = model::predict(m, test);

  std::vector<double> apes(test.size());
  for (std::size_t i = 0; i < test.size(); ++i)
    apes[i] = std::abs(test.points[i].speedup - preds[i]) / test.points[i].speedup;

  // Top: APE histogram (clamped at 1.0, 17 bins like the paper's axis).
  const Histogram h = make_histogram(apes, 0.0, 1.02, 17);
  Table hist({"APE bin left", "count"});
  for (std::size_t b = 0; b < h.counts.size(); ++b)
    hist.add_row({Table::fmt(h.bin_left(b), 2), std::to_string(h.counts[b])});
  env.emit("fig5_ape_histogram", hist);

  // Bottom: mean APE per measured-speedup band (log-spaced like the plot).
  const std::vector<std::pair<double, double>> bands = {
      {0.0, 0.05}, {0.05, 0.1}, {0.1, 0.5}, {0.5, 1.0},
      {1.0, 2.0},  {2.0, 5.0},  {5.0, 10.0}, {10.0, 1e9}};
  Table by_band({"measured speedup band", "n", "mean APE", "median APE"});
  for (const auto& [lo, hi] : bands) {
    std::vector<double> in_band;
    for (std::size_t i = 0; i < test.size(); ++i)
      if (test.points[i].speedup >= lo && test.points[i].speedup < hi)
        in_band.push_back(apes[i]);
    if (in_band.empty()) continue;
    by_band.add_row({Table::fmt(lo, 2) + " - " + (hi > 1e8 ? "inf" : Table::fmt(hi, 2)),
                     std::to_string(in_band.size()), Table::fmt(mean(in_band), 3),
                     Table::fmt(median(in_band), 3)});
  }
  env.emit("fig5_ape_by_speedup", by_band);

  // The paper's qualitative claim, checked numerically.
  std::vector<double> near, far;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const double y = test.points[i].speedup;
    (y > 0.5 && y < 2.0 ? near : far).push_back(apes[i]);
  }
  std::printf("mean APE near speedup 1 (0.5..2): %.3f | in the tails: %.3f  %s\n",
              mean(near), mean(far),
              mean(near) < mean(far) ? "[matches the paper's shape]" : "[SHAPE MISMATCH]");
  return 0;
}
