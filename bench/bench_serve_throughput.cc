// Serving throughput: requests/sec of serve::PredictionService as a function
// of worker-thread count and dynamic-batching cap, on a mixed-structure
// request stream (several programs interleaved, many schedules each — the
// shape of traffic a search produces). Also measures the tape-free fused
// inference engine against the legacy autograd forward path at a single
// worker, which is the per-core speedup the search loop sees.
//
// Flags:
//   --requests N   total requests per configuration (default 3000)
//   --clients N    closed-loop client threads (default 8)
//   --csv PATH     also write the table as CSV
//   --json PATH    machine-readable results (default BENCH_serve_throughput.json;
//                  empty string disables)
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "datagen/generator.h"
#include "model/cost_model.h"
#include "serve/prediction_service.h"
#include "support/table.h"

using namespace tcm;

namespace {

struct Workload {
  std::vector<ir::Program> programs;
  // Parallel arrays: request i is (programs[pair_program[i]], pair_schedule[i]).
  std::vector<std::size_t> pair_program;
  std::vector<transforms::Schedule> pair_schedule;

  std::size_t size() const { return pair_schedule.size(); }
};

Workload make_workload(int num_programs, int schedules_per_program) {
  Workload w;
  datagen::RandomProgramGenerator gen(datagen::GeneratorOptions::tiny());
  datagen::RandomScheduleGenerator sgen;
  Rng rng(99);
  for (int p = 0; p < num_programs; ++p) {
    w.programs.push_back(gen.generate(static_cast<std::uint64_t>(p)));
    for (int s = 0; s < schedules_per_program; ++s) {
      w.pair_program.push_back(static_cast<std::size_t>(p));
      w.pair_schedule.push_back(sgen.generate(w.programs.back(), rng));
    }
  }
  return w;
}

struct RunResult {
  int workers = 0;
  int max_batch = 0;
  bool fused = true;
  double requests_per_sec = 0;
  serve::ServeStats stats;

  double allocs_per_pred() const {
    return stats.requests > 0 ? static_cast<double>(stats.arena_heap_allocs) /
                                    static_cast<double>(stats.requests)
                              : 0.0;
  }
};

RunResult run_configuration(model::SpeedupPredictor& predictor, const Workload& workload,
                            int workers, int max_batch, int total_requests, int num_clients,
                            bool fused) {
  serve::ServeOptions options;
  options.num_threads = workers;
  options.max_batch = max_batch;
  options.max_queue_latency = std::chrono::microseconds(500);
  options.cache_capacity = 4096;
  options.features = model::FeatureConfig::fast();
  options.use_fused_inference = fused;
  serve::PredictionService service(predictor, options);

  std::atomic<std::size_t> next{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(num_clients));
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&] {
      std::vector<std::future<serve::Prediction>> inflight;
      inflight.reserve(128);
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= static_cast<std::size_t>(total_requests)) break;
        const std::size_t pair = i % workload.size();
        inflight.push_back(service.submit(workload.programs[workload.pair_program[pair]],
                                          workload.pair_schedule[pair]));
        if (inflight.size() >= 128) {
          for (auto& f : inflight) f.get();
          inflight.clear();
        }
      }
      for (auto& f : inflight) f.get();
    });
  }
  for (std::thread& t : clients) t.join();
  const double seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  RunResult r;
  r.workers = workers;
  r.max_batch = max_batch;
  r.fused = fused;
  r.requests_per_sec = static_cast<double>(total_requests) / seconds;
  r.stats = service.stats();
  return r;
}

void write_json(const std::string& path, const std::vector<RunResult>& results,
                double fused_speedup, int total_requests, int num_clients) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  out << "{\n";
  out << "  \"bench\": \"serve_throughput\",\n";
  out << "  \"requests_per_config\": " << total_requests << ",\n";
  out << "  \"client_threads\": " << num_clients << ",\n";
  out << "  \"fused_speedup_single_thread\": " << fused_speedup << ",\n";
  out << "  \"configs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    out << "    {\"workers\": " << r.workers << ", \"max_batch\": " << r.max_batch
        << ", \"fused\": " << (r.fused ? "true" : "false")
        << ", \"requests_per_sec\": " << r.requests_per_sec
        << ", \"p50_latency_s\": " << r.stats.p50_latency
        << ", \"p99_latency_s\": " << r.stats.p99_latency
        << ", \"mean_batch_occupancy\": " << r.stats.mean_batch_occupancy
        << ", \"arena_heap_allocs\": " << r.stats.arena_heap_allocs
        << ", \"allocs_per_pred\": " << r.allocs_per_pred() << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  int total_requests = 3000;
  int num_clients = 8;
  std::string csv_path;
  std::string json_path = "BENCH_serve_throughput.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--requests" && i + 1 < argc) total_requests = std::atoi(argv[++i]);
    else if (arg == "--clients" && i + 1 < argc) num_clients = std::atoi(argv[++i]);
    else if (arg == "--csv" && i + 1 < argc) csv_path = argv[++i];
    else if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
  }
  total_requests = std::max(total_requests, 1);
  num_clients = std::max(num_clients, 1);

  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  const Workload workload = make_workload(/*num_programs=*/6, /*schedules_per_program=*/16);

  std::cout << "serve throughput: " << total_requests << " requests/config, " << num_clients
            << " client threads, " << workload.size() << " distinct (program, schedule) pairs, "
            << std::thread::hardware_concurrency() << " hardware threads\n\n";

  struct Config {
    int workers;
    int max_batch;
    bool fused;
  };
  // The two single-worker batch-64 rows are the tentpole comparison: the
  // autograd tape vs the tape-free fused engine on one core.
  const std::vector<Config> configs = {
      {1, 1, true}, {1, 8, true}, {1, 64, false}, {1, 64, true},
      {2, 64, true}, {4, 1, true}, {4, 8, true}, {4, 64, true},
  };

  // Warm-up: fault in code paths and the allocator before timing. (Each
  // configuration constructs its own service and therefore its own feature
  // cache, so all configurations start equally cache-cold.)
  run_configuration(cost_model, workload, 1, 64, static_cast<int>(workload.size()), 2, true);

  Table table({"workers", "batch cap", "engine", "req/s", "speedup", "occupancy",
               "cache hit %", "allocs/pred", "p50 ms", "p99 ms"});
  double baseline = 0;
  double one_worker_64_fused = 0, one_worker_64_autograd = 0, four_worker_64 = 0;
  std::vector<RunResult> results;
  for (const Config& cfg : configs) {
    const RunResult r = run_configuration(cost_model, workload, cfg.workers, cfg.max_batch,
                                          total_requests, num_clients, cfg.fused);
    results.push_back(r);
    if (baseline == 0) baseline = r.requests_per_sec;
    if (cfg.max_batch == 64 && cfg.workers == 1 && cfg.fused)
      one_worker_64_fused = r.requests_per_sec;
    if (cfg.max_batch == 64 && cfg.workers == 1 && !cfg.fused)
      one_worker_64_autograd = r.requests_per_sec;
    if (cfg.max_batch == 64 && cfg.workers == 4 && cfg.fused)
      four_worker_64 = r.requests_per_sec;
    const double hit_total =
        static_cast<double>(r.stats.cache_hits + r.stats.cache_misses);
    table.add_row({std::to_string(cfg.workers), std::to_string(cfg.max_batch),
                   cfg.fused ? "fused" : "autograd",
                   Table::fmt(r.requests_per_sec, 0),
                   Table::fmt(r.requests_per_sec / baseline, 2) + "x",
                   Table::fmt(r.stats.mean_batch_occupancy, 1),
                   Table::fmt(hit_total > 0 ? 100.0 * static_cast<double>(r.stats.cache_hits) /
                                                  hit_total
                                            : 0.0,
                              1),
                   Table::fmt(r.allocs_per_pred(), 3),
                   Table::fmt(1e3 * r.stats.p50_latency, 2),
                   Table::fmt(1e3 * r.stats.p99_latency, 2)});
  }
  std::cout << table.to_string() << "\n";
  double fused_speedup = 0;
  if (one_worker_64_fused > 0 && one_worker_64_autograd > 0) {
    fused_speedup = one_worker_64_fused / one_worker_64_autograd;
    std::cout << "speedup autograd -> fused inference (1 worker, batch cap 64): "
              << Table::fmt(fused_speedup, 2) << "x\n";
  }
  if (one_worker_64_fused > 0 && four_worker_64 > 0)
    std::cout << "speedup 1 -> 4 workers at batch cap 64: "
              << Table::fmt(four_worker_64 / one_worker_64_fused, 2) << "x\n";
  std::cout << "speedup unbatched -> dynamic batching (1 worker): "
            << Table::fmt(one_worker_64_fused / baseline, 2) << "x\n";
  if (!csv_path.empty()) table.write_csv(csv_path);
  if (!json_path.empty())
    write_json(json_path, results, fused_speedup, total_requests, num_clients);
  return 0;
}
