// Section 6, "Comparison with Halide": on random programs, the Halide-style
// model (heavy feature engineering, MSE loss) reaches R^2 0.96 while the
// paper's model reaches 0.89 — comparable accuracy without the feature
// engineering. We evaluate both on the same held-out programs:
//   - the Tiramisu model predicts speedups directly;
//   - the Halide baseline predicts execution times of the transformed code,
//     from which speedups follow. R^2 is computed on log-speedups (the
//     spread spans orders of magnitude; R^2 on raw values is dominated by a
//     handful of outliers for either model).
// A second table re-evaluates both models per benchmark category, showing
// the baseline's drop on the scientific-computing programs it was not
// trained on (the paper's explanation for Figure 6).
#include "common.h"
#include "benchsuite/benchmarks.h"
#include "datagen/dataset_builder.h"
#include "model/train.h"
#include "search/evaluator.h"
#include "support/stats.h"

#include <cmath>
#include <cstdio>

using namespace tcm;

namespace {

// Halide-baseline speedup predictions for (program, schedule) pairs.
double halide_speedup(baselines::HalideCostModel& model, const ir::Program& p,
                      const transforms::Schedule& s) {
  const double base = model.predict_seconds(p, sim::MachineSpec());
  const ir::Program t = transforms::apply_schedule(p, s);
  return base / model.predict_seconds(t, sim::MachineSpec());
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::BenchEnv::from_args(argc, argv);
  model::CostModel& tiramisu = env.cost_model();
  baselines::HalideCostModel& halide = env.halide_model();

  // Fresh evaluation programs + schedules (not seen by either model).
  datagen::DatasetBuildOptions opt = env.dataset_options();
  opt.num_programs = env.paper_scale ? 300 : 80;
  opt.schedules_per_program = 16;
  opt.seed = 3141;

  datagen::RandomProgramGenerator gen(opt.generator);
  datagen::RandomScheduleGenerator sgen(opt.scheduler);

  std::vector<double> measured_log, tiramisu_log, halide_log;
  for (int pi = 0; pi < opt.num_programs; ++pi) {
    const std::uint64_t seed = opt.seed * 0x9e3779b97f4a7c15ULL + 77777ULL * pi;
    const ir::Program p = gen.generate(seed);
    Rng rng(seed ^ 0xf00d);
    sim::Executor exec(sim::MachineModel(), {}, rng.next_u64());
    search::ModelEvaluator tevall(&tiramisu, model::FeatureConfig::fast());
    std::vector<transforms::Schedule> schedules;
    for (int si = 0; si < opt.schedules_per_program; ++si)
      schedules.push_back(sgen.generate(p, rng));
    const double t_base = exec.measure_seconds(p);
    const auto t_preds = tevall.evaluate(p, schedules);
    for (std::size_t si = 0; si < schedules.size(); ++si) {
      const ir::Program t = transforms::apply_schedule(p, schedules[si]);
      const double measured = t_base / exec.measure_seconds(t);
      measured_log.push_back(std::log(measured));
      tiramisu_log.push_back(std::log(std::max(1e-6, t_preds[si])));
      halide_log.push_back(std::log(std::max(1e-6, halide_speedup(halide, p, schedules[si]))));
    }
  }

  Table table({"model", "R^2 (log speedup)", "Pearson", "Spearman", "notes"});
  table.add_row({"Halide-style baseline", Table::fmt(r_squared(measured_log, halide_log), 3),
                 Table::fmt(pearson(measured_log, halide_log), 3),
                 Table::fmt(spearman(measured_log, halide_log), 3),
                 "54 engineered features, transformed code, MSE"});
  table.add_row({"Tiramisu model (ours)", Table::fmt(r_squared(measured_log, tiramisu_log), 3),
                 Table::fmt(pearson(measured_log, tiramisu_log), 3),
                 Table::fmt(spearman(measured_log, tiramisu_log), 3),
                 "simple features, unoptimized code + tags"});
  env.emit("halide_comparison_random_programs", table);
  std::printf("paper: Halide R^2 0.96 vs Tiramisu 0.89 (comparable, no feature engineering)\n");

  // Per-category benchmark ranking quality: DL/image vs scientific stencils.
  const auto benchmarks = benchsuite::paper_benchmarks(env.paper_scale ? 1 : 4);
  const std::vector<std::string> scientific = {"heat2d", "heat3d", "jacobi2d", "mvt", "seidel2d",
                                               "doitgen"};
  Table bench_table({"benchmark", "category", "Tiramisu spearman", "Halide spearman"});
  for (const auto& [name, program] : benchmarks) {
    Rng rng(99 + static_cast<std::uint64_t>(name.size()));
    sim::Executor exec(sim::MachineModel(), {}, rng.next_u64());
    std::vector<transforms::Schedule> schedules;
    for (int si = 0; si < 24; ++si) schedules.push_back(sgen.generate(program, rng));
    const double t_base = exec.measure_seconds(program);
    std::vector<double> y, t_hat, h_hat;
    search::ModelEvaluator teval(&tiramisu, model::FeatureConfig::fast());
    const auto t_preds = teval.evaluate(program, schedules);
    for (std::size_t si = 0; si < schedules.size(); ++si) {
      const ir::Program t = transforms::apply_schedule(program, schedules[si]);
      y.push_back(t_base / exec.measure_seconds(t));
      t_hat.push_back(t_preds[si]);
      h_hat.push_back(halide_speedup(halide, program, schedules[si]));
    }
    const bool is_sci =
        std::find(scientific.begin(), scientific.end(), name) != scientific.end();
    bench_table.add_row({name, is_sci ? "scientific" : "image/DL",
                         Table::fmt(spearman(y, t_hat), 2), Table::fmt(spearman(y, h_hat), 2)});
  }
  env.emit("halide_comparison_benchmarks", bench_table);
  return 0;
}
