// Per-request overhead of the HTTP+JSON surface vs the in-process futures
// API, on identical (program, schedule) traffic against one serving stack.
//
// Three closed-loop configurations, same request count each:
//   in_process  submit() future + get() (the embedded-caller fast path)
//   facade      api::Service::predict (Status boundary, no wire)
//   http        POST /v1/predict over a keep-alive loopback connection
//               (JSON encode + TCP + parse on both sides)
//
// The headline number is http_minus_in_process_us: what a caller pays per
// request for process isolation. Emitted to BENCH_http_overhead.json for
// the CI perf trajectory.
//
// Flags:
//   --requests N   requests per configuration (default 2000)
//   --json PATH    output path (default BENCH_http_overhead.json; "" disables)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "api/http_client.h"
#include "api/rest.h"
#include "api/service.h"
#include "datagen/generator.h"
#include "model/cost_model.h"
#include "registry/model_registry.h"
#include "support/table.h"

using namespace tcm;
using Clock = std::chrono::steady_clock;

namespace {

double us_since(Clock::time_point start, int requests) {
  const auto elapsed = std::chrono::duration<double, std::micro>(Clock::now() - start);
  return elapsed.count() / requests;
}

}  // namespace

int main(int argc, char** argv) {
  int requests = 2000;
  std::string json_path = "BENCH_http_overhead.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--requests" && i + 1 < argc) requests = std::atoi(argv[++i]);
    else if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
  }

  // --- stack: untrained fast model behind registry + facade + HTTP ---------
  const std::string root = "bench_http_registry";
  std::remove((root + "/v0001/weights.bin").c_str());
  {
    registry::ModelRegistry reg(root);
    if (reg.active_version() == 0) {
      Rng rng(7);
      model::CostModel m(model::ModelConfig::fast(), rng);
      registry::ModelManifest manifest;
      manifest.config = model::ModelConfig::fast();
      manifest.provenance = "bench_http_overhead";
      reg.promote(reg.register_version(m, manifest));
    }
  }
  api::ServiceOptions sopt;
  sopt.registry_root = root;
  sopt.serve.num_threads = 1;  // single worker: measure per-request path, not parallelism
  sopt.serve.features = model::FeatureConfig::fast();
  sopt.serve.max_queue_latency = std::chrono::microseconds(50);
  sopt.enable_feedback = false;  // keep the three paths identical
  auto service = api::Service::open(std::move(sopt));
  if (!service.ok()) {
    std::cerr << "cannot open service: " << service.status().to_string() << "\n";
    return 1;
  }
  api::HttpServer server(api::HttpServerOptions{});
  api::bind_routes(server, **service);
  if (api::Status started = server.start(); !started.ok()) {
    std::cerr << "cannot start server: " << started.to_string() << "\n";
    return 1;
  }

  // Workload: a few tiny programs, one schedule each, pre-encoded bodies.
  datagen::RandomProgramGenerator gen(datagen::GeneratorOptions::tiny());
  datagen::RandomScheduleGenerator sgen;
  Rng rng(13);
  std::vector<ir::Program> programs;
  std::vector<transforms::Schedule> schedules;
  std::vector<std::string> bodies;
  for (int i = 0; i < 8; ++i) {
    programs.push_back(gen.generate(static_cast<std::uint64_t>(i)));
    schedules.push_back(sgen.generate(programs.back(), rng));
    api::Json body = api::Json::object();
    body.set("program", api::to_json(programs.back()));
    body.set("schedule", api::to_json(schedules.back()));
    bodies.push_back(body.dump());
  }
  serve::PredictionService& raw = (*service)->raw_service();

  // Warmup (feature cache, inference plans, connection).
  api::HttpClient client("127.0.0.1", server.port());
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    auto f = raw.submit(programs[i], schedules[i]);
    raw.flush();
    f.get();
    if (!client.post("/v1/predict", bodies[i]).ok()) {
      std::cerr << "warmup request failed\n";
      return 1;
    }
  }

  // --- in-process futures ---------------------------------------------------
  Clock::time_point start = Clock::now();
  for (int r = 0; r < requests; ++r) {
    const std::size_t i = static_cast<std::size_t>(r) % bodies.size();
    auto f = raw.submit(programs[i], schedules[i]);
    raw.flush();
    f.get();
  }
  const double in_process_us = us_since(start, requests);

  // --- facade ---------------------------------------------------------------
  start = Clock::now();
  for (int r = 0; r < requests; ++r) {
    const std::size_t i = static_cast<std::size_t>(r) % bodies.size();
    api::PredictRequest request;
    request.program = programs[i];
    request.schedules.push_back(schedules[i]);
    auto response = (*service)->predict(request);
    if (!response.ok()) {
      std::cerr << "facade predict failed: " << response.status().to_string() << "\n";
      return 1;
    }
  }
  const double facade_us = us_since(start, requests);

  // --- HTTP -----------------------------------------------------------------
  start = Clock::now();
  for (int r = 0; r < requests; ++r) {
    auto response = client.post("/v1/predict", bodies[static_cast<std::size_t>(r) % bodies.size()]);
    if (!response.ok() || response->status != 200) {
      std::cerr << "http predict failed\n";
      return 1;
    }
  }
  const double http_us = us_since(start, requests);

  server.stop();

  Table table({"path", "us_per_request", "overhead_vs_in_process_us"});
  table.add_row({"in_process_futures", std::to_string(in_process_us), "0"});
  table.add_row({"facade", std::to_string(facade_us), std::to_string(facade_us - in_process_us)});
  table.add_row({"http_json", std::to_string(http_us), std::to_string(http_us - in_process_us)});
  std::cout << table.to_string() << "\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n";
    out << "  \"bench\": \"http_overhead\",\n";
    out << "  \"requests_per_config\": " << requests << ",\n";
    out << "  \"in_process_us\": " << in_process_us << ",\n";
    out << "  \"facade_us\": " << facade_us << ",\n";
    out << "  \"http_us\": " << http_us << ",\n";
    out << "  \"facade_minus_in_process_us\": " << facade_us - in_process_us << ",\n";
    out << "  \"http_minus_in_process_us\": " << http_us - in_process_us << ",\n";
    out << "  \"http_overhead_ratio\": " << (in_process_us > 0 ? http_us / in_process_us : 0)
        << "\n";
    out << "}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
