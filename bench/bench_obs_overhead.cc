// Observability overhead: serving throughput with tracing off, at the
// production 1% sample rate, and fully sampled, on the same mixed-structure
// request stream bench_serve_throughput drives. The claim this bench
// enforces (nonzero exit on violation):
//
//   - 1% sampling costs < 2% of the tracing-off throughput,
//   - 0% sampling is free (the enabled() check short-circuits every span
//     site) — held to the same tolerance since "off" *is* the baseline.
//
// Histograms are always on (they replaced the latency ring, so there is no
// "off" configuration to compare against; their cost is two relaxed atomic
// adds per observation and is part of every measured number here).
//
// Trials interleave configurations (off, 1%, 100%, off, 1%, ...) so CPU
// frequency drift hits every configuration equally, and each configuration
// scores its best-of-trials — throughput noise is one-sided, so max is the
// right estimator for "what does this configuration cost".
//
// Flags:
//   --requests N   requests per trial per configuration (default 2000)
//   --clients N    closed-loop client threads (default 4)
//   --trials N     interleaved trials (default 3)
//   --json PATH    machine-readable results (default BENCH_obs_overhead.json;
//                  empty string disables)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "datagen/generator.h"
#include "model/cost_model.h"
#include "obs/trace.h"
#include "serve/prediction_service.h"
#include "support/table.h"

using namespace tcm;

namespace {

struct Workload {
  std::vector<ir::Program> programs;
  std::vector<std::size_t> pair_program;
  std::vector<transforms::Schedule> pair_schedule;

  std::size_t size() const { return pair_schedule.size(); }
};

Workload make_workload(int num_programs, int schedules_per_program) {
  Workload w;
  datagen::RandomProgramGenerator gen(datagen::GeneratorOptions::tiny());
  datagen::RandomScheduleGenerator sgen;
  Rng rng(99);
  for (int p = 0; p < num_programs; ++p) {
    w.programs.push_back(gen.generate(static_cast<std::uint64_t>(p)));
    for (int s = 0; s < schedules_per_program; ++s) {
      w.pair_program.push_back(static_cast<std::size_t>(p));
      w.pair_schedule.push_back(sgen.generate(w.programs.back(), rng));
    }
  }
  return w;
}

// One timed pass: a fresh service (so every configuration starts equally
// feature-cache-cold) under the given sample rate.
double run_trial(model::SpeedupPredictor& predictor, const Workload& workload, double sample_rate,
                 int total_requests, int num_clients) {
  obs::Tracer::instance().set_sample_rate(sample_rate);
  obs::Tracer::instance().clear();

  serve::ServeOptions options;
  options.num_threads = 2;
  options.max_batch = 64;
  options.max_queue_latency = std::chrono::microseconds(500);
  options.cache_capacity = 4096;
  options.features = model::FeatureConfig::fast();
  serve::PredictionService service(predictor, options);

  std::atomic<std::size_t> next{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(num_clients));
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&] {
      std::vector<std::future<serve::Prediction>> inflight;
      inflight.reserve(128);
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= static_cast<std::size_t>(total_requests)) break;
        // Sample at the edge the way the HTTP layer does, then carry the id
        // through the thread-local context across submit().
        obs::TraceContext ctx(obs::Tracer::instance().sample_request());
        const std::size_t pair = i % workload.size();
        inflight.push_back(service.submit(workload.programs[workload.pair_program[pair]],
                                          workload.pair_schedule[pair]));
        if (inflight.size() >= 128) {
          for (auto& f : inflight) f.get();
          inflight.clear();
        }
      }
      for (auto& f : inflight) f.get();
    });
  }
  for (std::thread& t : clients) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  obs::Tracer::instance().set_sample_rate(0.0);
  return static_cast<double>(total_requests) / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  int total_requests = 2000;
  int num_clients = 4;
  int trials = 3;
  std::string json_path = "BENCH_obs_overhead.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--requests" && i + 1 < argc) total_requests = std::atoi(argv[++i]);
    else if (arg == "--clients" && i + 1 < argc) num_clients = std::atoi(argv[++i]);
    else if (arg == "--trials" && i + 1 < argc) trials = std::atoi(argv[++i]);
    else if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
  }
  total_requests = std::max(total_requests, 1);
  num_clients = std::max(num_clients, 1);
  trials = std::max(trials, 1);

  Rng rng(7);
  model::CostModel cost_model(model::ModelConfig::fast(), rng);
  const Workload workload = make_workload(/*num_programs=*/6, /*schedules_per_program=*/16);

  std::cout << "obs overhead: " << total_requests << " requests/trial/config, " << num_clients
            << " client threads, " << trials << " interleaved trials\n\n";

  struct Config {
    const char* name;
    double sample_rate;
  };
  const std::vector<Config> configs = {
      {"tracing off", 0.0}, {"1% sampled", 0.01}, {"100% sampled", 1.0}};

  // Warm-up pass (untimed) faults in code paths and the allocator.
  run_trial(cost_model, workload, 0.0, static_cast<int>(workload.size()), 2);

  std::vector<double> best(configs.size(), 0.0);
  std::vector<double> worst(configs.size(), 0.0);
  for (int t = 0; t < trials; ++t) {
    for (std::size_t c = 0; c < configs.size(); ++c) {
      const double rps =
          run_trial(cost_model, workload, configs[c].sample_rate, total_requests, num_clients);
      best[c] = std::max(best[c], rps);
      worst[c] = worst[c] == 0.0 ? rps : std::min(worst[c], rps);
    }
  }

  const double baseline = best[0];
  // Trial-to-trial spread of the baseline itself bounds what this box can
  // resolve; a machine noisier than the 2% budget widens the tolerance so
  // the bench measures tracing, not the neighbors.
  const double spread = baseline > 0 ? (baseline - worst[0]) / baseline : 0.0;
  const double tolerance = std::max(0.02, spread);

  Table table({"config", "best req/s", "vs off", "overhead %"});
  std::vector<double> overhead(configs.size(), 0.0);
  for (std::size_t c = 0; c < configs.size(); ++c) {
    overhead[c] = baseline > 0 ? 1.0 - best[c] / baseline : 0.0;
    table.add_row({configs[c].name, Table::fmt(best[c], 0), Table::fmt(best[c] / baseline, 3) + "x",
                   Table::fmt(100.0 * overhead[c], 2)});
  }
  std::cout << table.to_string() << "\n";
  std::cout << "baseline trial spread: " << Table::fmt(100.0 * spread, 2)
            << "%, tolerance: " << Table::fmt(100.0 * tolerance, 2) << "%\n";

  bool pass = true;
  if (overhead[1] >= tolerance) {
    std::cerr << "FAIL: 1% sampling costs " << Table::fmt(100.0 * overhead[1], 2)
              << "% (budget " << Table::fmt(100.0 * tolerance, 2) << "%)\n";
    pass = false;
  }
  // 100% sampling is not production-representative; report it but only
  // enforce a sanity ceiling (it must not halve throughput).
  if (overhead[2] >= 0.5) {
    std::cerr << "FAIL: full sampling costs " << Table::fmt(100.0 * overhead[2], 2) << "%\n";
    pass = false;
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
    } else {
      out << "{\n";
      out << "  \"bench\": \"obs_overhead\",\n";
      out << "  \"requests_per_trial\": " << total_requests << ",\n";
      out << "  \"client_threads\": " << num_clients << ",\n";
      out << "  \"trials\": " << trials << ",\n";
      out << "  \"baseline_spread\": " << spread << ",\n";
      out << "  \"tolerance\": " << tolerance << ",\n";
      out << "  \"pass\": " << (pass ? "true" : "false") << ",\n";
      out << "  \"configs\": [\n";
      for (std::size_t c = 0; c < configs.size(); ++c) {
        out << "    {\"name\": \"" << configs[c].name
            << "\", \"sample_rate\": " << configs[c].sample_rate
            << ", \"best_requests_per_sec\": " << best[c]
            << ", \"worst_requests_per_sec\": " << worst[c]
            << ", \"overhead_vs_off\": " << overhead[c] << "}"
            << (c + 1 < configs.size() ? "," : "") << "\n";
      }
      out << "  ]\n}\n";
      std::cout << "wrote " << json_path << "\n";
    }
  }
  return pass ? 0 : 1;
}
