// Figure 6: best speedups found on the real-world benchmark suite by
//   (1) beam search with execution (the reference),
//   (2) beam search with the learned cost model,
//   (3) MCTS with the learned cost model,
//   (4) the Halide-style autoscheduler (baseline cost model + beam search).
// Baseline = the original program with the outermost loop parallelized.
//
// Also writes artifacts/fig6_schedules_*.txt with the winning schedules.
#include "common.h"
#include "benchsuite/benchmarks.h"
#include "search/beam_search.h"
#include "search/mcts.h"

#include <cstdio>
#include <fstream>

using namespace tcm;

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::BenchEnv::from_args(argc, argv);
  model::CostModel& cost_model = env.cost_model();
  baselines::HalideCostModel& halide = env.halide_model();

  // Benchmark sizes: paper sizes with --paper, 1/4 otherwise (the machine
  // model is analytic, so this only tames the search spaces slightly).
  const auto benchmarks = benchsuite::paper_benchmarks(env.paper_scale ? 1 : 4);

  search::BeamSearchOptions beam_opt;
  beam_opt.beam_width = 4;
  search::MctsOptions mcts_opt;
  mcts_opt.iterations = 150;
  mcts_opt.top_k = 5;

  Table table({"benchmark", "BS + execution", "BS + cost model", "MCTS + cost model",
               "Halide autoscheduler"});
  std::ofstream sched_log("artifacts/fig6_schedules_" + env.tag() + ".txt");

  for (const auto& [name, program] : benchmarks) {
    // Baseline: outermost-parallel only (the paper's Figure 6 baseline).
    sim::Executor baseline_exec;
    const transforms::Schedule heur =
        search::apply_parallel_vector_heuristics(program, {}, beam_opt.space);
    transforms::Schedule par_only;
    par_only.parallels = heur.parallels;
    const double t_base = baseline_exec.measure_seconds(
        transforms::apply_schedule(program, par_only));
    auto speedup_vs_baseline = [&](const transforms::Schedule& s) {
      sim::Executor e;
      return t_base / e.measure_seconds(transforms::apply_schedule(program, s));
    };

    // (1) Beam search with execution.
    search::ExecutionEvaluator bse_eval{sim::Executor()};
    const auto bse = search::beam_search(program, bse_eval, beam_opt);

    // (2) Beam search with the learned model.
    search::ModelEvaluator bsm_eval(&cost_model, model::FeatureConfig::fast());
    const auto bsm = search::beam_search(program, bsm_eval, beam_opt);

    // (3) MCTS with the learned model (+ execution of the retained set).
    search::ModelEvaluator mcts_model_eval(&cost_model, model::FeatureConfig::fast());
    search::ExecutionEvaluator mcts_exec_eval{sim::Executor()};
    const auto mcts = search::mcts_search(program, mcts_model_eval, mcts_exec_eval, mcts_opt);

    // (4) Halide-style autoscheduler.
    baselines::HalideEvaluator halide_eval(&halide, sim::MachineSpec());
    const auto hl = search::beam_search(program, halide_eval, beam_opt);

    table.add_row({name, Table::fmt(speedup_vs_baseline(bse.best_schedule), 2),
                   Table::fmt(speedup_vs_baseline(bsm.best_schedule), 2),
                   Table::fmt(speedup_vs_baseline(mcts.best_schedule), 2),
                   Table::fmt(speedup_vs_baseline(hl.best_schedule), 2)});
    sched_log << name << "\n  BSE : " << bse.best_schedule.to_string()
              << "\n  BSM : " << bsm.best_schedule.to_string()
              << "\n  MCTS: " << mcts.best_schedule.to_string()
              << "\n  HAL : " << hl.best_schedule.to_string() << "\n";
    std::printf("  [%s done]\n", name.c_str());
    std::fflush(stdout);
  }
  env.emit("fig6_search_speedups", table);
  std::printf("(winning schedules: artifacts/fig6_schedules_%s.txt)\n", env.tag().c_str());
  return 0;
}
