// Figure 4 + the Section 6 "Model Accuracy" numbers.
//
// Paper: test-set MAPE 16%, Pearson 0.90, Spearman 0.95; Figure 4 plots
// predicted vs measured speedups for 100 random programs x 32 schedules,
// sorted ascending by measured speedup.
#include "common.h"
#include "datagen/dataset_builder.h"
#include "model/train.h"
#include "support/stats.h"

#include <algorithm>
#include <cstdio>

using namespace tcm;

namespace {

// Held-out evaluation set biased toward the expanded schedule space: skews,
// wavefront interchanges, general unimodular transforms, and multi-root /
// shared-root program structures. Same feature config as the training set so
// the trained model applies unchanged; a distinct seed keeps it disjoint from
// the cached training distribution.
model::Dataset build_expanded_space_set(bench::BenchEnv& env) {
  datagen::DatasetBuildOptions opt = env.dataset_options();
  opt.num_programs = env.paper_scale ? 400 : 60;
  opt.schedules_per_program = 16;
  opt.seed = 40921;
  opt.generator.min_comps = 2;
  opt.generator.p_consume_previous = 0.7;
  opt.generator.p_share_root = 0.5;
  opt.scheduler.p_skew = 0.6;
  opt.scheduler.p_wavefront = 0.6;
  opt.scheduler.p_unimodular = 0.4;
  return datagen::build_dataset(opt);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::BenchEnv::from_args(argc, argv);
  model::CostModel& m = env.cost_model();
  const model::Dataset& test = env.split().test;

  const auto preds = model::predict(m, test);
  const auto metrics = model::compute_metrics(preds, test);

  // Accuracy on the expanded schedule space (skew/unimodular/multi-root
  // heavy), reported alongside the paper-distribution test set.
  const model::Dataset expanded = build_expanded_space_set(env);
  const auto expanded_preds = model::predict(m, expanded);
  const auto expanded_metrics = model::compute_metrics(expanded_preds, expanded);

  Table summary({"metric", "paper", "this reproduction", "expanded space"});
  summary.add_row({"test MAPE", "0.16", Table::fmt(metrics.mape, 3),
                   Table::fmt(expanded_metrics.mape, 3)});
  summary.add_row({"Pearson", "0.90", Table::fmt(metrics.pearson, 3),
                   Table::fmt(expanded_metrics.pearson, 3)});
  summary.add_row({"Spearman", "0.95", Table::fmt(metrics.spearman, 3),
                   Table::fmt(expanded_metrics.spearman, 3)});
  summary.add_row({"test points", "~360k", std::to_string(metrics.n),
                   std::to_string(expanded_metrics.n)});
  env.emit("fig4_accuracy_summary", summary);

  // Figure 4 series: subset of the test set sorted by measured speedup.
  std::vector<std::size_t> order(test.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return test.points[a].speedup < test.points[b].speedup;
  });
  const std::size_t max_points = std::min<std::size_t>(order.size(), 3200);
  Table series({"rank", "measured_speedup", "predicted_speedup"});
  // Print a sampled subset to stdout-friendly size; the CSV holds all rows.
  const std::size_t stride = std::max<std::size_t>(1, max_points / 3200);
  for (std::size_t k = 0; k < max_points; k += stride) {
    const std::size_t i = order[k * order.size() / max_points];
    series.add_row({std::to_string(k), Table::fmt(test.points[i].speedup, 4),
                    Table::fmt(preds[i], 4)});
  }
  series.write_csv("artifacts/fig4_series_" + env.tag() + ".csv");
  std::printf("Figure 4 series: %zu points written to artifacts/fig4_series_%s.csv\n",
              series.num_rows(), env.tag().c_str());

  // Compact console rendition: deciles of the sorted series.
  Table deciles({"decile", "measured (median)", "predicted (median)"});
  for (int d = 0; d < 10; ++d) {
    std::vector<double> ms, ps;
    for (std::size_t k = order.size() * d / 10; k < order.size() * (d + 1) / 10; ++k) {
      ms.push_back(test.points[order[k]].speedup);
      ps.push_back(preds[order[k]]);
    }
    deciles.add_row({std::to_string(d + 1), Table::fmt(median(ms), 3), Table::fmt(median(ps), 3)});
  }
  env.emit("fig4_deciles", deciles);
  return 0;
}
