// Section 4.4 "Other Neural Network Models Explored": ablation of the
// recursive loop embedding layer.
//   - LSTM-only (flat sequence of computation embeddings): the paper reports
//     a 1.15x relative MAPE increase on the test set and 1.33x on the
//     benchmark set.
//   - Feedforward-only (concatenated computation embeddings, up to 4
//     computations): 1.39x / 1.37x, plus the structural limitation.
// All three architectures share the computation-embedding design and are
// trained with the same recipe on the same dataset.
#include "common.h"
#include "benchsuite/benchmarks.h"
#include "datagen/dataset_builder.h"
#include "model/train.h"

#include <cstdio>

using namespace tcm;

namespace {

// The "benchmarks set": random schedules on the real-world suite, measured
// on the simulated machine.
model::Dataset benchmark_set(const bench::BenchEnv& env) {
  const auto benchmarks = benchsuite::paper_benchmarks(env.paper_scale ? 1 : 4);
  datagen::DatasetBuildOptions opt;
  opt.features = model::FeatureConfig::fast();
  model::Dataset ds;
  int pid = 1000;
  for (const auto& [name, program] : benchmarks) {
    model::Dataset one =
        datagen::build_for_program(program, pid++, 24, opt, 555 + static_cast<std::uint64_t>(pid));
    for (auto& p : one.points) ds.points.push_back(std::move(p));
  }
  return ds;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchEnv env = bench::BenchEnv::from_args(argc, argv);
  model::CostModel& recursive = env.cost_model();
  model::LstmOnlyModel& lstm_only = env.lstm_only_model();
  model::FeedForwardModel& feedforward = env.feedforward_model();

  const model::Dataset& test = env.split().test;
  const model::Dataset bench_set = benchmark_set(env);

  const auto rec_test = model::evaluate(recursive, test);
  const auto lstm_test = model::evaluate(lstm_only, test);
  const auto ff_test = model::evaluate(feedforward, test);
  const auto rec_bench = model::evaluate(recursive, bench_set);
  const auto lstm_bench = model::evaluate(lstm_only, bench_set);
  const auto ff_bench = model::evaluate(feedforward, bench_set);

  Table table({"architecture", "test MAPE", "rel. to recursive", "bench MAPE",
               "rel. to recursive", "test spearman"});
  auto rel = [](double a, double b) { return Table::fmt(a / b, 2) + "x"; };
  table.add_row({"recursive LSTM (paper)", Table::fmt(rec_test.mape, 3), "1.00x",
                 Table::fmt(rec_bench.mape, 3), "1.00x", Table::fmt(rec_test.spearman, 3)});
  table.add_row({"LSTM-only (no hierarchy)", Table::fmt(lstm_test.mape, 3),
                 rel(lstm_test.mape, rec_test.mape), Table::fmt(lstm_bench.mape, 3),
                 rel(lstm_bench.mape, rec_bench.mape), Table::fmt(lstm_test.spearman, 3)});
  table.add_row({"feedforward-only (<=4 comps)", Table::fmt(ff_test.mape, 3),
                 rel(ff_test.mape, rec_test.mape), Table::fmt(ff_bench.mape, 3),
                 rel(ff_bench.mape, rec_bench.mape), Table::fmt(ff_test.spearman, 3)});
  env.emit("ablation_architectures", table);
  std::printf("paper relative MAPE: LSTM-only 1.15x test / 1.33x bench; "
              "feedforward 1.39x / 1.37x\n");
  return 0;
}
